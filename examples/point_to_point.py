#!/usr/bin/env python3
"""Point-to-point shortest paths: Dijkstra vs A* vs bidirectional vs CH.

The kNN index answers "who is near me"; a dispatch system also needs
"how far is this driver from that pickup".  The road-network substrate
ships four exact point-to-point algorithms with very different search
behaviour — this example races them on the scaled California network and
reports distances (identical) and vertices settled (not at all).

Run:
    python examples/point_to_point.py
"""

import random
import time

from repro.roadnet import load_dataset
from repro.roadnet.astar import astar, bidirectional_dijkstra
from repro.roadnet.contraction import ContractionHierarchy
from repro.roadnet.dijkstra import multi_source_dijkstra


def main() -> None:
    graph = load_dataset("CAL")
    print(f"California (scaled): {graph.num_vertices} vertices, "
          f"{graph.num_edges} edges")

    t0 = time.perf_counter()
    ch = ContractionHierarchy(graph)
    print(f"contraction hierarchy built in {time.perf_counter() - t0:.2f}s "
          f"({ch.shortcuts_added} shortcuts)\n")

    rng = random.Random(4)
    pairs = [
        (rng.randrange(graph.num_vertices), rng.randrange(graph.num_vertices))
        for _ in range(5)
    ]

    header = f"{'pair':>12} {'distance':>10} {'dijkstra':>9} {'a*':>7} {'bidir':>7} {'ch':>6}"
    print(header)
    print("-" * len(header))
    for s, t in pairs:
        dist = multi_source_dijkstra(graph, {s: 0.0}, targets=[t])
        d_dij = dist.get(t, float("inf"))
        settled_dij = len(dist)
        d_astar, settled_astar = astar(graph, s, t)
        d_bi, settled_bi = bidirectional_dijkstra(graph, s, t)
        d_ch, settled_ch = ch.distance_with_stats(s, t)
        assert abs(d_dij - d_astar) < 1e-9
        assert abs(d_dij - d_bi) < 1e-9
        assert abs(d_dij - d_ch) < 1e-9
        print(
            f"{s:>5} ->{t:>5} {d_dij:>10.3f} {settled_dij:>9} "
            f"{settled_astar:>7} {settled_bi:>7} {settled_ch:>6}"
        )
    print("\nAll four agree on every distance.  A* (goal direction) and "
          "CH (hierarchy) settle a fraction of Dijkstra's vertices; "
          "bidirectional search pays off on larger graphs where its two "
          "frontiers stay smaller than one target-pruned sweep.")


if __name__ == "__main__":
    main()
