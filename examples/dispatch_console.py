#!/usr/bin/env python3
"""Dispatch console: the library's extension features in one scenario.

A dispatcher watches a delivery fleet on the Colorado network:

* **range queries** — "every vehicle within radius r of the depot"
  (exact, built on the same lazy cleaning as kNN);
* **batched queries** — several dispatch points answered in one GPU
  pass (the paper's multi-query parallelism);
* **background maintenance** — a backlog-bounded cleaning policy keeps
  cold-region latency spikes in check;
* **diagnostics** — live backlog/occupancy/device counters;
* **persistence** — snapshot the index, restart, keep serving.

Run:
    python examples/dispatch_console.py
"""

import tempfile
from pathlib import Path

from repro import GGridIndex, NetworkLocation
from repro.core.diagnostics import snapshot
from repro.mobility import MotoGenerator, random_locations
from repro.persistence import load_index, save_index
from repro.server.maintenance import BacklogCleaning

FLEET = 150
DURATION = 45.0


def main() -> None:
    from repro.roadnet import load_dataset

    graph = load_dataset("COL")
    print(f"Colorado (scaled): {graph.num_vertices} vertices, "
          f"{graph.num_edges} edges")

    index = GGridIndex(graph)
    policy = BacklogCleaning(max_backlog=64)
    generator = MotoGenerator(graph, FLEET, update_frequency=1.0, seed=31)
    index.bulk_load(generator.initial_placements(), t=0.0)

    # live update stream with background maintenance
    for message in generator.messages(duration=DURATION):
        index.ingest(message)
        policy.on_update(index, message.t)

    stats = snapshot(index)
    print(f"\nafter {stats['messages_ingested']} updates:")
    print(f"  backlog: {stats['backlog_messages']} messages "
          f"(max {stats['backlog_max_cell']} in one cell; policy swept "
          f"{policy.cells_cleaned} cells)")
    print(f"  device: {stats['gpu_kernels']} kernels, "
          f"{stats['gpu_bytes'] / 1024:.1f} KiB moved")

    # range query around the depot
    depot = NetworkLocation(0, 0.0)
    for radius in (2.0, 5.0):
        hits = index.range_query(depot, radius, t_now=DURATION)
        print(f"\nvehicles within {radius:.0f} of the depot: "
              f"{len(hits.entries)} (cleaned {hits.cells_cleaned} cells)")
        for e in hits.entries[:4]:
            print(f"  vehicle {e.obj} at {e.distance:.2f}")

    # batched kNN from three dispatch points in one GPU pass
    points = random_locations(graph, 3, seed=77)
    batch = index.knn_batch([(p, 3) for p in points], t_now=DURATION)
    print("\nbatched dispatch (3 points, one shared GPU pass):")
    for i, answer in enumerate(batch):
        nearest = ", ".join(f"{e.obj}@{e.distance:.2f}" for e in answer.entries)
        print(f"  point {i}: {nearest}")

    # snapshot, restart, keep serving identically
    path = Path(tempfile.mkdtemp()) / "dispatch.json"
    save_index(index, path)
    restored = load_index(path)
    before = index.knn(depot, 3, t_now=DURATION).distances()
    after = restored.knn(depot, 3, t_now=DURATION).distances()
    same = [round(x, 9) for x in before] == [round(x, 9) for x in after]
    print(f"\nsnapshot -> restart: answers identical: {same} "
          f"({path.stat().st_size / 1024:.1f} KiB snapshot)")


if __name__ == "__main__":
    main()
