#!/usr/bin/env python3
"""Tuning the G-Grid knobs: bucket capacity, bundle size and rho.

Reproduces the Section VII-C1 tuning methodology in miniature: sweep one
knob at a time on a message-dense workload and report the simulated GPU
time per query, highlighting the same effects the paper found —

* bucket capacity ``delta_b``: a U-shape (too small = transfer/launch
  overhead per bucket; too large = long serial rounds per thread);
* bundle size ``2^eta``: cheap up to the 32-lane warp, then every
  shuffle needs a cross-warp barrier;
* ``rho``: larger values clean more cells on the GPU, smaller ones push
  work into CPU refinement.

Run:
    python examples/tuning.py
"""

from repro import GGridConfig, GGridIndex
from repro.mobility import make_workload
from repro.roadnet import load_dataset
from repro.server import QueryServer


def sweep(graph, workload, knob: str, values) -> None:
    print(f"--- sweeping {knob} ---")
    for value in values:
        config = GGridConfig(**{knob: value})
        index = GGridIndex(graph, config)
        report, _ = QueryServer(index).replay(workload)
        gpu_us = report.gpu_seconds / report.n_queries * 1e6
        print(f"  {knob}={value:<6} gpu={gpu_us:8.1f} us/query "
              f"amortized={report.amortized_s() * 1e6:8.1f} us")
    print()


def main() -> None:
    graph = load_dataset("NY")
    dense = make_workload(
        graph, num_objects=1500, duration=30.0, num_queries=5, k=16, seed=21
    )
    sparse = make_workload(
        graph, num_objects=150, duration=30.0, num_queries=8, k=16, seed=22
    )
    sweep(graph, dense, "delta_b", (4, 16, 64, 128, 256))
    sweep(graph, dense, "eta", (3, 4, 5, 6, 7))
    sweep(graph, sparse, "rho", (1.4, 1.8, 2.2, 2.6, 3.0))
    print("Paper-tuned defaults: delta_b=128, 2^eta=32 (the warp size), rho=1.8")


if __name__ == "__main__":
    main()
