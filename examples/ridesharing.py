#!/usr/bin/env python3
"""Ride-sharing scenario: find the nearest cars in a live fleet.

The paper's motivating example (Fig. 1): cars move on a city road
network, each reporting its position once per second; riders ask for
their k nearest cars and expect answers computed from the *current*
snapshot.  This example simulates a fleet on the scaled New York network
with the MOTO generator, interleaves rider queries with the update
stream, and verifies every answer against the brute-force oracle.

Run:
    python examples/ridesharing.py
"""

import itertools

from repro import GGridIndex, NetworkLocation
from repro.baselines import NaiveKnnIndex
from repro.mobility import MotoGenerator, random_locations
from repro.roadnet import load_dataset


def main() -> None:
    graph = load_dataset("NY")
    print(f"New York (scaled): {graph.num_vertices} vertices, {graph.num_edges} edges")

    fleet_size = 120
    generator = MotoGenerator(graph, fleet_size, update_frequency=1.0, seed=11)
    index = GGridIndex(graph)
    oracle = NaiveKnnIndex(graph)

    index.bulk_load(generator.initial_placements(), t=0.0)
    oracle.bulk_load(generator.initial_placements(), t=0.0)
    print(f"fleet of {fleet_size} cars on the road")

    # riders appear every ~7 seconds at random street locations
    rider_spots = random_locations(graph, count=8, seed=99)
    rider_times = [7.0 * (i + 1) for i in range(len(rider_spots))]
    riders = iter(zip(rider_times, rider_spots, itertools.count(1)))
    next_rider = next(riders, None)

    matched = 0
    for message in generator.messages(duration=60.0):
        while next_rider is not None and next_rider[0] <= message.t:
            t, spot, rider_id = next_rider
            answer = index.knn(spot, k=3, t_now=t)
            check = oracle.knn(spot, k=3, t_now=t)
            ok = [round(e.distance, 9) for e in answer.entries] == [
                round(e.distance, 9) for e in check.entries
            ]
            matched += ok
            cars = ", ".join(
                f"car {e.obj} @ {e.distance:.2f}" for e in answer.entries
            )
            print(f"t={t:5.1f}s rider {rider_id}: {cars}  [{'OK' if ok else 'MISMATCH'}]")
            next_rider = next(riders, None)
        index.ingest(message)
        oracle.ingest(message)

    print(f"\n{matched}/{len(rider_spots)} answers matched the exact oracle")
    stats = index.stats
    print(
        f"lazy cleaning: {index.messages_ingested} updates ingested, "
        f"{stats.kernel_launches} GPU kernels, "
        f"{stats.total_bytes / 1024:.1f} KiB moved to/from the device"
    )


if __name__ == "__main__":
    main()
