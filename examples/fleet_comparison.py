#!/usr/bin/env python3
"""Fleet monitoring: compare G-Grid against the baselines under load.

A logistics operator tracks a fleet on the Florida network and runs
periodic "nearest vehicles" checks from dispatch points.  This example
replays the same workload through G-Grid, V-Tree, V-Tree (G) and ROAD
and prints the paper's amortised metric ``(T_u + T_q) / n_q`` for each,
showing where the lazy-update strategy wins as the update stream grows.

Run:
    python examples/fleet_comparison.py
"""

from repro import GGridIndex
from repro.baselines import RoadIndex, VTreeGpuIndex, VTreeIndex
from repro.mobility import make_workload
from repro.roadnet import load_dataset
from repro.server import QueryServer


def main() -> None:
    graph = load_dataset("FLA")
    print(f"Florida (scaled): {graph.num_vertices} vertices, {graph.num_edges} edges\n")

    header = f"{'frequency':>9}  {'algorithm':<12} {'amortized':>12} {'updates':>9} {'queries':>8}"
    for frequency in (0.5, 2.0):
        workload = make_workload(
            graph,
            num_objects=250,
            duration=30.0,
            num_queries=6,
            k=16,
            update_frequency=frequency,
            seed=5,
        )
        print(header)
        print("-" * len(header))
        for index in (
            GGridIndex(graph),
            VTreeIndex(graph),
            VTreeGpuIndex(graph),
            RoadIndex(graph),
        ):
            report, _ = QueryServer(index).replay(workload)
            print(
                f"{frequency:>7.1f}Hz  {index.name:<12} "
                f"{report.amortized_s() * 1e3:>10.3f}ms "
                f"{report.n_updates:>9} {report.n_queries:>8}"
            )
        print()
    print(
        "The eager baselines pay for every message; G-Grid's amortised\n"
        "time barely moves as the update frequency quadruples (Fig. 9)."
    )


if __name__ == "__main__":
    main()
