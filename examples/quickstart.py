#!/usr/bin/env python3
"""Quickstart: build a G-Grid index, ingest moving objects, run kNN.

Run:
    python examples/quickstart.py

Walks through the complete public API on a small synthetic road network:
index construction, location updates (Algorithm 1), a kNN query
(Algorithm 4) and the GPU-side statistics the lazy cleaning produced.
"""

from repro import GGridConfig, GGridIndex, Message, NetworkLocation
from repro.roadnet import grid_road_network


def main() -> None:
    # 1. A road network: a 16x16 perturbed lattice (520 directed edges).
    graph = grid_road_network(16, 16, seed=42)
    print(f"road network: {graph.num_vertices} vertices, {graph.num_edges} edges")

    # 2. The G-Grid index with the paper's tuned defaults
    #    (delta_c=3, delta_v=2, delta_b=128, bundle 2^5=32, rho=1.8).
    index = GGridIndex(graph, GGridConfig())
    print(f"grid: {index.grid.num_cells} cells (psi={index.grid.assignment.psi})")

    # 3. Ten cars report their initial positions at t=0...
    for car in range(10):
        edge = (car * 37) % graph.num_edges
        index.ingest(Message(obj=car, edge=edge, offset=0.3, t=0.0))

    # ...and three of them move (messages are cached, not applied!).
    index.ingest(Message(obj=3, edge=5, offset=0.1, t=1.0))
    index.ingest(Message(obj=7, edge=5, offset=0.4, t=1.5))
    index.ingest(Message(obj=9, edge=6, offset=0.2, t=2.0))
    print(f"cached messages pending: {index.pending_messages()}")

    # 4. A user at the start of edge 5 asks for the 3 nearest cars.
    answer = index.knn(NetworkLocation(edge_id=5, offset=0.0), k=3, t_now=2.0)
    print("3 nearest cars:")
    for entry in answer.entries:
        print(f"  car {entry.obj}: network distance {entry.distance:.3f}")

    # 5. What the lazy machinery did under the hood.
    print(f"cells cleaned for this query: {answer.cells_cleaned}")
    print(f"candidate objects considered: {answer.candidates}")
    print(f"unresolved boundary vertices refined: {answer.unresolved}")
    stats = index.stats
    print(
        f"GPU: {stats.kernel_launches} kernels, "
        f"{stats.total_bytes} bytes transferred, "
        f"{stats.gpu_time_s * 1e6:.1f} us simulated device time"
    )
    sizes = index.size_bytes()
    print(f"index size: {sizes['total'] / 1024:.1f} KiB (GPU copy {sizes['gpu'] / 1024:.1f} KiB)")


if __name__ == "__main__":
    main()
