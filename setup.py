"""Legacy setup shim: enables `pip install -e .` where the `wheel` package
(needed for PEP 660 editable builds) is unavailable."""

from setuptools import setup

setup()
