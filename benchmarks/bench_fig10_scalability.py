"""Fig. 10: scalability of G-Grid across network sizes.

* 10a/b — running time rises and throughput falls with network size;
* 10c/d — DRAM-GPU transfer volume and time grow with k and with the
  network size, flattening once message lists go empty.
"""

from repro.bench.experiments import fig10ab_scalability, fig10cd_transfer
from repro.bench.reporting import format_table, save_results

DATASETS = ("NY", "COL", "FLA", "CAL", "LKS", "USA")


def test_fig10ab_runtime_throughput(run_once):
    rows = run_once(fig10ab_scalability, DATASETS)
    print("\n" + format_table(rows, "Fig. 10a/b: G-Grid runtime & throughput"))
    save_results("fig10ab_scalability", rows)

    assert [r["vertices"] for r in rows] == sorted(r["vertices"] for r in rows)
    # broad trend: the biggest network is slower than the smallest
    assert rows[-1]["amortized_s"] > rows[0]["amortized_s"]
    assert rows[-1]["throughput_qps"] < rows[0]["throughput_qps"]
    # throughput is the reciprocal of amortised time
    for row in rows:
        assert abs(row["throughput_qps"] * row["amortized_s"] - 1.0) < 1e-6


def test_fig10cd_transfer(run_once):
    rows = run_once(fig10cd_transfer, DATASETS, (8, 32, 128))
    print("\n" + format_table(rows, "Fig. 10c/d: DRAM-GPU transfer size & time"))
    save_results("fig10cd_transfer", rows)

    by = {(r["dataset"], r["k"]): r["transfer_bytes_per_query"] for r in rows}
    # transfer volume grows with k on every dataset
    for dataset in DATASETS:
        assert by[(dataset, 128)] > by[(dataset, 8)]
