"""Fig. 6: index sizes — G-Grid (CPU / GPU / total) vs V-Tree.

Expected shape: on the larger networks the V-Tree index (pairwise leaf
distance matrices) dwarfs the G-Grid, which only stores the original
graph plus lightweight message lists.
"""

from repro.bench.experiments import fig6_index_size
from repro.bench.reporting import format_table, save_results

DATASETS = ("NY", "COL", "FLA", "CAL", "LKS", "USA")


def test_fig6_index_size(run_once):
    rows = run_once(fig6_index_size, DATASETS)
    print("\n" + format_table(rows, "Fig. 6: index size vs dataset"))
    save_results("fig6_index_size", rows)

    for row in rows:
        assert row["ggrid_total_B"] == row["ggrid_cpu_B"] + row["ggrid_gpu_B"]
        assert row["ggrid_gpu_B"] > 0
    # the paper's headline holds where precomputation dominates: on the
    # biggest networks V-Tree is clearly larger than the full G-Grid
    big = {r["dataset"]: r for r in rows}
    for dataset in ("LKS", "USA"):
        assert big[dataset]["vtree_B"] > big[dataset]["ggrid_total_B"]
