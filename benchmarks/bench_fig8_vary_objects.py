"""Fig. 8: amortised time vs the number of moving objects |O|.

Expected shape: everything grows with |O|, but G-Grid grows by a much
smaller factor across the sweep than the eager baselines (the paper
reports <10x for G-Grid vs ~100x for the baselines over 10^4x more
objects; our sweep spans 100x).
"""

from repro.bench.experiments import fig8_vary_objects
from repro.bench.reporting import format_table, save_results

GRID = (100, 300, 1000, 3000, 10000)


def test_fig8_vary_objects(run_once):
    rows = run_once(fig8_vary_objects, "USA", GRID)
    print("\n" + format_table(rows, "Fig. 8: varying |O| (USA)"))
    save_results("fig8_vary_objects", rows)

    by = {(r["objects"], r["algorithm"]): r["amortized_s"] for r in rows}
    growth = {
        algo: by[(GRID[-1], algo)] / by[(GRID[0], algo)]
        for algo in ("G-Grid", "V-Tree", "ROAD")
    }
    # the paper's Fig. 8 claim: G-Grid's growth factor is far smaller
    assert growth["G-Grid"] < growth["V-Tree"]
    assert growth["G-Grid"] < growth["ROAD"]
    # and once the update volume is non-trivial it wins outright (below
    # ~300 objects the fixed GPU overheads dominate at our scale — a
    # scale artefact documented in EXPERIMENTS.md)
    for n in (1000, 3000, 10000):
        assert by[(n, "G-Grid")] < by[(n, "V-Tree")]
        assert by[(n, "G-Grid")] < by[(n, "ROAD")]
