"""Fig. 4: tuning the G-Grid system parameters (Section VII-C1).

* 4a — bucket capacity ``delta_b``: U-shaped GPU time (per-bucket
  transfer/launch overhead on the left, long serial rounds on the right);
* 4b — bundle size ``2^eta``: fine up to the 32-lane warp, then every
  shuffle pays a cross-warp barrier;
* 4c — ``rho``: larger values clean more cells on the GPU.
"""

from repro.bench.experiments import (
    fig4a_bucket_capacity,
    fig4b_bundle_size,
    fig4c_rho,
)
from repro.bench.reporting import format_table, save_results


def test_fig4a_bucket_capacity(run_once):
    rows = run_once(fig4a_bucket_capacity, ("NY", "FLA"))
    print("\n" + format_table(rows, "Fig. 4a: varying bucket capacity delta_b"))
    save_results("fig4a_bucket_capacity", rows)

    for dataset in ("NY", "FLA"):
        series = {r["delta_b"]: r["gpu_s"] for r in rows if r["dataset"] == dataset}
        # left slope: tiny buckets pay per-bucket overheads
        assert series[4] > series[64]
        # right slope: giant buckets serialise rounds on few threads
        assert series[256] > series[64]


def test_fig4b_bundle_size(run_once):
    rows = run_once(fig4b_bundle_size, ("NY", "FLA"))
    print("\n" + format_table(rows, "Fig. 4b: varying bundle size 2^eta"))
    save_results("fig4b_bundle_size", rows)

    for dataset in ("NY", "FLA"):
        series = {r["bundle"]: r["gpu_s"] for r in rows if r["dataset"] == dataset}
        # the paper's headline: beyond the 32-lane warp, bundles lose
        assert series[64] > series[32]
        assert series[128] > series[32]


def test_fig4c_rho(run_once):
    rows = run_once(fig4c_rho, ("NY", "FLA"))
    print("\n" + format_table(rows, "Fig. 4c: varying the balance factor rho"))
    save_results("fig4c_rho", rows)

    for dataset in ("NY", "FLA"):
        series = {r["rho"]: r["gpu_s"] for r in rows if r["dataset"] == dataset}
        # a larger rho shifts work onto the GPU (more cells cleaned)
        assert series[3.0] >= series[1.4]
