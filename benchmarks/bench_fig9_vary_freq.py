"""Fig. 9: amortised time vs the object update frequency f.

The lazy-update headline result: the eager baselines' amortised time
rises steeply with f (every message is an index update) while G-Grid's
barely moves (messages are appended and only cleaned when queried).
"""

from repro.bench.experiments import fig9_vary_frequency
from repro.bench.reporting import format_table, save_results

GRID = (0.2, 0.5, 1.0, 2.0, 5.0)


def test_fig9_vary_frequency(run_once):
    rows = run_once(fig9_vary_frequency, "FLA", GRID)
    print("\n" + format_table(rows, "Fig. 9: varying update frequency (FLA)"))
    save_results("fig9_vary_frequency", rows)

    by = {(r["frequency_hz"], r["algorithm"]): r["amortized_s"] for r in rows}
    growth = {
        algo: by[(GRID[-1], algo)] / by[(GRID[0], algo)]
        for algo in ("G-Grid", "V-Tree", "V-Tree (G)", "ROAD")
    }
    # G-Grid is the least sensitive to f of all algorithms
    for baseline in ("V-Tree", "V-Tree (G)", "ROAD"):
        assert growth["G-Grid"] < growth[baseline]
    # and at high frequency it wins outright
    for baseline in ("V-Tree", "V-Tree (G)", "ROAD"):
        assert by[(5.0, "G-Grid")] < by[(5.0, baseline)]
