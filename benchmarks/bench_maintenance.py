"""Extension bench: background maintenance policies vs pure lazy.

Measures the trade-off the maintenance policies buy: background cleaning
adds steady update-path work but caps the backlog a cold query must
clean, shrinking the worst-case query latency.
"""

from repro.bench.harness import cached_workload
from repro.bench.reporting import format_table, save_results
from repro.config import GGridConfig
from repro.core.ggrid import GGridIndex
from repro.roadnet.datasets import load_dataset
from repro.server.maintenance import BacklogCleaning, NoMaintenance, PeriodicCleaning
from repro.server.server import QueryServer


def _run() -> list[dict]:
    graph = load_dataset("FLA")
    workload = cached_workload("FLA", 500, 30.0, 6, 16, 1.0, 7)
    rows = []
    for label, policy in (
        ("lazy (paper)", NoMaintenance()),
        ("periodic 10s", PeriodicCleaning(10.0, slice_cells=32)),
        ("backlog<=32", BacklogCleaning(32)),
    ):
        index = GGridIndex(graph, GGridConfig())
        server = QueryServer(index, maintenance=policy)
        report, _ = server.replay(workload)
        worst = max(r.modeled_s for r in report.query_records)
        rows.append(
            {
                "policy": label,
                "amortized_s": report.amortized_s(),
                "worst_query_s": worst,
                "pending_after": index.pending_messages(),
            }
        )
    return rows


def test_maintenance_policies(run_once):
    rows = run_once(_run)
    print("\n" + format_table(rows, "Extension: background maintenance policies"))
    save_results("maintenance_policies", rows)

    by = {r["policy"]: r for r in rows}
    # background cleaning leaves less backlog behind than pure lazy
    assert by["backlog<=32"]["pending_after"] <= by["lazy (paper)"]["pending_after"]
    assert by["periodic 10s"]["pending_after"] <= by["lazy (paper)"]["pending_after"]
