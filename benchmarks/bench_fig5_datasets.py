"""Fig. 5: amortised query time per dataset, all algorithms.

Expected shape (paper): G-Grid <= G-Grid (L) < V-Tree / V-Tree (G) <
ROAD on every dataset; V-Tree (G) is missing on USA because its index
exceeds the 5 GB device.
"""

from repro.bench.experiments import fig5_datasets
from repro.bench.reporting import format_table, save_results

DATASETS = ("NY", "COL", "FLA", "CAL", "LKS", "USA")


def test_fig5_datasets(run_once):
    rows = run_once(fig5_datasets, DATASETS)
    print("\n" + format_table(rows, "Fig. 5: query time vs dataset"))
    save_results("fig5_datasets", rows)

    by = {(r["dataset"], r["algorithm"]): r["amortized_s"] for r in rows}
    for dataset in DATASETS:
        ggrid = by[(dataset, "G-Grid")]
        latency = by[(dataset, "G-Grid (L)")]
        assert ggrid <= latency
        # G-Grid beats every eager baseline present on this dataset
        for baseline in ("V-Tree", "V-Tree (G)", "ROAD"):
            if (dataset, baseline) in by and by[(dataset, baseline)] is not None:
                assert ggrid < by[(dataset, baseline)]
    # the paper omits V-Tree (G) on USA: index exceeds device memory
    assert by.get(("USA", "V-Tree (G)")) is None
