"""Table II: statistics of the six road networks (paper vs synthetic)."""

from repro.bench.experiments import table2_datasets
from repro.bench.reporting import format_table, save_results
from repro.roadnet.datasets import DATASET_ORDER


def test_table2_datasets(run_once):
    rows = run_once(table2_datasets)
    print("\n" + format_table(rows, "Table II: road-network statistics"))
    save_results("table2_datasets", rows)

    assert [r["dataset"] for r in rows] == list(DATASET_ORDER)
    # size ordering of Table II is preserved
    sizes = [r["V"] for r in rows]
    assert sizes == sorted(sizes)
    # each synthetic network keeps its paper edge/vertex ratio
    for row in rows:
        paper_ratio = row["paper_E"] / row["paper_V"]
        assert abs(row["edge_ratio"] - paper_ratio) / paper_ratio < 0.3
