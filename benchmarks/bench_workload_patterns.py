"""Extension bench: non-uniform workloads (hotspots, rush hour).

G-Grid's lazy design is claimed to be robust to skew: hotspot traffic
concentrates backlog into a few cells (long bucket chains, more shuffle
rounds) and rush-hour bursts pile messages up between queries.  This
bench measures both against the uniform baseline workload.
"""

from repro.bench.reporting import format_table, save_results
from repro.config import GGridConfig
from repro.core.ggrid import GGridIndex
from repro.core.messages import Message
from repro.mobility.moto import MotoGenerator
from repro.mobility.patterns import RushHourGenerator, hotspot_placements
from repro.mobility.workload import random_locations
from repro.roadnet.datasets import load_dataset
from repro.server.server import QueryServer
from repro.server.metrics import ReplayReport, TimingModel


def _measure(graph, initial, messages, queries) -> dict:
    index = GGridIndex(graph, GGridConfig())
    server = QueryServer(index)
    report = ReplayReport(index_name=index.name, timing=TimingModel())
    from repro.mobility.workload import Query

    events = sorted(
        [("update", m) for m in messages]
        + [("query", q) for q in queries],
        key=lambda kv: kv[1].t,
    )
    for obj, loc in initial.items():
        server.update(Message(obj, loc.edge_id, loc.offset, 0.0), report)
    for kind, event in events:
        if kind == "update":
            server.update(event, report)
        else:
            server.query(event, report)
    return {
        "amortized_s": report.amortized_s(),
        "gpu_s": report.gpu_seconds,
        "transfer_bytes": report.transfer_bytes,
    }


def _run() -> list[dict]:
    from repro.mobility.workload import Query

    graph = load_dataset("FLA")
    objects = 400
    locations = random_locations(graph, 6, seed=5)
    queries = [Query(5.0 * (i + 1), loc, 16) for i, loc in enumerate(locations)]
    rows = []

    uniform = MotoGenerator(graph, objects, update_frequency=1.0, seed=11)
    rows.append(
        {
            "workload": "uniform",
            **_measure(
                graph,
                uniform.initial_placements(),
                list(uniform.messages(30.0)),
                queries,
            ),
        }
    )

    hot_initial = hotspot_placements(graph, objects, num_hotspots=3, seed=11)
    hot_moto = MotoGenerator(graph, objects, update_frequency=1.0, seed=11)
    for obj, loc in hot_initial.items():  # start the movers at the hotspots
        hot_moto.objects[obj].edge = loc.edge_id
        hot_moto.objects[obj].offset = loc.offset
    rows.append(
        {
            "workload": "hotspot",
            **_measure(graph, hot_initial, list(hot_moto.messages(30.0)), queries),
        }
    )

    rush = RushHourGenerator(graph, objects, [(20.0, 0.25), (30.0, 4.0)], seed=11)
    rows.append(
        {
            "workload": "rush-hour",
            **_measure(
                graph, rush.initial_placements(), list(rush.messages()), queries
            ),
        }
    )
    return rows


def test_workload_patterns(run_once):
    rows = run_once(_run)
    print("\n" + format_table(rows, "Extension: workload skew robustness"))
    save_results("workload_patterns", rows)

    by = {r["workload"]: r for r in rows}
    # skewed workloads stay within a small factor of uniform: the lazy
    # design does not degenerate under concentration or bursts
    for skewed in ("hotspot", "rush-hour"):
        assert by[skewed]["amortized_s"] < 10 * by["uniform"]["amortized_s"]
