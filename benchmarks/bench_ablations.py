"""Ablations beyond the paper's figures (DESIGN.md §6).

* lazy vs eager cleaning — how much the paper's core idea buys;
* pipelined vs blocking host->device transfers (Section V-A);
* GPU_SDist early exit vs the paper's fixed |V| rounds (Algorithm 5);
* measured transfer volume vs the Section VI closed-form bound.
"""

from repro.bench.experiments import (
    ablation_batched_queries,
    ablation_lazy_vs_eager,
    ablation_pipelining,
    ablation_sdist_early_exit,
    costmodel_validation,
)
from repro.bench.reporting import format_table, save_results


def test_ablation_lazy_vs_eager(run_once):
    rows = run_once(ablation_lazy_vs_eager, "NY")
    print("\n" + format_table(rows, "Ablation: lazy vs eager cleaning"))
    save_results("ablation_lazy_vs_eager", rows)

    by = {r["variant"]: r for r in rows}
    assert by["lazy"]["amortized_s"] < by["eager"]["amortized_s"]
    assert by["lazy"]["kernel_launches"] < by["eager"]["kernel_launches"]


def test_ablation_pipelining(run_once):
    rows = run_once(ablation_pipelining, "FLA")
    print("\n" + format_table(rows, "Ablation: pipelined vs blocking transfers"))
    save_results("ablation_pipelining", rows)

    by = {r["pipelined"]: r["gpu_s"] for r in rows}
    assert by[True] <= by[False]


def test_ablation_sdist_early_exit(run_once):
    rows = run_once(ablation_sdist_early_exit, "FLA")
    print("\n" + format_table(rows, "Ablation: GPU_SDist early exit"))
    save_results("ablation_sdist_early_exit", rows)

    by = {r["early_exit"]: r["gpu_s"] for r in rows}
    assert by[True] <= by[False]


def test_ablation_batched_queries(run_once):
    rows = run_once(ablation_batched_queries, "FLA")
    print("\n" + format_table(rows, "Ablation: batched vs individual queries"))
    save_results("ablation_batched_queries", rows)

    by = {r["mode"]: r for r in rows}
    assert by["batched"]["bytes_h2d"] <= by["individual"]["bytes_h2d"]
    assert by["batched"]["kernel_launches"] <= by["individual"]["kernel_launches"]


def test_costmodel_validation(run_once):
    rows = run_once(costmodel_validation, "FLA")
    print("\n" + format_table(rows, "Section VI bound vs measured transfers"))
    save_results("costmodel_validation", rows)

    # measured per-query transfer volume grows with k, like the bound
    assert rows[-1]["measured_bytes_per_query"] > rows[0]["measured_bytes_per_query"]
    assert rows[-1]["bound_bytes"] > rows[0]["bound_bytes"]
