"""Extension bench: SDist backend comparison (lockstep vs vectorized).

Both backends compute identical restricted distances and charge the same
modelled GPU work; the vectorised backend exists to make the *host*
simulation faster on large candidate sets.  This bench verifies answer
equality on a full replay and reports the wall-time difference.
"""

import time

from repro.bench.harness import cached_workload
from repro.bench.reporting import format_table, save_results
from repro.config import GGridConfig
from repro.core.ggrid import GGridIndex
from repro.roadnet.datasets import load_dataset
from repro.server.server import QueryServer


def _run() -> list[dict]:
    graph = load_dataset("USA")
    workload = cached_workload("USA", 2000, 15.0, 6, 64, 1.0, 7)
    rows = []
    answers = {}
    for backend in ("lockstep", "vectorized"):
        index = GGridIndex(graph, GGridConfig(sdist_backend=backend))
        server = QueryServer(index)
        t0 = time.perf_counter()
        report, ans = server.replay(workload, collect_answers=True)
        wall = time.perf_counter() - t0
        answers[backend] = [
            [round(d, 9) for d in a.distances()] for a in ans
        ]
        rows.append(
            {
                "backend": backend,
                "replay_wall_s": wall,
                "modeled_amortized_s": report.amortized_s(),
                "gpu_s": report.gpu_seconds,
            }
        )
    assert answers["lockstep"] == answers["vectorized"]
    return rows


def test_sdist_backends(run_once):
    rows = run_once(_run)
    print("\n" + format_table(rows, "Extension: SDist backend comparison"))
    save_results("sdist_backends", rows)

    by = {r["backend"]: r for r in rows}
    # identical modelled GPU behaviour (same kernels, same transfers)
    ratio = by["vectorized"]["gpu_s"] / by["lockstep"]["gpu_s"]
    assert 0.5 < ratio < 2.0
