"""Fig. 7: amortised time vs the query parameter k (NY and USA).

Expected shape: G-Grid wins at every k; G-Grid and V-Tree grow with k
(larger search range); ROAD is nearly flat in k because its cost is
update-dominated.
"""

from repro.bench.experiments import fig7_vary_k
from repro.bench.reporting import format_table, save_results

K_GRID = (8, 16, 32, 64, 128, 256)


def test_fig7_vary_k(run_once):
    rows = run_once(fig7_vary_k, ("NY", "USA"), K_GRID)
    print("\n" + format_table(rows, "Fig. 7: varying k"))
    save_results("fig7_vary_k", rows)

    by = {(r["dataset"], r["k"], r["algorithm"]): r["amortized_s"] for r in rows}
    for dataset in ("NY", "USA"):
        for k in K_GRID:
            ggrid = by[(dataset, k, "G-Grid")]
            for baseline in ("V-Tree", "V-Tree (G)", "ROAD"):
                assert ggrid < by[(dataset, k, baseline)]
        # ROAD is nearly flat in k: its cost is update-dominated
        road_spread = by[(dataset, 256, "ROAD")] / by[(dataset, 8, "ROAD")]
        assert road_spread < 1.5
