"""Benchmark-suite configuration.

Every benchmark runs its experiment exactly once via
``benchmark.pedantic(..., rounds=1, iterations=1)`` — the experiments are
full workload replays whose cost is dominated by deterministic simulation,
so statistical repetition adds nothing but wall time.  Result tables are
printed (run pytest with ``-s`` to see them) and persisted under
``results/`` for EXPERIMENTS.md.
"""

import pytest


@pytest.fixture
def run_once(benchmark):
    """Run an experiment function once under the benchmark timer."""

    def runner(fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)

    return runner
