"""Extension bench: answer accuracy vs update frequency (Section II).

"The time interval between two location updates ... determines how far
away the actual kNNs could be from the kNNs computed at query time.  A
smaller t_delta produces more accurate results but also brings a higher
update workload."  This bench quantifies that trade-off against a dense
ground-truth trace.
"""

from repro.bench.experiments import accuracy_vs_frequency
from repro.bench.reporting import format_table, save_results


def test_accuracy_vs_frequency(run_once):
    rows = run_once(accuracy_vs_frequency, "FLA")
    print("\n" + format_table(rows, "Extension: answer accuracy vs update frequency"))
    save_results("accuracy_vs_frequency", rows)

    assert [r["frequency_hz"] for r in rows] == sorted(
        r["frequency_hz"] for r in rows
    )
    # more frequent updates -> more ingested work ...
    ingested = [r["updates_ingested"] for r in rows]
    assert ingested == sorted(ingested)
    # ... and at least as accurate answers at the extremes
    assert rows[-1]["recall_at_k"] >= rows[0]["recall_at_k"]
    assert rows[-1]["mean_distance_error"] <= rows[0]["mean_distance_error"] + 1e-9
    # the densest stream reproduces the truth almost exactly
    assert rows[-1]["recall_at_k"] > 0.95
