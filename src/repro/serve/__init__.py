"""The multi-tenant serving front door (DESIGN.md §14).

Everything between "a query arrives" and "the cluster executes an
epoch": per-tenant admission quotas and priority lanes
(:mod:`repro.serve.tenancy`), deadline budgets over a deterministic
service-time model (:mod:`repro.serve.deadline`), the strict-order
overload state machine (:mod:`repro.serve.shedding`), the asyncio
:class:`~repro.serve.frontdoor.FrontDoor` tying them together, seeded
open-loop load generation (:mod:`repro.serve.loadgen`) and the
chaos-under-overload proof harness (:mod:`repro.serve.harness`).

Example:
    >>> from repro.roadnet import grid_road_network
    >>> from repro.config import GGridConfig
    >>> from repro.core.ggrid import GGridIndex
    >>> from repro.core.messages import Message
    >>> from repro.mobility.workload import Query
    >>> from repro.roadnet.location import NetworkLocation
    >>> from repro.serve import FrontDoor, TenantPolicy
    >>> from repro.server.server import QueryServer
    >>> g = grid_road_network(4, 4, seed=3)
    >>> server = QueryServer(GGridIndex(g, GGridConfig()))
    >>> front = FrontDoor(server, [TenantPolicy("acme")], batch_size=4)
    >>> front.update(Message(0, 0, 0.0, 0.0))
    >>> ticket = front.submit_nowait("acme", Query(1.0, NetworkLocation(0, 0.0), 1))
    >>> front.drain()
    >>> [e.obj for e in ticket.result().entries]
    [0]
"""

from repro.serve.deadline import LatencyEstimator, RequestContext, ServiceModel
from repro.serve.frontdoor import FrontDoor, ServeInstruments, ServeTicket
from repro.serve.harness import (
    ServeReport,
    default_tenants,
    drive,
    replay_oracle,
    run_serve_replay,
)
from repro.serve.loadgen import (
    Arrival,
    ArrivalProfile,
    LoadGenerator,
    ServeWorkload,
    TenantSpec,
    diurnal_profile,
    make_serve_workload,
)
from repro.serve.shedding import (
    LEVEL_BROWNOUT,
    LEVEL_NORMAL,
    LEVEL_SHED_FREE,
    LEVEL_SHRINK,
    LEVELS,
    SHED_BROWNOUT,
    SHED_DEADLINE,
    SHED_QUOTA,
    SHED_REASONS,
    LoadShedder,
    ShedPolicy,
    level_name,
)
from repro.serve.tenancy import AdmissionController, TenantPolicy, TokenBucket

__all__ = [
    "AdmissionController",
    "Arrival",
    "ArrivalProfile",
    "FrontDoor",
    "LatencyEstimator",
    "LoadGenerator",
    "LoadShedder",
    "RequestContext",
    "ServeInstruments",
    "ServeReport",
    "ServeTicket",
    "ServeWorkload",
    "ServiceModel",
    "ShedPolicy",
    "TenantPolicy",
    "TenantSpec",
    "TokenBucket",
    "default_tenants",
    "diurnal_profile",
    "drive",
    "level_name",
    "make_serve_workload",
    "replay_oracle",
    "run_serve_replay",
    "LEVELS",
    "LEVEL_BROWNOUT",
    "LEVEL_NORMAL",
    "LEVEL_SHED_FREE",
    "LEVEL_SHRINK",
    "SHED_BROWNOUT",
    "SHED_DEADLINE",
    "SHED_QUOTA",
    "SHED_REASONS",
]
