"""Overload-under-chaos serve replays with a single-server oracle.

:func:`run_serve_replay` is the front door's end-to-end proof harness —
the serving analogue of :func:`~repro.chaos.harness.run_chaos_replay`.
It drives a generated multi-tenant arrival schedule (optionally at a
deliberate overload factor, optionally under a chaos
:class:`~repro.chaos.plan.FaultPlan`) through a
:class:`~repro.serve.frontdoor.FrontDoor` over a sharded cluster, then
replays the front door's execution log on a *fresh, fault-free, single*
G-Grid index and compares every admitted answer.  The contract it
encodes is graceful degradation:

* the replay **completes** under overload and faults — nothing leaks
  past admission control and the resilience ladder;
* a shed query is only ever **rejected**
  (:class:`~repro.errors.ShedError` with a reason), never answered
  wrongly — admitted answers are byte-identical to the oracle's;
* the paid tier's SLO **holds** while the free tier absorbs the
  shedding (the acceptance criterion the serve bench row gates);
* the run is **deterministic** — same seeds, same shed decisions, same
  report.

:func:`drive` is the replay loop itself, in open-loop (the schedule is
offered as generated — overload possible) or closed-loop form (a tenant
with an outstanding request stays quiet, so demand self-throttles —
the classic closed-loop blind spot the open-loop generator exists to
avoid).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.chaos.hub import chaos_context
from repro.chaos.plan import FaultPlan
from repro.config import GGridConfig
from repro.core.ggrid import GGridIndex
from repro.core.messages import Message
from repro.errors import ShedError
from repro.obs.hub import Observability
from repro.obs.slo import CLASS_FREE, CLASS_PAID
from repro.roadnet.datasets import load_dataset
from repro.roadnet.graph import RoadNetwork
from repro.serve.deadline import ServiceModel
from repro.serve.frontdoor import FrontDoor, ServeTicket
from repro.serve.loadgen import (
    ArrivalProfile,
    ServeWorkload,
    TenantSpec,
    diurnal_profile,
    make_serve_workload,
)
from repro.serve.shedding import ShedPolicy
from repro.serve.tenancy import TenantPolicy
from repro.server.metrics import TimingModel


#: The graceful-degradation acceptance configuration (the serve bench
#: scenario and the overload-chaos conformance test share it): a
#: diurnal rush over a modelled backend slow enough that 2x offered
#: load genuinely exceeds capacity, with shed thresholds placed well
#: under the paid latency objective so overload control engages before
#: the paid tier's budget is at risk.
OVERLOAD_PROFILE = "mixed"
OVERLOAD_FACTOR = 2.0


def overload_proof_kwargs() -> dict[str, Any]:
    """Keyword arguments for the canonical 2x-overload proof replay."""
    return {
        "tenants": overload_tenants(),
        "profile": diurnal_profile(40.0, peak=3.0),
        "overload": OVERLOAD_FACTOR,
        "num_objects": 48,
        "update_frequency": 0.25,
        "service_model": ServiceModel(base_s=0.02),
        "shed_policy": ShedPolicy(
            shed_free_backlog_s=0.1,
            shrink_backlog_s=0.3,
            brownout_backlog_s=0.8,
        ),
    }


def run_overload_proof(
    plan: FaultPlan | None = None, **overrides: Any
) -> ServeReport:
    """Run the acceptance replay: 2x diurnal overload, optional chaos.

    Callers assert :attr:`ServeReport.paid_slo_met`,
    :attr:`ServeReport.answers_match` and a non-empty shed ledger.
    """
    kwargs = overload_proof_kwargs()
    kwargs.update(overrides)
    return run_serve_replay(plan, **kwargs)


def overload_tenants() -> list[TenantSpec]:
    """The proof roster: free demand dominates, so class shedding can
    bring the cluster back under capacity without touching paid."""
    return [
        TenantSpec(
            TenantPolicy("acme", CLASS_PAID, rate=200.0, burst=50.0,
                         deadline_s=2.0),
            rate=2.0,
        ),
        TenantSpec(
            TenantPolicy("globex", CLASS_PAID, rate=200.0, burst=50.0,
                         deadline_s=2.0),
            rate=1.0,
        ),
        TenantSpec(
            TenantPolicy("hobby", CLASS_FREE, rate=50.0, burst=10.0,
                         deadline_s=4.0),
            rate=4.0,
        ),
        TenantSpec(
            TenantPolicy("trial", CLASS_FREE, rate=50.0, burst=10.0,
                         deadline_s=4.0),
            rate=2.0,
        ),
    ]


def default_tenants() -> list[TenantSpec]:
    """The standard serve roster: two paid tenants, two free."""
    return [
        TenantSpec(
            TenantPolicy("acme", CLASS_PAID, rate=200.0, burst=50.0,
                         deadline_s=2.0),
            rate=2.0,
        ),
        TenantSpec(
            TenantPolicy("globex", CLASS_PAID, rate=200.0, burst=50.0,
                         deadline_s=2.0),
            rate=1.0,
        ),
        TenantSpec(
            TenantPolicy("hobby", CLASS_FREE, rate=50.0, burst=10.0,
                         deadline_s=4.0),
            rate=2.0,
        ),
        TenantSpec(
            TenantPolicy("trial", CLASS_FREE, rate=50.0, burst=10.0,
                         deadline_s=4.0),
            rate=1.0,
        ),
    ]


@dataclass
class ServeReport:
    """Outcome of one front-door replay plus its oracle comparison."""

    overload: float
    closed_loop: bool
    n_updates: int
    n_arrivals: int
    #: closed-loop only: scheduled arrivals suppressed because the
    #: tenant's previous request was still outstanding
    suppressed: int
    #: the front door's deterministic serving outcome
    #: (:meth:`~repro.serve.frontdoor.FrontDoor.overload_summary`)
    summary: dict[str, Any]
    #: log positions whose answer differed from the single-server oracle
    mismatches: list[int] = field(default_factory=list)
    faults_injected: dict[str, int] = field(default_factory=dict)
    breaker_trips: int = 0
    plan_seed: int | None = None

    @property
    def answers_match(self) -> bool:
        return not self.mismatches

    @property
    def paid_slo_met(self) -> bool:
        paid = self.summary["slo"].get(CLASS_PAID)
        return True if paid is None else bool(paid["met"])

    def shed_total(self) -> int:
        return sum(self.summary["shed"].values())

    def as_dict(self) -> dict[str, Any]:
        """The deterministic summary (modelled-clock quantities only)."""
        return {
            "overload": self.overload,
            "closed_loop": self.closed_loop,
            "plan_seed": self.plan_seed,
            "n_updates": self.n_updates,
            "n_arrivals": self.n_arrivals,
            "suppressed": self.suppressed,
            "answers_match": self.answers_match,
            "mismatches": list(self.mismatches),
            "paid_slo_met": self.paid_slo_met,
            "faults_injected": dict(sorted(self.faults_injected.items())),
            "breaker_trips": self.breaker_trips,
            **self.summary,
        }


def drive(
    front: FrontDoor, workload: ServeWorkload, closed_loop: bool = False
) -> tuple[list[ServeTicket | ShedError], int]:
    """Replay one serve workload through a front door.

    Initial placements load first (as t=0 updates, the workload replay
    convention), then events run in time order with update-first ties.
    Open-loop offers every arrival; closed-loop suppresses an arrival
    whose tenant still has a request outstanding (or one completing
    after the scheduled time) — one virtual user per tenant.

    Returns:
        ``(outcomes, suppressed)`` — one
        :class:`~repro.serve.frontdoor.ServeTicket` or admission-time
        :class:`~repro.errors.ShedError` per offered arrival, plus the
        closed-loop suppression count.
    """
    outcomes: list[ServeTicket | ShedError] = []
    outstanding: dict[str, ServeTicket] = {}
    suppressed = 0
    for obj in sorted(workload.initial):
        loc = workload.initial[obj]
        front.update(Message(obj, loc.edge_id, loc.offset, 0.0))
    for kind, event in workload.events():
        if kind == "update":
            front.update(event)  # type: ignore[arg-type]
            continue
        arrival = event  # type: ignore[assignment]
        if closed_loop:
            previous = outstanding.get(arrival.tenant)
            if previous is not None and (
                not previous.done
                or (
                    previous.completed_t is not None
                    and previous.completed_t > arrival.t
                )
            ):
                suppressed += 1
                continue
        try:
            ticket = front.submit_nowait(arrival.tenant, arrival.query)
        except ShedError as err:
            outcomes.append(err)
            continue
        outcomes.append(ticket)
        if closed_loop:
            outstanding[arrival.tenant] = ticket
    front.drain()
    return outcomes, suppressed


def replay_oracle(
    graph: RoadNetwork,
    execution_log: list[tuple[Any, ...]],
    config: GGridConfig | None = None,
) -> list[list[float]]:
    """Re-execute a front door's log on a fresh fault-free single index.

    The log holds exactly what the front door asked its backend to do —
    ``("update", message)`` and ``("query", query, t_epoch)`` entries in
    execution order (shed queries never appear).  Sequential execution
    on one unsharded index is the reference the batching and cluster
    conformance suites are already pinned to, so its answers are the
    ground truth for "admitted answers are never wrong".

    Returns:
        The oracle's result distances (rounded to 9 decimals) for each
        query entry, in log order.
    """
    index = GGridIndex(graph, config)
    distances: list[list[float]] = []
    for entry in execution_log:
        if entry[0] == "update":
            index.ingest(entry[1])
        else:
            _, q, t_epoch = entry
            answer = index.knn(q.location, q.k, t_now=t_epoch)
            distances.append([round(d, 9) for d in answer.distances()])
    return distances


def run_serve_replay(
    plan: FaultPlan | None = None,
    dataset: str = "NY",
    *,
    tenants: list[TenantSpec] | None = None,
    profile: ArrivalProfile | None = None,
    overload: float = 1.0,
    closed_loop: bool = False,
    num_objects: int = 48,
    update_frequency: float = 0.5,
    num_shards: int = 2,
    batch_size: int | None = None,
    shed_policy: ShedPolicy | None = None,
    service_model: ServiceModel | None = None,
    workload_seed: int = 7,
    config: GGridConfig | None = None,
    timing: TimingModel | None = None,
    obs: Observability | None = None,
) -> ServeReport:
    """Drive one serve workload and prove graceful degradation.

    The serving stack (cluster + front door) runs under ``plan`` (when
    given) at ``overload`` times the roster's base arrival rates; the
    oracle replay runs *outside* the chaos context on a fresh single
    index, so injected faults can never leak into the reference answers.

    Returns:
        A :class:`ServeReport`; callers assert on
        :attr:`ServeReport.answers_match`,
        :attr:`ServeReport.paid_slo_met` and the shed counters.
    """
    from repro.cluster.router import ShardRouter

    graph = load_dataset(dataset)
    roster = tenants if tenants is not None else default_tenants()
    workload = make_serve_workload(
        graph,
        roster,
        num_objects=num_objects,
        profile=profile,
        update_frequency=update_frequency,
        overload=overload,
        seed=workload_seed,
    )

    def serve() -> tuple[FrontDoor, dict[str, int], int, int]:
        with ShardRouter(
            graph,
            config,
            num_shards=num_shards,
            timing=timing,
            obs=obs,
            replicas=False,
        ) as router:
            front = FrontDoor(
                router,
                [spec.policy for spec in roster],
                batch_size=batch_size,
                shed_policy=shed_policy,
                service_model=service_model,
                obs=obs,
            )
            _, suppressed = drive(front, workload, closed_loop)
            faults: dict[str, int] = {}
            trips = 0
            for shard in router.shards.values():
                injector = shard.index.fault_injector
                if injector is not None:
                    for kind, count in injector.counts.items():
                        faults[kind] = faults.get(kind, 0) + count
                trips += shard.index.breaker.trips
            return front, faults, trips, suppressed

    if plan is not None:
        with chaos_context(plan):
            front, faults, trips, suppressed = serve()
    else:
        front, faults, trips, suppressed = serve()

    oracle = replay_oracle(graph, front.execution_log, config)
    served = [
        [round(d, 9) for d in answer.distances()] for answer in front.answers
    ]
    mismatches = [
        i for i, (want, got) in enumerate(zip(oracle, served)) if want != got
    ]
    if len(oracle) != len(served):
        mismatches.append(min(len(oracle), len(served)))
    return ServeReport(
        overload=overload,
        closed_loop=closed_loop,
        n_updates=workload.num_updates + len(workload.initial),
        n_arrivals=workload.num_arrivals,
        suppressed=suppressed,
        summary=front.overload_summary(),
        mismatches=mismatches,
        faults_injected=faults,
        breaker_trips=trips,
        plan_seed=plan.seed if plan is not None else None,
    )
