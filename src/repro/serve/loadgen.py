"""Deterministic load generation for the serving front door.

The front door is exercised with **arrival schedules**, not workloads:
who asks, when, and from where.  This module builds them the same way
the mobility layer builds update streams — seeded, modelled-time,
reproducible to the bit:

* :class:`ArrivalProfile` — a piecewise-constant diurnal rate profile
  (quiet night, rush-hour burst, steady day) plus a hotspot fraction
  that skews query locations toward the network hotspots of
  :func:`~repro.mobility.patterns.hotspot_placements`;
* :class:`TenantSpec` — one tenant's demand: its serving
  :class:`~repro.serve.tenancy.TenantPolicy`, a base arrival rate and
  its ``k``;
* :class:`LoadGenerator` — per-tenant non-homogeneous Poisson arrivals
  by thinning, merged into one time-ordered schedule.  Identical seeds
  produce identical schedules (the determinism conformance test pins a
  golden one), and an ``overload`` factor scales every tenant's rate —
  the "2x offered load" knob the chaos-under-load proof turns;
* :class:`ServeWorkload` — the schedule merged with a MOTO update
  stream, replayable through a :class:`~repro.serve.frontdoor.FrontDoor`
  with the usual update-first tie ordering.

Arrivals are **open-loop**: the schedule does not react to serving
latency, which is exactly what makes overload possible (a closed-loop
driver self-throttles; the harness offers both — see
:func:`repro.serve.harness.drive`).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Iterator, Literal, Sequence

from repro.core.messages import Message
from repro.errors import ConfigError
from repro.mobility.moto import MotoGenerator
from repro.mobility.patterns import hotspot_placements
from repro.mobility.workload import Query, random_locations
from repro.roadnet.graph import RoadNetwork
from repro.roadnet.location import NetworkLocation
from repro.serve.tenancy import TenantPolicy


@dataclass(frozen=True)
class ArrivalProfile:
    """When and where queries arrive.

    Attributes:
        phases: piecewise-constant diurnal profile,
            ``((until_t, rate_multiplier), ...)`` with strictly
            increasing phase ends — the same shape as
            :class:`~repro.mobility.patterns.RushHourGenerator`'s
            frequency profile.  The last phase end is the schedule
            duration.
        hotspot_fraction: fraction of query locations drawn from the
            hotspot neighbourhoods instead of uniformly at random.
        num_hotspots: how many network hotspots to cluster around.
        hotspot_spread: network radius of each hotspot neighbourhood.
    """

    phases: tuple[tuple[float, float], ...] = ((60.0, 1.0),)
    hotspot_fraction: float = 0.0
    num_hotspots: int = 3
    hotspot_spread: float = 2.0

    def __post_init__(self) -> None:
        if not self.phases:
            raise ConfigError("profile must have at least one phase")
        last = 0.0
        for until, mult in self.phases:
            if until <= last:
                raise ConfigError("profile phase ends must strictly increase")
            if mult <= 0:
                raise ConfigError("phase multipliers must be positive")
            last = until
        if not 0.0 <= self.hotspot_fraction <= 1.0:
            raise ConfigError(
                f"hotspot_fraction must be in [0, 1], "
                f"got {self.hotspot_fraction}"
            )
        if self.num_hotspots < 1:
            raise ConfigError("need at least one hotspot")

    @property
    def duration(self) -> float:
        return self.phases[-1][0]

    @property
    def peak_multiplier(self) -> float:
        return max(mult for _, mult in self.phases)

    def multiplier_at(self, t: float) -> float:
        """The rate multiplier in force at modelled time ``t``."""
        for until, mult in self.phases:
            if t < until:
                return mult
        return self.phases[-1][1]


def diurnal_profile(
    duration: float, peak: float = 3.0, quiet: float = 0.3
) -> ArrivalProfile:
    """A canned day: quiet night, morning rush, steady day, evening rush.

    The four phases split ``duration`` evenly; rushes run at ``peak``
    times the base rate, the night at ``quiet`` times.
    """
    if duration <= 0:
        raise ConfigError(f"duration must be positive, got {duration}")
    quarter = duration / 4.0
    return ArrivalProfile(
        phases=(
            (quarter, quiet),
            (2 * quarter, peak),
            (3 * quarter, 1.0),
            (duration, peak),
        )
    )


@dataclass(frozen=True)
class TenantSpec:
    """One tenant's demand curve.

    Attributes:
        policy: the serving contract (class, quota, deadline).
        rate: base arrival rate in queries per modelled second (scaled
            by the profile's diurnal multiplier and the generator's
            ``overload`` factor).
        k: the kNN ``k`` this tenant asks for.
    """

    policy: TenantPolicy
    rate: float = 2.0
    k: int = 8

    def __post_init__(self) -> None:
        if self.rate <= 0:
            raise ConfigError(f"rate must be positive, got {self.rate}")
        if self.k < 1:
            raise ConfigError(f"k must be >= 1, got {self.k}")


@dataclass(frozen=True, slots=True)
class Arrival:
    """One scheduled query: who asks what, when."""

    t: float
    tenant: str
    query: Query


class LoadGenerator:
    """Seeded per-tenant Poisson arrivals over a diurnal profile.

    Each tenant gets its own deterministic RNG stream (derived from the
    generator seed and the tenant's roster position), so adding a tenant
    does not perturb the others' schedules.  Arrivals are drawn by
    thinning: candidate points at the tenant's peak rate, kept with
    probability ``multiplier(t) / peak`` — the textbook exact sampler
    for a non-homogeneous Poisson process.
    """

    def __init__(
        self,
        graph: RoadNetwork,
        tenants: Sequence[TenantSpec],
        profile: ArrivalProfile | None = None,
        seed: int = 0,
    ) -> None:
        if not tenants:
            raise ConfigError("load generation needs at least one tenant")
        names = [spec.policy.name for spec in tenants]
        if len(set(names)) != len(names):
            raise ConfigError(f"duplicate tenant names in {names}")
        self.graph = graph
        self.tenants = list(tenants)
        self.profile = profile or ArrivalProfile()
        self.seed = seed
        self._hot_pool: list[NetworkLocation] | None = None

    def _hotspot_pool(self) -> list[NetworkLocation]:
        if self._hot_pool is None:
            placements = hotspot_placements(
                self.graph,
                num_objects=256,
                num_hotspots=self.profile.num_hotspots,
                spread=self.profile.hotspot_spread,
                seed=self.seed + 7919,
            )
            self._hot_pool = [placements[i] for i in sorted(placements)]
        return self._hot_pool

    def _tenant_arrivals(
        self, position: int, spec: TenantSpec, overload: float
    ) -> list[Arrival]:
        profile = self.profile
        rng = random.Random(self.seed * 10007 + position)
        peak_rate = spec.rate * overload * profile.peak_multiplier
        hot = self._hotspot_pool() if profile.hotspot_fraction > 0 else []
        out: list[Arrival] = []
        t = 0.0
        while True:
            t += rng.expovariate(peak_rate)
            if t >= profile.duration:
                break
            if (
                rng.random() * profile.peak_multiplier
                > profile.multiplier_at(t)
            ):
                continue  # thinned: below the instantaneous rate
            if hot and rng.random() < profile.hotspot_fraction:
                location = hot[rng.randrange(len(hot))]
            else:
                edge = rng.randrange(self.graph.num_edges)
                location = NetworkLocation(
                    edge, rng.uniform(0.0, self.graph.edge(edge).weight)
                )
            out.append(
                Arrival(t, spec.policy.name, Query(t, location, spec.k))
            )
        return out

    def arrivals(self, overload: float = 1.0) -> list[Arrival]:
        """The merged time-ordered schedule at ``overload`` times the
        base rates (deterministic for a fixed seed and roster)."""
        if overload <= 0:
            raise ConfigError(f"overload must be positive, got {overload}")
        merged: list[Arrival] = []
        for position, spec in enumerate(self.tenants):
            merged.extend(self._tenant_arrivals(position, spec, overload))
        # tenant name breaks timestamp ties so the merge is total-ordered
        merged.sort(key=lambda a: (a.t, a.tenant))
        return merged


@dataclass
class ServeWorkload:
    """An arrival schedule merged with a mobility update stream.

    The front-door analogue of :class:`~repro.mobility.workload.Workload`
    — same initial-load and update-first tie semantics, but queries
    carry their tenant.
    """

    initial: dict[int, NetworkLocation]
    updates: list[Message] = field(default_factory=list)
    arrivals: list[Arrival] = field(default_factory=list)

    @property
    def num_updates(self) -> int:
        return len(self.updates)

    @property
    def num_arrivals(self) -> int:
        return len(self.arrivals)

    def events(
        self,
    ) -> Iterator[tuple[Literal["update", "arrival"], Message | Arrival]]:
        """Merge updates and arrivals, time-ordered, update-first ties."""
        ui = ai = 0
        while ui < len(self.updates) or ai < len(self.arrivals):
            take_update = ai >= len(self.arrivals) or (
                ui < len(self.updates)
                and self.updates[ui].t <= self.arrivals[ai].t
            )
            if take_update:
                yield "update", self.updates[ui]
                ui += 1
            else:
                yield "arrival", self.arrivals[ai]
                ai += 1


def make_serve_workload(
    graph: RoadNetwork,
    tenants: Sequence[TenantSpec],
    num_objects: int = 64,
    profile: ArrivalProfile | None = None,
    update_frequency: float = 0.5,
    overload: float = 1.0,
    seed: int = 0,
) -> ServeWorkload:
    """The standard serve experiment: MOTO updates + tenant arrivals."""
    profile = profile or ArrivalProfile()
    gen = MotoGenerator(
        graph, num_objects, update_frequency=update_frequency, seed=seed
    )
    initial = gen.initial_placements()
    updates = list(gen.messages(profile.duration))
    arrivals = LoadGenerator(graph, tenants, profile, seed=seed).arrivals(
        overload=overload
    )
    return ServeWorkload(initial=initial, updates=updates, arrivals=arrivals)


__all__ = [
    "Arrival",
    "ArrivalProfile",
    "LoadGenerator",
    "ServeWorkload",
    "TenantSpec",
    "diurnal_profile",
    "make_serve_workload",
    "random_locations",
]
