"""Per-tenant admission control: token-bucket quotas and priority lanes.

The front door (DESIGN.md §14) serves many tenants from one cluster; a
single tenant must not be able to starve the rest by offering unbounded
load.  Admission is the first stage of the shed order:

* every tenant carries a :class:`TenantPolicy` — its priority class
  (``paid`` / ``free``), a token-bucket query quota and a default
  deadline budget;
* the :class:`AdmissionController` holds one :class:`TokenBucket` per
  tenant over the **modelled clock** (arrival timestamps), so admission
  outcomes are deterministic for a deterministic arrival schedule;
* a tenant with an empty bucket is refused with a
  :class:`~repro.errors.ShedError` of reason ``"quota"`` — loudly,
  before any index work happens.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError, ShedError
from repro.obs.slo import CLASS_PAID, TENANT_CLASSES

#: shed reason for an empty admission quota (see repro.serve.shedding)
SHED_QUOTA = "quota"


class TokenBucket:
    """The classic token bucket, refilled by modelled-time progress.

    ``rate`` tokens accrue per modelled second up to ``burst``; one
    token admits one query.  Time is never rewound: a take at an earlier
    timestamp than the last refill simply sees the bucket as it was
    (replays feed monotone arrival times anyway).
    """

    __slots__ = ("rate", "burst", "tokens", "refilled_at")

    def __init__(self, rate: float, burst: float) -> None:
        if rate <= 0:
            raise ConfigError(f"rate must be positive, got {rate}")
        if burst < 1:
            raise ConfigError(f"burst must be >= 1, got {burst}")
        self.rate = rate
        self.burst = float(burst)
        self.tokens = float(burst)
        self.refilled_at = 0.0

    def take(self, now: float) -> bool:
        """Consume one token at modelled time ``now`` if available."""
        if now > self.refilled_at:
            self.tokens = min(
                self.burst, self.tokens + (now - self.refilled_at) * self.rate
            )
            self.refilled_at = now
        if self.tokens >= 1.0:
            self.tokens -= 1.0
            return True
        return False


@dataclass(frozen=True)
class TenantPolicy:
    """One tenant's serving contract.

    Attributes:
        name: the tenant id queries arrive under.
        tenant_class: priority class — one of
            :data:`~repro.obs.slo.TENANT_CLASSES` (``paid`` drains
            first and is never shed by the overload state machine).
        rate: admission quota in queries per modelled second.
        burst: token-bucket depth (peak back-to-back admissions).
        deadline_s: default per-query deadline budget in modelled
            seconds; a query whose estimated completion exceeds it is
            shed with reason ``"deadline"`` before fan-out.
    """

    name: str
    tenant_class: str = CLASS_PAID
    rate: float = 100.0
    burst: float = 20.0
    deadline_s: float = 0.5

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigError("tenant name must be non-empty")
        if self.tenant_class not in TENANT_CLASSES:
            raise ConfigError(
                f"tenant_class must be one of {TENANT_CLASSES}, "
                f"got {self.tenant_class!r}"
            )
        if self.deadline_s <= 0:
            raise ConfigError(
                f"deadline_s must be positive, got {self.deadline_s}"
            )
        # rate/burst are validated by the bucket they configure
        TokenBucket(self.rate, self.burst)

    def make_bucket(self) -> TokenBucket:
        return TokenBucket(self.rate, self.burst)


class AdmissionController:
    """Token-bucket admission over a fixed tenant roster."""

    def __init__(self, tenants: list[TenantPolicy]) -> None:
        if not tenants:
            raise ConfigError("admission needs at least one tenant")
        names = [t.name for t in tenants]
        if len(set(names)) != len(names):
            raise ConfigError(f"duplicate tenant names in {names}")
        self.tenants: dict[str, TenantPolicy] = {t.name: t for t in tenants}
        self._buckets: dict[str, TokenBucket] = {
            t.name: t.make_bucket() for t in tenants
        }

    def policy(self, tenant: str) -> TenantPolicy:
        policy = self.tenants.get(tenant)
        if policy is None:
            raise ConfigError(
                f"unknown tenant {tenant!r} (have {sorted(self.tenants)})"
            )
        return policy

    def admit(self, tenant: str, now: float) -> TenantPolicy:
        """Consume one quota token for ``tenant`` at modelled ``now``.

        Returns:
            The tenant's policy, for the caller's lane/deadline choices.

        Raises:
            ShedError: reason ``"quota"`` when the bucket is empty.
            ConfigError: unknown tenant.
        """
        policy = self.policy(tenant)
        if not self._buckets[tenant].take(now):
            raise ShedError(tenant, policy.tenant_class, SHED_QUOTA)
        return policy
