"""The asyncio multi-tenant front door over a cluster (or single server).

:class:`FrontDoor` is the serving entry point DESIGN.md §14 describes.
It wraps any backend with the :class:`~repro.server.server.QueryServer`
shape (``update(message, report)`` / ``query_batch(queries, report,
trace_parent)`` — a lone server or a
:class:`~repro.cluster.router.ShardRouter`) and adds the multi-tenant
serving concerns the backend deliberately does not know about:

* **admission** — per-tenant token-bucket quotas and priority classes
  (:mod:`repro.serve.tenancy`);
* **deadline budgets** — each admitted query carries a
  :class:`~repro.serve.deadline.RequestContext` (absolute deadline +
  ``traceparent``); a query that cannot meet its budget is shed before
  scatter-gather fan-out;
* **overload control** — the :class:`~repro.serve.shedding.LoadShedder`
  state machine, driven by the modelled backlog and the paid class's
  short-window burn rate, degrading in strict order (reject free tier →
  shrink epochs → brownout the backend's GPU rung);
* **priority lanes** — epochs fill from the paid lane first, FIFO
  within a lane.

Everything is decided on the **modelled clock** (arrival timestamps and
the deterministic :class:`~repro.serve.deadline.ServiceModel`), so a
replay sheds the exact same queries every run — the property the serve
bench scenario's trajectory gate and the chaos-under-load conformance
test both rely on.  The queueing model is open-loop: the front door
keeps a modelled **busy horizon** (``busy_until``); an epoch starts at
``max(t_epoch, busy_until)``, every member completes together when the
epoch's summed service time elapses, and serve latency is completion
minus arrival.  The backlog (``busy_until - now``) is the overload
signal.  Queue delay shapes latency and shedding only — queries still
execute against the index state of their arrival epoch, so admitted
answers stay byte-identical to an unloaded single server's.

The asyncio surface is thin by design: :meth:`FrontDoor.submit_nowait`
is the deterministic synchronous core returning a :class:`ServeTicket`;
:meth:`FrontDoor.submit` awaits the ticket, so concurrent submitting
coroutines park until the epoch that carries their query completes (or
sheds it, raising :class:`~repro.errors.ShedError` at the await site).
"""

from __future__ import annotations

import asyncio
from typing import Any, Sequence

from repro.core.knn import KnnAnswer
from repro.core.messages import Message
from repro.errors import ConfigError, QueryError, ShedError
from repro.mobility.workload import Query
from repro.obs.hub import Observability, default_observability
from repro.obs.metrics import log_scale_buckets
from repro.obs.slo import (
    CLASS_FREE,
    CLASS_PAID,
    CLASS_SUB,
    SERVE_SLO_POLICY,
    SloTracker,
)
from repro.serve.deadline import LatencyEstimator, RequestContext, ServiceModel
from repro.serve.shedding import (
    LEVEL_BROWNOUT,
    SHED_BROWNOUT,
    SHED_DEADLINE,
    LoadShedder,
    ShedPolicy,
    level_name,
)
from repro.serve.tenancy import AdmissionController, TenantPolicy
from repro.server.metrics import ReplayReport, TimingModel


def _trace_id_of(traceparent: str | None) -> str | None:
    """The 32-hex trace id inside an encoded traceparent header."""
    if traceparent is None:
        return None
    return traceparent.split("-")[1]


class ServeInstruments:
    """Metric handles for the front door's serving path, resolved once.

    The ``repro_shed_total{reason,class}`` /
    ``repro_admitted_total{class}`` counters are part of the public
    metrics contract (README.md §Observability): every admission outcome
    lands in exactly one of them.
    """

    def __init__(self, obs: Observability) -> None:
        registry = obs.registry
        self.admitted = registry.counter(
            "repro_admitted_total",
            help="Queries admitted past quota/deadline/overload checks.",
            labelnames=("class",),
        )
        self.shed = registry.counter(
            "repro_shed_total",
            help="Queries shed, by reason (quota|deadline|brownout) "
            "and tenant class.",
            labelnames=("reason", "class"),
        )
        self.backlog = registry.gauge(
            "repro_serve_backlog_seconds",
            help="Modelled backlog: busy horizon minus the arrival clock.",
        ).default()
        self.level = registry.gauge(
            "repro_serve_overload_level",
            help="Overload state-machine level "
            "(0 normal, 1 shed_free, 2 shrink, 3 brownout).",
        ).default()
        self.latency = registry.histogram(
            "repro_serve_latency_seconds",
            help="Modelled serve latency (queue wait + service time), "
            "per tenant class.",
            labelnames=("class",),
            buckets=log_scale_buckets(1e-3, 60.0),
        )
        self.epochs = registry.counter(
            "repro_serve_epochs_total",
            help="Epochs dispatched by the front door.",
        ).default()


class ServeTicket:
    """One admitted query's pending outcome.

    Resolved by the epoch flush that carries the query — with its
    :class:`~repro.core.knn.KnnAnswer`, or with a
    :class:`~repro.errors.ShedError` when the deadline expired while the
    query sat in its lane.  ``await ticket.wait()`` parks a coroutine
    until then; :meth:`result` is the synchronous accessor.
    """

    __slots__ = (
        "query",
        "context",
        "completed_t",
        "_answer",
        "_error",
        "done",
        "_waiters",
    )

    def __init__(self, query: Query, context: RequestContext) -> None:
        self.query = query
        self.context = context
        #: modelled completion time of the epoch that answered this
        #: ticket (``None`` while pending or when shed)
        self.completed_t: float | None = None
        self._answer: KnnAnswer | None = None
        self._error: ShedError | None = None
        self.done = False
        self._waiters: list[asyncio.Future[KnnAnswer]] = []

    def _resolve(self, answer: KnnAnswer) -> None:
        self._answer = answer
        self._finish()

    def _reject(self, error: ShedError) -> None:
        self._error = error
        self._finish()

    def _finish(self) -> None:
        self.done = True
        waiters, self._waiters = self._waiters, []
        for fut in waiters:
            if fut.done():
                continue
            if self._error is not None:
                fut.set_exception(self._error)
            else:
                fut.set_result(self._answer)  # type: ignore[arg-type]

    def result(self) -> KnnAnswer:
        """The answer (raises the ShedError for a ticket shed in-lane).

        Raises:
            QueryError: the ticket is still pending (its epoch has not
                been flushed yet).
        """
        if not self.done:
            raise QueryError(
                "ticket is still pending — flush() or drain() the front door"
            )
        if self._error is not None:
            raise self._error
        assert self._answer is not None
        return self._answer

    async def wait(self) -> KnnAnswer:
        """Await resolution (requires a running event loop)."""
        if self.done:
            return self.result()
        fut: asyncio.Future[KnnAnswer] = (
            asyncio.get_running_loop().create_future()
        )
        self._waiters.append(fut)
        return await fut


class FrontDoor:
    """Admission, deadlines, priority lanes and overload control.

    Args:
        backend: anything with the server shape — ``update(message,
            report)`` and ``query_batch(queries, report, trace_parent=
            None)``.  A ``set_brownout(active)`` method (the cluster
            router) or an ``index`` attribute (a lone server) lets the
            brownout level reach the resilience ladder.
        tenants: the tenant roster (at least one
            :class:`~repro.serve.tenancy.TenantPolicy`).
        batch_size: epoch capacity before overload shrinking; defaults
            to the backend's batch policy (or 8).
        shed_policy: overload thresholds (:class:`ShedPolicy`).
        service_model: deterministic per-answer service seconds.
        estimator: the deadline check's service-time forecast.
        obs: observability bundle (``None`` falls back to the
            process-wide default, like the server and router do).
    """

    def __init__(
        self,
        backend: Any,
        tenants: Sequence[TenantPolicy],
        *,
        batch_size: int | None = None,
        shed_policy: ShedPolicy | None = None,
        service_model: ServiceModel | None = None,
        estimator: LatencyEstimator | None = None,
        obs: Observability | None = None,
    ) -> None:
        for required in ("update", "query_batch"):
            if not callable(getattr(backend, required, None)):
                raise ConfigError(
                    f"front-door backend must provide {required}(); "
                    f"got {type(backend).__name__}"
                )
        self.backend = backend
        if batch_size is None:
            policy = getattr(backend, "batch", None)
            batch_size = getattr(policy, "batch_size", 8)
        if batch_size < 1:
            raise ConfigError(f"batch_size must be >= 1, got {batch_size}")
        self.batch_size = batch_size
        self.admission = AdmissionController(list(tenants))
        self.shedder = LoadShedder(shed_policy)
        self.service_model = service_model or ServiceModel()
        self.estimator = estimator or LatencyEstimator()
        self.obs = obs if obs is not None else default_observability()
        self._inst = (
            ServeInstruments(self.obs) if self.obs is not None else None
        )
        registry = self.obs.registry if self.obs is not None else None
        self.slo = SloTracker(SERVE_SLO_POLICY, registry)
        #: the short burn-rate window driving the overload machine
        self._burn_window = SERVE_SLO_POLICY.windows_s[0]
        timing = getattr(backend, "timing", None) or TimingModel()
        #: backend cost accounting — all epochs/updates charge here, so
        #: counter-identity against an unbatched oracle stays checkable
        self.backend_report = ReplayReport(
            index_name=getattr(backend, "name", type(backend).__name__),
            timing=timing,
        )
        #: modelled clocks: the latest arrival seen, and the busy horizon
        self.now = 0.0
        self.busy_until = 0.0
        #: priority lanes (paid drains first), FIFO within a lane
        self._lanes: dict[str, list[ServeTicket]] = {
            CLASS_PAID: [],
            CLASS_FREE: [],
        }
        self._brownout_applied = False
        #: what actually executed, in order — the oracle replays this
        #: (``("update", message)`` / ``("query", query, t_epoch)``)
        self.execution_log: list[tuple[Any, ...]] = []
        #: the served answers, aligned with the log's query entries (the
        #: harness compares these against the oracle's)
        self.answers: list[KnnAnswer] = []
        # -- deterministic outcome counters (the bench scenario's rows)
        self.admitted: dict[str, int] = {}
        self.shed: dict[tuple[str, str], int] = {}
        self.epochs = 0
        self.shrunk_epochs = 0
        self.brownout_epochs = 0
        self.max_level = 0
        #: the third request shape (DESIGN.md §15): subscription refresh
        #: ticks priced on the same busy horizon as interactive epochs
        self.subscriptions = None
        self.sub_ticks = 0
        self.sub_refreshes = 0

    # ------------------------------------------------------------------
    # admission (the synchronous deterministic core)
    # ------------------------------------------------------------------
    def submit_nowait(self, tenant: str, q: Query) -> ServeTicket:
        """Admit (or shed) one query at its arrival time ``q.t``.

        The shed order is checked exactly as DESIGN.md §14 lists it:
        overload class shed, then quota, then deadline.  An admitted
        query joins its class lane; when the pending count reaches the
        (possibly shrunk) epoch size the epoch flushes inline.

        Raises:
            ShedError: reason ``"brownout"`` (free tier under overload),
                ``"quota"`` (empty token bucket) or ``"deadline"`` (the
                budget cannot cover the predicted queue wait).
        """
        now = q.t
        self.now = max(self.now, now)
        self._assess(now)
        policy = self.admission.policy(tenant)
        cls = policy.tenant_class
        try:
            if self.shedder.shedding_free and cls == CLASS_FREE:
                raise ShedError(tenant, cls, SHED_BROWNOUT)
            self.admission.admit(tenant, now)
            deadline_t = now + policy.deadline_s
            queued = self._pending_count()
            predicted = (
                max(now, self.busy_until)
                + (queued + 1) * self.estimator.estimate(cls)
            )
            if predicted > deadline_t:
                raise ShedError(tenant, cls, SHED_DEADLINE)
        except ShedError as err:
            self._count_shed(err)
            raise
        context = RequestContext(
            tenant, cls, deadline_t, traceparent=self._request_trace(tenant, q)
        )
        ticket = ServeTicket(q, context)
        self._lanes[cls].append(ticket)
        self.admitted[cls] = self.admitted.get(cls, 0) + 1
        if self._inst is not None:
            self._inst.admitted.labels(**{"class": cls}).inc()
        if self._pending_count() >= self.shedder.effective_batch_size(
            self.batch_size
        ):
            self.flush()
        return ticket

    def _request_trace(self, tenant: str, q: Query) -> str | None:
        """Open (and immediately close) the request's admission span;
        its encoded context rides the :class:`RequestContext` so the
        epoch that executes the query can join the request's trace."""
        tracer = self.obs.tracer if self.obs is not None else None
        if tracer is None:
            return None
        with tracer.activate(), tracer.span(
            "serve.request", {"tenant": tenant, "k": q.k, "t": q.t}
        ) as sp:
            return sp.context.encode()

    def _count_shed(self, err: ShedError) -> None:
        key = (err.reason, err.tenant_class)
        self.shed[key] = self.shed.get(key, 0) + 1
        if self._inst is not None:
            self._inst.shed.labels(
                **{"reason": err.reason, "class": err.tenant_class}
            ).inc()

    def _pending_count(self) -> int:
        return sum(len(lane) for lane in self._lanes.values())

    # ------------------------------------------------------------------
    # overload assessment
    # ------------------------------------------------------------------
    def backlog_s(self, now: float) -> float:
        """Modelled backlog delay at ``now`` (0 when the backend is idle)."""
        return max(0.0, self.busy_until - now)

    def _assess(self, now: float) -> int:
        backlog = self.backlog_s(now)
        burn = self.slo.burn_rate(CLASS_PAID, self._burn_window)
        level = self.shedder.assess(backlog, burn)
        self.max_level = max(self.max_level, level)
        browned = self.shedder.browned_out
        if browned != self._brownout_applied:
            self._apply_brownout(browned)
        if self._inst is not None:
            self._inst.backlog.set(backlog)
            self._inst.level.set(level)
        return level

    def _apply_brownout(self, active: bool) -> None:
        self._brownout_applied = active
        planner = getattr(self.backend, "planner", None)
        if planner is not None:
            # the adaptive planner pins queries to the primary during an
            # overload episode (no speculative TEN rebuilds; DESIGN.md §17)
            planner.set_brownout(active)
        setter = getattr(self.backend, "set_brownout", None)
        if callable(setter):
            setter(active)
            return
        index = getattr(self.backend, "index", None)
        if index is not None:
            index.brownout = active

    # ------------------------------------------------------------------
    # updates
    # ------------------------------------------------------------------
    def update(self, message: Message) -> None:
        """Route one location update (updates close the current epoch,
        the same ordering contract the server's replay keeps)."""
        self.flush()
        self.now = max(self.now, message.t)
        self.backend.update(message, self.backend_report)
        self.execution_log.append(("update", message))

    # ------------------------------------------------------------------
    # subscription ticks (the third request shape, DESIGN.md §15)
    # ------------------------------------------------------------------
    def attach_subscriptions(self, manager: Any) -> None:
        """Register a standing-query layer whose ticks this front door
        prices.  The manager must wrap the *same* backend — its refresh
        queries have to observe the index state the admitted epochs do."""
        if getattr(manager, "backend", None) is not self.backend:
            raise ConfigError(
                "subscription manager must wrap the front door's backend"
            )
        self.subscriptions = manager

    def tick(self, t_now: float):
        """Run one subscription refresh tick behind interactive traffic.

        Pending epochs flush first (the same updates-close-epochs
        ordering contract), then the attached manager refreshes its
        dirty subscribers at ``t_now``.  The refresh work joins the
        modelled queue: it starts no earlier than the busy horizon,
        advances it by the summed service time of the refresh answers,
        and each refreshed subscriber scores one ``sub``-class SLO
        sample (latency = completion minus tick arrival).
        """
        if self.subscriptions is None:
            raise ConfigError(
                "no subscription manager attached; call "
                "attach_subscriptions() first"
            )
        self.flush()
        self.now = max(self.now, t_now)
        self._assess(self.now)
        result = self.subscriptions.tick(self.now)
        self.sub_ticks += 1
        self.sub_refreshes += len(result.refreshed)
        if result.refreshed:
            t_start = max(self.now, self.busy_until)
            completion = t_start + sum(
                self.service_model.service_s(a) for a in result.answers
            )
            self.busy_until = completion
            latency = completion - self.now
            for _ in result.refreshed:
                self.slo.record(CLASS_SUB, latency, completion)
                if self._inst is not None:
                    self._inst.latency.labels(
                        **{"class": CLASS_SUB}
                    ).observe(latency)
        return result

    # ------------------------------------------------------------------
    # epoch dispatch
    # ------------------------------------------------------------------
    def flush(self) -> None:
        """Dispatch every pending query, one epoch at a time.

        Each epoch fills from the paid lane first, up to the overload
        machine's effective epoch size.  A member whose deadline has
        already expired when the epoch would start is shed *before*
        dispatch — the batch executes without it, so batch cost
        attribution is identical to a batch that never contained it.
        """
        while self._pending_count():
            self._run_epoch(self._take_epoch())

    def _take_epoch(self) -> list[ServeTicket]:
        size = self.shedder.effective_batch_size(self.batch_size)
        if size < self.batch_size:
            self.shrunk_epochs += 1
        members: list[ServeTicket] = []
        for cls in (CLASS_PAID, CLASS_FREE):
            lane = self._lanes[cls]
            while lane and len(members) < size:
                members.append(lane.pop(0))
        return members

    def _run_epoch(self, members: list[ServeTicket]) -> None:
        t_epoch = max(m.query.t for m in members)
        t_start = max(t_epoch, self.busy_until)
        ready: list[ServeTicket] = []
        for m in members:
            context = m.context
            if context.deadline_t < t_start:
                # the deadline expired while the query sat in its lane:
                # shed it now, run the epoch without it
                err = ShedError(
                    context.tenant, context.tenant_class, SHED_DEADLINE
                )
                self._count_shed(err)
                m._reject(err)
            else:
                ready.append(m)
        if not ready:
            return
        queries = [m.query for m in ready]
        # the epoch joins the oldest member's request trace (one parent
        # per tree); the other members' request spans stand alone
        trace_parent = ready[0].context.traceparent
        answers = self.backend.query_batch(
            queries, self.backend_report, trace_parent=trace_parent
        )
        service = [self.service_model.service_s(a) for a in answers]
        completion = t_start + sum(service)
        self.busy_until = completion
        self.epochs += 1
        if self.shedder.browned_out:
            self.brownout_epochs += 1
        for m, answer, service_s in zip(ready, answers, service):
            context = m.context
            m.completed_t = completion
            latency = completion - m.query.t
            self.slo.record(
                context.tenant_class,
                latency,
                completion,
                trace_id=_trace_id_of(context.traceparent),
            )
            self.estimator.observe(context.tenant_class, service_s)
            if self._inst is not None:
                self._inst.latency.labels(
                    **{"class": context.tenant_class}
                ).observe(latency)
            self.execution_log.append(("query", m.query, t_epoch))
            self.answers.append(answer)
            m._resolve(answer)
        if self._inst is not None:
            self._inst.epochs.inc()

    def drain(self) -> None:
        """Flush everything still pending (end of a replay)."""
        self.flush()

    # ------------------------------------------------------------------
    # the asyncio surface
    # ------------------------------------------------------------------
    async def submit(self, tenant: str, q: Query) -> KnnAnswer:
        """Admit one query and await its answer.

        A shed query raises :class:`~repro.errors.ShedError` here —
        either immediately (quota/deadline/overload at admission) or at
        epoch time (deadline expired in the lane).
        """
        ticket = self.submit_nowait(tenant, q)
        return await ticket.wait()

    async def submit_update(self, message: Message) -> None:
        """Async counterpart of :meth:`update`."""
        self.update(message)
        await asyncio.sleep(0)

    async def drain_async(self) -> None:
        """Async counterpart of :meth:`drain`."""
        self.drain()
        await asyncio.sleep(0)

    # ------------------------------------------------------------------
    # reporting
    # ------------------------------------------------------------------
    def overload_summary(self) -> dict[str, Any]:
        """Deterministic serving outcome (the bench row's raw material)."""
        return {
            "admitted": dict(sorted(self.admitted.items())),
            "shed": {
                f"{reason}:{cls}": n
                for (reason, cls), n in sorted(self.shed.items())
            },
            "epochs": self.epochs,
            "shrunk_epochs": self.shrunk_epochs,
            "brownout_epochs": self.brownout_epochs,
            "max_level": self.max_level,
            "max_level_name": level_name(self.max_level),
            "level_transitions": {
                f"{level_name(a)}->{level_name(b)}": n
                for (a, b), n in sorted(self.shedder.transitions.items())
            },
            "slo": self.slo.report(),
            "plan": (
                self.backend.planner.summary()
                if getattr(self.backend, "planner", None) is not None
                else None
            ),
        }
