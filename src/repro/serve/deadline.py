"""Deadline budgets and the deterministic service-time model behind them.

A query arrives with a **deadline budget** (modelled seconds from its
arrival timestamp).  The front door must decide *before* scatter-gather
fan-out whether the remaining budget can cover the expected queue wait
plus service time; if it cannot, the query is shed with reason
``"deadline"`` — refusing early is strictly cheaper than answering late.

The decision inputs must be **deterministic** (the serve scenario rides
the perf-trajectory regression gate, and chaos replays must shed the
exact same queries on every run), so this module models service time
from the *deterministic* cost counters every
:class:`~repro.core.knn.KnnAnswer` carries — simulated GPU seconds,
candidate/cleaning/refinement counts, modelled retry backoff — never
from measured Python wall time:

* :class:`ServiceModel` — per-answer modelled service seconds;
* :class:`LatencyEstimator` — an EWMA of observed service times per
  tenant class, the forecast the admission-time deadline check uses;
* :class:`RequestContext` — the deadline riding next to the W3C
  ``traceparent`` header across the front-door → router boundary, so
  any downstream stage can compute the remaining budget at its own
  clock (``repro.serve`` only consumes it at the front door today).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.knn import KnnAnswer
from repro.errors import ConfigError


@dataclass(frozen=True)
class ServiceModel:
    """Deterministic modelled service seconds for one answered query.

    The constants mirror the shape of :class:`~repro.server.metrics.TimingModel`
    — GPU kernel time is taken as-is from the simulator, host-side work
    is charged per deterministic unit of work — but deliberately avoid
    its wall-time inputs.

    Attributes:
        base_s: fixed per-query overhead (parse, route, merge).
        cell_cost_s: per candidate cell cleaned.
        candidate_cost_s: per GPU candidate scored.
        refine_cost_s: per unresolved boundary vertex refined.
        cpu_rung_factor: multiplier applied to the host-side work of a
            query that degraded off the GPU rung — the vectorised-CPU
            and Dijkstra rungs do the candidate work on the host.
    """

    base_s: float = 2e-3
    cell_cost_s: float = 1e-4
    candidate_cost_s: float = 2e-5
    refine_cost_s: float = 5e-5
    cpu_rung_factor: float = 2.0

    def __post_init__(self) -> None:
        if min(
            self.base_s,
            self.cell_cost_s,
            self.candidate_cost_s,
            self.refine_cost_s,
        ) < 0:
            raise ConfigError("service-model costs must be >= 0")
        if self.cpu_rung_factor < 1.0:
            raise ConfigError(
                f"cpu_rung_factor must be >= 1, got {self.cpu_rung_factor}"
            )

    def service_s(self, answer: KnnAnswer) -> float:
        """Modelled service seconds for one answer (deterministic)."""
        host = (
            answer.cells_cleaned * self.cell_cost_s
            + answer.candidates * self.candidate_cost_s
            + answer.unresolved * self.refine_cost_s
        )
        if answer.degraded_rung is not None:
            host *= self.cpu_rung_factor
        gpu_s = sum(answer.gpu_phase_s.values())
        # retry backoff is a policy-chosen modelled delay: charged as-is
        return self.base_s + host + gpu_s + answer.backoff_s


class LatencyEstimator:
    """EWMA service-time forecast per tenant class.

    Before any observation a class forecasts ``initial_s`` — choose it
    on the optimistic side so a cold front door does not shed its very
    first queries on a pessimistic guess.
    """

    def __init__(self, initial_s: float = 5e-3, alpha: float = 0.2) -> None:
        if initial_s <= 0:
            raise ConfigError(f"initial_s must be positive, got {initial_s}")
        if not 0.0 < alpha <= 1.0:
            raise ConfigError(f"alpha must be in (0, 1], got {alpha}")
        self.initial_s = initial_s
        self.alpha = alpha
        self._estimates: dict[str, float] = {}

    def estimate(self, cls: str) -> float:
        return self._estimates.get(cls, self.initial_s)

    def observe(self, cls: str, service_s: float) -> None:
        previous = self._estimates.get(cls)
        if previous is None:
            self._estimates[cls] = service_s
        else:
            self._estimates[cls] = (
                previous + self.alpha * (service_s - previous)
            )


@dataclass(frozen=True)
class RequestContext:
    """What crosses the front-door boundary with one admitted query.

    ``traceparent`` is the encoded W3C-style
    :class:`~repro.obs.tracing.TraceContext` of the request span (or
    ``None`` when tracing is off); ``deadline_t`` is the query's
    *absolute* modelled deadline, so any stage holding the context and
    a clock can compute the remaining budget without extra state.
    """

    tenant: str
    tenant_class: str
    deadline_t: float
    traceparent: str | None = None

    def remaining_s(self, now: float) -> float:
        """Budget left at modelled time ``now`` (negative = expired)."""
        return self.deadline_t - now
