"""The overload state machine: queue- and burn-rate-driven load shedding.

Overload control degrades in a **strict order** (DESIGN.md §14) so the
cheapest lever is always pulled first and the paid tier is protected to
the very end:

====== ============= ====================================================
level  name          what it does
====== ============= ====================================================
0      ``normal``    everything admitted (quota and deadline still apply)
1      ``shed_free`` free-tier queries are rejected at admission
                     (:class:`~repro.errors.ShedError`, reason
                     ``"brownout"``); paid untouched
2      ``shrink``    additionally, epoch batches shrink to
                     ``ceil(batch/2)`` so queue wait per epoch halves
3      ``brownout``  additionally, the backend serves from the
                     resilience ladder's vectorised-CPU rung (skipping
                     GPU attempts and their retry backoff entirely)
====== ============= ====================================================

Every rung of the ladder is exact, so no level ever changes an admitted
answer — what degrades is who gets in and how much latency they pay.

The level is chosen from two deterministic signals over the modelled
clock: the **backlog delay** (how far the backend's modelled busy
horizon is ahead of the arrival clock) and the paid class's short-window
**error-budget burn rate** (from the front door's
:class:`~repro.obs.slo.SloTracker`).  Escalation is immediate;
de-escalation is hysteretic (signals must fall below
``recover_fraction`` of the entry threshold) so the machine does not
flap at the boundary.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError
from repro.serve.tenancy import SHED_QUOTA

#: Shed reasons carried by :class:`~repro.errors.ShedError` and the
#: ``reason`` label of ``repro_shed_total``.
SHED_DEADLINE = "deadline"
SHED_BROWNOUT = "brownout"

SHED_REASONS: tuple[str, ...] = (SHED_QUOTA, SHED_DEADLINE, SHED_BROWNOUT)

#: Overload levels, healthiest first (the strict shed order).
LEVEL_NORMAL = 0
LEVEL_SHED_FREE = 1
LEVEL_SHRINK = 2
LEVEL_BROWNOUT = 3

LEVELS: tuple[str, ...] = ("normal", "shed_free", "shrink", "brownout")


def level_name(level: int) -> str:
    return LEVELS[level]


@dataclass(frozen=True)
class ShedPolicy:
    """Thresholds of the overload state machine.

    ``*_backlog_s`` are modelled backlog delays (busy horizon minus the
    arrival clock) at which a level engages; ``*_burn`` are the paid
    class's short-window error-budget burn rates that engage the same
    levels.  A level engages when *either* signal crosses its threshold.

    The burn defaults are deliberately aggressive: against a tight
    budget (1% for the paid class) a single breach in the short window
    is already a multi-x burn, and brownout — the lever that removes
    GPU retry backoff from the service path — is worth pulling after a
    mere handful of breaches, long before the classic 14.4x paging
    threshold.

    Attributes:
        shed_free_backlog_s / shed_free_burn: enter ``shed_free``.
        shrink_backlog_s / shrink_burn: enter ``shrink``.
        brownout_backlog_s / brownout_burn: enter ``brownout``.
        recover_fraction: hysteresis — a level is left only when both
            signals fall below ``threshold * recover_fraction``.
    """

    shed_free_backlog_s: float = 0.25
    shrink_backlog_s: float = 1.0
    brownout_backlog_s: float = 4.0
    shed_free_burn: float = 1.0
    shrink_burn: float = 2.0
    brownout_burn: float = 3.5
    recover_fraction: float = 0.5

    def __post_init__(self) -> None:
        backlogs = (
            self.shed_free_backlog_s,
            self.shrink_backlog_s,
            self.brownout_backlog_s,
        )
        burns = (self.shed_free_burn, self.shrink_burn, self.brownout_burn)
        for values, label in ((backlogs, "backlog"), (burns, "burn")):
            if any(v <= 0 for v in values):
                raise ConfigError(f"{label} thresholds must be positive")
            if list(values) != sorted(values):
                raise ConfigError(
                    f"{label} thresholds must be non-decreasing "
                    f"with level, got {values}"
                )
        if not 0.0 < self.recover_fraction < 1.0:
            raise ConfigError(
                f"recover_fraction must be in (0, 1), "
                f"got {self.recover_fraction}"
            )

    def backlog_threshold(self, level: int) -> float:
        return (
            self.shed_free_backlog_s,
            self.shrink_backlog_s,
            self.brownout_backlog_s,
        )[level - 1]

    def burn_threshold(self, level: int) -> float:
        return (self.shed_free_burn, self.shrink_burn, self.brownout_burn)[
            level - 1
        ]


class LoadShedder:
    """Tracks the current overload level with hysteretic transitions."""

    def __init__(self, policy: ShedPolicy | None = None) -> None:
        self.policy = policy or ShedPolicy()
        self.level = LEVEL_NORMAL
        #: every level change as ``(from, to) -> count`` (observability
        #: and the shed-order regression tests)
        self.transitions: dict[tuple[int, int], int] = {}

    def _target(self, backlog_s: float, burn: float, entering: bool) -> int:
        """The highest level whose thresholds the signals justify."""
        policy = self.policy
        scale = 1.0 if entering else policy.recover_fraction
        level = LEVEL_NORMAL
        for candidate in (LEVEL_SHED_FREE, LEVEL_SHRINK, LEVEL_BROWNOUT):
            if (
                backlog_s >= policy.backlog_threshold(candidate) * scale
                or burn >= policy.burn_threshold(candidate) * scale
            ):
                level = candidate
        return level

    def assess(self, backlog_s: float, burn: float) -> int:
        """Update and return the level from the current signals.

        Escalation uses the entry thresholds; holding a level only
        requires the (lower) recovery thresholds, so the machine steps
        down one observation at a time instead of flapping.
        """
        up = self._target(backlog_s, burn, entering=True)
        if up > self.level:
            self._move(up)
        else:
            hold = self._target(backlog_s, burn, entering=False)
            if hold < self.level:
                self._move(max(hold, self.level - 1))
        return self.level

    def _move(self, new: int) -> None:
        if new == self.level:
            return
        key = (self.level, new)
        self.transitions[key] = self.transitions.get(key, 0) + 1
        self.level = new

    # -- what each level means for the serving path --------------------
    @property
    def shedding_free(self) -> bool:
        return self.level >= LEVEL_SHED_FREE

    @property
    def shrinking_batches(self) -> bool:
        return self.level >= LEVEL_SHRINK

    @property
    def browned_out(self) -> bool:
        return self.level >= LEVEL_BROWNOUT

    def effective_batch_size(self, batch_size: int) -> int:
        """The epoch size the dispatcher may fill at the current level."""
        if self.shrinking_batches:
            return max(1, (batch_size + 1) // 2)
        return batch_size
