"""Saving and restoring index state.

A query server restarting should not have to re-solicit every object's
location, so the library supports snapshotting a
:class:`~repro.core.ggrid.GGridIndex` to a single JSON file — the road
network (vertices with coordinates, edges with weights), the
configuration, and the latest known object locations — and restoring an
equivalent index from it.  Cached message lists are *not* persisted: the
object table already holds each object's newest location (Algorithm 1
keeps it eager), so the restored index bulk-loads those and is
immediately queryable with identical answers.

Example:
    >>> import tempfile, os
    >>> from repro import GGridIndex, Message
    >>> from repro.roadnet import grid_road_network
    >>> index = GGridIndex(grid_road_network(5, 5, seed=1))
    >>> index.ingest(Message(1, 0, 0.25, 3.0))
    >>> path = os.path.join(tempfile.mkdtemp(), "snap.json")
    >>> _ = save_index(index, path)
    >>> restored = load_index(path)
    >>> restored.object_table.get(1).offset
    0.25
"""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path

from repro.config import GGridConfig
from repro.core.ggrid import GGridIndex
from repro.core.messages import Message
from repro.errors import ReproError
from repro.roadnet.graph import RoadNetwork

#: bumped on breaking snapshot-layout changes
SNAPSHOT_VERSION = 1

#: GGridConfig fields persisted (the GPU cost model is environment, not state)
_CONFIG_FIELDS = (
    "delta_c",
    "delta_v",
    "delta_b",
    "eta",
    "rho",
    "t_delta",
    "cpu_workers",
    "python_speedup",
    "pipelined_transfers",
    "sdist_early_exit",
    "seed",
)


def save_index(index: GGridIndex, path: str | Path) -> Path:
    """Snapshot ``index`` (graph + config + object locations) to JSON."""
    graph = index.graph
    snapshot = {
        "version": SNAPSHOT_VERSION,
        "graph": {
            "vertices": [[v.x, v.y] for v in graph.vertices()],
            "edges": [[e.source, e.dest, e.weight] for e in graph.edges()],
        },
        "config": {
            name: getattr(index.config, name) for name in _CONFIG_FIELDS
        },
        "objects": [
            [obj, entry.edge, entry.offset, entry.t]
            for obj, entry in sorted(index.object_table.objects().items())
        ],
        "latest_time": index.latest_time,
    }
    path = Path(path)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(snapshot, fh)
    return path


def load_index(path: str | Path) -> GGridIndex:
    """Restore a :class:`GGridIndex` from a :func:`save_index` snapshot.

    Raises:
        ReproError: on version mismatch or malformed snapshots.
    """
    with open(path, encoding="utf-8") as fh:
        snapshot = json.load(fh)
    if snapshot.get("version") != SNAPSHOT_VERSION:
        raise ReproError(
            f"snapshot version {snapshot.get('version')!r} is not "
            f"{SNAPSHOT_VERSION} (file: {path})"
        )
    try:
        graph = RoadNetwork()
        for x, y in snapshot["graph"]["vertices"]:
            graph.add_vertex(x, y)
        for source, dest, weight in snapshot["graph"]["edges"]:
            graph.add_edge(source, dest, weight)
        config = GGridConfig(**snapshot["config"])
        index = GGridIndex(graph, config)
        for obj, edge, offset, t in snapshot["objects"]:
            index.ingest(Message(obj, edge, offset, t))
        index.latest_time = max(index.latest_time, snapshot["latest_time"])
        return index
    except (KeyError, TypeError, ValueError) as exc:
        raise ReproError(f"malformed snapshot {path}: {exc}") from exc


def config_to_dict(config: GGridConfig) -> dict[str, object]:
    """The persistable subset of a configuration (diagnostics helper)."""
    full = dataclasses.asdict(config)
    return {name: full[name] for name in _CONFIG_FIELDS}
