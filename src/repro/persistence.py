"""Saving and restoring index state (compacted snapshots).

A query server restarting should not have to re-solicit every object's
location, so the library supports snapshotting a
:class:`~repro.core.ggrid.GGridIndex` to a single JSON file — the road
network (vertices with coordinates, edges with weights), the
configuration, the latest known object locations *and* the per-cell
cached message backlogs — and restoring an equivalent index from it.

Version 2 restores state directly instead of re-ingesting object-table
rows: the object table is rebuilt entry by entry and each cell's message
list is rebuilt in its stored (chronological) order.  The v1 restore
path replayed objects sorted by *id*, which interleaved timestamps
inside restored buckets; a bucket could then be mis-pruned as wholly
stale and a post-restore cleaning silently dropped fresh locations.
Persisting the backlogs also means a restored index re-cleans to exactly
the state the saved index would have reached — the property the
crash-recovery conformance suite (``tests/persist``) checks byte for
byte.

Example:
    >>> import tempfile, os
    >>> from repro import GGridIndex, Message
    >>> from repro.roadnet import grid_road_network
    >>> index = GGridIndex(grid_road_network(5, 5, seed=1))
    >>> index.ingest(Message(1, 0, 0.25, 3.0))
    >>> path = os.path.join(tempfile.mkdtemp(), "snap.json")
    >>> _ = save_index(index, path)
    >>> restored = load_index(path)
    >>> restored.object_table.get(1).offset
    0.25
"""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path
from typing import Any

from repro.config import GGridConfig
from repro.core.ggrid import GGridIndex
from repro.core.messages import Message
from repro.core.object_table import ObjectEntry
from repro.errors import ReproError
from repro.roadnet.graph import RoadNetwork

#: bumped on breaking snapshot-layout changes (2: per-cell backlogs and
#: direct object-table restore instead of id-ordered re-ingest)
SNAPSHOT_VERSION = 2

#: GGridConfig fields persisted (the GPU cost model is environment, not state)
_CONFIG_FIELDS = (
    "delta_c",
    "delta_v",
    "delta_b",
    "eta",
    "rho",
    "t_delta",
    "cpu_workers",
    "python_speedup",
    "pipelined_transfers",
    "sdist_early_exit",
    "max_buckets_per_cell",
    "seed",
)


def index_state(index: GGridIndex) -> dict[str, Any]:
    """The complete persistable state of ``index`` as a JSON-able dict.

    This is the body :func:`save_index` writes and
    :class:`repro.persist.snapshot.SnapshotStore` wraps with a CRC; the
    message lists are stored *in list order* (chronological per cell),
    including removal markers, so a restore reproduces the exact cached
    state rather than a lossy object-table projection.
    """
    graph = index.graph
    return {
        "version": SNAPSHOT_VERSION,
        "graph": {
            "vertices": [[v.x, v.y] for v in graph.vertices()],
            "edges": [[e.source, e.dest, e.weight] for e in graph.edges()],
        },
        "config": {
            name: getattr(index.config, name) for name in _CONFIG_FIELDS
        },
        "objects": [
            [obj, entry.edge, entry.offset, entry.t]
            for obj, entry in sorted(index.object_table.objects().items())
        ],
        "lists": [
            [
                cell,
                [[m.obj, m.edge, m.offset, m.t] for m in mlist.messages()],
            ]
            for cell, mlist in sorted(index.lists.items())
            if mlist.num_messages
        ],
        "latest_time": index.latest_time,
        "messages_ingested": index.messages_ingested,
    }


def index_from_state(state: dict[str, Any]) -> GGridIndex:
    """Rebuild a :class:`GGridIndex` from an :func:`index_state` dict.

    Raises:
        ReproError: on version mismatch or malformed state.
    """
    if state.get("version") != SNAPSHOT_VERSION:
        raise ReproError(
            f"snapshot version {state.get('version')!r} is not "
            f"{SNAPSHOT_VERSION}"
        )
    try:
        graph = RoadNetwork()
        for x, y in state["graph"]["vertices"]:
            graph.add_vertex(x, y)
        for source, dest, weight in state["graph"]["edges"]:
            graph.add_edge(source, dest, weight)
        config = GGridConfig(**state["config"])
        index = GGridIndex(graph, config)
        # restore the object table directly — never by re-ingesting,
        # which would re-derive removal markers and reorder timestamps
        for obj, edge, offset, t in state["objects"]:
            cell = index.grid.cell_of_edge(edge)
            index.object_table.put(obj, ObjectEntry(cell, edge, offset, t))
        # rebuild each cell's backlog in its stored order
        for cell, messages in state.get("lists", ()):
            mlist = index._list_of(cell)
            for obj, edge, offset, t in messages:
                mlist.append(Message(obj, edge, offset, t))
        index.latest_time = max(index.latest_time, state["latest_time"])
        index.messages_ingested = int(state.get("messages_ingested", 0))
        return index
    except (KeyError, TypeError, ValueError) as exc:
        raise ReproError(f"malformed snapshot state: {exc}") from exc


def save_index(index: GGridIndex, path: str | Path) -> Path:
    """Snapshot ``index`` (graph + config + objects + backlogs) to JSON."""
    path = Path(path)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(index_state(index), fh)
    return path


def load_index(path: str | Path) -> GGridIndex:
    """Restore a :class:`GGridIndex` from a :func:`save_index` snapshot.

    Raises:
        ReproError: on version mismatch or malformed snapshots.
    """
    with open(path, encoding="utf-8") as fh:
        snapshot = json.load(fh)
    try:
        return index_from_state(snapshot)
    except ReproError as exc:
        raise ReproError(f"{exc} (file: {path})") from exc


def config_to_dict(config: GGridConfig) -> dict[str, object]:
    """The persistable subset of a configuration (diagnostics helper)."""
    full = dataclasses.asdict(config)
    return {name: full[name] for name in _CONFIG_FIELDS}
