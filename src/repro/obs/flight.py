"""A span ring-buffer flight recorder: the last N query traces on fault.

Aggregates say *that* the p99 moved and the slow-query log says *which*
queries were slow — but when a shard fails over or the circuit breaker
trips open, the question is "what were the last few queries doing right
before this?".  The :class:`FlightRecorder` answers it: the tracer
hands it every completed trace tree (``Tracer.on_trace_complete``), a
bounded ring keeps the most recent ones, and a fault-path **trigger**
(device fault, breaker-open, shard failover) snapshots the ring into a
:class:`FlightDump` — optionally written straight to disk as a
Perfetto-loadable Chrome trace.

Dumps themselves are bounded (a chaos profile faulting every query must
not accumulate thousands of snapshots); the *first* dump per reason is
always kept, later ones rotate.
"""

from __future__ import annotations

import json
from collections import deque
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from repro.errors import ConfigError
from repro.obs.tracing import Span, spans_to_chrome_events


@dataclass(frozen=True, slots=True)
class FlightDump:
    """One triggered snapshot of the recent-trace ring."""

    seq: int
    reason: str
    detail: str
    traces: tuple[tuple[Span, ...], ...]
    path: Path | None = None

    @property
    def trace_ids(self) -> tuple[str, ...]:
        return tuple(t[0].trace_id_hex for t in self.traces if t)


@dataclass
class FlightRecorder:
    """Bounded ring of completed query traces plus triggered dumps.

    Attributes:
        capacity: traces retained in the ring (the "last N queries").
        max_dumps: triggered snapshots retained (oldest rotate out,
            except the first dump of each distinct reason).
        dump_dir: when set, every trigger also writes
            ``flight-<seq>-<reason>.json`` (Chrome trace format) there.
    """

    capacity: int = 32
    max_dumps: int = 16
    dump_dir: str | Path | None = None
    _ring: "deque[list[Span]]" = field(default_factory=deque, repr=False)
    dumps: list[FlightDump] = field(default_factory=list)
    _seq: int = 0
    traces_recorded: int = 0

    def __post_init__(self) -> None:
        if self.capacity < 1:
            raise ConfigError(f"capacity must be >= 1, got {self.capacity}")
        if self.max_dumps < 1:
            raise ConfigError(f"max_dumps must be >= 1, got {self.max_dumps}")
        self._ring = deque(maxlen=self.capacity)

    # -- recording -----------------------------------------------------
    def on_trace(self, spans: list[Span]) -> None:
        """Ring-buffer one completed trace (``Tracer.on_trace_complete``)."""
        if spans:
            self._ring.append(list(spans))
            self.traces_recorded += 1

    def traces(self) -> list[list[Span]]:
        """Retained traces, oldest first."""
        return [list(t) for t in self._ring]

    def find_trace(self, trace_id: int | str) -> list[Span] | None:
        """The retained trace with this id (hex string or int), if any.

        This is the slow-query-log link: a slowlog entry's ``trace_id``
        attribute pulls the full span tree back out of the recorder.
        """
        wanted = int(trace_id, 16) if isinstance(trace_id, str) else trace_id
        for trace in reversed(self._ring):
            if trace and trace[0].trace_id == wanted:
                return list(trace)
        return None

    # -- fault-path triggers -------------------------------------------
    def trigger(self, reason: str, detail: str = "") -> FlightDump:
        """Snapshot the ring because something went wrong.

        Called by the serving path on device faults, breaker-open
        transitions and shard failovers.  Returns the dump (with its
        file path when ``dump_dir`` is set).
        """
        self._seq += 1
        path: Path | None = None
        traces = tuple(tuple(t) for t in self._ring)
        if self.dump_dir is not None:
            directory = Path(self.dump_dir)
            directory.mkdir(parents=True, exist_ok=True)
            safe = "".join(c if c.isalnum() or c in "-_" else "_" for c in reason)
            path = directory / f"flight-{self._seq:04d}-{safe}.json"
            path.write_text(json.dumps(self._chrome_doc(traces, reason, detail)))
        dump = FlightDump(self._seq, reason, detail, traces, path)
        self.dumps.append(dump)
        if len(self.dumps) > self.max_dumps:
            # rotate out the oldest dump that is not the first of its
            # reason — the first breaker-open/failover is the one a
            # post-mortem wants, even after thousands of later faults
            seen: set[str] = set()
            first_ids: set[int] = set()
            for d in self.dumps:
                if d.reason not in seen:
                    seen.add(d.reason)
                    first_ids.add(id(d))
            for i, d in enumerate(self.dumps):
                if id(d) not in first_ids:
                    del self.dumps[i]
                    break
        return dump

    @staticmethod
    def _chrome_doc(
        traces: tuple[tuple[Span, ...], ...], reason: str, detail: str
    ) -> dict[str, Any]:
        events: list[dict[str, Any]] = [
            {
                "name": "process_name",
                "ph": "M",
                "pid": 1,
                "args": {"name": f"flight recorder ({reason})"},
            }
        ]
        for trace in traces:
            events.extend(spans_to_chrome_events(list(trace), pid=1))
        return {
            "traceEvents": events,
            "metadata": {"reason": reason, "detail": detail},
        }
