"""Query-lifecycle spans, distributed trace context and Chrome export.

A :class:`Tracer` records wall-clock :class:`Span`\\ s with parent/child
nesting — ``ingest``, ``clean_cells``, ``sdist``, ``xshuffle_dedup``,
``refine`` and friends — while the existing
:class:`~repro.simgpu.trace.GpuTrace` records simulated kernel and
transfer events.  :func:`write_chrome_trace` merges both into one
Chrome-trace JSON (two process tracks: ``cpu`` and ``gpu (simulated)``)
loadable in Perfetto / ``chrome://tracing``, which is how one answers
"why was *this* query slow?".

Every span additionally carries a **trace identity**: a 128-bit trace id
shared by the whole tree plus a 64-bit span id, modelled on the W3C
Trace Context ``traceparent`` header.  :class:`TraceContext` is the
wire form: the cluster router encodes its probe span's context and each
shard's :class:`~repro.server.server.QueryServer` decodes it, so one
scatter-gathered kNN query renders as a single trace tree (router span,
per-shard probe spans, ladder-rung spans, merge span) no matter how many
serving components it crossed.  See DESIGN.md §13.

Instrumentation sites in the hot paths use the module-level
:func:`span` function, which is a single global read plus a shared
no-op context manager when no tracer is active — zero allocations, so
the library pays nothing when observability is off.
"""

from __future__ import annotations

import itertools
import json
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Iterator

from repro.errors import ConfigError
from repro.simgpu.trace import GpuTrace

_TRACE_ID_BITS = 128
_SPAN_ID_BITS = 64


@dataclass(frozen=True, slots=True)
class TraceContext:
    """The propagated identity of one span, W3C ``traceparent`` style.

    ``encode()`` produces ``"00-<32 hex trace id>-<16 hex span id>-<2
    hex flags>"`` and :meth:`decode` parses it back; the pair is the
    wire protocol between the cluster router and its shards (and any
    future remote hop).  Ids are non-zero per the W3C spec — an all-zero
    id means "no context" there, so we reject it too.
    """

    trace_id: int
    span_id: int
    sampled: bool = True

    def __post_init__(self) -> None:
        if not 0 < self.trace_id < (1 << _TRACE_ID_BITS):
            raise ConfigError(f"trace_id out of range: {self.trace_id}")
        if not 0 < self.span_id < (1 << _SPAN_ID_BITS):
            raise ConfigError(f"span_id out of range: {self.span_id}")

    @property
    def trace_id_hex(self) -> str:
        return f"{self.trace_id:032x}"

    @property
    def span_id_hex(self) -> str:
        return f"{self.span_id:016x}"

    def encode(self) -> str:
        """The ``traceparent`` header form of this context."""
        flags = "01" if self.sampled else "00"
        return f"00-{self.trace_id_hex}-{self.span_id_hex}-{flags}"

    @classmethod
    def decode(cls, header: str) -> "TraceContext":
        """Parse an :meth:`encode`\\ d header.

        Raises:
            ConfigError: malformed version, field widths, non-hex
                digits, or all-zero ids.
        """
        parts = header.split("-")
        if len(parts) != 4:
            raise ConfigError(f"malformed trace context {header!r}")
        version, trace_hex, span_hex, flags = parts
        if version != "00":
            raise ConfigError(f"unsupported trace context version {version!r}")
        if len(trace_hex) != 32 or len(span_hex) != 16 or len(flags) != 2:
            raise ConfigError(f"malformed trace context {header!r}")
        try:
            trace_id = int(trace_hex, 16)
            span_id = int(span_hex, 16)
            flag_bits = int(flags, 16)
        except ValueError:
            raise ConfigError(f"non-hex trace context {header!r}") from None
        if trace_id == 0 or span_id == 0:
            raise ConfigError(f"all-zero id in trace context {header!r}")
        return cls(trace_id, span_id, sampled=bool(flag_bits & 1))


@dataclass(slots=True)
class Span:
    """One timed section of work, possibly nested inside a parent."""

    name: str
    start_s: float
    end_s: float = 0.0
    depth: int = 0
    parent: "Span | None" = None
    attrs: dict[str, Any] = field(default_factory=dict)
    #: distributed trace identity: the tree-wide trace id, this span's
    #: own id and its parent's (None on a trace root); assigned by the
    #: tracer when the span is pushed
    trace_id: int = 0
    span_id: int = 0
    parent_span_id: int | None = None

    @property
    def duration_s(self) -> float:
        return max(0.0, self.end_s - self.start_s)

    @property
    def trace_id_hex(self) -> str:
        return f"{self.trace_id:032x}"

    @property
    def context(self) -> TraceContext:
        """This span's propagatable :class:`TraceContext`."""
        return TraceContext(self.trace_id, self.span_id)

    def set_attr(self, key: str, value: Any) -> None:
        self.attrs[key] = value


class _NullSpan:
    """Shared do-nothing span used when no tracer is active."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc: object) -> None:
        return None

    def set_attr(self, key: str, value: Any) -> None:
        return None


NULL_SPAN = _NullSpan()

#: The tracer instrumentation sites publish to (None = tracing off).
_ACTIVE: "Tracer | None" = None


def current_tracer() -> "Tracer | None":
    return _ACTIVE


def span(name: str, attrs: dict[str, Any] | None = None):
    """Open a span on the active tracer, or a shared no-op when none.

    Call with ``attrs=None`` on hot paths: the inactive case then costs
    one global read and allocates nothing.
    """
    if _ACTIVE is None:
        return NULL_SPAN
    return _ACTIVE.span(name, attrs)


def current_context() -> TraceContext | None:
    """The context of the innermost open span on the active tracer."""
    if _ACTIVE is None or not _ACTIVE._stack:
        return None
    return _ACTIVE._stack[-1].context


class _SpanHandle:
    """Context manager pairing one Span with its tracer's stack."""

    __slots__ = ("_tracer", "_span")

    def __init__(self, tracer: "Tracer", span_: Span) -> None:
        self._tracer = tracer
        self._span = span_

    def __enter__(self) -> Span:
        self._tracer._push(self._span)
        return self._span

    def __exit__(self, *exc: object) -> None:
        self._tracer._pop(self._span)

    def set_attr(self, key: str, value: Any) -> None:
        self._span.attrs[key] = value


class Tracer:
    """Records a tree of wall-clock spans relative to its creation.

    Trace identity: a span opened with an empty stack and no remote
    parent starts a fresh trace (new trace id); nested spans inherit the
    enclosing span's trace id; a span opened with ``parent=`` (a
    :class:`TraceContext` or its encoded header) joins that remote
    trace.  Ids are drawn from deterministic per-tracer counters so
    replays produce stable trace ids.

    When a root span closes (the stack empties), the completed tree is
    handed to ``on_trace_complete`` — the hook the flight recorder's
    ring buffer feeds from.

    Example:
        >>> tracer = Tracer()
        >>> with tracer.span("query", {"k": 4}):
        ...     with tracer.span("sdist"):
        ...         pass
        >>> [s.name for s in tracer.spans], tracer.spans[1].depth
        (['query', 'sdist'], 1)
        >>> tracer.spans[0].trace_id == tracer.spans[1].trace_id
        True
    """

    def __init__(self, clock=time.perf_counter) -> None:
        self._clock = clock
        self._epoch = clock()
        self.spans: list[Span] = []  # completed-or-open, in start order
        self._stack: list[Span] = []
        self._trace_ids = itertools.count(1)
        self._span_ids = itertools.count(1)
        self._root_index = 0  # index into spans where the open trace began
        #: called with the list of spans of each completed trace tree
        self.on_trace_complete: Callable[[list[Span]], None] | None = None

    # -- recording -----------------------------------------------------
    def span(
        self,
        name: str,
        attrs: dict[str, Any] | None = None,
        parent: "TraceContext | str | None" = None,
    ) -> _SpanHandle:
        """Open a span; ``parent`` joins a propagated remote context."""
        s = Span(name=name, start_s=self._clock() - self._epoch)
        if attrs:
            s.attrs.update(attrs)
        if parent is not None:
            ctx = TraceContext.decode(parent) if isinstance(parent, str) else parent
            s.trace_id = ctx.trace_id
            s.parent_span_id = ctx.span_id
        return _SpanHandle(self, s)

    def _push(self, s: Span) -> None:
        s.span_id = next(self._span_ids)
        if self._stack:
            s.parent = self._stack[-1]
            s.depth = s.parent.depth + 1
            if s.trace_id == 0:  # no remote parent: inherit in-process
                s.trace_id = s.parent.trace_id
                s.parent_span_id = s.parent.span_id
        else:
            self._root_index = len(self.spans)
            if s.trace_id == 0:
                s.trace_id = next(self._trace_ids)
        self._stack.append(s)
        self.spans.append(s)

    def _pop(self, s: Span) -> None:
        if not self._stack or self._stack[-1] is not s:
            raise ConfigError(f"span {s.name!r} closed out of order")
        s.end_s = self._clock() - self._epoch
        self._stack.pop()
        if not self._stack and self.on_trace_complete is not None:
            self.on_trace_complete(self.spans[self._root_index:])

    @contextmanager
    def activate(self) -> Iterator["Tracer"]:
        """Make this tracer the target of module-level :func:`span`."""
        global _ACTIVE
        previous = _ACTIVE
        _ACTIVE = self
        try:
            yield self
        finally:
            _ACTIVE = previous

    def clear(self) -> None:
        self.spans.clear()
        self._stack.clear()
        self._root_index = 0
        self._epoch = self._clock()

    # -- reporting -----------------------------------------------------
    def total_by_name(self) -> dict[str, float]:
        totals: dict[str, float] = {}
        for s in self.spans:
            totals[s.name] = totals.get(s.name, 0.0) + s.duration_s
        return totals

    def to_chrome_events(self, pid: int = 1) -> list[dict[str, Any]]:
        """Complete-duration (``ph: X``) events, microsecond timestamps.

        Each event's ``args`` carries the span's trace identity, so a
        trace id taken from a histogram exemplar or a slow-query entry
        can be searched for in Perfetto directly.
        """
        return [_chrome_event(s, pid) for s in self.spans]


def _jsonable(value: Any) -> Any:
    if isinstance(value, (int, float, str, bool)) or value is None:
        return value
    return str(value)


def _chrome_event(s: Span, pid: int) -> dict[str, Any]:
    args: dict[str, Any] = {k: _jsonable(v) for k, v in s.attrs.items()}
    args["trace_id"] = s.trace_id_hex
    args["span_id"] = f"{s.span_id:016x}"
    if s.parent_span_id is not None:
        args["parent_span_id"] = f"{s.parent_span_id:016x}"
    return {
        "name": s.name,
        "cat": "cpu",
        "ph": "X",
        "ts": s.start_s * 1e6,
        "dur": s.duration_s * 1e6,
        "pid": pid,
        "tid": 0,
        "args": args,
    }


def spans_to_chrome_events(spans: list[Span], pid: int = 1) -> list[dict[str, Any]]:
    """Chrome events for an arbitrary span list (flight-recorder dumps)."""
    return [_chrome_event(s, pid) for s in spans]


_GPU_PID = 0
_CPU_PID = 1


def write_chrome_trace(
    path: str | Path,
    tracer: Tracer | None = None,
    gpu_trace: GpuTrace | None = None,
) -> Path:
    """Write one merged Chrome-trace JSON for a traced query (or run).

    CPU spans land on the ``cpu`` process track (wall-clock time) and
    GPU kernel/transfer events on the ``gpu (simulated)`` track
    (simulated time); both tracks start at 0 so the phase *structure*
    lines up even though the clocks differ (DESIGN.md §2 explains why
    simulated and wall time cannot share an axis).
    """
    if tracer is None and gpu_trace is None:
        raise ConfigError("need a tracer and/or a gpu trace to export")
    events: list[dict[str, Any]] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": _CPU_PID,
            "args": {"name": "cpu"},
        },
        {
            "name": "process_name",
            "ph": "M",
            "pid": _GPU_PID,
            "args": {"name": "gpu (simulated)"},
        },
    ]
    if tracer is not None:
        events.extend(tracer.to_chrome_events(pid=_CPU_PID))
    if gpu_trace is not None:
        events.extend(
            {
                "name": e.name,
                "cat": e.category,
                "ph": "X",
                "ts": e.start_s * 1e6,
                "dur": e.duration_s * 1e6,
                "pid": _GPU_PID,
                "tid": {"kernel": 0, "h2d": 1, "d2h": 2}.get(e.category, 3),
                "args": {k: _jsonable(v) for k, v in e.detail.items()},
            }
            for e in gpu_trace.events
        )
    path = Path(path)
    path.write_text(json.dumps({"traceEvents": events}))
    return path
