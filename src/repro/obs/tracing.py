"""Query-lifecycle spans and a merged CPU+GPU Chrome-trace exporter.

A :class:`Tracer` records wall-clock :class:`Span`\\ s with parent/child
nesting — ``ingest``, ``clean_cells``, ``sdist``, ``xshuffle_dedup``,
``refine`` and friends — while the existing
:class:`~repro.simgpu.trace.GpuTrace` records simulated kernel and
transfer events.  :func:`write_chrome_trace` merges both into one
Chrome-trace JSON (two process tracks: ``cpu`` and ``gpu (simulated)``)
loadable in Perfetto / ``chrome://tracing``, which is how one answers
"why was *this* query slow?".

Instrumentation sites in the hot paths use the module-level
:func:`span` function, which is a single global read plus a shared
no-op context manager when no tracer is active — zero allocations, so
the library pays nothing when observability is off.
"""

from __future__ import annotations

import json
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterator

from repro.errors import ConfigError
from repro.simgpu.trace import GpuTrace


@dataclass(slots=True)
class Span:
    """One timed section of work, possibly nested inside a parent."""

    name: str
    start_s: float
    end_s: float = 0.0
    depth: int = 0
    parent: "Span | None" = None
    attrs: dict[str, Any] = field(default_factory=dict)

    @property
    def duration_s(self) -> float:
        return max(0.0, self.end_s - self.start_s)

    def set_attr(self, key: str, value: Any) -> None:
        self.attrs[key] = value


class _NullSpan:
    """Shared do-nothing span used when no tracer is active."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc: object) -> None:
        return None

    def set_attr(self, key: str, value: Any) -> None:
        return None


NULL_SPAN = _NullSpan()

#: The tracer instrumentation sites publish to (None = tracing off).
_ACTIVE: "Tracer | None" = None


def current_tracer() -> "Tracer | None":
    return _ACTIVE


def span(name: str, attrs: dict[str, Any] | None = None):
    """Open a span on the active tracer, or a shared no-op when none.

    Call with ``attrs=None`` on hot paths: the inactive case then costs
    one global read and allocates nothing.
    """
    if _ACTIVE is None:
        return NULL_SPAN
    return _ACTIVE.span(name, attrs)


class _SpanHandle:
    """Context manager pairing one Span with its tracer's stack."""

    __slots__ = ("_tracer", "_span")

    def __init__(self, tracer: "Tracer", span_: Span) -> None:
        self._tracer = tracer
        self._span = span_

    def __enter__(self) -> Span:
        self._tracer._push(self._span)
        return self._span

    def __exit__(self, *exc: object) -> None:
        self._tracer._pop(self._span)

    def set_attr(self, key: str, value: Any) -> None:
        self._span.attrs[key] = value


class Tracer:
    """Records a tree of wall-clock spans relative to its creation.

    Example:
        >>> tracer = Tracer()
        >>> with tracer.span("query", {"k": 4}):
        ...     with tracer.span("sdist"):
        ...         pass
        >>> [s.name for s in tracer.spans], tracer.spans[1].depth
        (['query', 'sdist'], 1)
    """

    def __init__(self, clock=time.perf_counter) -> None:
        self._clock = clock
        self._epoch = clock()
        self.spans: list[Span] = []  # completed-or-open, in start order
        self._stack: list[Span] = []

    # -- recording -----------------------------------------------------
    def span(self, name: str, attrs: dict[str, Any] | None = None) -> _SpanHandle:
        s = Span(name=name, start_s=self._clock() - self._epoch)
        if attrs:
            s.attrs.update(attrs)
        return _SpanHandle(self, s)

    def _push(self, s: Span) -> None:
        if self._stack:
            s.parent = self._stack[-1]
            s.depth = s.parent.depth + 1
        self._stack.append(s)
        self.spans.append(s)

    def _pop(self, s: Span) -> None:
        if not self._stack or self._stack[-1] is not s:
            raise ConfigError(f"span {s.name!r} closed out of order")
        s.end_s = self._clock() - self._epoch
        self._stack.pop()

    @contextmanager
    def activate(self) -> Iterator["Tracer"]:
        """Make this tracer the target of module-level :func:`span`."""
        global _ACTIVE
        previous = _ACTIVE
        _ACTIVE = self
        try:
            yield self
        finally:
            _ACTIVE = previous

    def clear(self) -> None:
        self.spans.clear()
        self._stack.clear()
        self._epoch = self._clock()

    # -- reporting -----------------------------------------------------
    def total_by_name(self) -> dict[str, float]:
        totals: dict[str, float] = {}
        for s in self.spans:
            totals[s.name] = totals.get(s.name, 0.0) + s.duration_s
        return totals

    def to_chrome_events(self, pid: int = 1) -> list[dict[str, Any]]:
        """Complete-duration (``ph: X``) events, microsecond timestamps."""
        return [
            {
                "name": s.name,
                "cat": "cpu",
                "ph": "X",
                "ts": s.start_s * 1e6,
                "dur": s.duration_s * 1e6,
                "pid": pid,
                "tid": 0,
                "args": {k: _jsonable(v) for k, v in s.attrs.items()},
            }
            for s in self.spans
        ]


def _jsonable(value: Any) -> Any:
    if isinstance(value, (int, float, str, bool)) or value is None:
        return value
    return str(value)


_GPU_PID = 0
_CPU_PID = 1


def write_chrome_trace(
    path: str | Path,
    tracer: Tracer | None = None,
    gpu_trace: GpuTrace | None = None,
) -> Path:
    """Write one merged Chrome-trace JSON for a traced query (or run).

    CPU spans land on the ``cpu`` process track (wall-clock time) and
    GPU kernel/transfer events on the ``gpu (simulated)`` track
    (simulated time); both tracks start at 0 so the phase *structure*
    lines up even though the clocks differ (DESIGN.md §2 explains why
    simulated and wall time cannot share an axis).
    """
    if tracer is None and gpu_trace is None:
        raise ConfigError("need a tracer and/or a gpu trace to export")
    events: list[dict[str, Any]] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": _CPU_PID,
            "args": {"name": "cpu"},
        },
        {
            "name": "process_name",
            "ph": "M",
            "pid": _GPU_PID,
            "args": {"name": "gpu (simulated)"},
        },
    ]
    if tracer is not None:
        events.extend(tracer.to_chrome_events(pid=_CPU_PID))
    if gpu_trace is not None:
        events.extend(
            {
                "name": e.name,
                "cat": e.category,
                "ph": "X",
                "ts": e.start_s * 1e6,
                "dur": e.duration_s * 1e6,
                "pid": _GPU_PID,
                "tid": {"kernel": 0, "h2d": 1, "d2h": 2}.get(e.category, 3),
                "args": {k: _jsonable(v) for k, v in e.detail.items()},
            }
            for e in gpu_trace.events
        )
    path = Path(path)
    path.write_text(json.dumps({"traceEvents": events}))
    return path
