"""Cross-cutting observability: metrics, spans and slow-query logging.

The instrument the paper's evaluation is built on is the per-phase time
breakdown — lazy caching vs. cleaning cost, kernel time vs. PCIe
transfer volume (Sections IV–V).  This package makes that breakdown a
first-class, opt-in part of the serving layer:

* :mod:`repro.obs.metrics` — a dependency-free registry of counters,
  gauges and log-bucket histograms with Prometheus-text and JSON
  exposition;
* :mod:`repro.obs.tracing` — nested query-lifecycle spans merged with
  the simulated-GPU timeline into one Perfetto-loadable Chrome trace;
* :mod:`repro.obs.slowlog` — the top-N slowest queries with their
  phase splits;
* :mod:`repro.obs.slo` — per-class latency objectives over the modelled
  clock with multi-window error-budget burn rates (``repro_slo_*``);
* :mod:`repro.obs.flight` — a span ring-buffer flight recorder that
  dumps the last N query traces on fault, breaker-open or failover;
* :mod:`repro.obs.hub` — the :class:`Observability` bundle servers
  publish to, plus the process-wide opt-in default the benchmark CLI
  uses.

Example:
    >>> from repro.obs import Observability
    >>> obs = Observability.with_tracing()
    >>> obs.registry.counter("demo_total").default().inc()
    >>> "demo_total 1" in obs.registry.write_prometheus()
    True
"""

from repro.obs.flight import FlightDump, FlightRecorder
from repro.obs.hub import (
    Observability,
    configure,
    configured,
    default_observability,
)
from repro.obs.slo import (
    CLASS_FREE,
    CLASS_PAID,
    DEFAULT_SLO_POLICY,
    SERVE_SLO_POLICY,
    TENANT_CLASSES,
    SloObjective,
    SloPolicy,
    SloTracker,
    classify_fanout,
)
from repro.obs.metrics import (
    LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    RateLimitedWarner,
    linear_buckets,
    log_scale_buckets,
)
from repro.obs.slowlog import SlowQuery, SlowQueryLog
from repro.obs.tracing import (
    NULL_SPAN,
    Span,
    TraceContext,
    Tracer,
    current_context,
    current_tracer,
    span,
    spans_to_chrome_events,
    write_chrome_trace,
)

__all__ = [
    "Observability",
    "configure",
    "configured",
    "default_observability",
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "RateLimitedWarner",
    "LATENCY_BUCKETS",
    "linear_buckets",
    "log_scale_buckets",
    "SlowQuery",
    "SlowQueryLog",
    "FlightDump",
    "FlightRecorder",
    "DEFAULT_SLO_POLICY",
    "SERVE_SLO_POLICY",
    "CLASS_PAID",
    "CLASS_FREE",
    "TENANT_CLASSES",
    "SloObjective",
    "SloPolicy",
    "SloTracker",
    "classify_fanout",
    "Tracer",
    "Span",
    "TraceContext",
    "NULL_SPAN",
    "current_context",
    "current_tracer",
    "span",
    "spans_to_chrome_events",
    "write_chrome_trace",
]
