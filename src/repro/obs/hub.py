"""The Observability bundle and the process-wide opt-in default.

:class:`Observability` groups the three instruments — metrics registry,
tracer, slow-query log — that :class:`~repro.server.server.QueryServer`
and the benchmark CLI publish to.  Observability is strictly opt-in:
nothing is collected unless a bundle is passed to the server (or
installed process-wide with :func:`configure`, which is how
``python -m repro.bench --metrics-out`` reaches the servers the
experiment drivers construct deep inside the harness).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

from contextlib import contextmanager

from repro.obs.metrics import MetricsRegistry
from repro.obs.slowlog import SlowQueryLog
from repro.obs.tracing import Tracer


@dataclass
class Observability:
    """One bundle of instruments, shared by everything a server does.

    Attributes:
        registry: counter/gauge/histogram families (always present).
        tracer: span recorder; ``None`` disables span collection (the
            default for long replays — spans accumulate per query).
        slow_queries: top-N retained slow queries.
    """

    registry: MetricsRegistry = field(default_factory=MetricsRegistry)
    tracer: Tracer | None = None
    slow_queries: SlowQueryLog = field(default_factory=SlowQueryLog)

    @classmethod
    def with_tracing(cls, slow_capacity: int = 10) -> "Observability":
        """A fully armed bundle (metrics + spans + slow log)."""
        return cls(
            registry=MetricsRegistry(),
            tracer=Tracer(),
            slow_queries=SlowQueryLog(capacity=slow_capacity),
        )


#: Process-wide default used by servers constructed without an explicit
#: bundle.  ``None`` (the initial state) means observability is off.
_DEFAULT: Observability | None = None


def configure(obs: Observability | None) -> Observability | None:
    """Install (or clear, with ``None``) the process-wide default.

    Returns the previous default so callers can restore it.
    """
    global _DEFAULT
    previous = _DEFAULT
    _DEFAULT = obs
    return previous


def default_observability() -> Observability | None:
    return _DEFAULT


@contextmanager
def configured(obs: Observability) -> Iterator[Observability]:
    """Scoped :func:`configure` that restores the previous default."""
    previous = configure(obs)
    try:
        yield obs
    finally:
        configure(previous)
