"""The Observability bundle and the process-wide opt-in default.

:class:`Observability` groups the three instruments — metrics registry,
tracer, slow-query log — that :class:`~repro.server.server.QueryServer`
and the benchmark CLI publish to.  Observability is strictly opt-in:
nothing is collected unless a bundle is passed to the server (or
installed process-wide with :func:`configure`, which is how
``python -m repro.bench --metrics-out`` reaches the servers the
experiment drivers construct deep inside the harness).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

from contextlib import contextmanager

from repro.obs.flight import FlightRecorder
from repro.obs.metrics import MetricsRegistry
from repro.obs.slo import DEFAULT_SLO_POLICY, SloPolicy
from repro.obs.slowlog import SlowQueryLog
from repro.obs.tracing import Tracer


@dataclass
class Observability:
    """One bundle of instruments, shared by everything a server does.

    Attributes:
        registry: counter/gauge/histogram families (always present).
        tracer: span recorder; ``None`` disables span collection (the
            default for long replays — spans accumulate per query).
        slow_queries: top-N retained slow queries.
        flight: ring buffer of recent completed traces, dumped on
            faults/breaker-open/failover; ``None`` disables it (it only
            makes sense alongside a tracer).
        slo_policy: the latency objectives the serving layer scores
            queries against (``repro_slo_*`` families, DESIGN.md §13).
    """

    registry: MetricsRegistry = field(default_factory=MetricsRegistry)
    tracer: Tracer | None = None
    slow_queries: SlowQueryLog = field(default_factory=SlowQueryLog)
    flight: FlightRecorder | None = None
    slo_policy: SloPolicy = field(default_factory=lambda: DEFAULT_SLO_POLICY)

    def __post_init__(self) -> None:
        # the recorder feeds from completed root spans; wire it to the
        # tracer exactly once, here, so callers can't forget
        if self.tracer is not None and self.flight is not None:
            self.tracer.on_trace_complete = self.flight.on_trace

    @classmethod
    def with_tracing(
        cls,
        slow_capacity: int = 10,
        flight_capacity: int = 32,
        slo_policy: SloPolicy | None = None,
    ) -> "Observability":
        """A fully armed bundle (metrics + spans + slow log + flight)."""
        return cls(
            registry=MetricsRegistry(),
            tracer=Tracer(),
            slow_queries=SlowQueryLog(capacity=slow_capacity),
            flight=FlightRecorder(capacity=flight_capacity),
            slo_policy=slo_policy or DEFAULT_SLO_POLICY,
        )


#: Process-wide default used by servers constructed without an explicit
#: bundle.  ``None`` (the initial state) means observability is off.
_DEFAULT: Observability | None = None


def configure(obs: Observability | None) -> Observability | None:
    """Install (or clear, with ``None``) the process-wide default.

    Returns the previous default so callers can restore it.
    """
    global _DEFAULT
    previous = _DEFAULT
    _DEFAULT = obs
    return previous


def default_observability() -> Observability | None:
    return _DEFAULT


@contextmanager
def configured(obs: Observability) -> Iterator[Observability]:
    """Scoped :func:`configure` that restores the previous default."""
    previous = configure(obs)
    try:
        yield obs
    finally:
        configure(previous)
