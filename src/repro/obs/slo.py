"""Per-class latency SLOs with multi-window error-budget burn rates.

The paper's evaluation argues about means and tails; a serving cluster
is *operated* against objectives: "99% of point queries under 50 ms of
modelled time".  This module scores every query against such an
objective over the **modelled clock** (replay event time — replays are
deterministic, so attainment and burn rates are too):

* :class:`SloObjective` — one class's latency threshold and target
  attainment ratio;
* :class:`SloPolicy` — the class → objective map plus the burn-rate
  windows (the classic multi-window alerting pair: a short window that
  reacts and a long window that confirms);
* :class:`SloTracker` — the recorder.  Fed one ``(class, latency,
  now)`` triple per query, it maintains total/breach counts, windowed
  burn rates, and (when given a registry) the ``repro_slo_*`` metric
  families.

**Burn rate** is the standard SRE quantity: the error rate observed in
a window divided by the error budget (``1 - target``).  Burn 1.0 means
the budget is being consumed exactly as fast as it accrues; burn 14.4
on a 99.9% objective eats a 30-day budget in 2 days.

Query classes default to the routing shape — ``point`` (fanout 1) vs
``scatter`` (cross-shard fan-out) — because that is the latency split
the cluster layer actually serves; policies with custom classes and
thresholds are plain data.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any, Mapping

from repro.errors import ConfigError
from repro.obs.metrics import MetricsRegistry


@dataclass(frozen=True)
class SloObjective:
    """One query class's objective: latency threshold + target ratio.

    Attributes:
        threshold_s: modelled latency above which a query breaches.
        target: required fraction of queries under the threshold.
    """

    threshold_s: float
    target: float = 0.99

    def __post_init__(self) -> None:
        if self.threshold_s <= 0:
            raise ConfigError(f"threshold_s must be positive, got {self.threshold_s}")
        if not 0.0 < self.target < 1.0:
            raise ConfigError(f"target must be in (0, 1), got {self.target}")

    @property
    def budget(self) -> float:
        """The error budget: allowed breach fraction (``1 - target``)."""
        return 1.0 - self.target


@dataclass(frozen=True)
class SloPolicy:
    """The class → objective map plus the burn-rate windows (modelled s)."""

    objectives: Mapping[str, SloObjective]
    windows_s: tuple[float, ...] = (60.0, 3600.0)

    def __post_init__(self) -> None:
        if not self.objectives:
            raise ConfigError("an SLO policy needs at least one objective")
        if not self.windows_s:
            raise ConfigError("an SLO policy needs at least one burn window")
        if any(w <= 0 for w in self.windows_s):
            raise ConfigError(f"windows must be positive, got {self.windows_s}")

    def objective_for(self, cls: str) -> SloObjective:
        try:
            return self.objectives[cls]
        except KeyError:
            raise ConfigError(
                f"no SLO objective for query class {cls!r} "
                f"(have {sorted(self.objectives)})"
            ) from None


def classify_fanout(fanout: int) -> str:
    """The default query classifier: routing shape, not tenant."""
    return "scatter" if fanout > 1 else "point"


#: Default objectives, in modelled seconds.  Point queries ride one
#: shard; scatter queries pay fan-out, so their threshold is wider.
DEFAULT_SLO_POLICY = SloPolicy(
    objectives={
        "point": SloObjective(threshold_s=0.050, target=0.99),
        "scatter": SloObjective(threshold_s=0.200, target=0.99),
    }
)

#: The serving front door's tenant classes (``repro.serve``): its SLOs
#: are scored per priority class, not per routing shape.
CLASS_PAID = "paid"
CLASS_FREE = "free"

#: The third request shape (DESIGN.md §15): a subscription refresh tick.
#: Not a tenant class — standing queries are registered, not admitted —
#: so it is absent from :data:`TENANT_CLASSES` and scored only when the
#: front door runs ticks.
CLASS_SUB = "sub"

TENANT_CLASSES: tuple[str, ...] = (CLASS_PAID, CLASS_FREE)

#: Default front-door objectives over *serve* latency (modelled queue
#: wait + modelled service time, DESIGN.md §14).  The paid class is what
#: overload control protects; the free class gets a loose objective it
#: is allowed to miss under load shedding.  Subscription refreshes
#: (DESIGN.md §15) are batch work riding behind interactive traffic, so
#: their objective is wide and soft.
SERVE_SLO_POLICY = SloPolicy(
    objectives={
        CLASS_PAID: SloObjective(threshold_s=0.500, target=0.99),
        CLASS_FREE: SloObjective(threshold_s=1.000, target=0.50),
        CLASS_SUB: SloObjective(threshold_s=2.000, target=0.90),
    }
)


class _Window:
    """One class's sliding window: (t, breached) events + running sums."""

    __slots__ = ("width_s", "events", "total", "breaches")

    def __init__(self, width_s: float) -> None:
        self.width_s = width_s
        self.events: deque[tuple[float, bool]] = deque()
        self.total = 0
        self.breaches = 0

    def add(self, now: float, breached: bool) -> None:
        self.events.append((now, breached))
        self.total += 1
        self.breaches += breached
        cutoff = now - self.width_s
        while self.events and self.events[0][0] < cutoff:
            _, old = self.events.popleft()
            self.total -= 1
            self.breaches -= old

    def error_rate(self) -> float:
        return self.breaches / self.total if self.total else 0.0


@dataclass
class _ClassState:
    objective: SloObjective
    total: int = 0
    breaches: int = 0
    windows: dict[float, _Window] = field(default_factory=dict)
    worst_trace_id: str | None = None
    worst_latency_s: float = 0.0


class SloTracker:
    """Scores queries against a policy; optionally publishes metrics.

    With a registry, maintains the ``repro_slo_*`` families documented
    in README.md §Observability:

    * ``repro_slo_requests_total{class}`` / ``repro_slo_breaches_total{class}``
    * ``repro_slo_attainment_ratio{class}`` (gauge, cumulative)
    * ``repro_slo_error_budget_burn{class,window}`` (gauge, per window)
    * ``repro_slo_latency_target_seconds{class}`` (gauge, the threshold)
    """

    def __init__(
        self,
        policy: SloPolicy | None = None,
        registry: MetricsRegistry | None = None,
    ) -> None:
        self.policy = policy or DEFAULT_SLO_POLICY
        self._classes: dict[str, _ClassState] = {}
        self._registry = registry
        if registry is not None:
            self._requests = registry.counter(
                "repro_slo_requests_total",
                help="Queries scored against their class SLO.",
                labelnames=("slo_class",),
            )
            self._breaches = registry.counter(
                "repro_slo_breaches_total",
                help="Queries over their class latency threshold.",
                labelnames=("slo_class",),
            )
            self._attainment = registry.gauge(
                "repro_slo_attainment_ratio",
                help="Fraction of queries under the class threshold.",
                labelnames=("slo_class",),
            )
            self._burn = registry.gauge(
                "repro_slo_error_budget_burn",
                help="Windowed error rate over the class error budget "
                "(1.0 = budget consumed exactly as it accrues).",
                labelnames=("slo_class", "window"),
            )
            self._target = registry.gauge(
                "repro_slo_latency_target_seconds",
                help="The class latency threshold being scored against.",
                labelnames=("slo_class",),
            )

    def _state(self, cls: str) -> _ClassState:
        state = self._classes.get(cls)
        if state is None:
            objective = self.policy.objective_for(cls)
            state = self._classes[cls] = _ClassState(
                objective,
                windows={w: _Window(w) for w in self.policy.windows_s},
            )
            if self._registry is not None:
                self._target.labels(slo_class=cls).set(objective.threshold_s)
        return state

    # -- recording -----------------------------------------------------
    def record(
        self,
        cls: str,
        latency_s: float,
        now: float,
        trace_id: str | None = None,
    ) -> bool:
        """Score one query at modelled time ``now``.

        Returns:
            True when the query breached its class threshold.
        """
        state = self._state(cls)
        breached = latency_s > state.objective.threshold_s
        state.total += 1
        state.breaches += breached
        if breached and latency_s > state.worst_latency_s:
            state.worst_latency_s = latency_s
            state.worst_trace_id = trace_id
        for window in state.windows.values():
            window.add(now, breached)
        if self._registry is not None:
            self._requests.labels(slo_class=cls).inc()
            if breached:
                self._breaches.labels(slo_class=cls).inc()
            self._attainment.labels(slo_class=cls).set(
                (state.total - state.breaches) / state.total
            )
            budget = state.objective.budget
            for width, window in state.windows.items():
                self._burn.labels(slo_class=cls, window=_fmt_window(width)).set(
                    window.error_rate() / budget
                )
        return breached

    # -- reporting -----------------------------------------------------
    def attainment(self, cls: str) -> float:
        """Cumulative attained ratio for a class (1.0 before traffic)."""
        state = self._classes.get(cls)
        if state is None or state.total == 0:
            return 1.0
        return (state.total - state.breaches) / state.total

    def burn_rate(self, cls: str, window_s: float) -> float:
        """Error-budget burn in one window (0.0 before traffic)."""
        state = self._classes.get(cls)
        if state is None:
            return 0.0
        window = state.windows.get(window_s)
        if window is None:
            raise ConfigError(
                f"window {window_s} not in policy windows {self.policy.windows_s}"
            )
        return window.error_rate() / state.objective.budget

    def report(self) -> dict[str, dict[str, Any]]:
        """Per-class SLO outcome: the dict ReplayReport embeds.

        ``budget_consumed`` is the cumulative breach rate over the error
        budget — above 1.0 the objective has been missed outright.
        """
        out: dict[str, dict[str, Any]] = {}
        for cls in sorted(self._classes):
            state = self._classes[cls]
            attained = self.attainment(cls)
            out[cls] = {
                "requests": state.total,
                "breaches": state.breaches,
                "threshold_s": state.objective.threshold_s,
                "target": state.objective.target,
                "attainment": attained,
                "met": attained >= state.objective.target,
                "budget_consumed": (1.0 - attained) / state.objective.budget,
                "burn_rates": {
                    _fmt_window(w): state.windows[w].error_rate()
                    / state.objective.budget
                    for w in self.policy.windows_s
                },
                "worst_trace_id": state.worst_trace_id,
            }
        return out


def _fmt_window(width_s: float) -> str:
    """A stable label for a window width (``60s``, ``3600s``)."""
    if float(width_s).is_integer():
        return f"{int(width_s)}s"
    return f"{width_s}s"
