"""A bounded top-N slow-query log with per-phase breakdowns.

Aggregates (histograms, percentiles) say the p99 moved; the slow-query
log says *which* queries sit in that tail and what they spent their
time on — the cold-cell first-query latency spikes the maintenance
policies exist to bound (``repro.server.maintenance``) show up here as
entries dominated by the ``clean_cells`` phase with large backlog
attributes.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Mapping

from repro.errors import ConfigError


@dataclass(frozen=True, slots=True)
class SlowQuery:
    """One retained slow query: its latency, phase split and context."""

    seq: int
    modeled_s: float
    wall_s: float
    phases: Mapping[str, float]
    attrs: Mapping[str, Any]

    def as_dict(self) -> dict[str, Any]:
        return {
            "seq": self.seq,
            "modeled_s": self.modeled_s,
            "wall_s": self.wall_s,
            "phases": dict(self.phases),
            **dict(self.attrs),
        }


@dataclass
class SlowQueryLog:
    """Keeps the ``capacity`` slowest queries seen, by modelled latency."""

    capacity: int = 10
    _heap: list[tuple[float, int, SlowQuery]] = field(default_factory=list)
    _seq: "itertools.count[int]" = field(default_factory=itertools.count)

    def __post_init__(self) -> None:
        if self.capacity < 1:
            raise ConfigError(f"capacity must be >= 1, got {self.capacity}")

    def record(
        self,
        modeled_s: float,
        wall_s: float = 0.0,
        phases: Mapping[str, float] | None = None,
        **attrs: Any,
    ) -> None:
        """Offer one query; it is retained only if it makes the top N."""
        seq = next(self._seq)
        if len(self._heap) >= self.capacity and modeled_s <= self._heap[0][0]:
            return
        entry = SlowQuery(
            seq=seq,
            modeled_s=modeled_s,
            wall_s=wall_s,
            phases=dict(phases or {}),
            attrs=attrs,
        )
        if len(self._heap) < self.capacity:
            heapq.heappush(self._heap, (modeled_s, seq, entry))
        else:
            heapq.heapreplace(self._heap, (modeled_s, seq, entry))

    def __len__(self) -> int:
        return len(self._heap)

    def entries(self) -> list[SlowQuery]:
        """Retained queries, slowest first."""
        return [e for _, _, e in sorted(self._heap, key=lambda t: -t[0])]

    def as_dicts(self) -> list[dict[str, Any]]:
        return [e.as_dict() for e in self.entries()]

    def worst_phase(self) -> str | None:
        """The phase dominating the single slowest query (None if empty)."""
        entries = self.entries()
        if not entries or not entries[0].phases:
            return None
        return max(entries[0].phases.items(), key=lambda kv: kv[1])[0]
