"""A dependency-free metrics registry with Prometheus/JSON exposition.

The paper's evaluation is one long argument about *where time goes* —
lazy caching vs. cleaning cost (Section IV), kernel time vs. PCIe
transfer volume (Section V) — so the serving layer needs first-class
counters, gauges and histograms rather than ad-hoc attributes scattered
over reports.  This module provides the three Prometheus metric kinds
with labeled families, a text-exposition writer compatible with the
`Prometheus exposition format`_ and a JSON snapshot writer for offline
diffing.  Everything is pure Python and allocation-light: a metric
child is resolved once and then updated by attribute mutation only.

.. _Prometheus exposition format:
   https://prometheus.io/docs/instrumenting/exposition_formats/
"""

from __future__ import annotations

import json
import math
from collections import deque
from pathlib import Path
from typing import Iterable, Mapping

from repro.errors import ConfigError

_INF = float("inf")


def log_scale_buckets(
    lo: float = 1e-6, hi: float = 100.0, per_decade: int = 4
) -> tuple[float, ...]:
    """Fixed log-scale bucket bounds from ``lo`` to ``hi`` (seconds).

    The defaults span microseconds to minutes with ``per_decade`` bounds
    per decade — wide enough for both simulated kernel times (~1e-5 s)
    and modelled end-to-end query latencies (~1e-2 s).
    """
    if lo <= 0 or hi <= lo:
        raise ConfigError(f"invalid bucket range [{lo}, {hi}]")
    if per_decade < 1:
        raise ConfigError(f"per_decade must be >= 1, got {per_decade}")
    decades = math.log10(hi / lo)
    n = int(round(decades * per_decade))
    bounds = [lo * 10 ** (i / per_decade) for i in range(n + 1)]
    return tuple(bounds)


def linear_buckets(lo: float, width: float, count: int) -> tuple[float, ...]:
    """``count`` evenly spaced bucket bounds starting at ``lo``.

    The natural shape for small bounded integers (batch sizes, retry
    counts) where log-scale buckets would waste resolution.
    """
    if width <= 0:
        raise ConfigError(f"width must be positive, got {width}")
    if count < 1:
        raise ConfigError(f"count must be >= 1, got {count}")
    return tuple(lo + i * width for i in range(count))


#: Default latency buckets shared by every duration histogram, so
#: percentiles from different phases are directly comparable.
LATENCY_BUCKETS: tuple[float, ...] = log_scale_buckets()


class Counter:
    """A monotonically increasing count (one labeled child)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ConfigError(f"counters only increase, got {amount}")
        self.value += amount


class Gauge:
    """A value that can go up and down (one labeled child)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount


class Histogram:
    """Cumulative-bucket histogram with quantile estimation.

    Buckets are *upper bounds* (``le`` in Prometheus terms) plus an
    implicit ``+Inf``.  Quantiles are estimated by linear interpolation
    inside the bucket containing the target rank — the standard
    ``histogram_quantile`` estimate, exact enough for the log-scale
    latency buckets this repo reports.
    """

    __slots__ = ("bounds", "counts", "sum", "count", "exemplars")

    def __init__(self, buckets: Iterable[float] | None = None) -> None:
        bounds = tuple(sorted(buckets if buckets is not None else LATENCY_BUCKETS))
        if not bounds:
            raise ConfigError("histogram needs at least one bucket bound")
        if any(b <= a for a, b in zip(bounds, bounds[1:])):
            raise ConfigError("bucket bounds must be strictly increasing")
        self.bounds = bounds
        self.counts = [0] * (len(bounds) + 1)  # final slot is +Inf
        self.sum = 0.0
        self.count = 0
        #: per-bucket exemplar: the latest (value, trace_id) observed in
        #: that bucket — how a latency bucket links back to a concrete
        #: trace in the flight recorder / Chrome trace (DESIGN.md §13)
        self.exemplars: dict[int, tuple[float, str]] = {}

    def observe(self, value: float, exemplar: str | None = None) -> None:
        self.sum += value
        self.count += 1
        lo, hi = 0, len(self.bounds)
        while lo < hi:  # first bound >= value
            mid = (lo + hi) // 2
            if self.bounds[mid] < value:
                lo = mid + 1
            else:
                hi = mid
        self.counts[lo] += 1
        if exemplar is not None:
            self.exemplars[lo] = (value, exemplar)

    def quantile(self, q: float) -> float:
        """Estimated value at quantile ``q`` in [0, 1] (0.0 when empty)."""
        if not 0.0 <= q <= 1.0:
            raise ConfigError(f"quantile must be in [0, 1], got {q}")
        if self.count == 0:
            return 0.0
        rank = q * self.count
        cumulative = 0
        for i, n in enumerate(self.counts):
            cumulative += n
            if cumulative >= rank and n:
                if i == len(self.bounds):  # the +Inf bucket
                    return self.bounds[-1]
                lower = self.bounds[i - 1] if i else 0.0
                upper = self.bounds[i]
                frac = (rank - (cumulative - n)) / n
                return lower + (upper - lower) * max(0.0, min(1.0, frac))
        return self.bounds[-1]

    def percentiles(self) -> dict[str, float]:
        """The p50/p95/p99 summary every report in this repo uses."""
        return {
            "p50": self.quantile(0.50),
            "p95": self.quantile(0.95),
            "p99": self.quantile(0.99),
        }


_KINDS = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}


class MetricFamily:
    """One named metric and its labeled children.

    ``labels(**values)`` resolves (creating on first use) the child for
    one label combination; families declared without label names act as
    their own single child via :meth:`default`.
    """

    def __init__(
        self,
        name: str,
        kind: str,
        help: str = "",
        labelnames: tuple[str, ...] = (),
        buckets: Iterable[float] | None = None,
    ) -> None:
        self.name = name
        self.kind = kind
        self.help = help
        self.labelnames = tuple(labelnames)
        self._buckets = tuple(buckets) if buckets is not None else None
        self._children: dict[tuple[str, ...], Counter | Gauge | Histogram] = {}

    def _make(self) -> Counter | Gauge | Histogram:
        if self.kind == "histogram":
            return Histogram(self._buckets)
        return _KINDS[self.kind]()

    def labels(self, **values: str):
        if set(values) != set(self.labelnames):
            raise ConfigError(
                f"metric {self.name!r} takes labels {self.labelnames}, "
                f"got {tuple(values)}"
            )
        key = tuple(str(values[n]) for n in self.labelnames)
        child = self._children.get(key)
        if child is None:
            child = self._children[key] = self._make()
        return child

    def default(self):
        """The unlabeled child (families declared with no label names)."""
        if self.labelnames:
            raise ConfigError(f"metric {self.name!r} requires labels")
        return self.labels()

    def children(self) -> Mapping[tuple[str, ...], Counter | Gauge | Histogram]:
        return self._children


def _escape(value: str) -> str:
    """Escape a label value per the exposition format spec: backslash
    first (so later escapes aren't double-escaped), then double-quote
    and newline."""
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _escape_help(text: str) -> str:
    """HELP lines escape only backslash and newline (quotes are legal)."""
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _labelset(names: tuple[str, ...], values: tuple[str, ...]) -> str:
    if not names:
        return ""
    inner = ",".join(f'{n}="{_escape(v)}"' for n, v in zip(names, values))
    return "{" + inner + "}"


def _fmt(value: float) -> str:
    if value == _INF:
        return "+Inf"
    if float(value).is_integer():
        return str(int(value))
    return repr(value)


class MetricsRegistry:
    """Holds every metric family plus a bounded ring of warning events.

    Families are created idempotently — ``registry.counter("x")`` twice
    returns the same family — so instrumentation sites anywhere in the
    codebase can resolve their metrics without coordinating creation
    order.  Re-declaring a name with a different kind or label set is a
    :class:`~repro.errors.ConfigError` (it would corrupt the exposition).
    """

    def __init__(self, max_warnings: int = 64) -> None:
        self._families: dict[str, MetricFamily] = {}
        self.warnings: deque[str] = deque(maxlen=max_warnings)
        self._warn_counter = self.counter(
            "repro_warnings_total",
            help="Warning events emitted through the registry.",
            labelnames=("source",),
        )

    # -- family creation ----------------------------------------------
    def _family(
        self,
        name: str,
        kind: str,
        help: str,
        labelnames: tuple[str, ...],
        buckets: Iterable[float] | None = None,
    ) -> MetricFamily:
        family = self._families.get(name)
        if family is not None:
            if family.kind != kind or family.labelnames != tuple(labelnames):
                raise ConfigError(
                    f"metric {name!r} already registered as {family.kind} "
                    f"with labels {family.labelnames}"
                )
            return family
        family = MetricFamily(name, kind, help, tuple(labelnames), buckets)
        self._families[name] = family
        return family

    def counter(
        self, name: str, help: str = "", labelnames: tuple[str, ...] = ()
    ) -> MetricFamily:
        return self._family(name, "counter", help, labelnames)

    def gauge(
        self, name: str, help: str = "", labelnames: tuple[str, ...] = ()
    ) -> MetricFamily:
        return self._family(name, "gauge", help, labelnames)

    def histogram(
        self,
        name: str,
        help: str = "",
        labelnames: tuple[str, ...] = (),
        buckets: Iterable[float] | None = None,
    ) -> MetricFamily:
        return self._family(name, "histogram", help, labelnames, buckets)

    def families(self) -> Mapping[str, MetricFamily]:
        return self._families

    # -- warnings ------------------------------------------------------
    def warn(self, source: str, message: str) -> None:
        """Record a one-line warning event (never prints)."""
        self._warn_counter.labels(source=source).inc()
        self.warnings.append(f"[{source}] {message}")

    # -- exposition ----------------------------------------------------
    def write_prometheus(self, exemplars: bool = False) -> str:
        """The registry in Prometheus text exposition format.

        With ``exemplars=True``, histogram bucket lines carry their
        exemplar in OpenMetrics syntax (``... # {trace_id="..."} v``);
        the default stays classic-parser compatible.
        """
        lines: list[str] = []
        for name in sorted(self._families):
            family = self._families[name]
            if not family.children():
                continue
            if family.help:
                lines.append(f"# HELP {name} {_escape_help(family.help)}")
            lines.append(f"# TYPE {name} {family.kind}")
            for key, child in sorted(family.children().items()):
                labels = _labelset(family.labelnames, key)
                if isinstance(child, Histogram):
                    cumulative = 0
                    for i, (bound, n) in enumerate(
                        zip((*child.bounds, _INF), child.counts)
                    ):
                        cumulative += n
                        le = _labelset(
                            (*family.labelnames, "le"), (*key, _fmt(bound))
                        )
                        line = f"{name}_bucket{le} {cumulative}"
                        if exemplars and i in child.exemplars:
                            value, trace_id = child.exemplars[i]
                            line += (
                                f' # {{trace_id="{_escape(trace_id)}"}}'
                                f" {repr(value)}"
                            )
                        lines.append(line)
                    lines.append(f"{name}_sum{labels} {repr(child.sum)}")
                    lines.append(f"{name}_count{labels} {child.count}")
                else:
                    lines.append(f"{name}{labels} {_fmt(child.value)}")
        return "\n".join(lines) + "\n"

    def snapshot(self) -> dict[str, object]:
        """A JSON-serialisable dump of every family and warning."""
        out: dict[str, object] = {"warnings": list(self.warnings)}
        metrics: dict[str, object] = {}
        for name, family in self._families.items():
            children = []
            for key, child in family.children().items():
                labels = dict(zip(family.labelnames, key))
                if isinstance(child, Histogram):
                    bucket_names = [_fmt(b) for b in (*child.bounds, _INF)]
                    entry: dict[str, object] = {
                        "labels": labels,
                        "sum": child.sum,
                        "count": child.count,
                        "buckets": dict(zip(bucket_names, child.counts)),
                        **child.percentiles(),
                    }
                    if child.exemplars:
                        entry["exemplars"] = {
                            bucket_names[i]: {"value": value, "trace_id": trace_id}
                            for i, (value, trace_id) in sorted(
                                child.exemplars.items()
                            )
                        }
                    children.append(entry)
                else:
                    children.append({"labels": labels, "value": child.value})
            metrics[name] = {"type": family.kind, "values": children}
        out["metrics"] = metrics
        return out

    def write_json(self, path: str | Path) -> Path:
        path = Path(path)
        path.write_text(json.dumps(self.snapshot(), indent=2))
        return path


class RateLimitedWarner:
    """Rate-limited warning events with a cumulative count.

    The registry's warning ring is bounded; a condition that fires on
    every operation (a workload where every query falls back, a shard
    that keeps failing over) would bury it in duplicates.  The shared
    policy — established by the server's fallback warning and reused by
    the cluster router — is: warn on the **first** occurrence and then
    on every ``every``-th, carrying the cumulative count in the message
    so nothing is lost by the suppression.

    Suppressed occurrences are additionally counted in the
    ``repro_warnings_suppressed_total{source}`` family, so dashboards
    see the true event rate instead of having to parse cumulative
    counts back out of log text.

    Example:
        >>> reg = MetricsRegistry()
        >>> warner = RateLimitedWarner(reg, "example")
        >>> for _ in range(150):
        ...     _ = warner.record("widgets dropped")
        >>> [w for w in reg.warnings]
        ["[example] 1 widgets dropped", "[example] 100 widgets dropped"]
    """

    def __init__(
        self, registry: MetricsRegistry, source: str, every: int = 100
    ) -> None:
        if every < 1:
            raise ConfigError(f"every must be >= 1, got {every}")
        self.registry = registry
        self.source = source
        self.every = every
        #: cumulative occurrences recorded (warned or suppressed)
        self.count = 0
        self._suppressed = registry.counter(
            "repro_warnings_suppressed_total",
            help="Warning occurrences suppressed by rate limiting.",
            labelnames=("source",),
        ).labels(source=source)

    def record(self, what: str, detail: str = "") -> bool:
        """Count one occurrence; emit the warning if it is due.

        ``what`` is the rate-limited message stem (prefixed with the
        cumulative count); ``detail`` carries occurrence-specific context
        that only appears on the emitted warnings.

        Returns:
            True when a warning was actually emitted.
        """
        self.count += 1
        if self.count != 1 and self.count % self.every != 0:
            self._suppressed.inc()
            return False
        message = f"{self.count} {what}"
        if detail:
            message = f"{message} ({detail})"
        self.registry.warn(self.source, message)
        return True
