"""Device memory model: allocations and byte-size estimation.

The simulator tracks a device memory budget (the paper's Quadro P2000 has
5 GB; V-Tree (G) on the USA dataset is dropped from Fig. 5 because its
index exceeds it) and charges host<->device transfers by the byte sizes
the paper's C structs would have: a message is five 4-byte fields, an edge
12 bytes, a vertex 32 bytes and a cell 128 bytes including padding
(Section VII-C1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

import numpy as np

from repro.errors import DeviceMemoryError

#: Byte sizes of the paper's packed structures (Section VII-C1).
MESSAGE_BYTES = 20  # <o, c, e, d, t> as five 4-byte fields
EDGE_BYTES = 12  # <id, v_s, w>
VERTEX_BYTES = 32  # id + n + delta_v edges at delta_v = 2
CELL_BYTES = 128  # 104 bytes payload padded to the 128-byte cache line
TABLE_ENTRY_BYTES = 24  # hash-table entry: key + value tuple


def nbytes_of(obj: Any) -> int:
    """Estimate the device size in bytes of a host object.

    Numpy arrays report exactly; objects may implement ``device_nbytes()``;
    lists/tuples/sets/dicts sum their elements (dict entries add hashing
    overhead); scalars count as 4-byte words.  Unknown objects raise so
    accounting bugs surface instead of silently under-counting.
    """
    if obj is None:
        return 0
    if isinstance(obj, np.ndarray):
        return int(obj.nbytes)
    if hasattr(obj, "device_nbytes"):
        return int(obj.device_nbytes())
    if isinstance(obj, (bool, int, float, np.integer, np.floating)):
        return 4
    if isinstance(obj, (list, tuple, set, frozenset)):
        return sum(nbytes_of(x) for x in obj)
    if isinstance(obj, dict):
        return sum(TABLE_ENTRY_BYTES + nbytes_of(v) for v in obj.values())
    raise DeviceMemoryError(f"cannot size object of type {type(obj).__name__}")


@dataclass
class DeviceAllocation:
    """One named allocation living in simulated device memory."""

    name: str
    data: Any
    nbytes: int


class DeviceMemory:
    """Named-allocation device memory with a hard byte budget."""

    def __init__(self, capacity_bytes: int) -> None:
        if capacity_bytes <= 0:
            raise DeviceMemoryError(f"capacity must be positive, got {capacity_bytes}")
        self.capacity_bytes = capacity_bytes
        self._allocations: dict[str, DeviceAllocation] = {}
        # Optional fault hook called as ``alloc_hook(name, nbytes)`` before
        # every store; raising DeviceMemoryError simulates device OOM.
        # Installed via SimGpu.install_fault_hook (see repro.chaos).
        self.alloc_hook: "object | None" = None

    @property
    def used_bytes(self) -> int:
        return sum(a.nbytes for a in self._allocations.values())

    @property
    def free_bytes(self) -> int:
        return self.capacity_bytes - self.used_bytes

    def store(self, name: str, data: Any, nbytes: int | None = None) -> DeviceAllocation:
        """Place ``data`` on the device under ``name`` (replacing any prior).

        Raises:
            DeviceMemoryError: when the allocation would exceed capacity.
        """
        size = nbytes_of(data) if nbytes is None else nbytes
        if self.alloc_hook is not None:
            self.alloc_hook(name, size)
        existing = self._allocations.get(name)
        projected = self.used_bytes - (existing.nbytes if existing else 0) + size
        if projected > self.capacity_bytes:
            raise DeviceMemoryError(
                f"allocating {size} bytes for {name!r} exceeds device capacity "
                f"({projected} > {self.capacity_bytes})"
            )
        alloc = DeviceAllocation(name, data, size)
        self._allocations[name] = alloc
        return alloc

    def fetch(self, name: str) -> Any:
        """Return the data stored under ``name``.

        Raises:
            DeviceMemoryError: when nothing is allocated under that name.
        """
        if name not in self._allocations:
            raise DeviceMemoryError(f"no device allocation named {name!r}")
        return self._allocations[name].data

    def nbytes(self, name: str) -> int:
        if name not in self._allocations:
            raise DeviceMemoryError(f"no device allocation named {name!r}")
        return self._allocations[name].nbytes

    def free(self, name: str) -> None:
        """Release an allocation (idempotent)."""
        self._allocations.pop(name, None)

    def __contains__(self, name: str) -> bool:
        return name in self._allocations
