"""A deterministic software GPU used in place of CUDA.

The paper's algorithms use the GPU in four specific ways — lockstep SIMT
kernels, warp *butterfly shuffles* (``shuffle_xor``), ``sync_threads``
barriers, and explicit host<->device transfers (optionally pipelined
through streams).  This subpackage implements exactly those semantics in
software, together with a calibrated cost model, so that every paper
kernel runs unmodified in spirit and the benchmarks report simulated GPU
time and transfer volumes with the right *shape* (see DESIGN.md §2).

* :mod:`repro.simgpu.stats` — operation/transfer counters and times;
* :mod:`repro.simgpu.memory` — device allocations and byte accounting;
* :mod:`repro.simgpu.warp` — warp-level shuffle primitives;
* :mod:`repro.simgpu.kernel` — kernel launch contexts;
* :mod:`repro.simgpu.device` — the :class:`SimGpu` device + cost model;
* :mod:`repro.simgpu.stream` — pipelined transfer/compute streams.
"""

from repro.simgpu.device import CostModel, SimGpu
from repro.simgpu.kernel import KernelContext
from repro.simgpu.stats import GpuStats
from repro.simgpu.reduce import ballot, warp_reduce
from repro.simgpu.stream import PipelinedStream
from repro.simgpu.trace import GpuTrace
from repro.simgpu.warp import shuffle_xor

__all__ = [
    "CostModel",
    "SimGpu",
    "KernelContext",
    "GpuStats",
    "PipelinedStream",
    "shuffle_xor",
    "ballot",
    "warp_reduce",
    "GpuTrace",
]
