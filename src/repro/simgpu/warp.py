"""Warp-level primitives: butterfly shuffle and friends.

CUDA's ``__shfl_xor_sync`` lets lane ``j`` of a warp read the register of
lane ``j XOR mask`` with no shared-memory round trip; the paper builds its
lock-free message deduplication on exactly this *butterfly shuffle*
(Section IV-C2).  Here a "register file" is a Python list indexed by lane,
and a shuffle is the corresponding permutation — which is an involution,
a property the tests verify.
"""

from __future__ import annotations

from typing import Sequence, TypeVar

from repro.errors import KernelError

T = TypeVar("T")


def shuffle_xor(values: Sequence[T], lane_mask: int, width: int | None = None) -> list[T]:
    """Butterfly-shuffle ``values`` between lanes.

    Lane ``j`` receives the value held by lane ``j XOR lane_mask``; with
    ``width`` given, lanes are grouped into independent sub-warps of that
    size and the mask must stay within a group (CUDA's ``width`` parameter
    to ``__shfl_xor_sync``).

    Args:
        values: one value per lane.
        lane_mask: the XOR mask ``s``; threads ``j`` and ``j ^ s`` swap.
        width: sub-warp width; defaults to ``len(values)``.

    Returns:
        The new per-lane values (input is not modified).

    Raises:
        KernelError: non-power-of-two geometry or mask escaping the group.
    """
    n = len(values)
    if width is None:
        width = n
    if width <= 0 or width & (width - 1):
        raise KernelError(f"shuffle width must be a power of two, got {width}")
    if n % width:
        raise KernelError(f"lane count {n} is not a multiple of width {width}")
    if not 0 <= lane_mask < width:
        raise KernelError(f"lane mask {lane_mask} out of range for width {width}")
    out: list[T] = [None] * n  # type: ignore[list-item]
    for j in range(n):
        group = j - (j % width)
        out[j] = values[group + ((j % width) ^ lane_mask)]
    return out


def lane_id(thread_id: int, warp_size: int) -> int:
    """Lane index of a thread within its warp."""
    if warp_size <= 0 or warp_size & (warp_size - 1):
        raise KernelError(f"warp size must be a power of two, got {warp_size}")
    return thread_id % warp_size


def warp_id(thread_id: int, warp_size: int) -> int:
    """Warp index of a thread."""
    if warp_size <= 0 or warp_size & (warp_size - 1):
        raise KernelError(f"warp size must be a power of two, got {warp_size}")
    return thread_id // warp_size


def bundle_spans(n_threads: int, bundle_size: int) -> list[range]:
    """Thread-id ranges of the equi-sized bundles (Section IV-C1).

    The final bundle may be short when ``n_threads`` is not a multiple of
    ``bundle_size`` — the X-shuffle pads it with empty lanes.
    """
    if bundle_size <= 0 or bundle_size & (bundle_size - 1):
        raise KernelError(f"bundle size must be a power of two, got {bundle_size}")
    return [
        range(start, min(start + bundle_size, n_threads))
        for start in range(0, n_threads, bundle_size)
    ]
