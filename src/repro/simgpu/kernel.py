"""Kernel execution contexts.

A kernel in this simulator is a Python function written in lockstep style:
it manipulates per-lane arrays (one slot per thread) phase by phase and
reports its work through the :class:`KernelContext` —
:meth:`~KernelContext.charge` for plain lane operations,
:meth:`~KernelContext.shuffle_xor` for butterfly shuffles and
:meth:`~KernelContext.sync_threads` for barriers.  The context converts
those into simulated time using the owning device's cost model, including
the warp-size effect: shuffles across warp boundaries cost a full barrier,
which is why bundles larger than one warp slow down (Fig. 4b).
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, Sequence, TypeVar

from repro.simgpu import warp as warp_mod

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.simgpu.device import SimGpu

T = TypeVar("T")


class KernelContext:
    """Work-accounting handle passed to every simulated kernel."""

    def __init__(self, device: "SimGpu", name: str, n_threads: int) -> None:
        self.device = device
        self.name = name
        self.n_threads = n_threads
        self.lane_ops = 0
        self.shuffle_ops = 0
        self.sync_count = 0
        self.atomic_ops = 0
        self.elapsed_s = 0.0

    # ------------------------------------------------------------------
    # work charging
    # ------------------------------------------------------------------
    def charge(self, ops_per_thread: float, n_threads: int | None = None) -> None:
        """Charge ``ops_per_thread`` lane operations on ``n_threads`` lanes."""
        n = self.n_threads if n_threads is None else n_threads
        self.lane_ops += int(math.ceil(ops_per_thread * n))
        self.elapsed_s += self.device.cost_model.op_time(n, ops_per_thread)

    def charge_mem(self, ops_per_thread: float, n_threads: int | None = None) -> None:
        """Charge global-memory accesses (slower than register ops)."""
        n = self.n_threads if n_threads is None else n_threads
        self.lane_ops += int(math.ceil(ops_per_thread * n))
        self.elapsed_s += self.device.cost_model.mem_time(n, ops_per_thread)

    def charge_atomic(self, writes: int) -> None:
        """Charge racy/atomic global-table writes (serialised per conflict)."""
        self.atomic_ops += writes
        # atomics contend: model as ~4x a plain lane op each
        self.elapsed_s += writes * 4 * self.device.cost_model.lane_op_time_s

    def sync_threads(self) -> None:
        """A grid-wide barrier (the expensive one past warp boundaries)."""
        self.sync_count += 1
        self.elapsed_s += self.device.cost_model.sync_cost_s

    # ------------------------------------------------------------------
    # warp primitives
    # ------------------------------------------------------------------
    def charge_shuffle(self, bundle_size: int, n_threads: int | None = None) -> None:
        """Charge one butterfly-shuffle step over all lanes of the launch.

        When the bundle fits in a warp the shuffle costs one instruction
        per lane; when it spans multiple warps the exchange must go
        through shared memory guarded by a barrier, modelled as the
        shuffle plus a ``sync_threads`` (this is the Fig. 4b effect).
        """
        cm = self.device.cost_model
        n = self.n_threads if n_threads is None else n_threads
        self.shuffle_ops += n
        self.elapsed_s += cm.op_time(n, 1) * (cm.shuffle_op_time_s / cm.lane_op_time_s)
        if bundle_size > cm.warp_size:
            self.sync_threads()

    def shuffle_xor(self, values: Sequence[T], lane_mask: int) -> list[T]:
        """Butterfly-shuffle one register across a bundle of lanes,
        charging the cost for exactly this bundle's lanes."""
        self.charge_shuffle(len(values), n_threads=len(values))
        return warp_mod.shuffle_xor(values, lane_mask)

    @property
    def warp_size(self) -> int:
        return self.device.cost_model.warp_size


class JobContext:
    """A per-job view of a fused batch launch's context.

    Batched kernels (``GPU_SDist_Batch`` & friends, see
    :mod:`repro.core.sdist`) run several queries' jobs inside one launch.
    Each job wraps the launch context in a ``JobContext`` carrying that
    job's own thread count, so the fused launch charges exactly the lane
    operations, barriers and simulated time the per-query launches would
    have — what the batch saves is launch overheads and transfer
    latencies, never silently discounted kernel work.
    """

    __slots__ = ("_ctx", "n_threads")

    def __init__(self, ctx: "KernelContext | HostContext", n_threads: int) -> None:
        self._ctx = ctx
        self.n_threads = max(1, n_threads)

    def charge(self, ops_per_thread: float, n_threads: int | None = None) -> None:
        self._ctx.charge(
            ops_per_thread, self.n_threads if n_threads is None else n_threads
        )

    def charge_mem(self, ops_per_thread: float, n_threads: int | None = None) -> None:
        self._ctx.charge_mem(
            ops_per_thread, self.n_threads if n_threads is None else n_threads
        )

    def charge_atomic(self, writes: int) -> None:
        self._ctx.charge_atomic(writes)

    def charge_shuffle(self, bundle_size: int, n_threads: int | None = None) -> None:
        self._ctx.charge_shuffle(
            bundle_size, self.n_threads if n_threads is None else n_threads
        )

    def sync_threads(self) -> None:
        self._ctx.sync_threads()

    def shuffle_xor(self, values: Sequence[T], lane_mask: int) -> list[T]:
        return self._ctx.shuffle_xor(values, lane_mask)

    @property
    def warp_size(self) -> int:
        return self._ctx.warp_size


class HostContext:
    """A no-device kernel context for degraded-mode host execution.

    The resilience ladder (see :mod:`repro.resilience`) runs the
    same lockstep kernel functions on the CPU when the device is
    faulting.  Work charging is a no-op — host execution is paid for in
    measured wall time, not simulated device time — and no
    :class:`~repro.simgpu.device.SimGpu` state is touched, so a host run
    can never trip the fault injector.
    """

    __slots__ = ("name", "n_threads", "warp_size")

    def __init__(self, name: str = "host", n_threads: int = 1, warp_size: int = 32):
        self.name = name
        self.n_threads = n_threads
        self.warp_size = warp_size

    def charge(self, ops_per_thread: float, n_threads: int | None = None) -> None:
        pass

    def charge_mem(self, ops_per_thread: float, n_threads: int | None = None) -> None:
        pass

    def charge_atomic(self, writes: int) -> None:
        pass

    def charge_shuffle(self, bundle_size: int, n_threads: int | None = None) -> None:
        pass

    def sync_threads(self) -> None:
        pass

    def shuffle_xor(self, values: Sequence[T], lane_mask: int) -> list[T]:
        return warp_mod.shuffle_xor(values, lane_mask)
