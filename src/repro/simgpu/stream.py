"""Pipelined host->device streams.

Section V-A: "we use a pipelined strategy, i.e., let the GPU process and
receive messages simultaneously" — message lists are shipped in chunks and
the GPU starts cleaning the first chunk while later chunks are still in
flight.  :class:`PipelinedStream` reproduces the timing of that overlap:
chunk ``i``'s processing starts at
``max(transfer_done[i], process_done[i-1])``, so total time is the classic
two-stage pipeline makespan, and the saving relative to the blocking
schedule is credited to ``stats.pipelined_saved_s``.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.simgpu.device import SimGpu
from repro.simgpu.memory import nbytes_of


class PipelinedStream:
    """Overlapped transfer/compute execution of a chunked workload."""

    def __init__(self, device: SimGpu, enabled: bool = True) -> None:
        self.device = device
        self.enabled = enabled

    def run(
        self,
        chunks: list[Any],
        process: Callable[[int, Any], Any],
        name: str = "stream",
        chunk_nbytes: Callable[[Any], int] | None = None,
    ) -> list[Any]:
        """Transfer each chunk host->device, processing as chunks arrive.

        Args:
            chunks: host-side data chunks, shipped in order.
            process: called once per chunk *after* its transfer; its GPU
                work must be charged through kernels on ``self.device``.
            name: device allocation prefix.
            chunk_nbytes: optional size override per chunk.

        Returns:
            The per-chunk results of ``process``.

        The functional result is identical with pipelining on or off; only
        the simulated timing differs (``pipelined_saved_s`` records the
        hidden transfer time).
        """
        stats = self.device.stats
        results: list[Any] = []
        transfer_done = 0.0
        process_done = 0.0
        blocking_total = 0.0
        for i, chunk in enumerate(chunks):
            size = chunk_nbytes(chunk) if chunk_nbytes else nbytes_of(chunk)
            alloc = f"{name}.chunk{i}"
            before_t = stats.transfer_time_s
            self.device.to_device(alloc, chunk, nbytes=size)
            t_cost = stats.transfer_time_s - before_t
            before_k = stats.kernel_time_s
            try:
                results.append(process(i, self.device.fetch(alloc)))
            finally:
                # a faulting kernel must not leak its chunk allocation —
                # under repeated (injected) faults the leaks would OOM
                # the device and mask the original failure
                self.device.free(alloc)
            k_cost = stats.kernel_time_s - before_k

            transfer_done += t_cost
            process_done = max(transfer_done, process_done) + k_cost
            blocking_total += t_cost + k_cost
        if self.enabled and chunks:
            saved = blocking_total - process_done
            stats.pipelined_saved_s += max(0.0, saved)
        return results
