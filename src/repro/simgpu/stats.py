"""Counters and simulated-time accounting for the software GPU.

Everything the benchmarks report about the GPU comes from here: per-lane
operation counts, shuffle counts, barrier counts, host<->device transfer
bytes, and the simulated times derived from them by the cost model.  The
figures on DRAM–GPU transfer cost (Fig. 10c/d) read these counters
directly.
"""

from __future__ import annotations

from dataclasses import dataclass, fields


@dataclass
class GpuStats:
    """Mutable counter block attached to a :class:`~repro.simgpu.device.SimGpu`.

    Attributes:
        kernel_launches: number of kernels launched.
        batched_launches: launches that fused multiple per-query jobs
            into one kernel (a subset of ``kernel_launches``).
        batched_jobs: per-query jobs carried by those fused launches;
            ``batched_jobs - batched_launches`` is the number of launch
            overheads the batch engine saved.
        lane_ops: total per-lane operations charged by kernels.
        shuffle_ops: warp shuffle instructions executed (per lane).
        sync_count: ``sync_threads`` barriers executed.
        atomic_ops: simulated racy/atomic table writes.
        bytes_h2d: host-to-device bytes transferred.
        bytes_d2h: device-to-host bytes transferred.
        transfers_h2d: host-to-device transfer operations.
        transfers_d2h: device-to-host transfer operations.
        kernel_time_s: simulated kernel execution time.
        transfer_time_s: simulated transfer time (pipelining may make the
            *wall* contribution smaller; streams record the overlap in
            ``pipelined_saved_s``).
        pipelined_saved_s: transfer time hidden by stream overlap.
    """

    kernel_launches: int = 0
    batched_launches: int = 0
    batched_jobs: int = 0
    lane_ops: int = 0
    shuffle_ops: int = 0
    sync_count: int = 0
    atomic_ops: int = 0
    bytes_h2d: int = 0
    bytes_d2h: int = 0
    transfers_h2d: int = 0
    transfers_d2h: int = 0
    kernel_time_s: float = 0.0
    transfer_time_s: float = 0.0
    pipelined_saved_s: float = 0.0

    def reset(self) -> None:
        """Zero every counter in place."""
        for f in fields(self):
            setattr(self, f.name, type(getattr(self, f.name))())

    def snapshot(self) -> "GpuStats":
        """An independent copy of the current counters."""
        return GpuStats(**{f.name: getattr(self, f.name) for f in fields(self)})

    def diff(self, earlier: "GpuStats") -> "GpuStats":
        """Counters accumulated since ``earlier`` (a prior snapshot)."""
        return GpuStats(
            **{
                f.name: getattr(self, f.name) - getattr(earlier, f.name)
                for f in fields(self)
            }
        )

    def merge(self, other: "GpuStats") -> None:
        """Add ``other``'s counters into this block."""
        for f in fields(self):
            setattr(self, f.name, getattr(self, f.name) + getattr(other, f.name))

    @property
    def total_bytes(self) -> int:
        return self.bytes_h2d + self.bytes_d2h

    @property
    def gpu_time_s(self) -> float:
        """Simulated wall contribution: kernels + non-hidden transfers."""
        return self.kernel_time_s + self.transfer_time_s - self.pipelined_saved_s

    def as_dict(self) -> dict[str, float]:
        return {f.name: getattr(self, f.name) for f in fields(self)}
