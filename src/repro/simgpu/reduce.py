"""Warp vote and reduction primitives.

CUDA exposes warp-level collectives besides the butterfly shuffle the
paper leans on: vote functions (``__ballot_sync``, ``__any_sync``,
``__all_sync``) and shuffle-based tree reductions.  ``GPU_Collect``
reduces each object's per-bundle candidates and ``GPU_First_k`` selects
minima — both are shuffle-reduction patterns, so the simulator provides
them as first-class, tested primitives.

All functions operate on per-lane value lists (one entry per lane) and
are pure; cost accounting happens in the calling kernel via
:meth:`~repro.simgpu.kernel.KernelContext.charge_shuffle`.
"""

from __future__ import annotations

from typing import Callable, Sequence, TypeVar

from repro.errors import KernelError
from repro.simgpu.warp import shuffle_xor

T = TypeVar("T")


def _check_lanes(n: int) -> None:
    if n <= 0 or n & (n - 1):
        raise KernelError(f"lane count must be a power of two, got {n}")


def ballot(predicates: Sequence[bool]) -> int:
    """``__ballot_sync``: a bitmask with bit ``i`` set iff lane ``i``'s
    predicate holds."""
    mask = 0
    for i, p in enumerate(predicates):
        if p:
            mask |= 1 << i
    return mask


def any_sync(predicates: Sequence[bool]) -> bool:
    """``__any_sync``: true iff any lane's predicate holds."""
    return any(predicates)


def all_sync(predicates: Sequence[bool]) -> bool:
    """``__all_sync``: true iff every lane's predicate holds."""
    return all(predicates)


def warp_reduce(
    values: Sequence[T], combine: Callable[[T, T], T]
) -> list[T]:
    """Butterfly tree reduction: every lane ends with the full reduction.

    Runs ``log2(n)`` shuffle_xor rounds with masks ``n/2, n/4, ..., 1``,
    combining each lane's value with its butterfly partner's — the
    standard CUDA all-reduce idiom.  ``combine`` must be associative and
    commutative.

    Returns the per-lane values after the reduction (all equal).
    """
    n = len(values)
    _check_lanes(n)
    lanes = list(values)
    mask = n >> 1
    while mask:
        partner = shuffle_xor(lanes, mask)
        lanes = [combine(a, b) for a, b in zip(lanes, partner)]
        mask >>= 1
    return lanes


def warp_reduce_min(values: Sequence[float]) -> float:
    """All-reduce minimum over the warp."""
    return warp_reduce(values, min)[0]


def warp_reduce_max(values: Sequence[float]) -> float:
    """All-reduce maximum over the warp."""
    return warp_reduce(values, max)[0]


def warp_reduce_sum(values: Sequence[float]) -> float:
    """All-reduce sum over the warp."""
    return warp_reduce(values, lambda a, b: a + b)[0]


def inclusive_scan(
    values: Sequence[T], combine: Callable[[T, T], T]
) -> list[T]:
    """Hillis–Steele inclusive prefix scan across the lanes.

    ``log2(n)`` rounds of up-shifted combines; lane ``i`` ends with the
    reduction of lanes ``0..i``.  Used by compaction-style kernels (e.g.
    packing the survivors of ``GPU_Unresolved``).
    """
    n = len(values)
    _check_lanes(n)
    lanes = list(values)
    offset = 1
    while offset < n:
        lanes = [
            combine(lanes[i - offset], lanes[i]) if i >= offset else lanes[i]
            for i in range(n)
        ]
        offset <<= 1
    return lanes


def compact(values: Sequence[T], keep: Sequence[bool]) -> list[T]:
    """Stream compaction: the kept values, in lane order.

    On a real GPU this is ballot + popcount prefix + scatter; here the
    semantics suffice (the calling kernel charges the scan depth).
    """
    if len(values) != len(keep):
        raise KernelError("values and keep must have equal lane counts")
    return [v for v, k in zip(values, keep) if k]
