"""Kernel and transfer timeline tracing.

Attach a :class:`GpuTrace` to a :class:`~repro.simgpu.device.SimGpu` to
record every kernel launch and transfer with its simulated start/end
time.  The trace exports Chrome-trace-format JSON (loadable in
``chrome://tracing`` / Perfetto), which is how one debugs where a
query's simulated GPU time actually goes.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from repro.errors import ConfigError
from repro.simgpu.device import SimGpu


@dataclass(frozen=True, slots=True)
class TraceEvent:
    """One timeline span (times in simulated seconds)."""

    name: str
    category: str  # "kernel" | "h2d" | "d2h"
    start_s: float
    duration_s: float
    detail: dict[str, Any] = field(default_factory=dict)


class GpuTrace:
    """Records device activity by wrapping a SimGpu's entry points."""

    def __init__(self, gpu: SimGpu) -> None:
        self.gpu = gpu
        self.events: list[TraceEvent] = []
        self._cursor = 0.0
        self._installed = False
        self._orig_launch = None
        self._orig_to_device = None
        self._orig_from_device = None

    # ------------------------------------------------------------------
    # installation
    # ------------------------------------------------------------------
    def install(self) -> "GpuTrace":
        """Start recording.

        Idempotent for the same trace; installing a *second* trace on a
        device that already has one raises
        :class:`~repro.errors.ConfigError` — silently double-wrapping
        the entry points would double-count every event and leave the
        device broken after one trace uninstalls.
        """
        if self._installed:
            return self
        owner = getattr(self.gpu, "_trace_owner", None)
        if owner is not None and owner is not self:
            raise ConfigError(
                "a GpuTrace is already installed on this SimGpu; "
                "uninstall it before attaching another"
            )
        self._orig_launch = self.gpu.launch
        self._orig_to_device = self.gpu.to_device
        self._orig_from_device = self.gpu.from_device

        def launch(kernel_name, n_threads, fn, *args, **kwargs):
            before = self.gpu.stats.kernel_time_s
            result = self._orig_launch(kernel_name, n_threads, fn, *args, **kwargs)
            self._emit(
                kernel_name,
                "kernel",
                self.gpu.stats.kernel_time_s - before,
                {"threads": n_threads},
            )
            return result

        def to_device(name, data, nbytes=None):
            before = self.gpu.stats.transfer_time_s
            moved = self._orig_to_device(name, data, nbytes=nbytes)
            self._emit(
                name, "h2d", self.gpu.stats.transfer_time_s - before, {"bytes": moved}
            )
            return moved

        def from_device(name, nbytes=None):
            before = self.gpu.stats.transfer_time_s
            data = self._orig_from_device(name, nbytes=nbytes)
            self._emit(name, "d2h", self.gpu.stats.transfer_time_s - before, {})
            return data

        self.gpu.launch = launch  # type: ignore[method-assign]
        self.gpu.to_device = to_device  # type: ignore[method-assign]
        self.gpu.from_device = from_device  # type: ignore[method-assign]
        self.gpu._trace_owner = self  # type: ignore[attr-defined]
        self._installed = True
        return self

    def uninstall(self) -> None:
        """Stop recording and restore the device's methods (idempotent)."""
        if not self._installed:
            return
        self.gpu.launch = self._orig_launch  # type: ignore[method-assign]
        self.gpu.to_device = self._orig_to_device  # type: ignore[method-assign]
        self.gpu.from_device = self._orig_from_device  # type: ignore[method-assign]
        self.gpu._trace_owner = None  # type: ignore[attr-defined]
        self._installed = False

    def __enter__(self) -> "GpuTrace":
        return self.install()

    def __exit__(self, *exc: object) -> None:
        self.uninstall()

    # ------------------------------------------------------------------
    # recording
    # ------------------------------------------------------------------
    def _emit(
        self, name: str, category: str, duration: float, detail: dict[str, Any]
    ) -> None:
        self.events.append(TraceEvent(name, category, self._cursor, duration, detail))
        self._cursor += duration

    # ------------------------------------------------------------------
    # reporting
    # ------------------------------------------------------------------
    def total_by_category(self) -> dict[str, float]:
        totals: dict[str, float] = {}
        for event in self.events:
            totals[event.category] = totals.get(event.category, 0.0) + event.duration_s
        return totals

    def top_kernels(self, n: int = 5) -> list[tuple[str, float]]:
        """The n kernels with the largest cumulative simulated time."""
        totals: dict[str, float] = {}
        for event in self.events:
            if event.category == "kernel":
                totals[event.name] = totals.get(event.name, 0.0) + event.duration_s
        return sorted(totals.items(), key=lambda kv: -kv[1])[:n]

    def to_chrome_trace(self, path: str | Path) -> Path:
        """Write Chrome-trace JSON (microsecond timestamps)."""
        records = [
            {
                "name": e.name,
                "cat": e.category,
                "ph": "X",
                "ts": e.start_s * 1e6,
                "dur": e.duration_s * 1e6,
                "pid": 0,
                "tid": {"kernel": 0, "h2d": 1, "d2h": 2}.get(e.category, 3),
                "args": e.detail,
            }
            for e in self.events
        ]
        path = Path(path)
        path.write_text(json.dumps({"traceEvents": records}))
        return path
