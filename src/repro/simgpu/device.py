"""The simulated GPU device and its cost model.

:class:`SimGpu` owns device memory, a stats block and a
:class:`CostModel`.  Kernels are Python callables executed through
:meth:`SimGpu.launch`; they receive a
:class:`~repro.simgpu.kernel.KernelContext` through which they charge
per-lane operations, execute shuffles and hit barriers, so that simulated
kernel time reflects the work the real kernels would do at the modelled
SIMD width.

Default cost-model constants approximate the paper's Quadro P2000 (1024
cores, 5 GB) talking to the host over PCIe 3.0 x16: the absolute numbers
do not matter for the reproduction, the *ratios* (parallel speedup,
transfer latency vs. bandwidth) do.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Callable

from repro.errors import ConfigError, KernelError, TransferError
from repro.simgpu.kernel import KernelContext
from repro.simgpu.memory import DeviceMemory, nbytes_of
from repro.simgpu.stats import GpuStats


@dataclass(frozen=True)
class CostModel:
    """Timing constants for the simulated device.

    Attributes:
        num_cores: physical lanes executing in parallel (P2000: 1024).
        warp_size: lanes per warp (CUDA: 32).  Bundles larger than a warp
            pay the ``sync_cost_s`` barrier per shuffle round, which is
            what makes ``2^eta > 32`` lose in Fig. 4b.
        lane_op_time_s: time for one register/ALU operation on one lane.
        mem_op_time_s: time for one global-memory access per lane
            (amortised over coalescing; dominates data-heavy kernels).
        shuffle_op_time_s: time for one warp shuffle instruction.
        sync_cost_s: cost of a cross-warp ``sync_threads`` barrier.
        kernel_launch_time_s: fixed per-launch overhead.
        transfer_latency_s: fixed per-transfer latency (DMA setup).
        transfer_bandwidth_bps: host<->device bandwidth in bytes/second.
        device_memory_bytes: device memory capacity.
    """

    num_cores: int = 1024
    warp_size: int = 32
    lane_op_time_s: float = 1.0e-9
    mem_op_time_s: float = 2.0e-8
    shuffle_op_time_s: float = 1.0e-9
    sync_cost_s: float = 4.0e-7
    kernel_launch_time_s: float = 5.0e-6
    transfer_latency_s: float = 1.0e-5
    transfer_bandwidth_bps: float = 12.0e9
    device_memory_bytes: int = 5 * 1024**3

    def __post_init__(self) -> None:
        if self.num_cores <= 0 or self.num_cores & (self.num_cores - 1):
            raise KernelError(f"num_cores must be a power of two, got {self.num_cores}")
        if self.warp_size <= 0 or self.warp_size & (self.warp_size - 1):
            raise KernelError(f"warp_size must be a power of two, got {self.warp_size}")

    def op_time(self, n_threads: int, ops_per_thread: float) -> float:
        """Time for all threads to run ``ops_per_thread`` lane operations.

        Threads beyond ``num_cores`` serialise in waves, which is what
        makes tiny thread counts under-utilise the device (the rising tail
        of Fig. 4a at large bucket capacity).
        """
        waves = max(1, math.ceil(n_threads / self.num_cores))
        return waves * ops_per_thread * self.lane_op_time_s

    def mem_time(self, n_threads: int, ops_per_thread: float) -> float:
        """Time for all threads to run ``ops_per_thread`` memory accesses."""
        waves = max(1, math.ceil(n_threads / self.num_cores))
        return waves * ops_per_thread * self.mem_op_time_s

    def transfer_time(self, nbytes: int) -> float:
        """Latency + bandwidth model of one host<->device transfer."""
        return self.transfer_latency_s + nbytes / self.transfer_bandwidth_bps


class SimGpu:
    """A deterministic software GPU.

    Example:
        >>> gpu = SimGpu()
        >>> gpu.to_device("xs", [1, 2, 3, 4])
        16
        >>> def double(ctx, xs):
        ...     ctx.charge(1)
        ...     return [x * 2 for x in xs]
        >>> gpu.launch("double", 4, double, gpu.fetch("xs"))
        [2, 4, 6, 8]
    """

    def __init__(self, cost_model: CostModel | None = None) -> None:
        self.cost_model = cost_model or CostModel()
        self.memory = DeviceMemory(self.cost_model.device_memory_bytes)
        self.stats = GpuStats()
        # Optional fault-injection hook (see repro.chaos).  None on the
        # hot path: launches and transfers pay one attribute check only.
        self.fault_hook: "object | None" = None

    # ------------------------------------------------------------------
    # fault injection (repro.chaos)
    # ------------------------------------------------------------------
    def install_fault_hook(self, hook: object) -> None:
        """Attach a fault-injection hook to this device.

        The hook is consulted before every kernel launch
        (``on_kernel(name, n_threads)``), host<->device transfer
        (``on_transfer(direction, name, nbytes)``) and — via
        :attr:`DeviceMemory.alloc_hook` — allocation
        (``on_alloc(name, nbytes)``); raising from a hook simulates the
        corresponding device fault.

        Raises:
            ConfigError: a hook is already installed (two injectors
                fighting over one device would make fault schedules
                non-reproducible).
        """
        if self.fault_hook is not None:
            raise ConfigError("a fault hook is already installed on this device")
        self.fault_hook = hook
        self.memory.alloc_hook = getattr(hook, "on_alloc", None)

    def uninstall_fault_hook(self) -> None:
        """Detach the fault-injection hook (idempotent)."""
        self.fault_hook = None
        self.memory.alloc_hook = None

    # ------------------------------------------------------------------
    # transfers
    # ------------------------------------------------------------------
    def to_device(self, name: str, data: Any, nbytes: int | None = None) -> int:
        """Copy ``data`` host -> device under ``name``; returns bytes moved."""
        size = nbytes_of(data) if nbytes is None else nbytes
        if size < 0:
            raise TransferError(f"negative transfer size {size}")
        if self.fault_hook is not None:
            self.fault_hook.on_transfer("h2d", name, size)
        self.memory.store(name, data, size)
        self.stats.bytes_h2d += size
        self.stats.transfers_h2d += 1
        self.stats.transfer_time_s += self.cost_model.transfer_time(size)
        return size

    def from_device(self, name: str, nbytes: int | None = None) -> Any:
        """Copy the allocation ``name`` device -> host and return it."""
        if self.fault_hook is not None:
            self.fault_hook.on_transfer("d2h", name, self.memory.nbytes(name))
        data = self.memory.fetch(name)
        size = self.memory.nbytes(name) if nbytes is None else nbytes
        self.stats.bytes_d2h += size
        self.stats.transfers_d2h += 1
        self.stats.transfer_time_s += self.cost_model.transfer_time(size)
        return data

    def fetch(self, name: str) -> Any:
        """Device-side access to an allocation (no transfer charged)."""
        return self.memory.fetch(name)

    def free(self, name: str) -> None:
        self.memory.free(name)

    # ------------------------------------------------------------------
    # kernels
    # ------------------------------------------------------------------
    def launch(
        self,
        kernel_name: str,
        n_threads: int,
        fn: Callable[..., Any],
        *args: Any,
        **kwargs: Any,
    ) -> Any:
        """Run ``fn(ctx, *args, **kwargs)`` as a kernel over ``n_threads``.

        The kernel charges its work through the context; this method adds
        the launch overhead and converts the charged work into simulated
        kernel time using the cost model.

        Raises:
            KernelError: non-positive thread count.
        """
        if n_threads <= 0:
            raise KernelError(
                f"kernel {kernel_name!r} launched with {n_threads} threads"
            )
        if self.fault_hook is not None:
            self.fault_hook.on_kernel(kernel_name, n_threads)
        ctx = KernelContext(self, kernel_name, n_threads)
        self.stats.kernel_launches += 1
        self.stats.kernel_time_s += self.cost_model.kernel_launch_time_s
        result = fn(ctx, *args, **kwargs)
        self.stats.kernel_time_s += ctx.elapsed_s
        self.stats.lane_ops += ctx.lane_ops
        self.stats.shuffle_ops += ctx.shuffle_ops
        self.stats.sync_count += ctx.sync_count
        self.stats.atomic_ops += ctx.atomic_ops
        return result

    def launch_batched(
        self,
        kernel_name: str,
        n_threads: int,
        jobs: int,
        fn: Callable[..., Any],
        *args: Any,
    ) -> Any:
        """Run a fused batch kernel carrying ``jobs`` per-query jobs.

        Identical to :meth:`launch` (one launch overhead, one fault-hook
        consultation) plus batch accounting: ``batched_launches`` and
        ``batched_jobs`` record how many per-query launches the fusion
        replaced.  The kernel itself is responsible for charging each
        job's work at that job's thread count (see
        :class:`~repro.simgpu.kernel.JobContext`).

        Raises:
            KernelError: non-positive thread or job count.
        """
        if jobs <= 0:
            raise KernelError(
                f"batched kernel {kernel_name!r} launched with {jobs} jobs"
            )
        result = self.launch(kernel_name, n_threads, fn, *args)
        self.stats.batched_launches += 1
        self.stats.batched_jobs += jobs
        return result
