"""Summarise recorded experiment results into one Markdown report.

After running the benchmark suite (rows land in ``results/*.json``),
``python -m repro.bench report`` assembles a human-readable Markdown
summary: one section per experiment with its table and, for the headline
comparisons, the derived win factors.  EXPERIMENTS.md quotes the same
numbers; this keeps them regenerable from raw rows.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

from repro.bench.reporting import RESULTS_DIR, format_value

#: experiment file stem -> section title, in report order
SECTIONS: dict[str, str] = {
    "table2_datasets": "Table II — datasets",
    "fig4a_bucket_capacity": "Fig. 4a — bucket capacity",
    "fig4b_bundle_size": "Fig. 4b — bundle size",
    "fig4c_rho": "Fig. 4c — rho",
    "fig5_datasets": "Fig. 5 — query time vs dataset",
    "fig6_index_size": "Fig. 6 — index sizes",
    "fig7_vary_k": "Fig. 7 — varying k",
    "fig8_vary_objects": "Fig. 8 — varying |O|",
    "fig9_vary_frequency": "Fig. 9 — varying update frequency",
    "fig10ab_scalability": "Fig. 10a/b — scalability",
    "fig10cd_transfer": "Fig. 10c/d — transfers",
    "ablation_lazy_vs_eager": "Ablation — lazy vs eager",
    "ablation_batched_queries": "Ablation — batched queries",
    "ablation_pipelining": "Ablation — pipelined transfers",
    "ablation_sdist_early_exit": "Ablation — SDist early exit",
    "maintenance_policies": "Extension — maintenance policies",
    "workload_patterns": "Extension — workload skew robustness",
    "accuracy_vs_frequency": "Extension — accuracy vs update frequency",
    "sdist_backends": "Extension — SDist backend comparison",
    "costmodel_validation": "Cost model — Section VI bound",
    "scale": "Scale — paper-order data plane (1/8-scale, array-native path)",
}


def _markdown_table(rows: list[dict[str, Any]]) -> str:
    if not rows:
        return "_(no rows)_"
    columns = list(rows[0].keys())
    lines = [
        "| " + " | ".join(columns) + " |",
        "|" + "|".join("---" for _ in columns) + "|",
    ]
    for row in rows:
        lines.append(
            "| " + " | ".join(format_value(row.get(c, "")) for c in columns) + " |"
        )
    return "\n".join(lines)


def _win_factors(rows: list[dict[str, Any]]) -> list[str]:
    """G-Grid-vs-baseline factors for amortised-time experiments."""
    if not rows or "algorithm" not in rows[0] or "amortized_s" not in rows[0]:
        return []
    group_keys = [
        k for k in rows[0] if k not in ("algorithm", "amortized_s", "update_s")
    ]
    grouped: dict[tuple, dict[str, float]] = {}
    for row in rows:
        if row.get("amortized_s") is None:
            continue
        key = tuple(row[k] for k in group_keys)
        grouped.setdefault(key, {})[row["algorithm"]] = row["amortized_s"]
    notes = []
    for key, algos in grouped.items():
        ggrid = algos.get("G-Grid")
        if ggrid is None:
            continue
        rivals = {a: v for a, v in algos.items() if a not in ("G-Grid", "G-Grid (L)")}
        if not rivals:
            continue
        worst = max(rivals, key=rivals.get)
        label = ", ".join(f"{k}={v}" for k, v in zip(group_keys, key))
        notes.append(
            f"- {label}: G-Grid wins by up to "
            f"{rivals[worst] / ggrid:.1f}x (vs {worst})"
        )
    return notes


def build_report(directory: Path | None = None) -> str:
    """Assemble the Markdown report from all recorded result files."""
    results = directory or RESULTS_DIR
    parts = ["# Recorded experiment results\n"]
    found = 0
    for stem, title in SECTIONS.items():
        path = results / f"{stem}.json"
        if not path.exists():
            continue
        found += 1
        rows = json.loads(path.read_text())
        parts.append(f"## {title}\n")
        parts.append(_markdown_table(rows))
        factors = _win_factors(rows)
        if factors:
            parts.append("")
            parts.extend(factors)
        parts.append("")
    if not found:
        parts.append(
            "_No results found — run `pytest benchmarks/ --benchmark-only` "
            "or `python -m repro.bench all` first._"
        )
    return "\n".join(parts)


def write_report(directory: Path | None = None, out: Path | None = None) -> Path:
    """Write the report next to the results and return its path."""
    results = directory or RESULTS_DIR
    target = out or results / "REPORT.md"
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(build_report(results))
    return target
