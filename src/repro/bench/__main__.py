"""Command-line experiment runner.

Run any paper experiment by name without pytest:

    python -m repro.bench list
    python -m repro.bench fig5
    python -m repro.bench fig9 --dataset NY
    python -m repro.bench fig5 --metrics-out metrics.prom
    python -m repro.bench fig5 --chaos mixed --chaos-seed 7
    python -m repro.bench chaos
    python -m repro.bench batch
    python -m repro.bench recovery
    python -m repro.bench fig5 --batch-size 8
    python -m repro.bench fig5 --trace-out trace.json
    python -m repro.bench trajectory
    python -m repro.bench all

Result tables print to stdout and persist under ``results/``.  With
``--metrics-out``, a process-wide observability bundle is installed for
the run and the metrics registry is dumped next to the results —
Prometheus text by default, a JSON snapshot when the path ends in
``.json``.  With ``--trace-out``, the bundle additionally records spans
and a Perfetto-loadable Chrome trace of the run is written to the given
path.  With ``--chaos PROFILE``, a seeded fault plan is installed for
the run (see :mod:`repro.chaos`): the simulated device fails per the
profile and the G-Grid serving path rides its degradation ladder —
results stay exact, the timing columns show the cost.

The ``trajectory`` command replays the eight tracked serving scenarios,
appends one row each to ``results/trajectory/BENCH_<scenario>.json``,
and exits non-zero if any deterministic counter (or, loosely, any
modelled latency) regressed against the committed baseline row — see
:mod:`repro.bench.trajectory`.
"""

from __future__ import annotations

import argparse
import sys
import time
from contextlib import ExitStack
from pathlib import Path

from repro.bench import experiments
from repro.bench.reporting import format_table, save_results
from repro.obs import Observability, configured

#: experiment name -> (driver, description, accepts --dataset)
EXPERIMENTS = {
    "table2": (experiments.table2_datasets, "Table II: dataset statistics", False),
    "fig4a": (experiments.fig4a_bucket_capacity, "Fig. 4a: bucket capacity", False),
    "fig4b": (experiments.fig4b_bundle_size, "Fig. 4b: bundle size", False),
    "fig4c": (experiments.fig4c_rho, "Fig. 4c: rho", False),
    "fig5": (experiments.fig5_datasets, "Fig. 5: query time vs dataset", False),
    "fig6": (experiments.fig6_index_size, "Fig. 6: index sizes", False),
    "fig7": (experiments.fig7_vary_k, "Fig. 7: varying k", False),
    "fig8": (experiments.fig8_vary_objects, "Fig. 8: varying |O|", True),
    "fig9": (experiments.fig9_vary_frequency, "Fig. 9: varying f", True),
    "fig10ab": (experiments.fig10ab_scalability, "Fig. 10a/b: scalability", False),
    "fig10cd": (experiments.fig10cd_transfer, "Fig. 10c/d: transfers", False),
    "lazy-vs-eager": (
        experiments.ablation_lazy_vs_eager,
        "Ablation: lazy vs eager cleaning",
        True,
    ),
    "pipelining": (
        experiments.ablation_pipelining,
        "Ablation: pipelined transfers",
        True,
    ),
    "sdist-early-exit": (
        experiments.ablation_sdist_early_exit,
        "Ablation: GPU_SDist early exit",
        True,
    ),
    "batched-queries": (
        experiments.ablation_batched_queries,
        "Ablation: batched queries",
        True,
    ),
    "batch": (
        experiments.batch_scaling,
        "Batch engine: epoch batching vs sequential (64 queries)",
        True,
    ),
    "costmodel": (
        experiments.costmodel_validation,
        "Section VI bound validation",
        True,
    ),
    "accuracy": (
        experiments.accuracy_vs_frequency,
        "Extension: accuracy vs update frequency",
        True,
    ),
    "chaos": (
        experiments.chaos_resilience,
        "Resilience: chaos profiles vs fault-free baseline",
        True,
    ),
    "cluster": (
        experiments.cluster_scaling,
        "Cluster: shard scaling, fanout and failover",
        True,
    ),
    "recovery": (
        experiments.recovery_curve,
        "Recovery: snapshot interval vs crash-recovery time",
        True,
    ),
    "serve": (
        experiments.serve_overload,
        "Serving: overload control, shed ledger and paid-tier SLOs",
        True,
    ),
    "subscriptions": (
        experiments.subscriptions,
        "Subscriptions: incremental refresh vs full re-query",
        True,
    ),
    "scale": (
        experiments.scale_datapath,
        "Paper-scale data plane: build/ingest/query/update at 1/8 scale",
        True,
    ),
    "planner": (
        experiments.planner_crossover,
        "Planner: adaptive backend crossover vs fixed G-Grid and TEN",
        True,
    ),
}


def run_experiment(name: str, dataset: str | None) -> None:
    driver, description, takes_dataset = EXPERIMENTS[name]
    started = time.perf_counter()
    rows = driver(dataset) if (takes_dataset and dataset) else driver()
    elapsed = time.perf_counter() - started
    print(format_table(rows, description))
    path = save_results(name, rows)
    print(f"({len(rows)} rows in {elapsed:.1f}s -> {path})\n")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Regenerate the paper's tables and figures.",
    )
    parser.add_argument(
        "experiment",
        help="experiment name, 'list' to enumerate, or 'all'",
    )
    parser.add_argument(
        "--dataset",
        default=None,
        help="dataset override for single-dataset experiments (NY..USA)",
    )
    parser.add_argument(
        "--metrics-out",
        default=None,
        metavar="PATH",
        help="dump the metrics registry after the run "
        "(.json -> JSON snapshot, anything else -> Prometheus text)",
    )
    parser.add_argument(
        "--trace-out",
        default=None,
        metavar="PATH",
        help="record spans for the run and write a Perfetto-loadable "
        "Chrome trace to PATH (implies an observability bundle)",
    )
    parser.add_argument(
        "--bench-dir",
        default=None,
        metavar="DIR",
        help="directory for the trajectory command's BENCH_*.json files "
        "(default: results/trajectory)",
    )
    parser.add_argument(
        "--chaos",
        default=None,
        metavar="PROFILE",
        help="run under a seeded fault-injection profile "
        "(kernels, transfers, oom, capacity, mixed, blackout); "
        "G-Grid degrades gracefully, answers stay exact",
    )
    parser.add_argument(
        "--chaos-seed",
        type=int,
        default=0,
        help="seed for the --chaos fault schedule (default 0)",
    )
    parser.add_argument(
        "--batch-size",
        type=int,
        default=None,
        metavar="N",
        help="execute queries in epochs of up to N through the batched "
        "engine (DESIGN.md §10); answers are identical, shared GPU "
        "work is deduplicated (default: sequential)",
    )
    args = parser.parse_args(argv)

    if args.experiment == "list":
        for name, (_, description, _) in EXPERIMENTS.items():
            print(f"{name:18s} {description}")
        print(f"{'report':18s} Assemble results/REPORT.md from recorded rows")
        return 0
    if args.experiment == "report":
        from repro.bench.summary import write_report

        path = write_report()
        print(f"report written to {path}")
        return 0
    if args.experiment == "trajectory":
        from repro.bench.trajectory import bench_path, gate, record_all

        rows = record_all(
            dataset=args.dataset or "NY", directory=args.bench_dir
        )
        for row in rows:
            if "p50_s" in row.latency:
                detail = (
                    f"p50={row.latency['p50_s']:.6f}s "
                    f"p99={row.latency['p99_s']:.6f}s "
                    f"gpu={row.counters['gpu_s']:.6f}s"
                )
            elif "query_distance_checksum" in row.counters:
                # the scale row: all-deterministic data-plane counters
                detail = (
                    f"V={row.counters['vertices']:.0f} "
                    f"cells_cleaned={row.counters['query_cells_cleaned']:.0f} "
                    f"checksum={row.counters['query_distance_checksum']:.1f}"
                )
            elif "mean_dirty_fraction" in row.counters:
                # the subscriptions row: all-deterministic twin-replay counters
                detail = (
                    f"dirty={row.counters['mean_dirty_fraction']:.4f} "
                    f"refreshes={row.counters['dirty_refreshes']:.0f}"
                    f"/{row.counters['full_refreshes']:.0f} "
                    f"mismatches={row.counters['answer_mismatches']:.0f}"
                )
            elif "off_best_mixes" in row.counters:
                # the planner row: all-deterministic crossover counters
                detail = (
                    f"qd_plan={row.counters['query_dominant_cost_planner_s']:.6f}s "
                    f"hits={row.counters['query_dominant_cache_hits']:.0f} "
                    f"off_best={row.counters['off_best_mixes']:.0f} "
                    f"mismatches={row.counters['answer_mismatches']:.0f}"
                )
            else:  # the serve row is all-deterministic counters
                detail = (
                    f"shed={row.counters['shed_brownout']:.0f} "
                    f"paid_breaches={row.counters['paid_breaches']:.0f} "
                    f"mismatches={row.counters['oracle_mismatches']:.0f}"
                )
            print(
                f"{row.scenario:14s} wall={row.wall_s:7.2f}s {detail} "
                f"-> {bench_path(row.scenario, args.bench_dir)}"
            )
        violations = gate(args.bench_dir)
        if violations:
            print("\ntrajectory gate FAILED:", file=sys.stderr)
            for violation in violations:
                print(f"  {violation}", file=sys.stderr)
            return 1
        print("\ntrajectory gate passed")
        return 0
    if args.experiment != "all" and args.experiment not in EXPERIMENTS:
        print(f"unknown experiment {args.experiment!r}; try 'list'", file=sys.stderr)
        return 2
    names = list(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    with ExitStack() as stack:
        if args.chaos:
            from repro.chaos import FaultPlan, chaos_context
            from repro.errors import ConfigError

            try:
                plan = FaultPlan.from_profile(args.chaos, seed=args.chaos_seed)
            except ConfigError as exc:
                print(str(exc), file=sys.stderr)
                return 2
            print(
                f"chaos: injecting profile {args.chaos!r} "
                f"(seed {args.chaos_seed}) for this run\n"
            )
            stack.enter_context(chaos_context(plan))
        if args.batch_size is not None:
            from repro.errors import ConfigError
            from repro.server import BatchPolicy, batch_context

            try:
                policy = BatchPolicy(args.batch_size)
            except ConfigError as exc:
                print(str(exc), file=sys.stderr)
                return 2
            print(f"batching: epochs of up to {args.batch_size} queries\n")
            stack.enter_context(batch_context(policy))
        if args.metrics_out or args.trace_out:
            # fail before the (potentially long) run, not after it
            for flag, value in (
                ("--metrics-out", args.metrics_out),
                ("--trace-out", args.trace_out),
            ):
                if value and not Path(value).parent.is_dir():
                    print(
                        f"{flag} directory {Path(value).parent} "
                        f"does not exist",
                        file=sys.stderr,
                    )
                    return 2
            bundle = (
                Observability.with_tracing()
                if args.trace_out
                else Observability()
            )
            with configured(bundle) as obs:
                for name in names:
                    run_experiment(name, args.dataset)
            if args.metrics_out:
                path = Path(args.metrics_out)
                if path.suffix == ".json":
                    obs.registry.write_json(path)
                else:
                    path.write_text(obs.registry.write_prometheus())
                print(f"metrics written to {path}")
            if args.trace_out:
                from repro.obs import write_chrome_trace

                path = write_chrome_trace(args.trace_out, tracer=obs.tracer)
                print(f"chrome trace written to {path}")
        else:
            for name in names:
                run_experiment(name, args.dataset)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
