"""One driver function per paper table/figure (see DESIGN.md §4).

Each function returns a list of flat result rows; the ``benchmarks/``
modules time them with pytest-benchmark and print the tables.  Parameter
grids follow the paper with the dataset scale adjustments documented in
DESIGN.md §2.
"""

from __future__ import annotations

from typing import Any

from repro.bench.harness import ALGORITHMS, build_index, run_point, scaled_objects
from repro.core.costmodel import (
    messages_transferred_bound,
    transfer_bytes_bound,
)
from repro.core.ggrid import GGridIndex
from repro.core.messages import Message
from repro.roadnet.datasets import DATASET_ORDER, dataset_table, load_dataset

#: Parameter grids (paper values, scaled where DESIGN.md §2 says so).
DELTA_B_GRID = (4, 8, 16, 32, 64, 128, 256)
ETA_GRID = (3, 4, 5, 6, 7)  # bundle sizes 8..128
RHO_GRID = (1.4, 1.8, 2.2, 2.6, 3.0)
K_GRID = (8, 16, 32, 64, 128, 256)
OBJECTS_GRID = (100, 300, 1000, 3000, 10000)
FREQ_GRID = (0.2, 0.5, 1.0, 2.0, 5.0)
TRANSFER_K_GRID = (8, 32, 128)


def table2_datasets() -> list[dict[str, Any]]:
    """Table II: the six road networks (paper vs scaled synthetic)."""
    return dataset_table()


#: Tuning runs (Fig. 4) use a message-dense workload: many objects and
#: few queries so the per-cell message lists actually grow to multiple
#: buckets between cleanings, which is the regime delta_b/eta tune.
_TUNING_WORKLOAD = dict(num_objects=2000, duration=30.0, num_queries=5)


def fig4a_bucket_capacity(
    datasets: tuple[str, ...] = ("NY", "FLA", "USA")
) -> list[dict[str, Any]]:
    """Fig. 4a: G-Grid query time vs bucket capacity delta_b."""
    rows = []
    for dataset in datasets:
        for delta_b in DELTA_B_GRID:
            report = run_point("G-Grid", dataset, delta_b=delta_b, **_TUNING_WORKLOAD)
            rows.append(
                {
                    "dataset": dataset,
                    "delta_b": delta_b,
                    "amortized_s": report.amortized_s(),
                    "gpu_s": report.gpu_seconds,
                    "transfer_bytes": report.transfer_bytes,
                }
            )
    return rows


def fig4b_bundle_size(
    datasets: tuple[str, ...] = ("NY", "FLA", "USA")
) -> list[dict[str, Any]]:
    """Fig. 4b: G-Grid query time vs bundle size 2^eta (warp effect)."""
    rows = []
    for dataset in datasets:
        for eta in ETA_GRID:
            report = run_point("G-Grid", dataset, eta=eta, **_TUNING_WORKLOAD)
            rows.append(
                {
                    "dataset": dataset,
                    "bundle": 1 << eta,
                    "amortized_s": report.amortized_s(),
                    "gpu_s": report.gpu_seconds,
                }
            )
    return rows


def fig4c_rho(datasets: tuple[str, ...] = ("NY", "FLA", "USA")) -> list[dict[str, Any]]:
    """Fig. 4c: G-Grid query time vs the CPU/GPU balance factor rho."""
    # rho tunes the candidate-ring expansion, so this sweep needs *sparse*
    # cells: with few objects per cell, a larger rho forces extra cleaning
    # rings (GPU work) while a smaller one shifts work to CPU refinement.
    rows = []
    for dataset in datasets:
        for rho in RHO_GRID:
            report = run_point(
                "G-Grid", dataset, rho=rho, num_objects=150, duration=30.0
            )
            rows.append(
                {
                    "dataset": dataset,
                    "rho": rho,
                    "amortized_s": report.amortized_s(),
                    "gpu_s": report.gpu_seconds,
                }
            )
    return rows


def _vtree_g_fits_paper_device(dataset: str) -> bool:
    """Would V-Tree (G)'s index fit the 5 GB device at *paper* scale?

    The paper omits V-Tree (G) on USA for exactly this reason; we project
    our scaled index size back to the paper's vertex count.
    """
    from repro.roadnet.datasets import DATASET_SPECS
    from repro.simgpu.device import CostModel

    index = build_index("V-Tree", dataset)
    spec = DATASET_SPECS[dataset]
    graph = load_dataset(dataset)
    projected = index.size_bytes()["matrices"] * (
        spec.paper_vertices / graph.num_vertices
    )
    return projected <= CostModel().device_memory_bytes


def fig5_datasets(
    datasets: tuple[str, ...] = DATASET_ORDER
) -> list[dict[str, Any]]:
    """Fig. 5: amortised query time per dataset, all algorithms.

    G-Grid is reported twice: overlapped (``G-Grid``) and per-query
    latency (``G-Grid (L)``), as in the paper.  V-Tree (G) is reported as
    ``None`` where its index would not fit the device at paper scale
    (the paper's USA omission).
    """
    rows = []
    for dataset in datasets:
        for algorithm in ALGORITHMS:
            if algorithm == "V-Tree (G)" and not _vtree_g_fits_paper_device(dataset):
                rows.append(
                    {"dataset": dataset, "algorithm": algorithm, "amortized_s": None}
                )
                continue
            report = run_point(algorithm, dataset)
            rows.append(
                {
                    "dataset": dataset,
                    "algorithm": algorithm,
                    "amortized_s": report.amortized_s(),
                }
            )
            if algorithm == "G-Grid":
                rows.append(
                    {
                        "dataset": dataset,
                        "algorithm": "G-Grid (L)",
                        "amortized_s": report.amortized_latency_s(),
                    }
                )
    return rows


def fig6_index_size(
    datasets: tuple[str, ...] = DATASET_ORDER
) -> list[dict[str, Any]]:
    """Fig. 6: index sizes — G-Grid CPU/GPU/Total vs V-Tree."""
    rows = []
    for dataset in datasets:
        ggrid = build_index("G-Grid", dataset)
        # populate message lists to steady state so the CPU size is honest
        run_point("G-Grid", dataset)
        gsz = ggrid.size_bytes()
        vtree = build_index("V-Tree", dataset)
        run_point("V-Tree", dataset)
        vsz = vtree.size_bytes()
        rows.append(
            {
                "dataset": dataset,
                "ggrid_cpu_B": gsz["cpu"],
                "ggrid_gpu_B": gsz["gpu"],
                "ggrid_total_B": gsz["total"],
                "vtree_B": vsz["total"],
                "vtree_over_ggrid": round(vsz["total"] / max(1, gsz["total"]), 2),
            }
        )
    return rows


def fig7_vary_k(
    datasets: tuple[str, ...] = ("NY", "USA"),
    k_grid: tuple[int, ...] = K_GRID,
) -> list[dict[str, Any]]:
    """Fig. 7: amortised time vs k on the USA and NY networks."""
    rows = []
    for dataset in datasets:
        objects = max(800, scaled_objects(dataset))
        for k in k_grid:
            for algorithm in ALGORITHMS:
                report = run_point(algorithm, dataset, k=k, num_objects=objects)
                rows.append(
                    {
                        "dataset": dataset,
                        "k": k,
                        "algorithm": algorithm,
                        "amortized_s": report.amortized_s(),
                    }
                )
    return rows


def fig8_vary_objects(
    dataset: str = "USA", grid: tuple[int, ...] = OBJECTS_GRID
) -> list[dict[str, Any]]:
    """Fig. 8: amortised time vs the number of objects |O|."""
    rows = []
    for num_objects in grid:
        for algorithm in ALGORITHMS:
            report = run_point(algorithm, dataset, num_objects=num_objects)
            rows.append(
                {
                    "dataset": dataset,
                    "objects": num_objects,
                    "algorithm": algorithm,
                    "amortized_s": report.amortized_s(),
                }
            )
    return rows


def fig9_vary_frequency(
    dataset: str = "FLA", grid: tuple[float, ...] = FREQ_GRID
) -> list[dict[str, Any]]:
    """Fig. 9: amortised time vs update frequency f — the lazy-update
    headline: baselines grow with f, G-Grid barely moves."""
    rows = []
    for f in grid:
        for algorithm in ALGORITHMS:
            report = run_point(algorithm, dataset, update_frequency=f)
            rows.append(
                {
                    "dataset": dataset,
                    "frequency_hz": f,
                    "algorithm": algorithm,
                    "amortized_s": report.amortized_s(),
                    "update_s": report.update_modeled_s,
                }
            )
    return rows


def fig10ab_scalability(
    datasets: tuple[str, ...] = DATASET_ORDER
) -> list[dict[str, Any]]:
    """Fig. 10a/b: G-Grid running time and throughput vs network size."""
    rows = []
    for dataset in datasets:
        graph = load_dataset(dataset)
        report = run_point("G-Grid", dataset)
        rows.append(
            {
                "dataset": dataset,
                "vertices": graph.num_vertices,
                "amortized_s": report.amortized_s(),
                "throughput_qps": report.throughput_qps(),
            }
        )
    return rows


def fig10cd_transfer(
    datasets: tuple[str, ...] = DATASET_ORDER,
    k_grid: tuple[int, ...] = TRANSFER_K_GRID,
) -> list[dict[str, Any]]:
    """Fig. 10c/d: DRAM-GPU transfer size and time vs network size & k."""
    rows = []
    for dataset in datasets:
        graph = load_dataset(dataset)
        for k in k_grid:
            report = run_point("G-Grid", dataset, k=k)
            rows.append(
                {
                    "dataset": dataset,
                    "vertices": graph.num_vertices,
                    "k": k,
                    "transfer_bytes_per_query": report.transfer_bytes
                    / max(1, report.n_queries),
                    "transfer_s": report.gpu_seconds,
                }
            )
    return rows


# ----------------------------------------------------------------------
# ablations beyond the paper's figures (DESIGN.md §6)
# ----------------------------------------------------------------------
class _EagerGGrid(GGridIndex):
    """G-Grid with the lazy strategy ablated: every ingest immediately
    cleans the destination cell, like the eager baselines."""

    name = "G-Grid (eager)"

    def ingest(self, message: Message) -> None:  # noqa: D102 - see class
        super().ingest(message)
        cell = self.grid.cell_of_edge(message.edge)
        self._resilient_clean({cell: self._list_of(cell)}, message.t)


def ablation_lazy_vs_eager(dataset: str = "NY") -> list[dict[str, Any]]:
    """How much does lazy updating buy? Same index, eager cleaning."""
    from repro.bench.harness import cached_workload
    from repro.server.server import QueryServer

    rows = []
    graph = load_dataset(dataset)
    workload = cached_workload(dataset, scaled_objects(dataset), 10.0, 8, 16, 1.0, 7)
    for factory, label in ((GGridIndex, "lazy"), (_EagerGGrid, "eager")):
        index = factory(graph)
        report, _ = QueryServer(index).replay(workload)
        rows.append(
            {
                "variant": label,
                "amortized_s": report.amortized_s(),
                "gpu_s": report.gpu_seconds,
                "kernel_launches": index.stats.kernel_launches,
            }
        )
    return rows


def ablation_pipelining(dataset: str = "FLA") -> list[dict[str, Any]]:
    """Pipelined vs blocking host->device transfers (Section V-A).

    Uses the message-dense tuning workload *and* tiny buckets so each
    cleaning pass ships multiple chunks — otherwise there is nothing to
    overlap.
    """
    rows = []
    for pipelined in (True, False):
        report = run_point(
            "G-Grid",
            dataset,
            pipelined_transfers=pipelined,
            delta_b=4,
            **_TUNING_WORKLOAD,
        )
        rows.append(
            {
                "pipelined": pipelined,
                "amortized_s": report.amortized_s(),
                "gpu_s": report.gpu_seconds,
            }
        )
    return rows


def ablation_sdist_early_exit(dataset: str = "FLA") -> list[dict[str, Any]]:
    """Algorithm 5 as written (|V| rounds) vs converged early exit."""
    rows = []
    for early in (True, False):
        report = run_point("G-Grid", dataset, sdist_early_exit=early)
        rows.append(
            {
                "early_exit": early,
                "amortized_s": report.amortized_s(),
                "gpu_s": report.gpu_seconds,
            }
        )
    return rows


def ablation_batched_queries(dataset: str = "FLA") -> list[dict[str, Any]]:
    """Batched vs individual query processing (the Fig. 5 G-Grid vs
    G-Grid (L) mechanism, measured directly on shared-cleaning GPU
    work)."""
    from repro.bench.harness import cached_workload
    from repro.core.messages import Message

    graph = load_dataset(dataset)
    workload = cached_workload(dataset, scaled_objects(dataset), 20.0, 8, 16, 1.0, 7)
    rows = []
    for batched in (False, True):
        index = build_index("G-Grid", dataset)
        index.reset_objects()
        for obj, loc in workload.initial.items():
            index.ingest(Message(obj, loc.edge_id, loc.offset, 0.0))
        for message in workload.updates:
            index.ingest(message)
        before = index.stats.snapshot()
        queries = [(q.location, q.k) for q in workload.queries]
        if batched:
            index.knn_batch(queries)
        else:
            for location, k in queries:
                index.knn(location, k)
        delta = index.stats.diff(before)
        rows.append(
            {
                "mode": "batched" if batched else "individual",
                "gpu_s": delta.gpu_time_s,
                "bytes_h2d": delta.bytes_h2d,
                "kernel_launches": delta.kernel_launches,
            }
        )
    return rows


def batch_scaling(dataset: str = "NY") -> list[dict[str, Any]]:
    """Batched execution engine (DESIGN.md §10): epoch batching vs
    sequential execution on an overlapping 64-query workload.

    All 64 queries arrive after the last update, so every batch size
    replays the identical event stream and the conformance guarantee
    applies: per-query answers must be byte-identical across batch
    sizes (the ``answers_match`` column).  The dedup columns show what
    batching saves — kernel launches, cell cleanings and host<->device
    transfers — while the modelled work stays the same.
    """
    from repro.bench.harness import cached_workload
    from repro.mobility.workload import Query, Workload, random_locations
    from repro.server import BatchPolicy, QueryServer

    graph = load_dataset(dataset)
    base = cached_workload(dataset, scaled_objects(dataset), 20.0, 1, 16, 1.0, 7)
    locations = random_locations(graph, 64, seed=11)
    queries = [Query(21.0, loc, 16) for loc in locations]
    workload = Workload(base.initial, base.updates, queries)

    rows: list[dict[str, Any]] = []
    baseline_answers: list[list[tuple[int, float]]] | None = None
    baseline_row: dict[str, Any] | None = None
    for batch_size in (1, 8, 64):
        index = build_index("G-Grid", dataset)
        index.reset_objects()
        server = QueryServer(index, batch=BatchPolicy(batch_size))
        report, answers = server.replay(workload, collect_answers=True)
        key = [[(e.obj, e.distance) for e in a.entries] for a in answers]
        stats = index.stats
        row: dict[str, Any] = {
            "batch_size": batch_size,
            "kernel_launches": stats.kernel_launches,
            "cells_cleaned": index.cleaner.cells_cleaned_total,
            "cleaning_passes": index.cleaner.cleanings_total,
            "transfers": stats.transfers_h2d + stats.transfers_d2h,
            "transfer_bytes": stats.total_bytes,
            "batched_launches": stats.batched_launches,
            "batched_jobs": stats.batched_jobs,
            "cells_deduped": report.batch_cells_deduped,
            "amortized_s": report.amortized_s(),
        }
        if baseline_answers is None:
            baseline_answers, baseline_row = key, row
            row["answers_match"] = True
            row["launch_reduction"] = 1.0
            row["cleaning_reduction"] = 1.0
        else:
            row["answers_match"] = key == baseline_answers
            row["launch_reduction"] = baseline_row["kernel_launches"] / max(
                1, row["kernel_launches"]
            )
            row["cleaning_reduction"] = baseline_row["cells_cleaned"] / max(
                1, row["cells_cleaned"]
            )
        rows.append(row)
    return rows


def accuracy_vs_frequency(dataset: str = "FLA") -> list[dict[str, Any]]:
    """Section II quantified: "A smaller t_delta produces more accurate
    results but also brings a higher update workload."

    A dense 8 Hz trace is the ground truth for where objects *really*
    are; the server only ingests every n-th report (update frequency
    f = 8/n Hz).  For each f we measure how well the snapshot answers
    match the true k nearest sets: recall@k and the mean distance error
    of the reported neighbours.
    """
    from repro.baselines.naive import NaiveKnnIndex
    from repro.core.ggrid import GGridIndex
    from repro.mobility.moto import MotoGenerator
    from repro.mobility.workload import random_locations

    graph = load_dataset(dataset)
    objects, duration, k = 300, 24.0, 16
    dense_hz = 8.0
    generator = MotoGenerator(graph, objects, update_frequency=dense_hz, seed=17)
    initial = generator.initial_placements()
    dense = list(generator.messages(duration))
    queries = [
        (6.0 * (i + 1), loc)
        for i, loc in enumerate(random_locations(graph, 4, seed=18))
    ]

    rows = []
    for stride in (16, 8, 4, 2, 1):
        frequency = dense_hz / stride
        index = GGridIndex(graph)
        truth = NaiveKnnIndex(graph)
        index.bulk_load(initial, 0.0)
        truth.bulk_load(initial, 0.0)
        counters: dict[int, int] = {}
        qi = 0
        recalls, errors = [], []
        for message in dense:
            while qi < len(queries) and queries[qi][0] <= message.t:
                t, loc = queries[qi]
                qi += 1
                got = index.knn(loc, k, t_now=t)
                want = truth.knn(loc, k, t_now=t)
                want_set = set(want.objects())
                got_set = set(got.objects())
                recalls.append(len(got_set & want_set) / max(1, len(want_set)))
                # distance error of the reported set vs the true set
                got_sum = sum(got.distances())
                want_sum = sum(want.distances())
                errors.append(abs(got_sum - want_sum) / max(want_sum, 1e-9))
            truth.ingest(message)  # ground truth sees every dense report
            n = counters.get(message.obj, 0)
            counters[message.obj] = n + 1
            if n % stride == 0:  # the server sees only every stride-th
                index.ingest(message)
        rows.append(
            {
                "frequency_hz": frequency,
                "recall_at_k": sum(recalls) / max(1, len(recalls)),
                "mean_distance_error": sum(errors) / max(1, len(errors)),
                "updates_ingested": index.messages_ingested,
            }
        )
    return rows


def costmodel_validation(dataset: str = "FLA") -> list[dict[str, Any]]:
    """Section VI bounds vs measured counters across k."""
    rows = []
    f_delta = 1.0
    rho = 1.8
    for k in (8, 16, 32, 64):
        report = run_point("G-Grid", dataset, k=k)
        per_query_bytes = report.transfer_bytes / max(1, report.n_queries)
        rows.append(
            {
                "k": k,
                "measured_bytes_per_query": per_query_bytes,
                "bound_bytes": transfer_bytes_bound(f_delta, rho, k),
                "bound_messages": messages_transferred_bound(f_delta, rho, k),
            }
        )
    return rows


def recovery_curve(dataset: str = "NY") -> list[dict[str, Any]]:
    """Recovery: snapshot interval vs crash-recovery time (DESIGN.md §11).

    Replays one update stream through a durable index under different
    background snapshot intervals, then "crashes" (drops the in-memory
    index) and times :func:`repro.persist.recover`.  One row per
    interval: how much WAL the run wrote, how many snapshots the policy
    cut, how many records recovery had to replay past the newest
    watermark, and the recovery wall time — the curve that justifies
    paying for compaction (``every_records=0`` is the no-snapshot
    baseline, which must replay the entire log).
    """
    import shutil
    import tempfile
    import time as _time

    from repro.config import GGridConfig
    from repro.mobility.workload import make_workload
    from repro.persist import DurabilityManager, SnapshotPolicy, recover
    from repro.roadnet.datasets import load_dataset

    graph = load_dataset(dataset)
    config = GGridConfig(delta_b=32)
    workload = make_workload(
        graph,
        num_objects=400,
        duration=15.0,
        num_queries=1,  # updates are what recovery replays; queries unused
        k=8,
        update_frequency=1.0,
        seed=11,
    )
    messages = [
        Message(obj, loc.edge_id, loc.offset, 0.0)
        for obj, loc in workload.initial.items()
    ] + list(workload.updates)

    rows = []
    for every_records in (0, 2000, 1000, 500, 250, 100):
        directory = tempfile.mkdtemp(prefix="repro-recovery-")
        try:
            manager = DurabilityManager(
                directory,
                snapshot_policy=SnapshotPolicy(every_records=every_records),
                fsync_every=256,
            )
            index = GGridIndex(graph, config)
            for message in messages:
                manager.log_ingest(message)
                index.ingest(message)
                manager.maybe_snapshot(index)
            manager.close()
            del index  # the crash: only the durable state survives
            started = _time.perf_counter()
            # graph/config feed the no-snapshot (WAL-only) baseline row
            _, report = recover(directory, graph=graph, config=config)
            recovery_s = _time.perf_counter() - started
            rows.append(
                {
                    "snapshot_every": every_records,
                    "wal_records": len(messages),
                    "wal_mb": manager.wal.bytes_appended / 2**20,
                    "snapshots": manager.snapshots.snapshots_written,
                    "replayed": report.records_replayed,
                    "recovery_s": recovery_s,
                }
            )
        finally:
            shutil.rmtree(directory, ignore_errors=True)
    return rows


def chaos_resilience(dataset: str = "NY") -> list[dict[str, Any]]:
    """Resilience: every chaos profile vs the fault-free baseline.

    One row per named profile (see :data:`repro.chaos.PROFILES`): fault
    counts, how far each query degraded, what the retries/backpressure
    cost — and the oracle column ``answers_match``, which must read
    ``True`` on every row (degradation trades latency, not correctness).
    Capacity-pressure profiles run with small buckets so the backlog cap
    is actually reachable within the replay.
    """
    from repro.chaos import PROFILES, FaultPlan
    from repro.chaos.harness import run_chaos_replay
    from repro.config import GGridConfig

    rows = []
    for profile in PROFILES:
        plan = FaultPlan.from_profile(profile, seed=7)
        config = (
            GGridConfig(delta_b=4) if plan.max_buckets_per_cell is not None else None
        )
        outcome = run_chaos_replay(plan, dataset, config=config)
        rows.append(
            {
                "profile": profile,
                "faults": outcome.total_faults,
                "answers_match": outcome.answers_match,
                "retries": outcome.chaos.total_retries,
                "degraded": outcome.chaos.degraded_queries,
                "backpressured": outcome.chaos.updates_backpressured,
                "breaker_trips": outcome.breaker_trips,
                "amortized_s": outcome.chaos.amortized_s(),
                "baseline_amortized_s": outcome.baseline.amortized_s(),
            }
        )
    return rows


def cluster_scaling(dataset: str = "NY") -> list[dict[str, Any]]:
    """Cluster: shard-count sweep plus a mid-replay failover run.

    One row per shard count (1, 2, 4, 8) replaying the identical
    workload through a :class:`~repro.cluster.router.ShardRouter`, then
    one row at 4 shards with a scheduled shard failure and replica
    promotion.  ``answers_match`` compares every per-query answer
    against the unsharded :class:`~repro.server.server.QueryServer`
    baseline — same objects, same order, distances equal at the
    conformance suite's 9-decimal precision — and must read ``True`` on
    every row.  ``exact_match`` additionally reports byte-identity;
    under migration-heavy replays a shard's restricted-search subgraph
    differs from the unsharded index's, so last-ulp drift is possible
    (see :func:`repro.core.sdist.sdist_kernel`) and the column may read
    ``False`` while ``answers_match`` stays ``True``.  ``mean_fanout``
    shows the cell-distance lower bound pruning the scatter — the
    acceptance bar is mean fanout strictly below the shard count from 4
    shards up.
    """
    from repro.bench.harness import cached_workload
    from repro.cluster import ShardFailurePlan, ShardRouter
    from repro.server import BatchPolicy, QueryServer

    graph = load_dataset(dataset)
    duration = 20.0
    workload = cached_workload(
        dataset, scaled_objects(dataset), duration, 32, 16, 1.0, 7
    )

    index = build_index("G-Grid", dataset)
    index.reset_objects()
    server = QueryServer(index, batch=BatchPolicy())
    baseline_report, baseline = server.replay(workload, collect_answers=True)
    baseline_key = [[(e.obj, e.distance) for e in a.entries] for a in baseline]
    baseline_rounded = [
        [(obj, round(d, 9)) for obj, d in answer] for answer in baseline_key
    ]

    rows: list[dict[str, Any]] = []
    for num_shards, failover in ((1, False), (2, False), (4, False), (8, False), (4, True)):
        plan = (
            ShardFailurePlan.single(0, duration / 2) if failover else None
        )
        with ShardRouter(
            graph, num_shards=num_shards, failure_plan=plan
        ) as router:
            report, answers = router.replay(workload, collect_answers=True)
            promotions = sum(s.promotions for s in router.shards.values())
        key = [[(e.obj, e.distance) for e in a.entries] for a in answers]
        rounded = [
            [(obj, round(d, 9)) for obj, d in answer] for answer in key
        ]
        rows.append(
            {
                "shards": num_shards,
                "failover": failover,
                "answers_match": rounded == baseline_rounded,
                "exact_match": key == baseline_key,
                "mean_fanout": round(report.mean_fanout, 3),
                "migrations": report.shard_migrations,
                "promotions": promotions,
                "n_updates": report.n_updates,
                "n_queries": report.n_queries,
                "amortized_s": report.amortized_s(),
                "baseline_amortized_s": baseline_report.amortized_s(),
            }
        )
    return rows


def serve_overload(dataset: str = "NY") -> list[dict[str, Any]]:
    """Serving: the front door's graceful-degradation ledger.

    One row per offered-load condition over the canonical serve
    configuration (DESIGN.md §14): the diurnal schedule at its base
    rate, at 2x (deliberate overload), at 2x under the ``mixed`` chaos
    profile, and at 2x closed-loop (each tenant waits for its previous
    answer, so demand self-throttles — the contrast column showing why
    the open-loop generator is the one that proves overload handling).
    ``paid_met`` and ``answers_match`` must read ``True`` on every row:
    the paid tier's SLO survives every condition, and a shed query is
    only ever rejected, never answered wrongly.
    """
    from repro.chaos import FaultPlan
    from repro.serve.harness import OVERLOAD_PROFILE, run_overload_proof

    conditions = [
        ("base", None, {"overload": 1.0}),
        ("2x", None, {}),
        ("2x+chaos", FaultPlan.from_profile(OVERLOAD_PROFILE, seed=7), {}),
        ("2x closed-loop", None, {"closed_loop": True}),
    ]
    rows: list[dict[str, Any]] = []
    for label, plan, overrides in conditions:
        outcome = run_overload_proof(plan, dataset=dataset, **overrides)
        summary = outcome.summary
        paid = summary["slo"].get("paid", {})
        rows.append(
            {
                "condition": label,
                "arrivals": outcome.n_arrivals,
                "admitted_paid": summary["admitted"].get("paid", 0),
                "admitted_free": summary["admitted"].get("free", 0),
                "shed": outcome.shed_total(),
                "suppressed": outcome.suppressed,
                "max_level": summary["max_level_name"],
                "paid_attainment": round(paid.get("attainment", 1.0), 4),
                "paid_met": outcome.paid_slo_met,
                "answers_match": outcome.answers_match,
                "faults": sum(outcome.faults_injected.values()),
                "breaker_trips": outcome.breaker_trips,
            }
        )
    return rows


def subscriptions(dataset: str = "NY") -> list[dict[str, Any]]:
    """Subscriptions: incremental refresh vs full re-query, twin replay.

    One row per fleet shape driving the differential harness
    (:func:`repro.subscribe.harness.run_subscription_replay`): identical
    update streams through an incremental
    :class:`~repro.subscribe.manager.SubscriptionManager` and a
    ``force_all`` twin, entries compared after every tick.  The
    acceptance bars: ``answers_match`` reads ``True`` on every row, and
    on every row ``dirty_fraction`` is strictly below 1.0 with
    ``cells_cleaned`` strictly below ``cells_full`` — the safe-radius
    dirty marking does real work, not just matching the oracle.
    """
    from repro.subscribe.harness import run_subscription_replay

    shapes = [
        # (subs, shards, update_frequency)
        (16, None, 0.05),
        (64, None, 0.05),
        (64, None, 0.02),
        (24, 4, 0.05),
    ]
    rows: list[dict[str, Any]] = []
    for num_subs, shards, freq in shapes:
        out = run_subscription_replay(
            dataset=dataset,
            num_subs=num_subs,
            k=8,
            duration=12.0,
            num_ticks=12,
            update_frequency=freq,
            seed=7,
            num_shards=shards,
        )
        saved = 1.0 - (
            out.cells_cleaned / out.full_cells_cleaned
            if out.full_cells_cleaned
            else 1.0
        )
        rows.append(
            {
                "subs": num_subs,
                "shards": shards or 1,
                "freq": freq,
                "ticks": out.ticks,
                "dirty_fraction": round(out.mean_dirty_fraction, 4),
                "refreshes": out.dirty_refreshes,
                "full_refreshes": out.full_refreshes,
                "delta_events": sum(out.delta_counts.values()),
                "cells_cleaned": out.cells_cleaned,
                "cells_full": out.full_cells_cleaned,
                "clean_savings": round(saved, 4),
                "answers_match": out.answers_match,
            }
        )
    return rows


def _plan_modeled_cost(report: Any, *indexes: Any) -> float:
    """Deterministic modelled seconds of one replay, planner currency.

    Simulated GPU seconds plus every deterministic op counter the
    backends expose (cache touches, labels materialized, lookup pops)
    priced at ``touch_cost_s`` — no wall time anywhere, so the crossover
    table is bit-stable across machines and replays.
    """
    touch = report.timing.touch_cost_s
    ops = 0
    for index in indexes:
        ops += getattr(index, "update_touches", 0)
        ops += getattr(index, "labels_built", 0)
        ops += getattr(index, "query_pops", 0)
    return ops * touch + report.gpu_seconds


#: the planner experiment's traffic mixes: (label, objects, update
#: frequency, queries, duration) — spanning update:query from ~600:1
#: down to ~1:12 so the crossover is inside the sweep, not at its edge
PLANNER_MIXES = (
    ("update-heavy", 300, 1.0, 40, 80.0),
    ("balanced", 300, 0.1, 120, 80.0),
    ("query-dominant", 200, 0.002, 400, 80.0),
)


def planner_crossover(dataset: str = "NY") -> list[dict[str, Any]]:
    """Adaptive planner: the update:query crossover (DESIGN.md §17).

    One row per traffic mix, each replayed three ways over the identical
    workload: always-G-Grid, always-TEN, and the adaptive planner (with
    its delta-invalidated result cache; queries draw from a small
    repeated pool, the traffic shape the cache exists for).  The
    acceptance bars: ``answers_match`` reads ``True`` on every row (the
    planner never trades correctness), the planner majority-routes to
    G-Grid on the update-heavy mix and to TEN on the query-dominant mix
    (``chosen``), and on every mix the planner's deterministic modelled
    cost is within float dust of — or below — the best fixed backend
    (``within_best``): parking makes it *equal* to G-Grid where TEN
    can't win, and cache hits push it *below* both where traffic
    repeats.
    """
    from repro.config import GGridConfig
    from repro.mobility.workload import Query, make_workload, random_locations
    from repro.plan import QueryPlanner, TenIndex
    from repro.server.server import QueryServer

    graph = load_dataset(dataset)
    config = GGridConfig()
    k, k_max, pool_size = 8, 32, 8
    rows: list[dict[str, Any]] = []
    for label, num_objects, freq, num_queries, duration in PLANNER_MIXES:
        workload = make_workload(
            graph,
            num_objects=num_objects,
            duration=duration,
            num_queries=num_queries,
            k=k,
            update_frequency=freq,
            seed=11,
        )
        pool = random_locations(graph, pool_size, seed=23)
        workload.queries = [
            Query(t=q.t, location=pool[i % pool_size], k=q.k)
            for i, q in enumerate(workload.queries)
        ]

        ggrid = GGridIndex(graph, config)
        report_gg, answers_gg = QueryServer(ggrid).replay(
            workload, collect_answers=True
        )
        cost_gg = _plan_modeled_cost(report_gg, ggrid)

        ten = TenIndex(graph, k_max=k_max, t_delta=config.t_delta)
        report_ten, answers_ten = QueryServer(ten).replay(
            workload, collect_answers=True
        )
        cost_ten = _plan_modeled_cost(report_ten, ten)

        planner = QueryPlanner(k_max=k_max)
        primary = GGridIndex(graph, config)
        report_plan, answers_plan = QueryServer(primary, planner=planner).replay(
            workload, collect_answers=True
        )
        cost_plan = _plan_modeled_cost(report_plan, primary, planner.ten)

        def entries(answers: list[Any]) -> list[list[tuple[int, float]]]:
            return [
                [(e.obj, round(e.distance, 9)) for e in a.entries]
                for a in answers
            ]

        reference = entries(answers_gg)
        answers_match = reference == entries(answers_plan) and reference == entries(
            answers_ten
        )
        checksum = round(
            sum(d for answer in reference for _, d in answer), 9
        )
        summary = planner.summary()
        decisions_gg = summary["decisions_ggrid"]
        decisions_ten = summary["decisions_ten"]
        best_fixed = min(cost_gg, cost_ten)
        rows.append(
            {
                "mix": label,
                "updates": report_gg.n_updates,
                "queries": report_gg.n_queries,
                "cost_ggrid_s": round(cost_gg, 9),
                "cost_ten_s": round(cost_ten, 9),
                "cost_planner_s": round(cost_plan, 9),
                "chosen": "ten" if decisions_ten > decisions_gg else "ggrid",
                "decisions_ggrid": int(decisions_gg),
                "decisions_ten": int(decisions_ten),
                "cache_hits": int(summary["cache_hits"]),
                "cache_invalidations": int(summary["cache_invalidations"]),
                "ten_rebuilds": int(summary["ten_rebuilds_full"]),
                "parked": bool(summary["parked"]),
                "within_best": cost_plan <= best_fixed * (1 + 1e-9),
                "answers_match": answers_match,
                "distance_checksum": checksum,
            }
        )
    return rows


# ----------------------------------------------------------------------
# paper-scale data plane (DESIGN.md §16)
# ----------------------------------------------------------------------
def scale_datapath(dataset: str = "NY") -> list[dict[str, Any]]:
    """The array-native data plane at a paper-order slice of ``dataset``.

    Loads the dataset at 1/8 of its paper size (NY -> ~33k vertices, an
    order of magnitude past the default bench scale), builds the index
    with the geometric partitioner and the vectorised SDist backend, and
    drives one full cycle — ingest, kNN round, fleet-update rounds,
    re-query — reporting one row per phase.  Every column except
    ``wall_s`` is modelled/deterministic for the fixed seeds, which is
    what lets the ``scale`` trajectory scenario gate them at float dust.
    """
    import random
    import time

    from repro.config import GGridConfig
    from repro.roadnet.location import NetworkLocation

    num_objects = 30_000
    num_queries = 16
    update_rounds = 2
    graph = load_dataset(dataset, scale=1.0 / 8.0)
    config = GGridConfig(
        delta_c=64, partitioner="geometric", sdist_backend="vectorized"
    )
    rows: list[dict[str, Any]] = []

    started = time.perf_counter()
    index = GGridIndex(graph, config)
    rows.append(
        {
            "phase": "build",
            "wall_s": round(time.perf_counter() - started, 6),
            "vertices": graph.num_vertices,
            "edges": graph.num_edges,
            "cells": index.grid.num_cells,
            "gpu_s": 0.0,
            "cells_cleaned": 0,
            "refine_settled": 0,
            "fallbacks": 0,
            "distance_checksum": 0.0,
        }
    )

    rng = random.Random(1101)
    started = time.perf_counter()
    for obj in range(num_objects):
        e = rng.randrange(graph.num_edges)
        index.ingest(
            Message(obj, e, rng.random() * graph.edge(e).weight * 0.99, t=1.0)
        )
    rows.append(
        {
            "phase": "ingest",
            "wall_s": round(time.perf_counter() - started, 6),
            "vertices": graph.num_vertices,
            "edges": graph.num_edges,
            "cells": index.grid.num_cells,
            "gpu_s": 0.0,
            "cells_cleaned": 0,
            "refine_settled": 0,
            "fallbacks": 0,
            "distance_checksum": 0.0,
        }
    )

    qrng = random.Random(2202)
    queries = []
    for _ in range(num_queries):
        e = qrng.randrange(graph.num_edges)
        queries.append(
            NetworkLocation(e, qrng.random() * graph.edge(e).weight * 0.99)
        )

    def query_phase(phase: str, t_now: float) -> None:
        before = index.stats.snapshot()
        started = time.perf_counter()
        cells = settled = fallbacks = 0
        checksum = 0.0
        for loc in queries:
            answer = index.knn(loc, 10, t_now=t_now)
            cells += answer.cells_cleaned
            settled += answer.refine_settled
            fallbacks += int(answer.used_fallback)
            checksum += sum(answer.distances())
        delta = index.stats.diff(before)
        rows.append(
            {
                "phase": phase,
                "wall_s": round(time.perf_counter() - started, 6),
                "vertices": graph.num_vertices,
                "edges": graph.num_edges,
                "cells": index.grid.num_cells,
                "gpu_s": round(delta.gpu_time_s, 9),
                "cells_cleaned": cells,
                "refine_settled": settled,
                "fallbacks": fallbacks,
                "distance_checksum": round(checksum, 6),
            }
        )

    query_phase("query", t_now=2.0)

    t = 2.0
    started = time.perf_counter()
    for _ in range(update_rounds):
        t += 1.0
        for obj in rng.sample(range(num_objects), num_objects // 10):
            e = rng.randrange(graph.num_edges)
            index.ingest(
                Message(obj, e, rng.random() * graph.edge(e).weight * 0.99, t=t)
            )
    rows.append(
        {
            "phase": "update",
            "wall_s": round(time.perf_counter() - started, 6),
            "vertices": graph.num_vertices,
            "edges": graph.num_edges,
            "cells": index.grid.num_cells,
            "gpu_s": 0.0,
            "cells_cleaned": 0,
            "refine_settled": 0,
            "fallbacks": 0,
            "distance_checksum": 0.0,
        }
    )

    query_phase("requery", t_now=t)
    return rows
