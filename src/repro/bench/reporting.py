"""Result formatting and persistence for the benchmark suite.

Each experiment produces a list of flat dict rows; :func:`format_table`
renders them as an aligned text table (what the benchmark prints next to
the pytest-benchmark timings) and :func:`save_results` appends them to
``results/<experiment>.json`` so EXPERIMENTS.md can reference stable
numbers.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

#: Default output directory, relative to the repository root.
RESULTS_DIR = Path(__file__).resolve().parents[3] / "results"


def format_value(value: Any) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) < 1e-3 or abs(value) >= 1e6:
            return f"{value:.3e}"
        return f"{value:.4g}"
    return str(value)


def format_table(rows: list[dict[str, Any]], title: str = "") -> str:
    """Render rows as an aligned text table (all rows share the columns
    of the first row)."""
    if not rows:
        return f"{title}\n(no rows)"
    columns = list(rows[0].keys())
    cells = [[format_value(r.get(c, "")) for c in columns] for r in rows]
    widths = [
        max(len(c), *(len(row[i]) for row in cells)) for i, c in enumerate(columns)
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(c.ljust(w) for c, w in zip(columns, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in cells:
        lines.append("  ".join(v.ljust(w) for v, w in zip(row, widths)))
    return "\n".join(lines)


def save_results(
    experiment: str, rows: list[dict[str, Any]], directory: Path | None = None
) -> Path:
    """Write rows to ``results/<experiment>.json`` and return the path."""
    out_dir = directory or RESULTS_DIR
    out_dir.mkdir(parents=True, exist_ok=True)
    path = out_dir / f"{experiment}.json"
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(rows, fh, indent=2, default=str)
    return path
