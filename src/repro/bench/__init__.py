"""Experiment harness shared by the ``benchmarks/`` suite.

* :mod:`repro.bench.harness` — cached index builders and replay drivers;
* :mod:`repro.bench.experiments` — one function per paper table/figure,
  each returning printable result rows;
* :mod:`repro.bench.reporting` — table formatting and JSON persistence.
"""

from repro.bench.harness import (
    ALGORITHMS,
    build_index,
    run_point,
    scaled_objects,
)
from repro.bench.reporting import format_table, save_results

__all__ = [
    "ALGORITHMS",
    "build_index",
    "run_point",
    "scaled_objects",
    "format_table",
    "save_results",
]
