"""Cached builders and replay drivers for the benchmark suite.

Index construction (partitioning, V-Tree matrices, ROAD shortcuts) is the
expensive part of every experiment, so built indexes are memoised per
``(algorithm, dataset, knobs)`` and their *object state* is reset between
replays (every index exposes ``reset_objects()``); workload replays are
then cheap and are what the pytest-benchmark timers measure.
"""

from __future__ import annotations

from functools import lru_cache

from repro.baselines import NaiveKnnIndex, RoadIndex, VTreeGpuIndex, VTreeIndex
from repro.config import GGridConfig
from repro.core.ggrid import GGridIndex
from repro.errors import ConfigError
from repro.mobility.workload import Workload, make_workload
from repro.obs import Observability
from repro.roadnet.datasets import load_dataset
from repro.server.metrics import ReplayReport, TimingModel
from repro.server.server import KnnIndex, QueryServer

#: The algorithms of Figs. 5-9, in the paper's plotting order.
ALGORITHMS: tuple[str, ...] = ("G-Grid", "V-Tree", "V-Tree (G)", "ROAD")

#: Default replay shape: f = 1 Hz for `duration`, queries evenly spread.
#: The paper's default workload is update-heavy (|O| = 10^4 at f = 1 with
#: queries at a fixed interval), so the replays keep thousands of updates
#: per query — the regime where lazy vs eager updating matters.
DEFAULT_DURATION = 30.0
DEFAULT_QUERIES = 8


def scaled_objects(dataset: str) -> int:
    """Default object count for a dataset.

    The paper fixes ``|O| = 10^4`` across networks of 264k-24M vertices;
    at our 1/2000 network scale we keep the update volume per query in
    the paper's band with a floor that keeps statistics meaningful.
    """
    graph = load_dataset(dataset)
    return max(300, graph.num_vertices // 4)


@lru_cache(maxsize=128)
def build_index(algorithm: str, dataset: str, knobs: tuple = ()) -> KnnIndex:
    """Build (once) an index of ``algorithm`` over ``dataset``.

    ``knobs`` is a tuple of ``(name, value)`` pairs forwarded to the
    index: G-Grid accepts any :class:`~repro.config.GGridConfig` field;
    the baselines accept ``leaf_size``.

    Raises:
        ConfigError: unknown algorithm name.
    """
    graph = load_dataset(dataset)
    kw = dict(knobs)
    if algorithm == "G-Grid":
        return GGridIndex(graph, GGridConfig(**kw))
    if algorithm == "V-Tree":
        return VTreeIndex(graph, **{k: int(v) for k, v in kw.items()})
    if algorithm == "V-Tree (G)":
        return VTreeGpuIndex(graph, **{k: int(v) for k, v in kw.items()})
    if algorithm == "ROAD":
        return RoadIndex(graph, **{k: int(v) for k, v in kw.items()})
    if algorithm == "Naive":
        return NaiveKnnIndex(graph)
    raise ConfigError(f"unknown algorithm {algorithm!r}")


@lru_cache(maxsize=64)
def cached_workload(
    dataset: str,
    num_objects: int,
    duration: float,
    num_queries: int,
    k: int,
    update_frequency: float,
    seed: int,
) -> Workload:
    """Memoised workload generation (replays must not mutate it)."""
    graph = load_dataset(dataset)
    return make_workload(
        graph,
        num_objects=num_objects,
        duration=duration,
        num_queries=num_queries,
        k=k,
        update_frequency=update_frequency,
        seed=seed,
    )


def run_point(
    algorithm: str,
    dataset: str,
    *,
    k: int = 16,
    num_objects: int | None = None,
    update_frequency: float = 1.0,
    duration: float = DEFAULT_DURATION,
    num_queries: int = DEFAULT_QUERIES,
    seed: int = 7,
    timing: TimingModel | None = None,
    obs: Observability | None = None,
    **knobs: float,
) -> ReplayReport:
    """Run one experiment point: build (cached), reset, replay, report.

    ``obs`` publishes the replay to an observability bundle (metrics /
    spans / slow-query log); when omitted, the process-wide default set
    via :func:`repro.obs.configure` applies (None = off).
    """
    objects = num_objects if num_objects is not None else scaled_objects(dataset)
    workload = cached_workload(
        dataset, objects, duration, num_queries, k, update_frequency, seed
    )
    index = build_index(algorithm, dataset, tuple(sorted(knobs.items())))
    index.reset_objects()
    server = QueryServer(index, timing, obs=obs)
    report, _ = server.replay(workload)
    return report
