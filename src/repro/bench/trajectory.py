"""Perf-trajectory recording and the regression gate behind it.

Every run of ``python -m repro.bench trajectory`` replays eight small,
fully seeded scenarios — ``single_server``, ``batch``, ``chaos``,
``cluster``, ``serve``, ``subscriptions``, ``scale`` and ``planner`` —
and appends
one row per scenario to ``results/trajectory/BENCH_<scenario>.json``.  A row separates two kinds
of numbers:

* ``counters`` — deterministic modelled outcomes (simulated GPU
  seconds, transfer bytes, update touches, fanout, retries, …).  With
  the same seeds these are bit-stable across machines, so the gate
  holds them to :data:`COUNTER_TOLERANCE` (float dust only) against the
  committed baseline row.
* ``latency`` — modelled p50/p95/p99 and the modelled update/query
  totals.  These divide *measured* Python wall time by
  ``python_speedup`` (see :class:`~repro.server.metrics.TimingModel`),
  so host noise passes straight through; they are gated loosely at
  :data:`LATENCY_TOLERANCE` to catch order-of-magnitude regressions
  without flaking on a busy CI runner.
* ``wall_s`` — raw wall clock, recorded for the trajectory plot but
  never gated.

The gate (:func:`check_regression` / :func:`gate`) compares the newest
row against the file's *first* row — the committed baseline — and only
ever fails on increases: getting faster rewrites nothing and fails
nothing (re-baseline by deleting the file and re-running).
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable

from repro.errors import ConfigError

#: the eight serving shapes whose trajectories are tracked
SCENARIOS: tuple[str, ...] = (
    "single_server",
    "batch",
    "chaos",
    "cluster",
    "serve",
    "subscriptions",
    "scale",
    "planner",
)

#: relative headroom for deterministic counters (float dust only)
COUNTER_TOLERANCE = 1e-9
#: relative headroom for wall-derived modelled latencies: a value may
#: grow to ``baseline * (1 + LATENCY_TOLERANCE)`` before the gate trips
LATENCY_TOLERANCE = 2.0

#: default on-disk home of the ``BENCH_<scenario>.json`` files
TRAJECTORY_DIR = Path(__file__).resolve().parents[3] / "results" / "trajectory"


@dataclass(frozen=True)
class TrajectoryRow:
    """One recorded run of one scenario."""

    scenario: str
    recorded_at: str
    wall_s: float
    counters: dict[str, float] = field(default_factory=dict)
    latency: dict[str, float] = field(default_factory=dict)

    def as_dict(self) -> dict[str, Any]:
        return {
            "scenario": self.scenario,
            "recorded_at": self.recorded_at,
            "wall_s": round(self.wall_s, 6),
            "counters": dict(self.counters),
            "latency": {k: round(v, 9) for k, v in self.latency.items()},
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "TrajectoryRow":
        try:
            return cls(
                scenario=data["scenario"],
                recorded_at=data["recorded_at"],
                wall_s=float(data["wall_s"]),
                counters={k: float(v) for k, v in data["counters"].items()},
                latency={k: float(v) for k, v in data["latency"].items()},
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise ConfigError(f"malformed trajectory row: {exc}") from exc


def _report_row(scenario: str, report: Any, wall_s: float) -> TrajectoryRow:
    """Fold a :class:`~repro.server.metrics.ReplayReport` into a row."""
    pct = report.latency_percentiles()
    counters = {
        "n_updates": float(report.n_updates),
        "n_queries": float(report.n_queries),
        "gpu_s": report.gpu_seconds,
        "transfer_bytes": float(report.transfer_bytes),
        "update_touches": float(report.update_touches),
        "n_batches": float(report.n_batches),
        "batch_cells_deduped": float(report.batch_cells_deduped),
        "fallback_queries": float(report.fallback_queries),
        "total_retries": float(report.total_retries),
        "degraded_queries": float(report.degraded_queries),
        "updates_backpressured": float(report.updates_backpressured),
        "mean_fanout": report.mean_fanout,
        "shard_migrations": float(report.shard_migrations),
    }
    latency = {
        "p50_s": pct["p50"],
        "p95_s": pct["p95"],
        "p99_s": pct["p99"],
        "query_modeled_s": report.query_modeled_s,
        "update_modeled_s": report.update_modeled_s,
    }
    return TrajectoryRow(
        scenario=scenario,
        recorded_at=time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        wall_s=wall_s,
        counters=counters,
        latency=latency,
    )


# ----------------------------------------------------------------------
# scenarios (small, fully seeded; see module docstring)
# ----------------------------------------------------------------------
def _run_single_server(dataset: str) -> TrajectoryRow:
    from repro.bench.harness import run_point

    started = time.perf_counter()
    report = run_point(
        "G-Grid", dataset, duration=10.0, num_queries=8, seed=7
    )
    return _report_row(
        "single_server", report, time.perf_counter() - started
    )


def _run_batch(dataset: str) -> TrajectoryRow:
    from repro.bench.harness import run_point
    from repro.server import BatchPolicy, batch_context

    started = time.perf_counter()
    with batch_context(BatchPolicy(8)):
        report = run_point(
            "G-Grid", dataset, duration=10.0, num_queries=16, seed=7
        )
    return _report_row("batch", report, time.perf_counter() - started)


def _run_chaos(dataset: str) -> TrajectoryRow:
    from repro.chaos import FaultPlan
    from repro.chaos.harness import run_chaos_replay

    started = time.perf_counter()
    plan = FaultPlan.from_profile("mixed", seed=7)
    outcome = run_chaos_replay(plan, dataset)
    row = _report_row("chaos", outcome.chaos, time.perf_counter() - started)
    row.counters["faults_injected"] = float(outcome.total_faults)
    row.counters["answers_match"] = float(outcome.answers_match)
    return row


def _run_cluster(dataset: str) -> TrajectoryRow:
    from repro.bench.harness import cached_workload, scaled_objects
    from repro.cluster import ShardRouter
    from repro.roadnet.datasets import load_dataset

    started = time.perf_counter()
    graph = load_dataset(dataset)
    workload = cached_workload(
        dataset, scaled_objects(dataset), 10.0, 16, 16, 1.0, 7
    )
    with ShardRouter(graph, num_shards=4) as router:
        report, _ = router.replay(workload)
    return _report_row("cluster", report, time.perf_counter() - started)


def _run_serve(dataset: str) -> TrajectoryRow:
    """The overload-under-chaos serve proof (DESIGN.md §14).

    Every number here is a modelled-clock outcome — shed decisions,
    admissions, SLO breaches and oracle mismatches are all deterministic
    for the fixed seeds — so the whole row rides ``counters`` and is
    held to float dust.  Breach/mismatch counts (not booleans) are what
    get recorded: the gate fails only on increases, and "0 breaches"
    failing on any breach is exactly the acceptance criterion.
    """
    from repro.chaos import FaultPlan
    from repro.serve.harness import OVERLOAD_PROFILE, run_overload_proof

    started = time.perf_counter()
    plan = FaultPlan.from_profile(OVERLOAD_PROFILE, seed=7)
    outcome = run_overload_proof(plan, dataset=dataset)
    summary = outcome.summary
    shed = summary["shed"]

    def shed_for(reason: str) -> float:
        return float(
            sum(n for key, n in shed.items() if key.startswith(f"{reason}:"))
        )

    def breaches(cls: str) -> float:
        state = summary["slo"].get(cls)
        return float(state["breaches"]) if state else 0.0

    counters = {
        "n_arrivals": float(outcome.n_arrivals),
        "n_updates": float(outcome.n_updates),
        "admitted_paid": float(summary["admitted"].get("paid", 0)),
        "admitted_free": float(summary["admitted"].get("free", 0)),
        "shed_quota": shed_for("quota"),
        "shed_deadline": shed_for("deadline"),
        "shed_brownout": shed_for("brownout"),
        "epochs": float(summary["epochs"]),
        "shrunk_epochs": float(summary["shrunk_epochs"]),
        "brownout_epochs": float(summary["brownout_epochs"]),
        "max_level": float(summary["max_level"]),
        "faults_injected": float(sum(outcome.faults_injected.values())),
        "breaker_trips": float(outcome.breaker_trips),
        "paid_breaches": breaches("paid"),
        "free_breaches": breaches("free"),
        "oracle_mismatches": float(len(outcome.mismatches)),
    }
    return TrajectoryRow(
        scenario="serve",
        recorded_at=time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        wall_s=time.perf_counter() - started,
        counters=counters,
    )


def _run_subscriptions(dataset: str) -> TrajectoryRow:
    """The standing-query twin replay (DESIGN.md §15).

    Incremental dirty-marked refreshes against a ``force_all`` twin over
    identical seeded update streams: refresh counts, dirty fraction,
    delta-event counts and cleaned-cell totals are all modelled-clock
    deterministic, so the whole row rides ``counters`` at float dust.
    ``answer_mismatches`` recording 0 — and the gate failing on any
    increase — *is* the incremental == from-scratch acceptance
    criterion; ``dirty_refreshes`` and ``cells_cleaned`` regressing
    would mean the safe-radius marking got more conservative.
    """
    from repro.subscribe.harness import run_subscription_replay

    started = time.perf_counter()
    out = run_subscription_replay(
        dataset=dataset,
        num_subs=24,
        k=8,
        duration=12.0,
        num_ticks=12,
        update_frequency=0.05,
        seed=7,
    )
    counters = {
        "n_ticks": float(out.ticks),
        "active_subs": float(out.active),
        "dirty_refreshes": float(out.dirty_refreshes),
        "full_refreshes": float(out.full_refreshes),
        "mean_dirty_fraction": out.mean_dirty_fraction,
        "delta_enter": float(out.delta_counts.get("enter", 0)),
        "delta_leave": float(out.delta_counts.get("leave", 0)),
        "delta_rerank": float(out.delta_counts.get("rerank", 0)),
        "cells_cleaned": float(out.cells_cleaned),
        "full_cells_cleaned": float(out.full_cells_cleaned),
        "answer_mismatches": float(len(out.mismatches)),
    }
    return TrajectoryRow(
        scenario="subscriptions",
        recorded_at=time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        wall_s=time.perf_counter() - started,
        counters=counters,
    )


def _run_scale(dataset: str) -> TrajectoryRow:
    """The paper-scale data-plane cycle (DESIGN.md §16).

    Folds the per-phase rows of
    :func:`repro.bench.experiments.scale_datapath` — a 1/8-paper-scale
    build/ingest/query/update/requery sweep on the geometric partitioner
    and vectorised backend — into one row.  Everything here is
    modelled/deterministic for the fixed seeds (modelled GPU seconds,
    cleaned-cell and settled-vertex counts, and the rounded sum of all
    returned kNN distances), so the whole row rides ``counters`` at
    float dust: a single changed distance, one extra cleaned cell or any
    charged-work drift in the array layouts trips the gate.
    """
    from repro.bench.experiments import scale_datapath

    started = time.perf_counter()
    rows = {row["phase"]: row for row in scale_datapath(dataset)}
    build = rows["build"]
    counters = {
        "vertices": float(build["vertices"]),
        "edges": float(build["edges"]),
        "cells": float(build["cells"]),
    }
    for phase in ("query", "requery"):
        row = rows[phase]
        counters[f"{phase}_gpu_s"] = float(row["gpu_s"])
        counters[f"{phase}_cells_cleaned"] = float(row["cells_cleaned"])
        counters[f"{phase}_refine_settled"] = float(row["refine_settled"])
        counters[f"{phase}_fallbacks"] = float(row["fallbacks"])
        counters[f"{phase}_distance_checksum"] = float(row["distance_checksum"])
    return TrajectoryRow(
        scenario="scale",
        recorded_at=time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        wall_s=time.perf_counter() - started,
        counters=counters,
    )


def _run_planner(dataset: str) -> TrajectoryRow:
    """The adaptive-planner crossover sweep (DESIGN.md §17).

    Folds the per-mix rows of
    :func:`repro.bench.experiments.planner_crossover` — three traffic
    mixes, each replayed through fixed G-Grid, fixed TEN and the
    adaptive planner — into one row.  Costs are the planner's own
    deterministic currency (op counters priced at ``touch_cost_s`` plus
    simulated GPU seconds), and decisions/cache counts ride the modelled
    clock, so the whole row rides ``counters`` at float dust.
    ``answer_mismatches`` recording 0 *is* the byte-identical acceptance
    criterion; a planner cost creeping above its committed value means a
    routing, parking or cache regression.
    """
    from repro.bench.experiments import planner_crossover

    started = time.perf_counter()
    rows = {row["mix"]: row for row in planner_crossover(dataset)}
    counters: dict[str, float] = {
        "answer_mismatches": float(
            sum(0 if row["answers_match"] else 1 for row in rows.values())
        ),
        "off_best_mixes": float(
            sum(0 if row["within_best"] else 1 for row in rows.values())
        ),
    }
    for mix, row in rows.items():
        tag = mix.replace("-", "_")
        counters[f"{tag}_cost_ggrid_s"] = float(row["cost_ggrid_s"])
        counters[f"{tag}_cost_ten_s"] = float(row["cost_ten_s"])
        counters[f"{tag}_cost_planner_s"] = float(row["cost_planner_s"])
        counters[f"{tag}_decisions_ten"] = float(row["decisions_ten"])
        counters[f"{tag}_cache_hits"] = float(row["cache_hits"])
        counters[f"{tag}_distance_checksum"] = float(row["distance_checksum"])
    return TrajectoryRow(
        scenario="planner",
        recorded_at=time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        wall_s=time.perf_counter() - started,
        counters=counters,
    )


_RUNNERS: dict[str, Callable[[str], TrajectoryRow]] = {
    "single_server": _run_single_server,
    "batch": _run_batch,
    "chaos": _run_chaos,
    "cluster": _run_cluster,
    "serve": _run_serve,
    "subscriptions": _run_subscriptions,
    "scale": _run_scale,
    "planner": _run_planner,
}


def run_scenario(scenario: str, dataset: str = "NY") -> TrajectoryRow:
    """Replay one named scenario and fold its report into a row."""
    runner = _RUNNERS.get(scenario)
    if runner is None:
        raise ConfigError(
            f"unknown trajectory scenario {scenario!r}; "
            f"expected one of {', '.join(SCENARIOS)}"
        )
    return runner(dataset)


# ----------------------------------------------------------------------
# persistence
# ----------------------------------------------------------------------
def bench_path(scenario: str, directory: str | Path | None = None) -> Path:
    """``<directory>/BENCH_<scenario>.json`` (default committed home)."""
    base = TRAJECTORY_DIR if directory is None else Path(directory)
    return base / f"BENCH_{scenario}.json"


def load_rows(path: str | Path) -> list[TrajectoryRow]:
    """All recorded rows, oldest (the baseline) first; [] if absent."""
    path = Path(path)
    if not path.exists():
        return []
    data = json.loads(path.read_text())
    if not isinstance(data, list):
        raise ConfigError(f"{path} is not a JSON array of trajectory rows")
    return [TrajectoryRow.from_dict(row) for row in data]


def append_row(row: TrajectoryRow, directory: str | Path | None = None) -> Path:
    """Append one row to its scenario's ``BENCH_*.json``; returns path."""
    path = bench_path(row.scenario, directory)
    path.parent.mkdir(parents=True, exist_ok=True)
    rows = load_rows(path)
    rows.append(row)
    path.write_text(
        json.dumps([r.as_dict() for r in rows], indent=2) + "\n"
    )
    return path


# ----------------------------------------------------------------------
# the gate
# ----------------------------------------------------------------------
def check_regression(
    baseline: TrajectoryRow,
    candidate: TrajectoryRow,
    counter_tolerance: float = COUNTER_TOLERANCE,
    latency_tolerance: float = LATENCY_TOLERANCE,
) -> list[str]:
    """Violations of ``candidate`` against ``baseline`` (empty = pass).

    Only *increases* beyond tolerance fail; a metric present in the
    baseline but missing from the candidate also fails (a silently
    dropped counter would otherwise hide a regression forever).
    """
    if baseline.scenario != candidate.scenario:
        raise ConfigError(
            f"cannot gate {candidate.scenario!r} against a "
            f"{baseline.scenario!r} baseline"
        )
    violations: list[str] = []
    for kind, values, base_values, tolerance in (
        ("counter", candidate.counters, baseline.counters, counter_tolerance),
        ("latency", candidate.latency, baseline.latency, latency_tolerance),
    ):
        for name, base in sorted(base_values.items()):
            if name not in values:
                violations.append(
                    f"{candidate.scenario}: {kind} {name!r} missing "
                    f"from candidate row"
                )
                continue
            got = values[name]
            limit = base * (1.0 + tolerance) if base > 0 else tolerance
            if got > limit:
                violations.append(
                    f"{candidate.scenario}: {kind} {name!r} regressed "
                    f"{base:.6g} -> {got:.6g} "
                    f"(limit {limit:.6g}, tolerance {tolerance:g})"
                )
    return violations


def gate(
    directory: str | Path | None = None,
    scenarios: tuple[str, ...] = SCENARIOS,
) -> list[str]:
    """Gate each scenario's newest row against its first (baseline) row.

    Scenarios with fewer than two rows pass vacuously — the first
    recorded row *is* the baseline.
    """
    violations: list[str] = []
    for scenario in scenarios:
        rows = load_rows(bench_path(scenario, directory))
        if len(rows) < 2:
            continue
        violations.extend(check_regression(rows[0], rows[-1]))
    return violations


def record_all(
    dataset: str = "NY",
    directory: str | Path | None = None,
    scenarios: tuple[str, ...] = SCENARIOS,
) -> list[TrajectoryRow]:
    """Run every scenario, append its row, and return the new rows."""
    rows = []
    for scenario in scenarios:
        row = run_scenario(scenario, dataset)
        append_row(row, directory)
        rows.append(row)
    return rows
