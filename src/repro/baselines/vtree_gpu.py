"""V-Tree (G): the paper's GPU port of the V-Tree baseline (Section VII-B).

"We store the core index structure of V-Tree in the GPU memory.  Upon
receiving a message, we send it to the GPU immediately.  We cache the
messages in the GPU until the number of cached messages reaches 32, i.e.,
the size of a GPU warp.  Then, we process the cached messages in
parallel."

This implementation wraps :class:`~repro.baselines.vtree.VTreeIndex`:

* the index (the precomputed matrices) is allocated in simulated device
  memory at build time — on the paper's USA dataset this exceeds the
  5 GB device and V-Tree (G) is excluded from Fig. 5; the benchmarks
  reproduce that by projecting the scaled index size back to paper scale;
* every message is transferred host->device immediately (paying the
  per-transfer latency, which is why eager GPU updates stay expensive),
  and applied in warp-sized parallel batches;
* query-time object scoring runs as a GPU kernel (the distance
  evaluations parallelise per object), while the border search stays on
  the CPU — this is what lets V-Tree (G) overtake V-Tree at large ``k``
  (Fig. 7) without fixing its update problem.
"""

from __future__ import annotations

import time

from repro.baselines.vtree import VTreeIndex
from repro.core.knn import KnnAnswer
from repro.core.messages import Message
from repro.roadnet.graph import RoadNetwork
from repro.roadnet.location import NetworkLocation
from repro.simgpu.device import CostModel, SimGpu
from repro.simgpu.kernel import KernelContext
from repro.simgpu.memory import MESSAGE_BYTES


def _apply_batch_kernel(ctx: KernelContext, touches_per_message: int) -> None:
    """One warp applies a batch of cached messages in parallel.

    Each lane performs the same eager maintenance the CPU V-Tree does —
    leaf lookup, list/counter updates and the border-vector refresh — so
    the per-lane charge is the inner index's touch count per message.
    """
    ctx.charge(touches_per_message)
    ctx.sync_threads()


def _score_kernel(ctx: KernelContext, objects_scored: int) -> None:
    """Distance evaluation for the reached leaf's objects, one per lane."""
    ctx.charge(2)


class VTreeGpuIndex:
    """V-Tree with device-resident index and warp-batched eager updates."""

    name = "V-Tree (G)"

    #: messages cached on the device before a parallel apply (warp size)
    BATCH = 32

    def __init__(
        self,
        graph: RoadNetwork,
        leaf_size: int = 48,
        seed: int = 0,
        gpu: SimGpu | None = None,
    ) -> None:
        """Build the inner V-Tree and ship its index to the device.

        Raises:
            DeviceMemoryError: when the index does not fit in device
                memory (the paper's USA-dataset situation).
        """
        self.inner = VTreeIndex(graph, leaf_size=leaf_size, seed=seed)
        self.gpu = gpu or SimGpu(CostModel())
        index_bytes = self.inner.size_bytes()["matrices"]
        self.gpu.to_device("vtree.index", self.inner, nbytes=index_bytes)
        self._pending: list[Message] = []
        self.messages_ingested = 0
        #: updates run on the device, so no CPU touches are reported;
        #: their cost shows up as kernel/transfer time instead
        self.update_touches = 0
        leaves = self.inner.leaves
        self._touches_per_message = 2 + max(
            1, sum(len(n.borders) for n in leaves) // max(1, len(leaves))
        )

    @property
    def graph(self) -> RoadNetwork:
        return self.inner.graph

    @property
    def latest_time(self) -> float:
        return self.inner.latest_time

    # ------------------------------------------------------------------
    # updates
    # ------------------------------------------------------------------
    def ingest(self, message: Message) -> None:
        """Stream the message to the device; apply per warp-sized batch.

        Messages are sent as they arrive, but DMA setup is shared by the
        in-flight stream, so the transfer cost is charged once per batch
        (latency) plus the message bytes.
        """
        self._pending.append(message)
        self.messages_ingested += 1
        if len(self._pending) >= self.BATCH:
            self._flush()

    def _flush(self) -> None:
        if not self._pending:
            return
        batch, self._pending = self._pending, []
        self.gpu.to_device(
            "vtree.batch", batch, nbytes=len(batch) * MESSAGE_BYTES
        )
        self.gpu.free("vtree.batch")
        self.gpu.launch(
            "VTree_Apply", len(batch), _apply_batch_kernel, self._touches_per_message
        )
        for message in batch:
            self.inner.ingest(message)

    def bulk_load(self, placements: dict[int, NetworkLocation], t: float) -> None:
        for obj, loc in placements.items():
            self.ingest(Message(obj, loc.edge_id, loc.offset, t))

    def reset_objects(self) -> None:
        """Drop all object state, keeping the device-resident index."""
        self.inner.reset_objects()
        self._pending.clear()
        self.messages_ingested = 0
        self.gpu.stats.reset()

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def knn(
        self, location: NetworkLocation, k: int, t_now: float | None = None
    ) -> KnnAnswer:
        """Flush pending updates, then query with GPU-scored objects."""
        self._flush()
        t0 = time.perf_counter()
        answer = self.inner.knn(location, k, t_now)
        wall = time.perf_counter() - t0
        # attribute the object-scoring work to the GPU: the per-object
        # distance evaluations run one-per-lane instead of on the CPU
        scored = max(1, answer.candidates)
        self.gpu.launch("VTree_Score", scored, _score_kernel, scored)
        self.gpu.memory.store("vtree.result", answer.entries, nbytes=k * MESSAGE_BYTES)
        self.gpu.from_device("vtree.result")
        self.gpu.free("vtree.result")
        search_fraction = 1.0 / (1.0 + scored / max(1, answer.refine_settled))
        answer.cpu_seconds = {"search": wall * search_fraction}
        return answer

    def size_bytes(self) -> dict[str, int]:
        sizes = dict(self.inner.size_bytes())
        sizes["gpu"] = sizes["matrices"]
        sizes["total"] = sizes["cpu"] + sizes["gpu"]
        return sizes
