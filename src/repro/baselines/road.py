"""ROAD baseline (Lee, Lee, Zheng: "Fast Object Search on Road Networks",
EDBT 2009), extended to moving objects following the V-Tree paper.

ROAD organises the network as a hierarchy of *Rnets* (regional
sub-networks, here a balanced binary partition tree).  Two structures
accelerate search:

* the **route overlay** — for every Rnet, precomputed *shortcuts* between
  its border vertices (shortest distances through the Rnet), letting the
  search traverse an entire region in one hop;
* the **association directory** — per-Rnet object occupancy, maintained
  eagerly on every location update along the leaf-to-root path.

Query processing is a network expansion (Dijkstra) from the query that,
on settling a border vertex of an object-*empty* Rnet not containing the
query, follows the Rnet's shortcuts and skips the edges diving into its
interior — empty regions are flown over instead of explored.  Objects are
discovered on the edges leaving settled vertices.

As in the paper's evaluation, updates are the weak point: every message
touches the association directory at each hierarchy level, so ROAD's
amortised cost grows quickly with the update frequency (Fig. 9).
"""

from __future__ import annotations

import heapq
import time

from repro.core.knn import KnnAnswer, KnnResultEntry
from repro.core.messages import Message
from repro.errors import QueryError
from repro.partition.tree import PartitionTree, TreeNode
from repro.plan.backends import validate_knn_args
from repro.roadnet.dijkstra import multi_source_dijkstra
from repro.roadnet.graph import RoadNetwork
from repro.roadnet.location import NetworkLocation
from repro.simgpu.memory import TABLE_ENTRY_BYTES

_INF = float("inf")


class RoadIndex:
    """Route overlay + association directory over a partition hierarchy."""

    name = "ROAD"

    def __init__(
        self, graph: RoadNetwork, leaf_size: int = 48, seed: int = 0
    ) -> None:
        self.graph = graph
        self.tree = PartitionTree(graph, leaf_size, seed=seed)
        #: per node id: {border: [(border', dist), ...]} — the shortcuts
        self.shortcuts: dict[int, dict[int, list[tuple[int, float]]]] = {}
        self._precompute_shortcuts()
        #: Rnets (node ids) each vertex borders, ordered largest-first
        self._border_of: dict[int, list[int]] = {}
        for node in self.tree.nodes:
            for v in node.borders:
                self._border_of.setdefault(v, []).append(node.id)
        for memberships in self._border_of.values():
            memberships.sort(key=lambda nid: self.tree.nodes[nid].depth)
        # moving-object state: the association directory proper keeps the
        # object *sets* per Rnet at every level (the V-Tree paper's
        # moving-object extension), not just counters — each update
        # touches one set per hierarchy level.
        self.locations: dict[int, NetworkLocation] = {}
        self.objects_by_vertex: dict[int, set[int]] = {}
        self.node_counts: list[int] = [0] * len(self.tree.nodes)
        self.node_objects: list[set[int]] = [set() for _ in self.tree.nodes]
        self.messages_ingested = 0
        self.update_touches = 0
        self.latest_time = 0.0

    # ------------------------------------------------------------------
    # precomputation
    # ------------------------------------------------------------------
    def _precompute_shortcuts(self) -> None:
        for node in self.tree.nodes:
            if node.parent == -1 or len(node.vertices) <= 2:
                continue
            sub, mapping = self.graph.subgraph(node.vertices)
            inverse = {new: old for old, new in mapping.items()}
            table: dict[int, list[tuple[int, float]]] = {}
            border_set = set(node.borders)
            for border in node.borders:
                dist = multi_source_dijkstra(
                    sub, {mapping[border]: 0.0}, targets=[mapping[b] for b in border_set]
                )
                hops = []
                for v_local, d in dist.items():
                    v = inverse[v_local]
                    if v != border and v in border_set:
                        hops.append((v, d))
                table[border] = hops
            self.shortcuts[node.id] = table

    # ------------------------------------------------------------------
    # eager updates (association directory maintenance)
    # ------------------------------------------------------------------
    def ingest(self, message: Message) -> None:
        """Apply one update: object location, per-vertex object sets, and
        the association-directory counters along the hierarchy path."""
        if message.is_removal:
            raise QueryError("clients send location updates, not removal markers")
        loc = NetworkLocation(message.edge, message.offset)
        new_vertex = self.graph.edge(message.edge).source
        old = self.locations.get(message.obj)
        if old is not None:
            old_vertex = self.graph.edge(old.edge_id).source
            if old_vertex != new_vertex:
                self.objects_by_vertex[old_vertex].discard(message.obj)
                self._detach(message.obj, old_vertex)
                self._attach(message.obj, new_vertex)
            else:
                # ROAD was not built for moving objects: even a same-
                # vertex update must locate and confirm the object's
                # association at every hierarchy level (the V-Tree
                # paper's extension), which is why ROAD's amortised time
                # rises fastest with the update frequency (Fig. 9)
                leaf = self.tree.leaf_node_of_vertex(new_vertex)
                self.update_touches += len(self.tree.path_to_root(leaf))
        else:
            self._attach(message.obj, new_vertex)
        self.locations[message.obj] = loc
        self.update_touches += 1
        self.messages_ingested += 1
        self.latest_time = max(self.latest_time, message.t)

    def _attach(self, obj: int, vertex: int) -> None:
        self.objects_by_vertex.setdefault(vertex, set()).add(obj)
        leaf = self.tree.leaf_node_of_vertex(vertex)
        for node in self.tree.path_to_root(leaf):
            self.node_counts[node.id] += 1
            self.node_objects[node.id].add(obj)
            self.update_touches += 2

    def _detach(self, obj: int, vertex: int) -> None:
        leaf = self.tree.leaf_node_of_vertex(vertex)
        for node in self.tree.path_to_root(leaf):
            self.node_counts[node.id] -= 1
            self.node_objects[node.id].discard(obj)
            self.update_touches += 2

    def bulk_load(self, placements: dict[int, NetworkLocation], t: float) -> None:
        for obj, loc in placements.items():
            self.ingest(Message(obj, loc.edge_id, loc.offset, t))

    def reset_objects(self) -> None:
        """Drop all object state, keeping the precomputed shortcuts."""
        self.locations.clear()
        self.objects_by_vertex.clear()
        self.node_counts = [0] * len(self.tree.nodes)
        for objs in self.node_objects:
            objs.clear()
        self.messages_ingested = 0
        self.update_touches = 0
        self.latest_time = 0.0

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def knn(
        self, location: NetworkLocation, k: int, t_now: float | None = None
    ) -> KnnAnswer:
        """Network expansion with empty-Rnet shortcutting."""
        validate_knn_args(self.graph, location, k)
        answer = KnnAnswer()
        t0 = time.perf_counter()
        best, settled = self._expand(location, k)
        answer.cpu_seconds["search"] = time.perf_counter() - t0
        ranked = sorted(best.items(), key=lambda kv: (kv[1], kv[0]))
        answer.entries = [KnnResultEntry(o, d) for o, d in ranked[:k] if d < _INF]
        answer.refine_settled = settled
        return answer

    def _expand(
        self, location: NetworkLocation, k: int
    ) -> tuple[dict[int, float], int]:
        edge = self.graph.edge(location.edge_id)
        q_leaf_index = self.tree.leaf_of_vertex[edge.source]
        best: dict[int, float] = {}

        # objects ahead on the query's own edge
        for obj in self.objects_by_vertex.get(edge.source, ()):
            loc = self.locations[obj]
            if loc.edge_id == location.edge_id and loc.offset >= location.offset:
                best[obj] = min(best.get(obj, _INF), loc.offset - location.offset)

        heap: list[tuple[float, int]] = [(edge.weight - location.offset, edge.dest)]
        if location.offset == 0.0:
            heap.append((0.0, edge.source))
        heapq.heapify(heap)
        seen: dict[int, float] = {v: d for d, v in heap}
        settled: set[int] = set()

        def push(v: int, d: float) -> None:
            if d < seen.get(v, _INF):
                seen[v] = d
                heapq.heappush(heap, (d, v))

        while heap:
            d, v = heapq.heappop(heap)
            if v in settled:
                continue
            settled.add(v)
            # score objects sitting on edges out of v
            for obj in self.objects_by_vertex.get(v, ()):
                loc = self.locations[obj]
                d_obj = d + loc.offset
                if d_obj < best.get(obj, _INF):
                    best[obj] = d_obj
            kth = self._kth(best, k)
            if d >= kth:
                break
            # ROAD step: fly over the largest empty Rnet v borders
            skip = self._empty_rnet(v, q_leaf_index)
            if skip is not None:
                for u, w in self.shortcuts[skip.id].get(v, ()):  # shortcuts
                    push(u, d + w)
            for e in self.graph.out_edges(v):
                if skip is not None and self.tree.contains(skip, e.dest):
                    continue  # interior of the flown-over Rnet
                push(e.dest, d + e.weight)
        return best, len(settled)

    def _empty_rnet(self, vertex: int, q_leaf_index: int) -> TreeNode | None:
        """Largest object-empty Rnet bordered by ``vertex`` that does not
        contain the query (largest first: memberships are depth-sorted)."""
        for node_id in self._border_of.get(vertex, ()):
            node = self.tree.nodes[node_id]
            if node.id not in self.shortcuts:
                continue
            if self.node_counts[node.id]:
                continue
            if node.leaf_lo <= q_leaf_index < node.leaf_hi:
                continue
            return node
        return None

    @staticmethod
    def _kth(best: dict[int, float], k: int) -> float:
        if len(best) < k:
            return _INF
        return sorted(best.values())[k - 1]

    # ------------------------------------------------------------------
    # size accounting
    # ------------------------------------------------------------------
    def size_bytes(self) -> dict[str, int]:
        shortcut_entries = sum(
            len(hops) for table in self.shortcuts.values() for hops in table.values()
        )
        overlay = shortcut_entries * 12
        directory = len(self.node_counts) * 4
        objects = len(self.locations) * (TABLE_ENTRY_BYTES + 12)
        total = overlay + directory + objects
        return {
            "shortcuts": overlay,
            "directory": directory,
            "objects": objects,
            "cpu": total,
            "gpu": 0,
            "total": total,
        }
