"""Baseline kNN systems the paper compares against.

* :mod:`repro.baselines.naive` — brute-force Dijkstra kNN; the oracle all
  correctness tests compare against.
* :mod:`repro.baselines.vtree` — V-Tree (Shen et al., ICDE 2017): a
  balanced partition tree with precomputed border-distance matrices and
  *eager* per-message index updates.
* :mod:`repro.baselines.vtree_gpu` — V-Tree (G): the paper's GPU port of
  V-Tree (index resident on the device, messages batched per warp).
* :mod:`repro.baselines.road` — ROAD (Lee et al., EDBT 2009): route
  overlay + association directory, extended to moving objects following
  the V-Tree paper's recipe.
"""

from repro.baselines.naive import NaiveKnnIndex
from repro.baselines.road import RoadIndex
from repro.baselines.vtree import VTreeIndex
from repro.baselines.vtree_gpu import VTreeGpuIndex

__all__ = ["NaiveKnnIndex", "VTreeIndex", "VTreeGpuIndex", "RoadIndex"]
