"""Brute-force kNN: the correctness oracle.

Keeps every object's latest location in a hash table and answers a query
with one full Dijkstra sweep from the query location, scoring all
objects.  O(1) updates, O(|V| log |V| + |O|) queries — the exact answers
every other index is tested against.
"""

from __future__ import annotations

import time

from repro.core.knn import KnnAnswer, KnnResultEntry
from repro.core.messages import Message
from repro.errors import QueryError
from repro.plan.backends import validate_knn_args
from repro.roadnet.dijkstra import multi_source_dijkstra
from repro.roadnet.graph import RoadNetwork
from repro.roadnet.location import NetworkLocation, entry_costs, location_distance
from repro.simgpu.memory import TABLE_ENTRY_BYTES

_INF = float("inf")


class NaiveKnnIndex:
    """Hash table of locations + full-graph Dijkstra per query."""

    name = "Naive"

    def __init__(self, graph: RoadNetwork) -> None:
        self.graph = graph
        self.locations: dict[int, NetworkLocation] = {}
        self.messages_ingested = 0
        self.update_touches = 0
        self.latest_time = 0.0

    def ingest(self, message: Message) -> None:
        """Record the object's new location (O(1))."""
        if message.is_removal:
            raise QueryError("clients send location updates, not removal markers")
        self.locations[message.obj] = NetworkLocation(message.edge, message.offset)
        self.messages_ingested += 1
        self.update_touches += 1
        self.latest_time = max(self.latest_time, message.t)

    def bulk_load(self, placements: dict[int, NetworkLocation], t: float) -> None:
        for obj, loc in placements.items():
            self.ingest(Message(obj, loc.edge_id, loc.offset, t))

    def reset_objects(self) -> None:
        """Drop all object state (benchmark replays reuse the index)."""
        self.locations.clear()
        self.messages_ingested = 0
        self.update_touches = 0
        self.latest_time = 0.0

    def knn(
        self, location: NetworkLocation, k: int, t_now: float | None = None
    ) -> KnnAnswer:
        """Exact kNN by exhaustive search."""
        validate_knn_args(self.graph, location, k)
        answer = KnnAnswer()
        t0 = time.perf_counter()
        dist = multi_source_dijkstra(self.graph, entry_costs(self.graph, location))
        scored = []
        for obj, loc in self.locations.items():
            d = location_distance(self.graph, dist, location, loc)
            if d < _INF:
                scored.append((d, obj))
        scored.sort()
        answer.entries = [KnnResultEntry(o, d) for d, o in scored[:k]]
        answer.candidates = len(scored)
        answer.cpu_seconds["search"] = time.perf_counter() - t0
        return answer

    def size_bytes(self) -> dict[str, int]:
        total = len(self.locations) * (TABLE_ENTRY_BYTES + 12)
        return {"cpu": total, "gpu": 0, "total": total}
