"""V-Tree baseline (Shen et al., "V-Tree: Efficient kNN Search on Moving
Objects with Road-Network Constraints", ICDE 2017).

V-Tree partitions the road network into a balanced tree whose leaves are
small subgraphs, precomputes distance matrices between subgraph *border*
vertices (plus border-to-vertex distances inside each leaf), and keeps a
per-leaf list of the objects currently inside.  Every location update is
applied to the index **eagerly** — the object's leaf lists and the
aggregated occupancy counters along the tree path are updated per
message, which is exactly the cost the G-Grid's lazy strategy avoids.

Query processing searches the *border overlay graph*: nodes are all leaf
border vertices; edges are the original crossing edges plus the
precomputed intra-leaf border-to-border distances.  Because any shortest
path decomposes into leaf-internal segments between consecutive border
crossings, a Dijkstra over this overlay (seeded from the query's leaf)
yields exact entry distances to every leaf; objects of a reached leaf are
scored through the precomputed border-to-vertex tables.  The search
settles borders best-first and stops once the k-th best object beats the
frontier, so only the leaves near the query are touched — functionally
equivalent to V-Tree's tree search with its precomputed matrices, with
the same index-size and update-cost behaviour (the properties Figs. 5-9
measure).
"""

from __future__ import annotations

import heapq
import time

from repro.core.knn import KnnAnswer, KnnResultEntry
from repro.core.messages import Message
from repro.errors import QueryError
from repro.partition.tree import PartitionTree, TreeNode
from repro.plan.backends import validate_knn_args
from repro.roadnet.dijkstra import multi_source_dijkstra
from repro.roadnet.graph import RoadNetwork
from repro.roadnet.location import NetworkLocation
from repro.simgpu.memory import TABLE_ENTRY_BYTES

_INF = float("inf")


class VTreeIndex:
    """The eager-update V-Tree index."""

    name = "V-Tree"

    def __init__(
        self, graph: RoadNetwork, leaf_size: int = 96, seed: int = 0
    ) -> None:
        """Build the tree and precompute the distance matrices.

        Args:
            graph: the road network.
            leaf_size: maximum vertices per leaf subgraph.
            seed: partitioning seed.
        """
        self.graph = graph
        self.tree = PartitionTree(graph, leaf_size, seed=seed)
        self.leaves = self.tree.leaves()
        #: per leaf node id: {u: {v: dist}} — the *pairwise* distance
        #: matrix of the leaf subgraph.  This is V-Tree's signature
        #: precomputation ("pairwise distances between vertices in a
        #: V-tree cell") and the reason its index dwarfs G-Grid's (Fig. 6)
        self.pair_dist: dict[int, dict[int, dict[int, float]]] = {}
        #: per leaf node id: {border: {vertex: dist}} — view into pair_dist
        self.from_border: dict[int, dict[int, dict[int, float]]] = {}
        self._precompute_leaf_tables()
        self._overlay = self._build_overlay()
        # moving-object state (eagerly maintained)
        self.locations: dict[int, NetworkLocation] = {}
        self.leaf_objects: dict[int, set[int]] = {n.id: set() for n in self.leaves}
        self.node_counts: list[int] = [0] * len(self.tree.nodes)
        #: per object: leaf id and {border: dist(border -> object)} —
        #: V-Tree's query-time speed comes from keeping these *eagerly*
        #: current, which is exactly the per-message cost Fig. 9 measures
        self.object_vectors: dict[int, tuple[int, dict[int, float]]] = {}
        self.messages_ingested = 0
        self.update_touches = 0  # index entries touched by eager updates
        self.latest_time = 0.0

    # ------------------------------------------------------------------
    # precomputation
    # ------------------------------------------------------------------
    def _precompute_leaf_tables(self) -> None:
        for leaf in self.leaves:
            sub, mapping = self.graph.subgraph(leaf.vertices)
            inverse = {new: old for old, new in mapping.items()}
            pairs: dict[int, dict[int, float]] = {}
            for u in leaf.vertices:
                fwd = multi_source_dijkstra(sub, {mapping[u]: 0.0})
                pairs[u] = {inverse[v]: d for v, d in fwd.items()}
            self.pair_dist[leaf.id] = pairs
            self.from_border[leaf.id] = {b: pairs[b] for b in leaf.borders}

    def _build_overlay(self) -> dict[int, list[tuple[int, float]]]:
        """Border overlay: crossing edges + intra-leaf border shortcuts."""
        overlay: dict[int, list[tuple[int, float]]] = {}

        def add(u: int, v: int, w: float) -> None:
            overlay.setdefault(u, []).append((v, w))

        for e in self.graph.edges():
            if self.tree.leaf_of_vertex[e.source] != self.tree.leaf_of_vertex[e.dest]:
                add(e.source, e.dest, e.weight)
        for leaf in self.leaves:
            from_b = self.from_border[leaf.id]
            for b1 in leaf.borders:
                for b2 in leaf.borders:
                    if b1 == b2:
                        continue
                    d = from_b[b1].get(b2)
                    if d is not None:
                        add(b1, b2, d)
        return overlay

    # ------------------------------------------------------------------
    # eager updates
    # ------------------------------------------------------------------
    def ingest(self, message: Message) -> None:
        """Apply one location update to the index immediately.

        Every message triggers real index maintenance ("each object
        update triggers an index update"): the object's leaf membership,
        the occupancy counters on the leaf-to-root path, and — the
        expensive part — the object's border-distance vector inside its
        leaf, which the query path relies on being current.  This is the
        per-message cost that dominates V-Tree under high update
        frequency (Fig. 9).
        """
        if message.is_removal:
            raise QueryError("clients send location updates, not removal markers")
        loc = NetworkLocation(message.edge, message.offset)
        src = self.graph.edge(message.edge).source
        new_leaf = self.tree.leaf_node_of_vertex(src)
        old = self.locations.get(message.obj)
        if old is not None:
            old_leaf = self.tree.leaf_node_of_vertex(self.graph.edge(old.edge_id).source)
            if old_leaf.id != new_leaf.id:
                self.leaf_objects[old_leaf.id].discard(message.obj)
                for node in self.tree.path_to_root(old_leaf):
                    self.node_counts[node.id] -= 1
                    self.update_touches += 1
                self._count_in(message.obj, new_leaf)
        else:
            self._count_in(message.obj, new_leaf)
        # refresh the precomputed border -> object distance vector
        vector: dict[int, float] = {}
        from_b = self.from_border[new_leaf.id]
        for border in new_leaf.borders:
            d_src = from_b[border].get(src)
            if d_src is not None:
                vector[border] = d_src + message.offset
            self.update_touches += 1
        self.object_vectors[message.obj] = (new_leaf.id, vector)
        self.locations[message.obj] = loc
        self.update_touches += 1  # the location entry itself
        self.messages_ingested += 1
        self.latest_time = max(self.latest_time, message.t)

    def _count_in(self, obj: int, leaf: TreeNode) -> None:
        self.leaf_objects[leaf.id].add(obj)
        for node in self.tree.path_to_root(leaf):
            self.node_counts[node.id] += 1
            self.update_touches += 1

    def bulk_load(self, placements: dict[int, NetworkLocation], t: float) -> None:
        for obj, loc in placements.items():
            self.ingest(Message(obj, loc.edge_id, loc.offset, t))

    def reset_objects(self) -> None:
        """Drop all object state, keeping the precomputed matrices."""
        self.locations.clear()
        self.object_vectors.clear()
        for objs in self.leaf_objects.values():
            objs.clear()
        self.node_counts = [0] * len(self.tree.nodes)
        self.messages_ingested = 0
        self.update_touches = 0
        self.latest_time = 0.0

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def knn(
        self, location: NetworkLocation, k: int, t_now: float | None = None
    ) -> KnnAnswer:
        """Exact kNN via best-first search over the border overlay."""
        validate_knn_args(self.graph, location, k)
        answer = KnnAnswer()
        t0 = time.perf_counter()
        best, borders_settled, objects_scored = self._search(location, k)
        answer.cpu_seconds["search"] = time.perf_counter() - t0
        ranked = sorted(best.items(), key=lambda kv: (kv[1], kv[0]))
        answer.entries = [KnnResultEntry(o, d) for o, d in ranked[:k] if d < _INF]
        answer.candidates = objects_scored
        answer.refine_settled = borders_settled
        return answer

    def _search(
        self, location: NetworkLocation, k: int
    ) -> tuple[dict[int, float], int, int]:
        edge = self.graph.edge(location.edge_id)
        start_vertex = edge.dest
        entry_cost = edge.weight - location.offset
        start_leaf = self.tree.leaf_node_of_vertex(start_vertex)

        best: dict[int, float] = {}
        objects_scored = 0

        # local distances inside the starting leaf, straight from the
        # precomputed pairwise matrix (no search needed — V-Tree's payoff)
        pairs = self.pair_dist[start_leaf.id]
        local = {v: entry_cost + d for v, d in pairs.get(start_vertex, {}).items()}
        if location.offset == 0.0 and edge.source in pairs:
            for v, d in pairs[edge.source].items():
                if d < local.get(v, _INF):
                    local[v] = d
        objects_scored += self._score_leaf_local(start_leaf, local, location, best)
        # objects ahead on the query's own edge live in the *source*
        # vertex's leaf, which differs from the start (destination) leaf
        # when the query edge crosses a partition boundary
        source_leaf = self.tree.leaf_node_of_vertex(edge.source)
        if source_leaf.id != start_leaf.id:
            for obj in self.leaf_objects[source_leaf.id]:
                loc = self.locations[obj]
                if loc.edge_id == location.edge_id and loc.offset >= location.offset:
                    d_same = loc.offset - location.offset
                    if d_same < best.get(obj, _INF):
                        best[obj] = d_same
                    objects_scored += 1

        # overlay search seeded from the starting leaf's borders (and from
        # the start vertex itself when it is a border with crossing edges)
        heap: list[tuple[float, int]] = []
        seen: dict[int, float] = {}

        def push(v: int, d: float) -> None:
            if d < seen.get(v, _INF):
                seen[v] = d
                heapq.heappush(heap, (d, v))

        for b in start_leaf.borders:
            d = local.get(b)
            if d is not None:
                push(b, d)
        if location.offset == 0.0 and edge.source not in pairs:
            # standing on a vertex whose leaf differs from the edge's
            # destination leaf: the source is then a border of its leaf
            push(edge.source, 0.0)

        settled: set[int] = set()
        borders_settled = 0
        while heap:
            d, v = heapq.heappop(heap)
            if v in settled:
                continue
            settled.add(v)
            borders_settled += 1
            kth = self._kth(best, k)
            if d >= kth:
                break
            leaf = self.tree.leaf_node_of_vertex(v)
            objects_scored += self._score_leaf_via_border(leaf, v, d, best)
            for u, w in self._overlay.get(v, ()):  # crossing + shortcuts
                push(u, d + w)
        return best, borders_settled, objects_scored

    def _score_leaf_local(
        self,
        leaf: TreeNode,
        local: dict[int, float],
        location: NetworkLocation,
        best: dict[int, float],
    ) -> int:
        scored = 0
        for obj in self.leaf_objects[leaf.id]:
            loc = self.locations[obj]
            src = self.graph.edge(loc.edge_id).source
            d_src = local.get(src)
            scored += 1
            if loc.edge_id == location.edge_id and loc.offset >= location.offset:
                d_same = loc.offset - location.offset
                if d_same < best.get(obj, _INF):
                    best[obj] = d_same
            if d_src is not None:
                d = d_src + loc.offset
                if d < best.get(obj, _INF):
                    best[obj] = d
        return scored

    def _score_leaf_via_border(
        self, leaf: TreeNode, border: int, d_border: float, best: dict[int, float]
    ) -> int:
        scored = 0
        for obj in self.leaf_objects[leaf.id]:
            # the eager update kept this vector current: one lookup each
            _, vector = self.object_vectors[obj]
            d_obj = vector.get(border)
            scored += 1
            if d_obj is not None:
                d = d_border + d_obj
                if d < best.get(obj, _INF):
                    best[obj] = d
        return scored

    @staticmethod
    def _kth(best: dict[int, float], k: int) -> float:
        if len(best) < k:
            return _INF
        return sorted(best.values())[k - 1]

    # ------------------------------------------------------------------
    # size accounting (Fig. 6)
    # ------------------------------------------------------------------
    def size_bytes(self) -> dict[str, int]:
        """Modelled footprint: the precomputed pairwise matrices dominate."""
        matrices = 0
        for leaf in self.leaves:
            entries = sum(len(row) for row in self.pair_dist[leaf.id].values())
            matrices += entries * 8  # (vertex id, distance) packed
        overlay = sum(len(v) for v in self._overlay.values()) * 12
        objects = len(self.locations) * (TABLE_ENTRY_BYTES + 12)
        counts = len(self.node_counts) * 4
        total = matrices + overlay + objects + counts
        return {
            "matrices": matrices,
            "overlay": overlay,
            "objects": objects,
            "cpu": total,
            "gpu": 0,
            "total": total,
        }
