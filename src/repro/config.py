"""Configuration for the G-Grid index and its GPU/CPU cost models.

Defaults follow the paper's tuned values (Section VII-C1): cell capacity
``delta_c = 3`` and vertex capacity ``delta_v = 2`` (sized for a 128-byte
L1 line), bucket capacity ``delta_b = 128`` (Fig. 4a), bundle size
``2^eta = 32`` (the warp size, Fig. 4b), workload-balance factor
``rho = 1.8`` (Fig. 4c), and a maximum update interval ``t_delta``.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.errors import ConfigError
from repro.simgpu.device import CostModel


@dataclass(frozen=True)
class GGridConfig:
    """All tunables of the G-Grid index and query processor.

    Attributes:
        delta_c: cell capacity — max vertices per grid cell.
        delta_v: vertex capacity — max edges stored per (virtual) vertex.
        delta_b: bucket capacity — messages per message-list bucket.
        eta: bundles have ``2^eta`` threads in the X-shuffle.
        rho: candidate-set inflation factor (``> 1``); the query gathers
            at least ``rho * k`` candidate objects before the GPU phase.
        t_delta: maximum seconds between two location updates of an
            object; buckets older than this are discarded unread.
        cpu_workers: CPU threads used for refinement (paper machine: 12).
        python_speedup: divisor converting measured pure-Python CPU time
            into modelled compiled-CPU time for reporting (the paper's
            implementation is C++; shapes are preserved, see DESIGN.md).
        pipelined_transfers: overlap H2D transfers with cleaning kernels.
        sdist_early_exit: stop GPU_SDist rounds when no distance changed
            (an optimisation ablated in the benchmarks; the paper's
            Algorithm 5 always runs ``|V|`` rounds).
        sdist_backend: ``"lockstep"`` (faithful per-element kernel) or
            ``"vectorized"`` (numpy formulation, identical results,
            faster host simulation).
        partitioner: ``"multilevel"`` (the default: recursive balanced
            bisection via the multilevel partitioner, minimising crossing
            edges) or ``"geometric"`` (coordinate-median splits over
            numpy arrays — same capacity guarantee, near-linear build
            time; the choice for paper-scale graphs).
        max_buckets_per_cell: optional cap on a cell's message-list
            backlog; reaching it makes ingest force an in-line cleaning
            of the cell (backpressure) instead of growing the list.
            ``None`` (default) is unbounded — the paper's behaviour.
            Chaos profiles shrink this to exercise capacity pressure.
        seed: base RNG seed for partitioning and simulated write races.
        gpu: simulated-device cost model.
    """

    delta_c: int = 3
    delta_v: int = 2
    delta_b: int = 128
    eta: int = 5
    rho: float = 1.8
    t_delta: float = 60.0
    cpu_workers: int = 12
    python_speedup: float = 50.0
    pipelined_transfers: bool = True
    sdist_early_exit: bool = True
    sdist_backend: str = "lockstep"
    partitioner: str = "multilevel"
    max_buckets_per_cell: int | None = None
    seed: int = 0
    gpu: CostModel = field(default_factory=CostModel)

    def __post_init__(self) -> None:
        if self.delta_c < 1:
            raise ConfigError(f"delta_c must be >= 1, got {self.delta_c}")
        if self.delta_v < 1:
            raise ConfigError(f"delta_v must be >= 1, got {self.delta_v}")
        if self.delta_b < 1:
            raise ConfigError(f"delta_b must be >= 1, got {self.delta_b}")
        if self.eta < 1:
            raise ConfigError(f"eta must be >= 1, got {self.eta}")
        if self.rho <= 1.0:
            raise ConfigError(f"rho must be > 1, got {self.rho}")
        if self.t_delta <= 0:
            raise ConfigError(f"t_delta must be positive, got {self.t_delta}")
        if self.cpu_workers < 1:
            raise ConfigError(f"cpu_workers must be >= 1, got {self.cpu_workers}")
        if self.python_speedup <= 0:
            raise ConfigError(
                f"python_speedup must be positive, got {self.python_speedup}"
            )
        if self.sdist_backend not in ("lockstep", "vectorized"):
            raise ConfigError(
                f"unknown sdist backend {self.sdist_backend!r}"
            )
        if self.partitioner not in ("multilevel", "geometric"):
            raise ConfigError(f"unknown partitioner {self.partitioner!r}")
        if self.max_buckets_per_cell is not None and self.max_buckets_per_cell < 1:
            raise ConfigError(
                f"max_buckets_per_cell must be >= 1, "
                f"got {self.max_buckets_per_cell}"
            )

    @property
    def bundle_size(self) -> int:
        """Threads per X-shuffle bundle: ``2^eta``."""
        return 1 << self.eta

    def with_(self, **overrides: object) -> "GGridConfig":
        """A copy with the given fields replaced (keyword style)."""
        return replace(self, **overrides)  # type: ignore[arg-type]
