"""G-Grid: a GPU-accelerated update-efficient index for kNN queries in
road networks.

A from-scratch reproduction of Li et al., ICDE 2018 (see DESIGN.md).  The
headline API:

    >>> from repro import GGridIndex, GGridConfig, Message
    >>> from repro.roadnet import grid_road_network, NetworkLocation
    >>> graph = grid_road_network(8, 8, seed=1)
    >>> index = GGridIndex(graph)
    >>> index.ingest(Message(obj=1, edge=0, offset=0.2, t=1.0))
    >>> answer = index.knn(NetworkLocation(0, 0.0), k=1)
    >>> answer.objects()
    [1]

Subpackages: :mod:`repro.core` (the paper's contribution),
:mod:`repro.roadnet`, :mod:`repro.partition`, :mod:`repro.simgpu`,
:mod:`repro.mobility` (substrates), :mod:`repro.baselines` (V-Tree,
V-Tree (G), ROAD, brute force), :mod:`repro.server` (the query server the
experiments drive) and :mod:`repro.bench` (experiment harness).
"""

from repro.config import GGridConfig
from repro.core.ggrid import GGridIndex
from repro.core.knn import KnnAnswer, KnnResultEntry
from repro.core.messages import Message
from repro.errors import ReproError
from repro.roadnet.location import NetworkLocation

__version__ = "1.0.0"

__all__ = [
    "GGridConfig",
    "GGridIndex",
    "KnnAnswer",
    "KnnResultEntry",
    "Message",
    "NetworkLocation",
    "ReproError",
    "__version__",
]
