"""A delta-invalidated kNN result cache.

Repeated-query traffic (app users polling the same junction, standing
dashboards) re-pays a whole backend per query even though nothing moved
nearby.  :class:`ResultCache` short-circuits that: answers are cached
under ``(cell, edge, offset, k, time-bucket)`` and invalidated by the
*same* message-stream tap that feeds :mod:`repro.subscribe` — the
planner taps :meth:`observe` / :meth:`observe_remove` from the server's
update path, exactly like ``attach_subscriptions`` delta plumbing.

The no-stale-answer invariant (property-tested in
``tests/plan/test_cache.py``) mirrors the subscription manager's
dirty-marking rules; a cached entry survives a message only when the
message provably cannot change the answer:

* **member** — any message (move or removal) touching a cached member
  invalidates: the member's distance may grow, or it vanishes.
* **radius** — a non-member *move* invalidates every entry whose
  cell-distance lower bound (:class:`~repro.cluster.shardmap.
  CellDistanceBound`) to the message's cell is ``<=`` the entry's k-th
  distance ``d_k`` — ties included, because an equidistant smaller id
  would enter the canonical order.  While the entry holds fewer than
  ``k`` objects the radius is infinite and any move invalidates.  A
  non-member *removal* is provably safe: it cannot shrink any of the k
  nearest distances, and while the entry is short every reachable
  visible object is already a member.
* **expiry** — lazy cleaning drops a member whose last report ages past
  ``t_delta`` even when no message arrives, so an entry is only served
  while ``t_now <= min(member report time) + t_delta``.  Members whose
  report the tap never saw count as already expired (conservative).

A hit returns a *copy* of the cached answer with its cost fields zeroed:
the entries are byte-identical to a cold query, and the served cost is
the cache's (nothing — no kernels, no cleaning, no refinement).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.cluster.shardmap import CellDistanceBound
from repro.core.knn import KnnAnswer, KnnResultEntry
from repro.errors import PlanError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.graph_grid import GraphGrid
    from repro.core.messages import Message
    from repro.roadnet.location import NetworkLocation

_INF = float("inf")

#: (cell, edge, offset, k, bucket) — the exact location is part of the
#: key (two locations in one cell have different answers); the bucket
#: bounds how long an entry can live even without invalidation
CacheKey = tuple[int, int, float, int, int]


@dataclass
class CacheEntry:
    """One cached answer with everything invalidation needs."""

    key: CacheKey
    location: "NetworkLocation"
    k: int
    entries: tuple[tuple[int, float], ...]
    members: frozenset[int]
    #: the pruning radius d_k; infinite while the answer is short
    radius: float
    #: serve only while t_now <= expires_at (member expiry horizon)
    expires_at: float
    #: serve only at t_now >= stored_at: visibility is monotone in time,
    #: so an earlier query could legally see *more* objects
    stored_at: float


class ResultCache:
    """Delta-invalidated memo of exact kNN answers.

    Deterministic counters (``hits`` / ``misses`` / ``invalidations``)
    feed the trajectory gate; the planner mirrors them into the
    ``repro_plan_cache_*`` metric families.
    """

    def __init__(
        self,
        grid: "GraphGrid",
        t_delta: float = _INF,
        bound: CellDistanceBound | None = None,
        bucket_s: float | None = None,
        max_entries: int = 1024,
    ) -> None:
        """Args:
            grid: the G-Grid partitioning (cell keys + distance bounds).
            t_delta: the report-freshness horizon of the backing index.
            bound: cell-distance lower bound; built from ``grid`` when
                not shared with a router.
            bucket_s: time-bucket width for the cache key; defaults to
                ``t_delta`` (one expiry horizon), or 60s when expiry is
                disabled.
            max_entries: FIFO capacity cap.
        """
        if bucket_s is not None and bucket_s <= 0:
            raise PlanError(f"cache bucket_s must be positive, got {bucket_s}")
        if max_entries < 1:
            raise PlanError(f"cache max_entries must be >= 1, got {max_entries}")
        self.grid = grid
        self.t_delta = t_delta
        self.bound = bound or CellDistanceBound(grid)
        self.bucket_s = bucket_s or (t_delta if t_delta < _INF else 60.0)
        self.max_entries = max_entries
        self._entries: dict[CacheKey, CacheEntry] = {}
        #: last report time per live object — the expiry-horizon clock
        self._last_seen: dict[int, float] = {}
        self.hits = 0
        self.misses = 0
        self.invalidations = 0

    def __len__(self) -> int:
        return len(self._entries)

    def key_for(self, location: "NetworkLocation", k: int, t: float) -> CacheKey:
        cell = self.grid.cell_of_edge(location.edge_id)
        return (cell, location.edge_id, location.offset, k, int(t // self.bucket_s))

    # ------------------------------------------------------------------
    # lookup / store
    # ------------------------------------------------------------------
    def lookup(
        self, location: "NetworkLocation", k: int, t: float
    ) -> KnnAnswer | None:
        """The cached answer for this query, or None (counted as a miss)."""
        entry = self._entries.get(self.key_for(location, k, t))
        if entry is None:
            self.misses += 1
            return None
        if t > entry.expires_at:
            # a member aged past t_delta: lazy cleaning would drop it
            del self._entries[entry.key]
            self.invalidations += 1
            self.misses += 1
            return None
        if t < entry.stored_at:
            self.misses += 1
            return None
        self.hits += 1
        answer = KnnAnswer()
        answer.entries = [KnnResultEntry(o, d) for o, d in entry.entries]
        return answer

    def store(
        self, location: "NetworkLocation", k: int, t: float, answer: KnnAnswer
    ) -> None:
        """Memoize a cold answer under its ``(cell, k, bucket)`` key."""
        if len(self._entries) >= self.max_entries:
            oldest = next(iter(self._entries))
            del self._entries[oldest]
        members = frozenset(e.obj for e in answer.entries)
        if members and all(obj in self._last_seen for obj in members):
            expires_at = (
                min(self._last_seen[obj] for obj in members) + self.t_delta
            )
        elif members:
            # a member the tap never saw has no report time: treat it as
            # already expired (conservative — the entry is never served)
            expires_at = -_INF
        else:
            expires_at = _INF
        key = self.key_for(location, k, t)
        self._entries[key] = CacheEntry(
            key=key,
            location=location,
            k=k,
            entries=tuple((e.obj, e.distance) for e in answer.entries),
            members=members,
            radius=answer.entries[-1].distance if len(answer.entries) >= k else _INF,
            expires_at=expires_at,
            stored_at=t,
        )

    # ------------------------------------------------------------------
    # the update-stream tap
    # ------------------------------------------------------------------
    def observe(self, message: "Message") -> None:
        """Tap one applied update; drop every entry it could change."""
        if message.is_removal:
            self.observe_remove(message.obj, message.t)
            return
        self._last_seen[message.obj] = message.t
        cell = self.grid.cell_of_edge(message.edge)
        cell_range = range(cell, cell + 1)
        stale = []
        for key, entry in self._entries.items():
            if message.obj in entry.members:
                stale.append(key)
                continue
            if entry.radius == _INF:
                stale.append(key)
                continue
            lb = self.bound.lower_bound_to_cells(entry.location, cell_range)
            if lb <= entry.radius:
                stale.append(key)
        self._drop(stale)

    def observe_remove(self, obj: int, t: float) -> None:
        """Tap a removal; only entries holding the object can change."""
        self._last_seen.pop(obj, None)
        self._drop(
            [key for key, entry in self._entries.items() if obj in entry.members]
        )

    def _drop(self, keys: list[CacheKey]) -> None:
        for key in keys:
            del self._entries[key]
        self.invalidations += len(keys)

    def clear(self) -> None:
        """Drop all entries and tap state (index reset)."""
        self._entries.clear()
        self._last_seen.clear()
