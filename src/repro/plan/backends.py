"""The pluggable index-backend protocol and its shared entry-point rules.

Every kNN index in this repository — the paper's G-Grid, the eager
V-Tree / ROAD baselines, the Naive oracle and the planner's own TEN
index — answers the same queries with the same canonical ``(distance,
object id)`` ordering (:mod:`repro.core.ordering`).  Before this module
each of them hand-copied the same ``knn`` prologue (reject ``k <= 0``,
validate the location against the graph); the copies had already started
to drift in their error text.  :func:`validate_knn_args` is now the one
shared prologue, and :class:`IndexBackend` is the runtime-checkable
protocol the planner (and :class:`~repro.server.server.QueryServer`)
program against.

Capabilities beyond the core contract are feature-detected, never
assumed:

* ``knn_batch`` — epoch-batched execution (G-Grid only today);
* ``remove_object`` — explicit deregistration;
* ``range_query`` — radius queries.

:func:`make_backend` builds any backend by name with one call; imports
are lazy so this module stays dependency-free for the baselines that
import it.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Protocol, runtime_checkable

from repro.errors import PlanError, QueryError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.knn import KnnAnswer
    from repro.core.messages import Message
    from repro.roadnet.graph import RoadNetwork
    from repro.roadnet.location import NetworkLocation


@runtime_checkable
class IndexBackend(Protocol):
    """What the planner requires of a pluggable index backend.

    The contract every implementation must honour:

    * ``knn`` returns entries in the canonical ascending
      ``(distance, object id)`` order with unreachable objects dropped;
    * ``ingest`` applies a location update; monotone timestamps;
    * cost counters (``update_touches`` and whatever the backend's
      query path reports through :class:`~repro.core.knn.KnnAnswer`)
      are deterministic — identical across replays of the same workload.
    """

    name: str

    def ingest(self, message: "Message") -> None: ...

    def bulk_load(
        self, placements: dict[int, "NetworkLocation"], t: float
    ) -> None: ...

    def knn(
        self, location: "NetworkLocation", k: int, t_now: float | None = None
    ) -> "KnnAnswer": ...

    def size_bytes(self) -> dict[str, int]: ...

    def reset_objects(self) -> None: ...


def validate_knn_args(
    graph: "RoadNetwork", location: "NetworkLocation", k: int
) -> None:
    """The shared ``knn(...)`` entry-point prologue.

    Raises:
        QueryError: for a non-positive ``k``.
        GraphError: for a location off ``graph`` (unknown edge or an
            offset outside ``[0, weight]``).
    """
    if k <= 0:
        raise QueryError(f"k must be positive, got {k}")
    location.validate(graph)


def supports_batch(backend: object) -> bool:
    """True when the backend exposes epoch-batched execution."""
    return callable(getattr(backend, "knn_batch", None))


def supports_removal(backend: object) -> bool:
    """True when the backend supports explicit object deregistration."""
    return callable(getattr(backend, "remove_object", None))


#: the names :func:`make_backend` accepts, in documentation order
BACKEND_NAMES = ("ggrid", "ten", "naive", "road", "vtree", "vtree_gpu")


def make_backend(
    name: str,
    graph: "RoadNetwork",
    config: object | None = None,
    **kwargs: object,
) -> IndexBackend:
    """Build an index backend by name.

    Args:
        name: one of :data:`BACKEND_NAMES`.
        graph: the road network.
        config: a :class:`~repro.config.GGridConfig` (only ``ggrid``
            consumes it; ``ten`` borrows its ``t_delta`` so expiry
            visibility matches G-Grid's lazy cleaning).
        kwargs: forwarded to the backend constructor (e.g. ``leaf_size``
            for the tree indexes, ``k_max`` for TEN).

    Raises:
        PlanError: for an unknown backend name.
    """
    if name == "ggrid":
        from repro.config import GGridConfig
        from repro.core.ggrid import GGridIndex

        return GGridIndex(graph, config or GGridConfig(), **kwargs)
    if name == "ten":
        from repro.plan.ten import TenIndex

        if config is not None and "t_delta" not in kwargs:
            kwargs["t_delta"] = config.t_delta
        return TenIndex(graph, **kwargs)
    if name == "naive":
        from repro.baselines.naive import NaiveKnnIndex

        return NaiveKnnIndex(graph)
    if name == "road":
        from repro.baselines.road import RoadIndex

        return RoadIndex(graph, **kwargs)
    if name == "vtree":
        from repro.baselines.vtree import VTreeIndex

        return VTreeIndex(graph, **kwargs)
    if name == "vtree_gpu":
        from repro.baselines.vtree_gpu import VTreeGpuIndex

        return VTreeGpuIndex(graph, **kwargs)
    raise PlanError(
        f"unknown backend {name!r}; expected one of {', '.join(BACKEND_NAMES)}"
    )
