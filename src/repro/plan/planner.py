"""The cost-model-driven adaptive query planner.

FliX (PAPERS.md) argues the right index depends on the update:query mix;
this planner turns that into a per-query decision between the primary
G-Grid index and the TEN materialized-list foil, driven by:

* **online rate estimates** — exponentially decayed update and query
  counters over the *modelled* event clock (never wall time), so
  replaying a workload reproduces every rate, every decision, and every
  plan byte-for-byte;
* **calibrated per-backend costs** — seeded from the analytical Section
  VI model (:mod:`repro.core.costmodel` via
  :class:`~repro.server.planner.CapacityPlanner`, or a
  :class:`~repro.server.planner.CalibratedCosts` from a replayed
  report), then continuously re-calibrated by the measure → re-plan →
  verify loop: after every routed query the planner compares the plan's
  ``predicted_cost`` against the deterministic counters the backend
  actually spent (simulated GPU seconds, Dijkstra pops, labels built —
  all replay-exact) and folds the measurement into its estimate;
* **the TEN amortization law** — TEN's lazy rebuild coalesces any burst
  of updates into one materialization at the next query, so its
  long-run per-query cost is ``lookup + rebuild × min(1, u/q)``.  That
  expression *is* the crossover: query-dominant traffic drives the
  rebuild share toward zero, update-heavy traffic pays a full rebuild
  per query.

Two safeguards keep the planner no worse than the best fixed backend:

* **exploration** only runs while queries dominate (``u <= q``), so an
  update-heavy mix never pays speculative TEN rebuilds;
* **parking** — TEN *starts* parked (its ingest tap dormant), so a
  workload the cost model never predicts TEN to win pays zero planner
  overhead beyond cache bookkeeping: the planner's total cost equals
  the fixed primary's.  When the predicted TEN cost beats the primary
  by the hysteresis margin, TEN is revived from the primary index's
  object table (:meth:`TenIndex.resync`), lazily rebuilt, and measured;
  a sustained run of primary preferences parks it again.

Every decision is explainable: :class:`QueryPlan` carries the chosen
backend, the ladder rung, the predicted cost and a human-readable
reason, and the server publishes them as the ``plan`` span plus the
``repro_plan_*`` metric families.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.errors import PlanError, UnknownObjectError
from repro.obs.hub import Observability, default_observability
from repro.plan.cache import ResultCache
from repro.plan.ten import TenIndex
from repro.server.metrics import TimingModel
from repro.server.planner import CalibratedCosts, CapacityPlanner, WorkloadSpec

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.knn import KnnAnswer
    from repro.core.messages import Message
    from repro.mobility.workload import Query

_INF = float("inf")

#: backend names the planner routes between
PRIMARY = "ggrid"
TEN = "ten"
CACHE = "cache"


@dataclass(frozen=True)
class QueryPlan:
    """One explainable routing decision.

    Attributes:
        backend: ``"ggrid"`` or ``"ten"`` (cache hits short-circuit
            before planning and are labeled ``"cache"`` in metrics).
        rung: the execution rung the backend will use — ``"gpu"`` for
            the primary's device pipeline, ``"cpu"`` for TEN's
            materialized lists.
        reason: human-readable explanation (rates, costs, overrides).
        predicted_cost: modelled seconds this query is expected to cost
            on the chosen backend; the verify loop compares it against
            the deterministic counters actually spent.
    """

    backend: str
    rung: str
    reason: str
    predicted_cost: float


class _DecayCounter:
    """An exponentially decayed event counter over the modelled clock."""

    __slots__ = ("tau", "count", "last_t")

    def __init__(self, tau: float) -> None:
        self.tau = tau
        self.count = 0.0
        self.last_t: float | None = None

    def bump(self, t: float, n: int = 1) -> None:
        if self.last_t is None:
            self.last_t = t
        dt = t - self.last_t
        if dt > 0:
            self.count *= math.exp(-dt / self.tau)
            self.last_t = t
        self.count += n

    def rate(self, t: float) -> float:
        """Decayed events per second as of ``t``."""
        if self.last_t is None:
            return 0.0
        dt = max(0.0, t - self.last_t)
        return self.count * math.exp(-dt / self.tau) / self.tau


class PlanInstruments:
    """The ``repro_plan_*`` metric families, resolved once."""

    def __init__(self, obs: Observability) -> None:
        registry = obs.registry
        self.decisions = registry.counter(
            "repro_plan_decisions_total",
            help="Planner routing decisions, by chosen backend.",
            labelnames=("backend",),
        )
        self.cache_hits = registry.counter(
            "repro_plan_cache_hits_total",
            help="Queries served from the kNN result cache.",
        ).default()
        self.cache_misses = registry.counter(
            "repro_plan_cache_misses_total",
            help="Planner cache lookups that missed.",
        ).default()
        self.cache_invalidations = registry.counter(
            "repro_plan_cache_invalidations_total",
            help="Cached answers dropped by the delta-stream tap.",
        ).default()
        self.recalibrations = registry.counter(
            "repro_plan_recalibrations_total",
            help="Cost-estimate shifts where measurement diverged "
            "materially from the prediction.",
        ).default()
        self.parked = registry.gauge(
            "repro_plan_ten_parked",
            help="1 while the TEN backend is parked (ingest tap dormant).",
        ).default()


class QueryPlanner:
    """Routes queries between the primary index and the TEN foil.

    Construct one per server and pass it as ``QueryServer(...,
    planner=...)``; the server attaches its index, taps every applied
    update/removal into :meth:`observe` / :meth:`observe_remove`, and
    consults :meth:`cached_answer` / :meth:`plan_query` on the query
    path.  All state advances on deterministic inputs only.
    """

    def __init__(
        self,
        *,
        k_max: int = 24,
        cache: bool = True,
        cache_entries: int = 1024,
        obs: Observability | None = None,
        seed_costs: CalibratedCosts | None = None,
        ewma_tau_s: float = 30.0,
        alpha: float = 0.25,
        park_after: int = 24,
        explore_every: int = 16,
        unpark_margin: float = 0.25,
    ) -> None:
        """Args:
            k_max: labels per vertex in the TEN backend; queries with
                larger ``k`` always route to the primary.
            cache: enable the delta-invalidated result cache.
            cache_entries: cache capacity.
            obs: observability bundle; defaults to the process-wide one.
            seed_costs: replay-measured per-op costs
                (:func:`repro.server.planner.calibrate`) used instead of
                the analytic Section VI seed.
            ewma_tau_s: decay constant of the rate estimators (modelled
                seconds).
            alpha: EWMA weight for cost re-calibration.
            park_after: consecutive primary preferences (under update
                pressure) before TEN's ingest tap is parked.
            explore_every: while queries dominate, every N-th decision
                probes TEN to keep its measured costs fresh.
            unpark_margin: TEN must beat the primary by this relative
                margin to be revived from parking (hysteresis).
        """
        if k_max < 1:
            raise PlanError(f"k_max must be >= 1, got {k_max}")
        self.k_max = k_max
        self.cache_enabled = cache
        self.cache_entries = cache_entries
        self.obs = obs if obs is not None else default_observability()
        self._inst = PlanInstruments(self.obs) if self.obs is not None else None
        self.seed_costs = seed_costs
        self.ewma_tau_s = ewma_tau_s
        self.alpha = alpha
        self.park_after = park_after
        self.explore_every = explore_every
        self.unpark_margin = unpark_margin
        self.index = None
        self.ten: TenIndex | None = None
        self.cache: ResultCache | None = None
        self.timing = TimingModel()
        self.brownout = False
        #: TEN starts parked: a mix the cost model never predicts it to
        #: win pays no maintenance for it at all
        self._parked = True
        self._primary_streak = 0
        self._u_rate = _DecayCounter(ewma_tau_s)
        self._q_rate = _DecayCounter(ewma_tau_s)
        # published per-backend cost estimates (modelled seconds)
        self._cost_gg = 0.0
        self._cost_ten_lookup = 0.0
        self._cost_ten_build = 0.0
        # deterministic lifetime counters (trajectory rows read these)
        self.decisions: dict[str, int] = {PRIMARY: 0, TEN: 0}
        self.explorations = 0
        self.recalibrations = 0
        self.parks = 0
        self.unparks = 0
        self.last_plan: QueryPlan | None = None
        self.last_prediction_error = 0.0

    # ------------------------------------------------------------------
    # wiring
    # ------------------------------------------------------------------
    def attach(self, index: object) -> None:
        """Bind the planner to its primary index (server construction).

        Builds the TEN foil and the result cache from the index's graph,
        grid and config, and seeds the cost estimates.  TEN starts
        parked regardless of the index's current contents — the first
        unpark resyncs it from the primary's object table, which also
        covers mid-stream attachment and failover recreation.
        """
        if self.index is index:
            return
        if self.index is not None:
            raise PlanError("planner is already attached to an index")
        graph = getattr(index, "graph", None)
        grid = getattr(index, "grid", None)
        config = getattr(index, "config", None)
        if graph is None or grid is None or config is None:
            raise PlanError(
                f"planner needs a G-Grid-style primary exposing graph/grid/"
                f"config; {type(index).__name__!r} does not"
            )
        self.index = index
        self.ten = TenIndex(graph, k_max=self.k_max, t_delta=config.t_delta)
        if self.cache_enabled:
            self.cache = ResultCache(
                grid, t_delta=config.t_delta, max_entries=self.cache_entries
            )
        self._seed_estimates(graph, config)
        if self._inst is not None:
            self._inst.parked.set(1)

    def _seed_estimates(self, graph: object, config: object) -> None:
        touch = self.timing.touch_cost_s
        if self.seed_costs is not None:
            self._cost_gg = self.seed_costs.query_seconds()
        else:
            spec = WorkloadSpec(
                num_objects=1,
                update_frequency_hz=1.0,
                queries_per_second=1.0,
                k=16,
                rho=config.rho,
                delta_b=config.delta_b,
                eta=config.eta,
                delta_v=config.delta_v,
            )
            capacity = CapacityPlanner(timing=self.timing, gpu=config.gpu)
            self._cost_gg = capacity.query_gpu_seconds(
                spec
            ) + capacity.query_cpu_seconds(spec)
        # TEN seeds: a lookup is a targets-bounded forward Dijkstra (a
        # handful of pops per label consulted); a rebuild accepts at most
        # k_max labels per vertex.  Both recalibrate from the first
        # measured sample.
        self._cost_ten_lookup = 8.0 * self.k_max * touch
        self._cost_ten_build = graph.num_vertices * self.k_max * touch

    def _primary_rows(self) -> list[tuple[int, int, float, float]]:
        table = getattr(self.index, "object_table", None)
        if table is None or len(table) == 0:
            return []
        return [
            (obj, entry.edge, entry.offset, entry.t)
            for obj, entry in sorted(table.objects().items())
        ]

    # ------------------------------------------------------------------
    # the update-stream tap
    # ------------------------------------------------------------------
    def observe(self, message: "Message") -> int:
        """Tap one applied update; returns the touches TEN spent on it
        (0 while parked) so the server can charge them to the report."""
        if message.t > 0.0:
            # the initial bulk load (t = 0, before the clock starts) is
            # charged to the report like any update but is *load*, not
            # recurring stream traffic — it must not skew the rate the
            # rebuild-amortization term divides by
            self._u_rate.bump(message.t)
        self._cache_observe(message)
        if self._parked or self.ten is None or message.is_removal:
            return 0
        before = self.ten.update_touches
        self.ten.ingest(message)
        return self.ten.update_touches - before

    def observe_remove(self, obj: int, t: float) -> int:
        """Tap an explicit deregistration (``remove_object``)."""
        self._u_rate.bump(t)
        if self.cache is not None:
            before = self.cache.invalidations
            self.cache.observe_remove(obj, t)
            self._publish_invalidations(before)
        if self._parked or self.ten is None:
            return 0
        before_touches = self.ten.update_touches
        try:
            self.ten.remove_object(obj, t)
        except UnknownObjectError:
            pass  # never reported while we were attached
        return self.ten.update_touches - before_touches

    def _cache_observe(self, message: "Message") -> None:
        if self.cache is None:
            return
        before = self.cache.invalidations
        self.cache.observe(message)
        self._publish_invalidations(before)

    def _publish_invalidations(self, before: int) -> None:
        if self._inst is not None and self.cache is not None:
            delta = self.cache.invalidations - before
            if delta:
                self._inst.cache_invalidations.inc(delta)

    # ------------------------------------------------------------------
    # the result cache
    # ------------------------------------------------------------------
    def cached_answer(self, q: "Query") -> "KnnAnswer | None":
        """A byte-identical cached answer, or None on miss/disabled."""
        if self.cache is None:
            return None
        answer = self.cache.lookup(q.location, q.k, q.t)
        if self._inst is not None:
            if answer is not None:
                self._inst.cache_hits.inc()
                self._inst.decisions.labels(backend=CACHE).inc()
            else:
                self._inst.cache_misses.inc()
        return answer

    def cache_store(self, q: "Query", answer: "KnnAnswer") -> None:
        if self.cache is not None:
            self.cache.store(q.location, q.k, q.t, answer)

    # ------------------------------------------------------------------
    # planning
    # ------------------------------------------------------------------
    def plan_query(self, q: "Query") -> QueryPlan:
        """Choose the backend for one query (cache already missed)."""
        return self._decide(q.k, q.t, 1)

    def plan_epoch(self, queries: list["Query"]) -> QueryPlan:
        """One decision for a whole epoch batch."""
        return self._decide(
            max(q.k for q in queries),
            max(q.t for q in queries),
            len(queries),
        )

    def _decide(self, k: int, t: float, n: int) -> QueryPlan:
        assert self.ten is not None, "planner not attached"
        self._q_rate.bump(t, n)
        u = self._u_rate.rate(t)
        qr = self._q_rate.rate(t)
        build_share = self._cost_ten_build * min(1.0, u / qr if qr > 0 else 1.0)
        c_ten = self._cost_ten_lookup + build_share
        c_gg = self._cost_gg
        rates = f"u={u:.3f}/s q={qr:.3f}/s ten={c_ten:.3e}s ggrid={c_gg:.3e}s"

        if self.brownout:
            plan = self._mk(PRIMARY, f"brownout: primary only ({rates})", c_gg)
        elif k > self.ten.k_max:
            plan = self._mk(
                PRIMARY, f"k={k} exceeds TEN k_max={self.ten.k_max} ({rates})", c_gg
            )
        elif self._parked:
            if c_ten * (1.0 + self.unpark_margin) < c_gg:
                self._unpark(t)
                plan = self._mk(
                    TEN,
                    f"unparked: mix swung query-dominant ({rates})",
                    self._cost_ten_lookup + self._cost_ten_build,
                )
            else:
                plan = self._mk(PRIMARY, f"ten parked ({rates})", c_gg)
        else:
            prefers_ten = c_ten < c_gg
            total = self.decisions[PRIMARY] + self.decisions[TEN]
            explore = (
                not prefers_ten
                and u <= qr
                and self.explore_every > 0
                and total % self.explore_every == self.explore_every - 1
            )
            if prefers_ten or explore:
                predicted = self._cost_ten_lookup + (
                    self._cost_ten_build if self.ten.needs_rebuild(t) else 0.0
                )
                why = "explore: probing ten costs" if explore else "ten is cheaper"
                if explore:
                    self.explorations += 1
                plan = self._mk(TEN, f"{why} ({rates})", predicted)
            else:
                plan = self._mk(PRIMARY, f"ggrid is cheaper ({rates})", c_gg)
            self._primary_streak = (
                self._primary_streak + 1 if not prefers_ten else 0
            )
            if self._primary_streak >= self.park_after:
                # the unpark hysteresis margin prevents park/unpark churn
                self._park()
        self.last_plan = plan
        return plan

    def _mk(self, backend: str, reason: str, predicted: float) -> QueryPlan:
        self.decisions[backend] += 1
        if self._inst is not None:
            self._inst.decisions.labels(backend=backend).inc()
        rung = "gpu" if backend == PRIMARY else "cpu"
        return QueryPlan(
            backend=backend, rung=rung, reason=reason, predicted_cost=predicted
        )

    def resolve(self, plan: QueryPlan) -> object:
        """The index object a plan routes to."""
        return self.index if plan.backend == PRIMARY else self.ten

    def _park(self) -> None:
        self._parked = True
        self.parks += 1
        if self._inst is not None:
            self._inst.parked.set(1)

    def _unpark(self, t: float) -> None:
        assert self.ten is not None
        self._parked = False
        self._primary_streak = 0
        self.unparks += 1
        self.ten.resync(self._primary_rows(), t=t)
        if self._inst is not None:
            self._inst.parked.set(0)

    # ------------------------------------------------------------------
    # the verify loop
    # ------------------------------------------------------------------
    def probe(self, plan: QueryPlan) -> dict[str, float]:
        """Deterministic counter snapshot before executing a plan."""
        if plan.backend == PRIMARY:
            gpu = getattr(self.index, "gpu", None)
            return {"gpu_s": gpu.stats.gpu_time_s if gpu is not None else 0.0}
        assert self.ten is not None
        return {
            "pops": float(self.ten.query_pops),
            "labels": float(self.ten.labels_built),
            "touches": float(self.ten.update_touches),
        }

    def observe_result(
        self,
        plan: QueryPlan,
        answer: "KnnAnswer",
        before: dict[str, float],
        n: int = 1,
    ) -> None:
        """Fold the measured deterministic cost back into the estimates.

        ``n > 1`` attributes an epoch's counters as equal per-query
        shares, mirroring the server's batch accounting.
        """
        touch = self.timing.touch_cost_s
        if plan.backend == PRIMARY:
            gpu = getattr(self.index, "gpu", None)
            gpu_s = (
                (gpu.stats.gpu_time_s - before["gpu_s"]) / n
                if gpu is not None
                else 0.0
            )
            refine = (
                answer.refine_settled * touch / max(1, self.timing.cpu_workers)
            )
            measured = gpu_s + refine
            self._cost_gg = self._recalibrate(self._cost_gg, measured)
            self.last_prediction_error = measured - plan.predicted_cost
            return
        assert self.ten is not None
        lookup = (self.ten.query_pops - before["pops"]) * touch / n
        build = (
            (self.ten.labels_built - before["labels"])
            + (self.ten.update_touches - before["touches"])
        ) * touch
        self._cost_ten_lookup = self._recalibrate(self._cost_ten_lookup, lookup)
        if build > 0:
            self._cost_ten_build = self._recalibrate(self._cost_ten_build, build)
        self.last_prediction_error = (lookup + build / n) - plan.predicted_cost

    def _recalibrate(self, current: float, measured: float) -> float:
        if current <= 0.0:
            return measured
        if measured > current * 1.5 or measured < current / 1.5:
            self.recalibrations += 1
            if self._inst is not None:
                self._inst.recalibrations.inc()
        return current + self.alpha * (measured - current)

    # ------------------------------------------------------------------
    # serving integration
    # ------------------------------------------------------------------
    def set_brownout(self, active: bool) -> None:
        """Front-door overload signal: route primary-only while active
        (no speculative TEN rebuilds during an overload episode)."""
        self.brownout = active

    def summary(self) -> dict[str, float]:
        """Deterministic lifetime counters (trajectory rows, front door)."""
        out: dict[str, float] = {
            "decisions_ggrid": float(self.decisions[PRIMARY]),
            "decisions_ten": float(self.decisions[TEN]),
            "explorations": float(self.explorations),
            "recalibrations": float(self.recalibrations),
            "parks": float(self.parks),
            "unparks": float(self.unparks),
            "parked": 1.0 if self._parked else 0.0,
        }
        if self.cache is not None:
            out["cache_hits"] = float(self.cache.hits)
            out["cache_misses"] = float(self.cache.misses)
            out["cache_invalidations"] = float(self.cache.invalidations)
        if self.ten is not None:
            out["ten_rebuilds_full"] = float(self.ten.rebuilds_full)
            out["ten_labels_built"] = float(self.ten.labels_built)
        return out
