"""Adaptive query planning over pluggable index backends (DESIGN.md §17).

The paper hard-wires G-Grid; "Simpler is More" and FliX (PAPERS.md) argue
the *right* index depends on the update:query mix.  This package makes
the choice a runtime decision:

* :mod:`repro.plan.backends` — the :class:`IndexBackend` protocol every
  index speaks (G-Grid, V-Tree, ROAD, Naive, TEN) plus the shared
  argument validation and the :func:`make_backend` factory.
* :mod:`repro.plan.ten` — a TEN-style materialized top-k-neighbor index:
  per-vertex truncated kNN lists rebuilt lazily per dirty region.  Cheap
  on query-dominant traffic, expensive under churn — the foil that makes
  planning meaningful.
* :mod:`repro.plan.cache` — a kNN result cache invalidated by the same
  message-stream tap that feeds :mod:`repro.subscribe`.
* :mod:`repro.plan.planner` — the cost-model-driven
  :class:`QueryPlanner` that picks a backend per query, explains itself
  (:class:`QueryPlan`), and re-calibrates from observed counters.

Everything the planner consumes is deterministic over the modelled
clock, so replays plan identically and planner-routed answers are
byte-identical to an always-G-Grid server.
"""

from repro.plan.backends import (
    IndexBackend,
    make_backend,
    supports_batch,
    supports_removal,
    validate_knn_args,
)
from repro.plan.cache import ResultCache
from repro.plan.planner import QueryPlan, QueryPlanner
from repro.plan.ten import TenIndex

__all__ = [
    "IndexBackend",
    "QueryPlan",
    "QueryPlanner",
    "ResultCache",
    "TenIndex",
    "make_backend",
    "supports_batch",
    "supports_removal",
    "validate_knn_args",
]
