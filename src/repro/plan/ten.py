"""A TEN-style materialized top-k-neighbor index.

"Simpler is More" (PAPERS.md) shows that on large road networks a plain
CPU structure — every vertex keeps a truncated list of its ``k_max``
nearest objects — beats heavyweight indexes whenever queries dominate
updates.  :class:`TenIndex` is that structure, built to the same exact
contract as every other backend here:

* **Materialization** is one reverse multi-source k-best label Dijkstra:
  each object at ``<e', d'>`` seeds ``source(e')`` at cost ``d'`` and
  labels flow along *in*-edges.  Labels pop in ascending ``(distance,
  object id)``, each vertex accepts at most ``k_max`` labels (one per
  object), and a vertex that already holds ``k_max`` labels stops
  relaxing — the classical truncation prune.  The list at ``v`` is then
  exactly the canonical top-``k_max`` of ``d(v -> object)``.
* **Queries** use the lists only as a *candidate generator*: the
  answer's distances are re-derived with a forward targeted Dijkstra
  from the query location.  Forward derivation matters for byte
  identity: G-Grid, Naive and the oracle all compute a distance as the
  left-to-right float fold of edge weights along the path; the reverse
  labels fold the same weights right-to-left and can differ in the last
  ulp.  Re-deriving forward makes TEN answers bit-identical to theirs.
* **Updates** are O(1) bookkeeping plus laziness (the whole point of
  the planner's crossover): a *new* object is queued for an incremental
  pruned insert into the lists it belongs to (its dirty region); a
  *move* or *removal* of an already-indexed object marks the lists
  stale, and the next query pays one full rebuild.  Consecutive updates
  coalesce into a single rebuild, so TEN is cheap on query-dominant
  traffic and expensive under churn — exactly the foil the
  :class:`~repro.plan.planner.QueryPlanner` needs.

Visibility matches G-Grid's lazy cleaning: an object whose last report
is older than ``t_now - t_delta`` is expired (strictly older — the
cleaning pipeline's ``ts < cutoff`` rule), so planner-routed answers
stay byte-identical to an always-G-Grid server even on aged workloads.

Candidate completeness (for ``k <= k_max``): every path from a query at
``<e, d>`` leaves through ``dest(e)`` at constant cost ``w - d`` —
except an object ahead on the same edge, and except paths through
``source(e)`` when ``d == 0``.  A constant shift preserves the
``(distance, id)`` order, so the true top-k through ``dest(e)`` is a
prefix of ``dest(e)``'s list; same-edge-ahead objects come from the
per-edge object map and ``source(e)``'s list covers the on-vertex case.
``k > k_max`` falls back to the exhaustive scan (counted, and priced by
the planner).
"""

from __future__ import annotations

import heapq
import time
from bisect import insort

from repro.core.knn import KnnAnswer, KnnResultEntry
from repro.core.messages import Message
from repro.core.ordering import rank_results
from repro.errors import QueryError, UnknownObjectError
from repro.plan.backends import validate_knn_args
from repro.roadnet.dijkstra import SearchStats, multi_source_dijkstra
from repro.roadnet.graph import RoadNetwork
from repro.roadnet.location import NetworkLocation, entry_costs, location_distance
from repro.simgpu.memory import TABLE_ENTRY_BYTES

_INF = float("inf")

#: modelled bytes per materialized (distance, object) label
_LABEL_BYTES = 16


class TenIndex:
    """Per-vertex truncated kNN lists, rebuilt lazily per dirty region."""

    name = "TEN"

    def __init__(
        self,
        graph: RoadNetwork,
        k_max: int = 16,
        t_delta: float = _INF,
    ) -> None:
        """Args:
            graph: the road network.
            k_max: labels kept per vertex; queries with ``k <= k_max``
                are answered from the lists, larger ``k`` falls back to
                the exhaustive scan.
            t_delta: report-freshness horizon; ``inf`` disables expiry.
                The planner passes G-Grid's ``config.t_delta`` so both
                backends see the same objects.
        """
        if k_max < 1:
            raise QueryError(f"k_max must be >= 1, got {k_max}")
        self.graph = graph
        self.k_max = k_max
        self.t_delta = t_delta
        #: latest location and report time per live object
        self.locations: dict[int, NetworkLocation] = {}
        self.report_times: dict[int, float] = {}
        #: objects currently on each edge (the same-edge-ahead candidates)
        self._objects_by_edge: dict[int, set[int]] = {}
        #: per-vertex sorted ``(distance, obj)`` labels; None until the
        #: first query forces a build
        self._labels: list[list[tuple[float, int]]] | None = None
        self._dirty_full = False
        #: when the oldest labeled object expires the lists go stale:
        #: a truncated list holding an expired entry would silently
        #: shrink the visible candidate set below ``k``
        self._fresh_until = _INF
        #: brand-new objects awaiting their incremental insert
        self._pending_inserts: set[int] = set()
        self.latest_time = 0.0
        # deterministic cost counters (the planner's calibration inputs)
        self.messages_ingested = 0
        self.update_touches = 0
        self.labels_built = 0
        self.rebuilds_full = 0
        self.inserts_incremental = 0
        self.query_pops = 0
        self.fallback_scans = 0

    # ------------------------------------------------------------------
    # updates
    # ------------------------------------------------------------------
    def ingest(self, message: Message) -> None:
        """Record a location update; index maintenance is deferred.

        A first report queues an incremental insert (the object's dirty
        region); a re-report of an indexed object marks the lists stale
        for one lazy full rebuild at the next query.
        """
        if message.is_removal:
            raise QueryError("clients send location updates, not removal markers")
        obj = message.obj
        old = self.locations.get(obj)
        if old is not None:
            self._objects_by_edge[old.edge_id].discard(obj)
            if obj not in self._pending_inserts:
                # a label for the old location may sit anywhere in the
                # lists: full rebuild at next query (moves coalesce)
                self._dirty_full = True
        elif self._labels is not None and not self._dirty_full:
            self._pending_inserts.add(obj)
        self.locations[obj] = NetworkLocation(message.edge, message.offset)
        self.report_times[obj] = message.t
        self._objects_by_edge.setdefault(message.edge, set()).add(obj)
        self.messages_ingested += 1
        self.update_touches += 1
        self.latest_time = max(self.latest_time, message.t)

    def bulk_load(self, placements: dict[int, NetworkLocation], t: float) -> None:
        for obj, loc in placements.items():
            self.ingest(Message(obj, loc.edge_id, loc.offset, t))

    def remove_object(self, obj: int, t: float) -> None:
        """Deregister an object; its labels go stale until the next query.

        Raises:
            UnknownObjectError: the object was never ingested.
        """
        loc = self.locations.pop(obj, None)
        if loc is None:
            raise UnknownObjectError(f"object {obj} not in the TEN index")
        self.report_times.pop(obj, None)
        self._objects_by_edge[loc.edge_id].discard(obj)
        if obj in self._pending_inserts:
            self._pending_inserts.discard(obj)
        elif self._labels is not None:
            self._dirty_full = True
        self.update_touches += 1
        self.latest_time = max(self.latest_time, t)

    def resync(
        self, entries: list[tuple[int, int, float, float]], t: float
    ) -> None:
        """Replace all object state from ``(obj, edge, offset, t)`` rows.

        The planner uses this to revive a parked TEN from the primary
        index's object table; the rebuild itself stays lazy.
        """
        self.locations = {
            obj: NetworkLocation(edge, offset) for obj, edge, offset, _ in entries
        }
        self.report_times = {obj: rt for obj, _, _, rt in entries}
        self._objects_by_edge = {}
        for obj, edge, _, _ in entries:
            self._objects_by_edge.setdefault(edge, set()).add(obj)
        self._pending_inserts.clear()
        self._dirty_full = True
        self.update_touches += len(entries)
        self.latest_time = max(self.latest_time, t)

    def reset_objects(self) -> None:
        """Drop all object state (benchmark replays reuse the index)."""
        self.locations.clear()
        self.report_times.clear()
        self._objects_by_edge.clear()
        self._labels = None
        self._dirty_full = False
        self._fresh_until = _INF
        self._pending_inserts.clear()
        self.latest_time = 0.0
        self.messages_ingested = 0
        self.update_touches = 0
        self.labels_built = 0
        self.rebuilds_full = 0
        self.inserts_incremental = 0
        self.query_pops = 0
        self.fallback_scans = 0

    # ------------------------------------------------------------------
    # materialization
    # ------------------------------------------------------------------
    def needs_rebuild(self, t_now: float | None = None) -> bool:
        """True when a query at ``t_now`` will pay a full materialization."""
        now = self.latest_time if t_now is None else t_now
        return (
            self._labels is None or self._dirty_full or now > self._fresh_until
        )

    def _visible(self, obj: int, t_now: float) -> bool:
        return self.report_times.get(obj, -_INF) >= t_now - self.t_delta

    def _ensure_built(self, now: float) -> None:
        if self.needs_rebuild(now):
            self._rebuild_full(now)
        elif self._pending_inserts:
            for obj in sorted(self._pending_inserts):
                self._insert_object(obj)
            self._pending_inserts.clear()

    def _rebuild_full(self, now: float) -> None:
        """One reverse multi-source k-best label Dijkstra over the
        objects visible at ``now`` (expiry is monotone, so the lists
        stay exact until ``_fresh_until``)."""
        n = self.graph.num_vertices
        labels: list[list[tuple[float, int]]] = [[] for _ in range(n)]
        have: list[set[int]] = [set() for _ in range(n)]
        visible = [obj for obj in sorted(self.locations) if self._visible(obj, now)]
        self._fresh_until = (
            min(self.report_times[o] for o in visible) + self.t_delta
            if visible and self.t_delta < _INF
            else _INF
        )
        heap: list[tuple[float, int, int]] = []
        for obj in visible:
            loc = self.locations[obj]
            heap.append((loc.offset, obj, self.graph.edge(loc.edge_id).source))
        heapq.heapify(heap)
        k_max = self.k_max
        in_edges = self.graph.in_edges
        while heap:
            d, obj, v = heapq.heappop(heap)
            lab = labels[v]
            if len(lab) >= k_max or obj in have[v]:
                continue
            lab.append((d, obj))
            have[v].add(obj)
            self.labels_built += 1
            for e in in_edges(v):
                heapq.heappush(heap, (d + e.weight, obj, e.source))
        self._labels = labels
        self._dirty_full = False
        self._pending_inserts.clear()
        self.rebuilds_full += 1

    def _insert_object(self, obj: int) -> None:
        """Pruned reverse Dijkstra inserting one new object's labels.

        Expansion stops where the object provably cannot enter the
        top-``k_max`` (its distance is strictly beyond the vertex's
        worst label); ties keep expanding so the canonical ``(distance,
        id)`` order is preserved exactly.
        """
        assert self._labels is not None
        loc = self.locations[obj]
        start = self.graph.edge(loc.edge_id).source
        best: dict[int, float] = {start: loc.offset}
        heap: list[tuple[float, int]] = [(loc.offset, start)]
        k_max = self.k_max
        in_edges = self.graph.in_edges
        while heap:
            d, v = heapq.heappop(heap)
            if d > best.get(v, _INF):
                continue
            lab = self._labels[v]
            if len(lab) < k_max or (d, obj) < lab[-1]:
                insort(lab, (d, obj))
                if len(lab) > k_max:
                    lab.pop()
                self.labels_built += 1
            elif d > lab[-1][0]:
                continue  # strictly dominated: prune the whole branch
            for e in in_edges(v):
                nd = d + e.weight
                if nd < best.get(e.source, _INF):
                    best[e.source] = nd
                    heapq.heappush(heap, (nd, e.source))
        self.inserts_incremental += 1

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def knn(
        self, location: NetworkLocation, k: int, t_now: float | None = None
    ) -> KnnAnswer:
        """Exact kNN from the materialized lists (``k <= k_max``)."""
        validate_knn_args(self.graph, location, k)
        now = self.latest_time if t_now is None else t_now
        answer = KnnAnswer()
        t0 = time.perf_counter()
        if k > self.k_max:
            self._scan_fallback(location, k, now, answer)
        else:
            self._list_query(location, k, now, answer)
        answer.cpu_seconds["search"] = time.perf_counter() - t0
        return answer

    def _list_query(
        self, location: NetworkLocation, k: int, now: float, answer: KnnAnswer
    ) -> None:
        self._ensure_built(now)
        assert self._labels is not None
        edge = self.graph.edge(location.edge_id)
        candidates = {obj for _, obj in self._labels[edge.dest]}
        if location.at_source():
            candidates.update(obj for _, obj in self._labels[edge.source])
        for obj in self._objects_by_edge.get(location.edge_id, ()):
            if self.locations[obj].offset >= location.offset:
                candidates.add(obj)
        candidates = {o for o in candidates if self._visible(o, now)}
        answer.candidates = len(candidates)
        # forward re-derivation: fold-left float sums, bit-identical to
        # the Dijkstra every other backend runs
        targets = {
            self.graph.edge(self.locations[o].edge_id).source for o in candidates
        }
        stats = SearchStats()
        dist = multi_source_dijkstra(
            self.graph, entry_costs(self.graph, location), targets=targets,
            stats=stats,
        )
        self.query_pops += stats.pops
        scored = [
            (o, location_distance(self.graph, dist, location, self.locations[o]))
            for o in sorted(candidates)
        ]
        ranked = rank_results(scored, k)
        answer.entries = [KnnResultEntry(o, d) for o, d in ranked]
        answer.refine_settled = stats.settled

    def _scan_fallback(
        self, location: NetworkLocation, k: int, now: float, answer: KnnAnswer
    ) -> None:
        """``k > k_max``: the Naive exhaustive sweep (exact, priced)."""
        self.fallback_scans += 1
        answer.used_fallback = True
        stats = SearchStats()
        dist = multi_source_dijkstra(
            self.graph, entry_costs(self.graph, location), stats=stats
        )
        self.query_pops += stats.pops
        scored = [
            (obj, location_distance(self.graph, dist, location, loc))
            for obj, loc in self.locations.items()
            if self._visible(obj, now)
        ]
        ranked = rank_results(scored, k)
        answer.entries = [KnnResultEntry(o, d) for o, d in ranked]
        answer.candidates = len(scored)
        answer.refine_settled = stats.settled

    def range_query(self, location: NetworkLocation, radius: float, t_now=None):
        """All visible objects within ``radius``, canonical order."""
        validate_knn_args(self.graph, location, 1)
        now = self.latest_time if t_now is None else t_now
        dist = multi_source_dijkstra(
            self.graph, entry_costs(self.graph, location), radius=radius
        )
        scored = [
            (obj, location_distance(self.graph, dist, location, loc))
            for obj, loc in self.locations.items()
            if self._visible(obj, now)
        ]
        return [(o, d) for o, d in rank_results(scored) if d <= radius]

    # ------------------------------------------------------------------
    # accounting
    # ------------------------------------------------------------------
    @property
    def num_objects(self) -> int:
        return len(self.locations)

    def size_bytes(self) -> dict[str, int]:
        lists = (
            sum(len(lab) for lab in self._labels) * _LABEL_BYTES
            if self._labels is not None
            else 0
        )
        table = len(self.locations) * (TABLE_ENTRY_BYTES + 16)
        return {"cpu": table + lists, "gpu": 0, "total": table + lists}
