"""Heavy-edge-matching coarsening for multilevel partitioning.

The multilevel scheme of Karypis and Kumar repeatedly *coarsens* the graph
by contracting a maximal matching (preferring heavy edges so that the
contracted cut disappears from coarser levels), bisects the small coarse
graph, then projects and refines the bisection back up.  This module
provides the working graph representation and one coarsening step.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.roadnet.graph import RoadNetwork


@dataclass
class PartGraph:
    """Weighted undirected working graph for the partitioner.

    Attributes:
        vertex_weight: per-vertex weight (number of original vertices the
            coarse vertex represents).
        adj: per-vertex ``{neighbor: edge weight}``; symmetric by
            construction, no self entries.
    """

    vertex_weight: list[int]
    adj: list[dict[int, float]]

    @property
    def num_vertices(self) -> int:
        return len(self.vertex_weight)

    @property
    def total_weight(self) -> int:
        return sum(self.vertex_weight)

    def cut_weight(self, side: list[int]) -> float:
        """Total weight of edges crossing the bisection ``side``."""
        cut = 0.0
        for u in range(self.num_vertices):
            for v, w in self.adj[u].items():
                if u < v and side[u] != side[v]:
                    cut += w
        return cut

    @staticmethod
    def from_road_network(graph: RoadNetwork) -> "PartGraph":
        """Collapse a directed road network into the undirected working graph.

        Parallel/antiparallel edges merge with summed weight; the edge
        weight used for the cut objective is the *number* of directed edges
        between the endpoints, which is exactly the quantity the paper's
        partitioning minimises (edges between cells).
        """
        n = graph.num_vertices
        adj: list[dict[int, float]] = [dict() for _ in range(n)]
        for e in graph.edges():
            u, v = e.source, e.dest
            adj[u][v] = adj[u].get(v, 0.0) + 1.0
            adj[v][u] = adj[v].get(u, 0.0) + 1.0
        return PartGraph([1] * n, adj)


@dataclass
class CoarseLevel:
    """One coarsening step: the coarse graph plus the projection map."""

    graph: PartGraph
    #: fine vertex id -> coarse vertex id
    fine_to_coarse: list[int] = field(default_factory=list)


def coarsen(graph: PartGraph, rng: random.Random) -> CoarseLevel:
    """Contract a heavy-edge maximal matching of ``graph``.

    Vertices are visited in random order; each unmatched vertex matches its
    heaviest unmatched neighbour (ties broken arbitrarily), or stays alone.
    The coarse vertex weight is the sum of its constituents; coarse edge
    weights accumulate all fine edges between the merged groups.
    """
    n = graph.num_vertices
    match = [-1] * n
    order = list(range(n))
    rng.shuffle(order)
    for u in order:
        if match[u] != -1:
            continue
        best, best_w = -1, -1.0
        for v, w in graph.adj[u].items():
            if match[v] == -1 and w > best_w:
                best, best_w = v, w
        if best != -1:
            match[u] = best
            match[best] = u

    fine_to_coarse = [-1] * n
    next_id = 0
    for u in range(n):
        if fine_to_coarse[u] != -1:
            continue
        fine_to_coarse[u] = next_id
        if match[u] != -1:
            fine_to_coarse[match[u]] = next_id
        next_id += 1

    vertex_weight = [0] * next_id
    adj: list[dict[int, float]] = [dict() for _ in range(next_id)]
    for u in range(n):
        vertex_weight[fine_to_coarse[u]] += graph.vertex_weight[u]
    for u in range(n):
        cu = fine_to_coarse[u]
        for v, w in graph.adj[u].items():
            cv = fine_to_coarse[v]
            if cu != cv and u < v:
                adj[cu][cv] = adj[cu].get(cv, 0.0) + w
                adj[cv][cu] = adj[cv].get(cu, 0.0) + w
    return CoarseLevel(PartGraph(vertex_weight, adj), fine_to_coarse)


def project(level: CoarseLevel, coarse_side: list[int]) -> list[int]:
    """Project a coarse bisection back onto the finer graph."""
    return [coarse_side[c] for c in level.fine_to_coarse]
