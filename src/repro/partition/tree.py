"""Binary partition trees over a road network.

Both baselines decompose the network hierarchically: V-Tree (Shen et al.)
partitions into a balanced tree whose leaves are small subgraphs with
precomputed border-distance matrices, and ROAD (Lee et al.) builds a
hierarchy of *Rnets* with border-to-border shortcuts.  This module builds
the shared substrate: a balanced binary bisection tree (each split by the
multilevel partitioner) with per-node vertex sets, leaf-interval
containment tests and border-vertex computation.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import PartitionError
from repro.partition.coarsen import PartGraph
from repro.partition.multilevel import bisect_graph
from repro.roadnet.graph import RoadNetwork


@dataclass
class TreeNode:
    """One node of the partition tree.

    Attributes:
        id: dense node id (0 is the root).
        parent: parent node id (-1 for the root).
        depth: 0 at the root.
        vertices: the vertex ids this node's subgraph contains.
        children: child node ids (empty for leaves).
        leaf_lo / leaf_hi: this node covers leaves ``[leaf_lo, leaf_hi)``,
            giving O(1) "does this node contain vertex v" via the leaf
            index of ``v``.
        borders: vertices with an edge (either direction) crossing the
            node boundary; empty for the root.
    """

    id: int
    parent: int
    depth: int
    vertices: list[int]
    children: list[int] = field(default_factory=list)
    leaf_lo: int = -1
    leaf_hi: int = -1
    borders: list[int] = field(default_factory=list)

    @property
    def is_leaf(self) -> bool:
        return not self.children


class PartitionTree:
    """A balanced binary bisection tree over a road network."""

    def __init__(self, graph: RoadNetwork, leaf_size: int, seed: int = 0) -> None:
        """Recursively bisect ``graph`` until parts have at most
        ``leaf_size`` vertices.

        Raises:
            PartitionError: for a non-positive leaf size.
        """
        if leaf_size < 1:
            raise PartitionError(f"leaf size must be >= 1, got {leaf_size}")
        self.graph = graph
        self.leaf_size = leaf_size
        self.nodes: list[TreeNode] = []
        self.leaf_of_vertex: list[int] = [-1] * graph.num_vertices
        self._leaf_count = 0
        work = PartGraph.from_road_network(graph)
        self._build(list(range(graph.num_vertices)), parent=-1, depth=0,
                    work=work, seed=seed + 1)
        self._leaf_nodes: list[TreeNode] = [None] * self._leaf_count  # type: ignore
        for node in self.nodes:
            if node.is_leaf:
                self._leaf_nodes[node.leaf_lo] = node
        self._compute_borders()

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def _build(
        self, vertex_ids: list[int], parent: int, depth: int, work: PartGraph, seed: int
    ) -> int:
        node = TreeNode(len(self.nodes), parent, depth, list(vertex_ids))
        self.nodes.append(node)
        if len(vertex_ids) <= self.leaf_size:
            node.leaf_lo = self._leaf_count
            node.leaf_hi = self._leaf_count + 1
            for vid in vertex_ids:
                self.leaf_of_vertex[vid] = self._leaf_count
            self._leaf_count += 1
            return node.id
        local = {vid: i for i, vid in enumerate(vertex_ids)}
        adj: list[dict[int, float]] = [dict() for _ in vertex_ids]
        for vid in vertex_ids:
            u = local[vid]
            for nbr, w in work.adj[vid].items():
                if nbr in local:
                    adj[u][local[nbr]] = w
        sub = PartGraph([1] * len(vertex_ids), adj)
        side = bisect_graph(sub, target_weight0=(len(vertex_ids) + 1) // 2, seed=seed)
        part0 = [vid for vid in vertex_ids if side[local[vid]] == 0]
        part1 = [vid for vid in vertex_ids if side[local[vid]] == 1]
        left = self._build(part0, node.id, depth + 1, work, seed * 2 + 1)
        right = self._build(part1, node.id, depth + 1, work, seed * 2 + 2)
        node.children = [left, right]
        node.leaf_lo = self.nodes[left].leaf_lo
        node.leaf_hi = self.nodes[right].leaf_hi
        return node.id

    def _compute_borders(self) -> None:
        for node in self.nodes:
            if node.parent == -1:
                continue  # the root has no boundary
            inside = set(node.vertices)
            borders = []
            for vid in node.vertices:
                crossing = any(
                    e.dest not in inside for e in self.graph.out_edges(vid)
                ) or any(e.source not in inside for e in self.graph.in_edges(vid))
                if crossing:
                    borders.append(vid)
            node.borders = borders
        # the root's "borders" stay empty: nothing crosses it

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    @property
    def num_leaves(self) -> int:
        return self._leaf_count

    @property
    def root(self) -> TreeNode:
        return self.nodes[0]

    def leaves(self) -> list[TreeNode]:
        return [n for n in self.nodes if n.is_leaf]

    def leaf_node_of_vertex(self, vid: int) -> TreeNode:
        """The leaf node whose subgraph contains vertex ``vid``."""
        return self._leaf_nodes[self.leaf_of_vertex[vid]]

    def contains(self, node: TreeNode, vid: int) -> bool:
        """O(1): does ``node``'s subgraph contain vertex ``vid``?"""
        return node.leaf_lo <= self.leaf_of_vertex[vid] < node.leaf_hi

    def path_to_root(self, node: TreeNode) -> list[TreeNode]:
        """``node`` and its ancestors up to the root (inclusive)."""
        path = [node]
        while path[-1].parent != -1:
            path.append(self.nodes[path[-1].parent])
        return path

    @property
    def depth(self) -> int:
        return max(n.depth for n in self.nodes)
