"""Morton (Z-order) curve encoding.

The graph grid lays its two-dimensional cells out in a one-dimensional
array ordered by Z-value to preserve locality for GPU memory accesses
(Section III-A).  Following the paper's example, the Z-value of a cell at
grid coordinate ``(x, y)`` interleaves the bits of ``y`` and ``x`` with
``y`` contributing the higher bit of each pair: ``(x=3, y=4)`` maps to
``0b100101 = 37``.
"""

from __future__ import annotations

from repro.errors import ConfigError


def z_encode(x: int, y: int, bits: int) -> int:
    """Interleave ``y`` (high) and ``x`` (low) into a Z-value.

    Args:
        x: grid column, ``0 <= x < 2**bits``.
        y: grid row, ``0 <= y < 2**bits``.
        bits: bits per coordinate (the grid is ``2**bits`` on a side).

    Raises:
        ConfigError: when a coordinate is out of range.
    """
    if bits < 0:
        raise ConfigError(f"bits must be non-negative, got {bits}")
    limit = 1 << bits
    if not (0 <= x < limit and 0 <= y < limit):
        raise ConfigError(f"coordinate ({x}, {y}) out of range for {bits}-bit grid")
    z = 0
    for i in range(bits):
        z |= ((x >> i) & 1) << (2 * i)
        z |= ((y >> i) & 1) << (2 * i + 1)
    return z


def z_decode(z: int, bits: int) -> tuple[int, int]:
    """Inverse of :func:`z_encode`: Z-value back to ``(x, y)``."""
    if bits < 0:
        raise ConfigError(f"bits must be non-negative, got {bits}")
    if not 0 <= z < 1 << (2 * bits):
        raise ConfigError(f"z-value {z} out of range for {bits}-bit grid")
    x = y = 0
    for i in range(bits):
        x |= ((z >> (2 * i)) & 1) << i
        y |= ((z >> (2 * i + 1)) & 1) << i
    return x, y


def z_neighbors(z: int, bits: int) -> list[int]:
    """Z-values of the 8-connected grid neighbours of cell ``z``.

    Used as a cheap geometric fallback when expanding the candidate-cell
    ring of a query (the primary neighbour relation is graph-topological,
    see :meth:`repro.core.graph_grid.GraphGrid.neighbors`).
    """
    x, y = z_decode(z, bits)
    side = 1 << bits
    result = []
    for dx in (-1, 0, 1):
        for dy in (-1, 0, 1):
            if dx == dy == 0:
                continue
            nx, ny = x + dx, y + dy
            if 0 <= nx < side and 0 <= ny < side:
                result.append(z_encode(nx, ny, bits))
    return result
