"""Multilevel balanced graph bisection (Karypis–Kumar style).

Pipeline per bisection:

1. *Coarsen* with heavy-edge matching until the graph is small
   (:mod:`repro.partition.coarsen`);
2. *Initial bisection* of the coarsest graph by BFS region growing from a
   random seed until half of the total vertex weight is absorbed;
3. *Uncoarsen*: project each level's bisection to the finer level and run
   KL/FM refinement with a small balance tolerance
   (:mod:`repro.partition.kl`);
4. *Exact rebalance* at the finest (unit-weight) level so the two sides
   have exactly ``floor(n/2)`` and ``ceil(n/2)`` vertices — the property
   that lets :mod:`repro.partition.grid_assign` guarantee the paper's cell
   capacity ``delta_c``.
"""

from __future__ import annotations

import random
from collections import deque

from repro.errors import PartitionError
from repro.partition.coarsen import CoarseLevel, PartGraph, coarsen, project
from repro.partition.kl import rebalance, refine

#: Stop coarsening below this many vertices.
_COARSEST_SIZE = 48

#: Allowed per-side overweight during refinement (exactness is restored by
#: the final rebalance pass).
_BALANCE_TOLERANCE = 0.04


def _initial_bisection(graph: PartGraph, target0: float, rng: random.Random) -> list[int]:
    """Grow side 0 by BFS from a random seed until ``target0`` weight."""
    n = graph.num_vertices
    side = [1] * n
    if n == 0:
        return side
    start = rng.randrange(n)
    absorbed = 0.0
    queue: deque[int] = deque([start])
    seen = {start}
    order = []
    while queue:
        u = queue.popleft()
        order.append(u)
        for v in graph.adj[u]:
            if v not in seen:
                seen.add(v)
                queue.append(v)
    # components not reached by BFS are appended in index order
    order.extend(u for u in range(n) if u not in seen)
    for u in order:
        if absorbed >= target0:
            break
        side[u] = 0
        absorbed += graph.vertex_weight[u]
    return side


def bisect_graph(
    graph: PartGraph,
    target_weight0: int | None = None,
    seed: int = 0,
) -> list[int]:
    """Bisect ``graph`` into sides of exact weight.

    Args:
        graph: unit- or integer-weighted working graph.
        target_weight0: exact weight for side 0; defaults to
            ``total_weight // 2``.
        seed: RNG seed (deterministic output per seed).

    Returns:
        A 0/1 side per vertex with side-0 weight exactly
        ``target_weight0``.

    Raises:
        PartitionError: when the target is not achievable (e.g. larger
            than the total weight).
    """
    total = graph.total_weight
    if target_weight0 is None:
        target_weight0 = total // 2
    if not 0 <= target_weight0 <= total:
        raise PartitionError(
            f"target weight {target_weight0} outside [0, {total}]"
        )
    rng = random.Random(seed)

    # Coarsening phase.
    levels: list[CoarseLevel] = []
    current = graph
    while current.num_vertices > _COARSEST_SIZE:
        level = coarsen(current, rng)
        if level.graph.num_vertices >= current.num_vertices:  # no progress
            break
        levels.append(level)
        current = level.graph

    # Initial bisection + refinement on the coarsest graph.
    side = _initial_bisection(current, float(target_weight0), rng)
    budget0 = target_weight0 * (1 + _BALANCE_TOLERANCE) + 1
    budget1 = (total - target_weight0) * (1 + _BALANCE_TOLERANCE) + 1
    refine(current.adj, current.vertex_weight, side, (budget0, budget1))

    # Uncoarsening with per-level refinement.
    for level in reversed(levels):
        side = project(level, side)
        fine = graph if level is levels[0] else None
        fine_graph = fine if fine is not None else _fine_graph_of(levels, level, graph)
        refine(
            fine_graph.adj,
            fine_graph.vertex_weight,
            side,
            (budget0, budget1),
        )

    # Exact balance at the finest level.
    rebalance(graph.adj, graph.vertex_weight, side, float(target_weight0))
    return side


def _fine_graph_of(
    levels: list[CoarseLevel], level: CoarseLevel, finest: PartGraph
) -> PartGraph:
    """The graph one step finer than ``level`` in the coarsening chain."""
    idx = levels.index(level)
    return finest if idx == 0 else levels[idx - 1].graph
