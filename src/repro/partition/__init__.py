"""Graph-partitioning substrate.

Section III-A of the paper maps the road network's vertices into a
``2^psi x 2^psi`` grid of cells using the multilevel partitioning scheme of
Karypis and Kumar (recursive balanced bisection with coarsening and local
refinement), then orders cells by their Z-curve value.  This subpackage
implements the whole pipeline from scratch:

* :mod:`repro.partition.coarsen` — heavy-edge-matching graph coarsening;
* :mod:`repro.partition.kl` — Kernighan–Lin/FM-style boundary refinement;
* :mod:`repro.partition.multilevel` — the multilevel bisection driver;
* :mod:`repro.partition.zcurve` — Morton (Z-order) encoding;
* :mod:`repro.partition.grid_assign` — recursive bisection into grid cells
  with capacity guarantees.
"""

from repro.partition.zcurve import z_decode, z_encode
from repro.partition.multilevel import bisect_graph
from repro.partition.grid_assign import GridAssignment, assign_cells, psi_for

__all__ = [
    "z_encode",
    "z_decode",
    "bisect_graph",
    "GridAssignment",
    "assign_cells",
    "psi_for",
]
