"""Kernighan–Lin / Fiduccia–Mattheyses-style bisection refinement.

Given a bisection of a :class:`~repro.partition.coarsen.PartGraph`, the
refiner greedily moves boundary vertices between the two sides to reduce
the cut while keeping both sides within a weight budget, with the classic
KL twist of accepting locally negative moves and rolling back to the best
prefix.  A separate :func:`rebalance` pass forces exact side weights, which
the grid assignment uses to guarantee the paper's cell capacity ``delta_c``.
"""

from __future__ import annotations

import heapq


def _gain(adj: list[dict[int, float]], side: list[int], u: int) -> float:
    """Cut reduction achieved by moving ``u`` to the other side."""
    external = internal = 0.0
    for v, w in adj[u].items():
        if side[v] == side[u]:
            internal += w
        else:
            external += w
    return external - internal


def refine(
    graph_adj: list[dict[int, float]],
    vertex_weight: list[int],
    side: list[int],
    max_side_weight: tuple[float, float],
    passes: int = 4,
) -> list[int]:
    """Refine a bisection in place and return it.

    Args:
        graph_adj: symmetric adjacency ``{neighbor: weight}`` per vertex.
        vertex_weight: weight of each vertex.
        side: 0/1 side per vertex; modified in place.
        max_side_weight: weight budget for side 0 and side 1.
        passes: maximum KL passes; stops early when a pass yields no gain.

    Returns:
        The refined ``side`` list (same object).
    """
    n = len(side)
    side_weight = [0.0, 0.0]
    for u in range(n):
        side_weight[side[u]] += vertex_weight[u]

    for _ in range(passes):
        moved = [False] * n
        # max-heap of (-gain, vertex); lazily revalidated
        heap = [(-_gain(graph_adj, side, u), u) for u in range(n)]
        heapq.heapify(heap)
        history: list[tuple[int, float]] = []  # (vertex, cumulative gain)
        cumulative = 0.0
        best_prefix, best_gain = 0, 0.0

        while heap:
            neg_gain, u = heapq.heappop(heap)
            if moved[u]:
                continue
            gain = _gain(graph_adj, side, u)
            if -neg_gain != gain:  # stale entry: re-push with fresh gain
                heapq.heappush(heap, (-gain, u))
                continue
            target = 1 - side[u]
            if side_weight[target] + vertex_weight[u] > max_side_weight[target]:
                moved[u] = True  # cannot move this pass
                continue
            # tentatively move u
            side_weight[side[u]] -= vertex_weight[u]
            side_weight[target] += vertex_weight[u]
            side[u] = target
            moved[u] = True
            cumulative += gain
            history.append((u, cumulative))
            if cumulative > best_gain:
                best_gain, best_prefix = cumulative, len(history)
            for v in graph_adj[u]:
                if not moved[v]:
                    heapq.heappush(heap, (-_gain(graph_adj, side, v), v))

        # roll back moves beyond the best prefix
        for u, _ in history[best_prefix:]:
            target = 1 - side[u]
            side_weight[side[u]] -= vertex_weight[u]
            side_weight[target] += vertex_weight[u]
            side[u] = target
        if best_gain <= 0:
            break
    return side


def rebalance(
    graph_adj: list[dict[int, float]],
    vertex_weight: list[int],
    side: list[int],
    target_weight0: float,
) -> list[int]:
    """Force side 0's weight to exactly ``target_weight0``.

    Repeatedly moves the cheapest (highest-gain) vertex from the heavy side
    until the target is met.  Assumes unit weights can always meet integer
    targets (true for the grid assignment, which rebalances at the finest,
    unit-weight level).
    """
    side_weight = [0.0, 0.0]
    for u, s in enumerate(side):
        side_weight[s] += vertex_weight[u]

    while side_weight[0] != target_weight0:
        heavy = 0 if side_weight[0] > target_weight0 else 1
        best_u, best_gain = -1, float("-inf")
        for u in range(len(side)):
            if side[u] != heavy:
                continue
            g = _gain(graph_adj, side, u)
            if g > best_gain:
                best_u, best_gain = u, g
        if best_u == -1:  # pragma: no cover - heavy side always non-empty
            break
        side[best_u] = 1 - heavy
        side_weight[heavy] -= vertex_weight[best_u]
        side_weight[1 - heavy] += vertex_weight[best_u]
    return side
