"""Assigning road-network vertices to graph-grid cells.

Section III-A: given cell capacity ``delta_c``, the vertices are mapped
into ``2^psi x 2^psi`` cells with ``psi = ceil(0.5 * log2(|V| / delta_c))``
using recursive balanced bisection (each bisection produced by the
multilevel partitioner), so that each cell holds at most ``delta_c``
vertices and cells that are adjacent in the grid tend to hold adjacent
subgraphs.

The capacity guarantee follows from exact floor/ceil bisection: after
``2 * psi`` halvings the largest part has ``ceil(|V| / 4^psi)`` vertices,
and ``4^psi >= |V| / delta_c`` by choice of ``psi``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.errors import PartitionError
from repro.partition.coarsen import PartGraph
from repro.partition.multilevel import bisect_graph
from repro.partition.zcurve import z_encode
from repro.roadnet.graph import RoadNetwork


def psi_for(num_vertices: int, cell_capacity: int) -> int:
    """The paper's grid exponent: ``ceil(0.5 * log2(|V| / delta_c))``."""
    if cell_capacity <= 0:
        raise PartitionError(f"cell capacity must be positive, got {cell_capacity}")
    if num_vertices <= cell_capacity:
        return 0
    return max(0, math.ceil(0.5 * math.log2(num_vertices / cell_capacity)))


@dataclass
class GridAssignment:
    """Result of partitioning a road network into grid cells.

    Attributes:
        psi: the grid is ``2^psi`` cells on a side.
        cell_capacity: the ``delta_c`` used.
        cell_of_vertex: for each vertex id, the Z-value of its cell.
        vertices_of_cell: for each Z-value (length ``4^psi``), the sorted
            vertex ids in that cell.
    """

    psi: int
    cell_capacity: int
    cell_of_vertex: list[int]
    vertices_of_cell: list[list[int]]

    @property
    def num_cells(self) -> int:
        return 1 << (2 * self.psi)

    @property
    def side(self) -> int:
        return 1 << self.psi

    def max_cell_size(self) -> int:
        return max((len(vs) for vs in self.vertices_of_cell), default=0)


def assign_cells(
    graph: RoadNetwork, cell_capacity: int, seed: int = 0, method: str = "multilevel"
) -> GridAssignment:
    """Partition ``graph`` into grid cells of at most ``cell_capacity``.

    The recursion alternates split axes (columns first), so sibling parts
    land in geometrically adjacent grid rectangles; each split is an exact
    floor/ceil balanced bisection minimising crossing edges.

    Args:
        graph: the road network to partition.
        cell_capacity: the paper's ``delta_c``.
        seed: base RNG seed (each recursion derives a child seed).
        method: ``"multilevel"`` (edge-cut-minimising bisections) or
            ``"geometric"`` (:func:`assign_cells_geometric`).

    Returns:
        A :class:`GridAssignment` with every vertex in exactly one cell
        and no cell above capacity.
    """
    if method == "geometric":
        return assign_cells_geometric(graph, cell_capacity, seed=seed)
    if method != "multilevel":
        raise PartitionError(f"unknown partitioning method {method!r}")
    psi = psi_for(graph.num_vertices, cell_capacity)
    work = PartGraph.from_road_network(graph)
    n = graph.num_vertices
    cell_of_vertex = [0] * n
    side = 1 << psi
    vertices_of_cell: list[list[int]] = [[] for _ in range(side * side)]

    def subgraph(vertex_ids: list[int]) -> tuple[PartGraph, dict[int, int]]:
        local = {vid: i for i, vid in enumerate(vertex_ids)}
        adj: list[dict[int, float]] = [dict() for _ in vertex_ids]
        for vid in vertex_ids:
            u = local[vid]
            for nbr, w in work.adj[vid].items():
                if nbr in local:
                    adj[u][local[nbr]] = w
        return PartGraph([1] * len(vertex_ids), adj), local

    def split(
        vertex_ids: list[int], depth: int, x0: int, y0: int, w: int, h: int, level_seed: int
    ) -> None:
        if depth == 0:
            z = z_encode(x0, y0, psi)
            for vid in vertex_ids:
                cell_of_vertex[vid] = z
            vertices_of_cell[z] = sorted(vertex_ids)
            return
        sub, local = subgraph(vertex_ids)
        half0 = (len(vertex_ids) + 1) // 2  # ceil: keeps max part <= ceil(n/2^d)
        side_of = bisect_graph(sub, target_weight0=half0, seed=level_seed)
        part0 = [vid for vid in vertex_ids if side_of[local[vid]] == 0]
        part1 = [vid for vid in vertex_ids if side_of[local[vid]] == 1]
        if w >= h:  # split columns
            w2 = w // 2
            split(part0, depth - 1, x0, y0, w2, h, level_seed * 2 + 1)
            split(part1, depth - 1, x0 + w2, y0, w - w2, h, level_seed * 2 + 2)
        else:  # split rows
            h2 = h // 2
            split(part0, depth - 1, x0, y0, w, h2, level_seed * 2 + 1)
            split(part1, depth - 1, x0, y0 + h2, w, h - h2, level_seed * 2 + 2)

    split(list(range(n)), 2 * psi, 0, 0, side, side, seed + 1)

    assignment = GridAssignment(psi, cell_capacity, cell_of_vertex, vertices_of_cell)
    if assignment.max_cell_size() > cell_capacity:  # pragma: no cover - guarded by math
        raise PartitionError(
            f"cell capacity {cell_capacity} violated: {assignment.max_cell_size()}"
        )
    return assignment


def assign_cells_geometric(
    graph: RoadNetwork, cell_capacity: int, seed: int = 0
) -> GridAssignment:
    """Near-linear grid assignment by recursive coordinate-median splits.

    Same output contract (and the same exact floor/ceil capacity
    guarantee) as the multilevel :func:`assign_cells`, but each bisection
    sorts one coordinate with numpy instead of running the multilevel
    partitioner — ``O(|V| log^2 |V|)`` total, which is what makes
    paper-scale graphs (hundreds of thousands of vertices at
    ``delta_c = 3`` → tens of thousands of cells) partitionable in
    seconds.  Splits alternate axes exactly like the multilevel recursion
    (columns first when the rectangle is at least as wide as tall), ties
    broken by vertex id, so the result is fully deterministic; ``seed``
    is accepted for signature parity but unused.
    """
    del seed  # deterministic: median splits have no randomness
    psi = psi_for(graph.num_vertices, cell_capacity)
    n = graph.num_vertices
    xs = np.fromiter((graph.vertex(v).x for v in range(n)), np.float64, n)
    ys = np.fromiter((graph.vertex(v).y for v in range(n)), np.float64, n)
    cell_of_vertex = [0] * n
    side = 1 << psi
    vertices_of_cell: list[list[int]] = [[] for _ in range(side * side)]

    def split(idx: np.ndarray, depth: int, x0: int, y0: int, w: int, h: int) -> None:
        if depth == 0:
            z = z_encode(x0, y0, psi)
            members = sorted(idx.tolist())
            for vid in members:
                cell_of_vertex[vid] = z
            vertices_of_cell[z] = members
            return
        coords = xs if w >= h else ys
        order = np.lexsort((idx, coords[idx]))
        half0 = (len(idx) + 1) // 2  # ceil: keeps max part <= ceil(n/2^d)
        part0 = idx[order[:half0]]
        part1 = idx[order[half0:]]
        if w >= h:  # split columns
            w2 = w // 2
            split(part0, depth - 1, x0, y0, w2, h)
            split(part1, depth - 1, x0 + w2, y0, w - w2, h)
        else:  # split rows
            h2 = h // 2
            split(part0, depth - 1, x0, y0, w, h2)
            split(part1, depth - 1, x0, y0 + h2, w, h - h2)

    split(np.arange(n, dtype=np.int64), 2 * psi, 0, 0, side, side)
    assignment = GridAssignment(psi, cell_capacity, cell_of_vertex, vertices_of_cell)
    if assignment.max_cell_size() > cell_capacity:  # pragma: no cover - guarded by math
        raise PartitionError(
            f"cell capacity {cell_capacity} violated: {assignment.max_cell_size()}"
        )
    return assignment
