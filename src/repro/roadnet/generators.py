"""Synthetic road-network generators.

The paper evaluates on six DIMACS road networks (Table II) that are not
redistributable here, so we generate synthetic stand-ins that preserve the
structural properties the experiments depend on:

* near-planar topology with low, fairly uniform degree;
* directed edge count / vertex count ratio around 2.4–2.8 (Table II);
* strong connectivity (every object can reach every query);
* positive travel-cost weights correlated with Euclidean length.

:func:`grid_road_network` perturbs a rectangular lattice and thins it to a
target edge ratio while keeping a spanning backbone — the standard road
stand-in.  :func:`random_road_network` builds a random geometric graph for
tests that want less regular topology.
"""

from __future__ import annotations

import math
import random

from repro.errors import GraphError
from repro.roadnet.graph import RoadNetwork


def grid_road_network(
    rows: int,
    cols: int,
    *,
    edge_ratio: float = 2.6,
    jitter: float = 0.25,
    weight_noise: float = 0.2,
    diagonal_prob: float = 0.05,
    seed: int = 0,
) -> RoadNetwork:
    """Generate a perturbed-lattice road network.

    The lattice gives ``rows * cols`` vertices.  Each undirected road is
    materialised as two directed edges (the paper's convention), and roads
    are removed at random — never breaking a spanning backbone — until the
    directed ``|E| / |V|`` ratio is approximately ``edge_ratio``.

    Args:
        rows: lattice rows (>= 2).
        cols: lattice columns (>= 2).
        edge_ratio: target directed-edge to vertex ratio (Table II has
            2.4–2.8 across the six datasets).
        jitter: max coordinate perturbation as a fraction of cell size.
        weight_noise: multiplicative weight noise, uniform in
            ``[1, 1 + weight_noise]``.
        diagonal_prob: probability of adding a diagonal shortcut per cell,
            mimicking non-grid roads.
        seed: RNG seed; generation is fully deterministic per seed.

    Returns:
        A strongly connected :class:`RoadNetwork`.
    """
    if rows < 2 or cols < 2:
        raise GraphError("grid_road_network needs rows >= 2 and cols >= 2")
    rng = random.Random(seed)
    g = RoadNetwork()
    for r in range(rows):
        for c in range(cols):
            g.add_vertex(
                c + rng.uniform(-jitter, jitter),
                r + rng.uniform(-jitter, jitter),
            )

    def vid(r: int, c: int) -> int:
        return r * cols + c

    # Candidate undirected roads: lattice edges plus sparse diagonals.
    roads: list[tuple[int, int]] = []
    for r in range(rows):
        for c in range(cols):
            if c + 1 < cols:
                roads.append((vid(r, c), vid(r, c + 1)))
            if r + 1 < rows:
                roads.append((vid(r, c), vid(r + 1, c)))
            if r + 1 < rows and c + 1 < cols and rng.random() < diagonal_prob:
                roads.append((vid(r, c), vid(r + 1, c + 1)))

    # Keep a random spanning tree as the connectivity backbone.
    rng.shuffle(roads)
    parent = list(range(g.num_vertices))

    def find(a: int) -> int:
        while parent[a] != a:
            parent[a] = parent[parent[a]]
            a = parent[a]
        return a

    backbone: list[tuple[int, int]] = []
    extras: list[tuple[int, int]] = []
    for u, v in roads:
        ru, rv = find(u), find(v)
        if ru != rv:
            parent[ru] = rv
            backbone.append((u, v))
        else:
            extras.append((u, v))

    target_roads = max(len(backbone), int(edge_ratio * g.num_vertices / 2))
    keep = backbone + extras[: max(0, target_roads - len(backbone))]
    for u, v in keep:
        a, b = g.vertex(u), g.vertex(v)
        length = math.hypot(a.x - b.x, a.y - b.y)
        weight = max(length, 1e-6) * rng.uniform(1.0, 1.0 + weight_noise)
        g.add_bidirectional_edge(u, v, weight)
    return g


def random_road_network(
    num_vertices: int,
    *,
    avg_degree: float = 2.6,
    seed: int = 0,
) -> RoadNetwork:
    """Generate a random geometric road network.

    Vertices are placed uniformly in the unit square; each vertex is
    connected to its nearest unconnected neighbours until the average
    undirected degree reaches ``avg_degree``; a spanning pass guarantees
    strong connectivity.  Slower than :func:`grid_road_network` — intended
    for randomized tests, not for the large benchmark datasets.
    """
    if num_vertices < 2:
        raise GraphError("random_road_network needs at least 2 vertices")
    rng = random.Random(seed)
    g = RoadNetwork()
    points = [(rng.random(), rng.random()) for _ in range(num_vertices)]
    for x, y in points:
        g.add_vertex(x, y)

    def dist(u: int, v: int) -> float:
        (x1, y1), (x2, y2) = points[u], points[v]
        return math.hypot(x1 - x2, y1 - y2)

    # Connect sequentially to the nearest already-placed vertex: spanning.
    connected: set[tuple[int, int]] = set()
    for v in range(1, num_vertices):
        u = min(range(v), key=lambda u: dist(u, v))
        g.add_bidirectional_edge(u, v, max(dist(u, v), 1e-6))
        connected.add((min(u, v), max(u, v)))

    target_roads = int(avg_degree * num_vertices / 2)
    attempts = 0
    while len(connected) < target_roads and attempts < 50 * num_vertices:
        attempts += 1
        u = rng.randrange(num_vertices)
        # pick one of the few nearest vertices to keep near-planarity
        candidates = sorted(
            (w for w in range(num_vertices) if w != u), key=lambda w: dist(u, w)
        )[:6]
        v = rng.choice(candidates)
        key = (min(u, v), max(u, v))
        if key in connected:
            continue
        connected.add(key)
        g.add_bidirectional_edge(u, v, max(dist(u, v), 1e-6))
    return g


def grid_dims_for(num_vertices: int, aspect: float = 1.0) -> tuple[int, int]:
    """Rows/cols whose product is close to ``num_vertices``.

    ``aspect`` is rows/cols; USA-like wide networks use ``aspect < 1``.
    """
    if num_vertices < 4:
        raise GraphError("need at least 4 vertices for a grid")
    rows = max(2, int(round(math.sqrt(num_vertices * aspect))))
    cols = max(2, int(round(num_vertices / rows)))
    return rows, cols
