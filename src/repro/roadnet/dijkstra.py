"""Shortest-path primitives over :class:`~repro.roadnet.graph.RoadNetwork`.

These are the CPU reference algorithms the paper builds on:

* :func:`dijkstra` / :func:`multi_source_dijkstra` — textbook binary-heap
  Dijkstra, used as ground truth for ``GPU_SDist`` and by the baselines;
* :func:`bounded_dijkstra` — radius-limited search used by ``Refine_kNN``
  (Algorithm 6) to explore an unresolved vertex's unresolved range;
* :func:`shortest_path_distance` — point-to-point with early termination.

All functions run on out-edges of the given graph; searching "towards" a
vertex is done by the callers on :meth:`RoadNetwork.reversed`.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Iterable, Mapping

import numpy as np

from repro.roadnet.graph import RoadNetwork

_INF = float("inf")


@dataclass
class SearchStats:
    """Work counters for one search (regression tests read these).

    Attributes:
        pops: heap pops performed, including discarded stale entries.
        settled: vertices settled (size of the returned distance map).
    """

    pops: int = 0
    settled: int = 0


def dijkstra(graph: RoadNetwork, source: int, targets: Iterable[int] | None = None) -> dict[int, float]:
    """Single-source shortest distances from ``source``.

    Args:
        graph: the road network.
        source: start vertex id.
        targets: optional set of vertices; the search stops early once all
            of them are settled.

    Returns:
        ``{vertex: distance}`` for every settled vertex (all reachable
        vertices when ``targets`` is None).
    """
    return multi_source_dijkstra(graph, {source: 0.0}, targets=targets)


def multi_source_dijkstra(
    graph: RoadNetwork,
    seeds: Mapping[int, float],
    targets: Iterable[int] | None = None,
    radius: float = _INF,
    stats: SearchStats | None = None,
) -> dict[int, float]:
    """Dijkstra from multiple seed vertices with given initial costs.

    This is the workhorse behind query-location searches: a location on an
    edge seeds the edge's destination vertex with the remaining edge length
    (see :func:`repro.roadnet.location.entry_costs`).

    Args:
        graph: the road network.
        seeds: ``{vertex: initial_cost}``; costs may be non-zero.
        targets: optional early-exit target set.
        radius: do not settle vertices farther than this.
        stats: optional work counters filled in during the search.

    Returns:
        ``{vertex: distance}`` over settled vertices within ``radius``.
    """
    indptr, targets_arr, weights, _ = graph.csr_out()
    dist: dict[int, float] = {}
    pending = set(targets) if targets is not None else None
    heap: list[tuple[float, int]] = [(c, v) for v, c in seeds.items()]
    heapq.heapify(heap)
    best: dict[int, float] = dict(seeds)
    while heap:
        d, v = heapq.heappop(heap)
        if stats is not None:
            stats.pops += 1
        if d > radius:
            # pops are monotone non-decreasing: nothing left on the heap
            # can settle within the radius, so stop draining it (only
            # over-radius *seeds* can still be queued — relaxations are
            # already guarded by ``nd <= radius`` below)
            break
        if v in dist:
            continue
        dist[v] = d
        if pending is not None:
            pending.discard(v)
            if not pending:
                break
        start, end = indptr[v], indptr[v + 1]
        for i in range(start, end):
            u = int(targets_arr[i])
            nd = d + float(weights[i])
            if nd < best.get(u, _INF) and nd <= radius:
                best[u] = nd
                heapq.heappush(heap, (nd, u))
    if stats is not None:
        stats.settled = len(dist)
    return dist


def bounded_dijkstra(graph: RoadNetwork, source: int, radius: float) -> dict[int, float]:
    """All vertices within network distance ``radius`` of ``source``.

    Used by the CPU refinement step: each unresolved vertex ``v`` explores
    locations with ``dist(v, .) < l - dist(q, v)`` (Definition 3).
    """
    return multi_source_dijkstra(graph, {source: 0.0}, radius=radius)


class BoundedSearch:
    """Repeated bounded Dijkstras over one shared distance array.

    ``Refine_kNN`` runs one radius-limited search per unresolved vertex;
    allocating a fresh ``dict`` per search dominates at paper scale, so
    this helper keeps a full-size ``float64`` distance array plus version
    stamps and reuses them across :meth:`run` calls — resetting is an
    integer bump, not an ``O(|V|)`` wipe.  Settled sets and distances are
    identical to ``multi_source_dijkstra(graph, {source: 0.0},
    radius=radius)`` (regression-tested): the heap relaxation performs
    the same float64 additions in the same order.
    """

    def __init__(self, graph: RoadNetwork) -> None:
        indptr, targets_arr, weights, _ = graph.csr_out()
        self._indptr = indptr
        self._targets = targets_arr
        self._weights = weights
        n = graph.num_vertices
        self._dist = np.zeros(n, dtype=np.float64)
        self._seen = np.zeros(n, dtype=np.int64)  # tentative-written stamp
        self._settled = np.zeros(n, dtype=np.int64)
        self._round = 0

    def run(self, source: int, radius: float, stats: SearchStats | None = None) -> np.ndarray:
        """Settle every vertex within ``radius`` of ``source``.

        Returns the settled vertex ids (int64 array, settling order).
        Their distances stay readable through :meth:`distances` /
        :meth:`is_settled` until the next :meth:`run`.
        """
        self._round += 1
        rnd = self._round
        dist, seen, settled = self._dist, self._seen, self._settled
        indptr, targets_arr, weights = self._indptr, self._targets, self._weights
        heap: list[tuple[float, int]] = [(0.0, source)]
        dist[source] = 0.0
        seen[source] = rnd
        out: list[int] = []
        while heap:
            d, v = heapq.heappop(heap)
            if stats is not None:
                stats.pops += 1
            if d > radius:
                break  # monotone pops: the frontier is exhausted
            if settled[v] == rnd:
                continue
            settled[v] = rnd
            dist[v] = d
            out.append(v)
            start, end = indptr[v], indptr[v + 1]
            for i in range(start, end):
                u = int(targets_arr[i])
                nd = d + float(weights[i])
                if nd <= radius and (seen[u] != rnd or nd < dist[u]):
                    dist[u] = nd
                    seen[u] = rnd
                    heapq.heappush(heap, (nd, u))
        if stats is not None:
            stats.settled = len(out)
        return np.asarray(out, dtype=np.int64)

    def distances(self, vertices: np.ndarray) -> np.ndarray:
        """Distances of the last run for ``vertices`` (must be settled)."""
        return self._dist[vertices]

    def is_settled(self, vertices: np.ndarray) -> np.ndarray:
        """Boolean mask: which of ``vertices`` the last run settled."""
        return self._settled[vertices] == self._round


def shortest_path_distance(graph: RoadNetwork, source: int, dest: int) -> float:
    """Point-to-point shortest distance; ``inf`` when unreachable."""
    if source == dest:
        return 0.0
    dist = multi_source_dijkstra(graph, {source: 0.0}, targets=[dest])
    return dist.get(dest, _INF)


def dijkstra_with_paths(
    graph: RoadNetwork, source: int
) -> tuple[dict[int, float], dict[int, int]]:
    """Dijkstra that also records predecessor vertices.

    Returns:
        ``(dist, parent)`` where ``parent[v]`` is the vertex preceding
        ``v`` on a shortest path (absent for the source / unreachable).
    """
    indptr, targets_arr, weights, _ = graph.csr_out()
    dist: dict[int, float] = {}
    parent: dict[int, int] = {}
    heap: list[tuple[float, int]] = [(0.0, source)]
    best = {source: 0.0}
    while heap:
        d, v = heapq.heappop(heap)
        if v in dist:
            continue
        dist[v] = d
        start, end = indptr[v], indptr[v + 1]
        for i in range(start, end):
            u = int(targets_arr[i])
            nd = d + float(weights[i])
            if nd < best.get(u, _INF):
                best[u] = nd
                parent[u] = v
                heapq.heappush(heap, (nd, u))
    return dist, parent


def reconstruct_path(parent: Mapping[int, int], source: int, dest: int) -> list[int]:
    """Rebuild the vertex path ``source -> dest`` from a parent map.

    Returns an empty list when ``dest`` was not reached.
    """
    if dest == source:
        return [source]
    if dest not in parent:
        return []
    path = [dest]
    v = dest
    while v != source:
        v = parent[v]
        path.append(v)
    path.reverse()
    return path
