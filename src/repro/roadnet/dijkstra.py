"""Shortest-path primitives over :class:`~repro.roadnet.graph.RoadNetwork`.

These are the CPU reference algorithms the paper builds on:

* :func:`dijkstra` / :func:`multi_source_dijkstra` — textbook binary-heap
  Dijkstra, used as ground truth for ``GPU_SDist`` and by the baselines;
* :func:`bounded_dijkstra` — radius-limited search used by ``Refine_kNN``
  (Algorithm 6) to explore an unresolved vertex's unresolved range;
* :func:`shortest_path_distance` — point-to-point with early termination.

All functions run on out-edges of the given graph; searching "towards" a
vertex is done by the callers on :meth:`RoadNetwork.reversed`.
"""

from __future__ import annotations

import heapq
from typing import Iterable, Mapping

from repro.roadnet.graph import RoadNetwork

_INF = float("inf")


def dijkstra(graph: RoadNetwork, source: int, targets: Iterable[int] | None = None) -> dict[int, float]:
    """Single-source shortest distances from ``source``.

    Args:
        graph: the road network.
        source: start vertex id.
        targets: optional set of vertices; the search stops early once all
            of them are settled.

    Returns:
        ``{vertex: distance}`` for every settled vertex (all reachable
        vertices when ``targets`` is None).
    """
    return multi_source_dijkstra(graph, {source: 0.0}, targets=targets)


def multi_source_dijkstra(
    graph: RoadNetwork,
    seeds: Mapping[int, float],
    targets: Iterable[int] | None = None,
    radius: float = _INF,
) -> dict[int, float]:
    """Dijkstra from multiple seed vertices with given initial costs.

    This is the workhorse behind query-location searches: a location on an
    edge seeds the edge's destination vertex with the remaining edge length
    (see :func:`repro.roadnet.location.entry_costs`).

    Args:
        graph: the road network.
        seeds: ``{vertex: initial_cost}``; costs may be non-zero.
        targets: optional early-exit target set.
        radius: do not settle vertices farther than this.

    Returns:
        ``{vertex: distance}`` over settled vertices within ``radius``.
    """
    indptr, targets_arr, weights, _ = graph.csr_out()
    dist: dict[int, float] = {}
    pending = set(targets) if targets is not None else None
    heap: list[tuple[float, int]] = [(c, v) for v, c in seeds.items()]
    heapq.heapify(heap)
    best: dict[int, float] = dict(seeds)
    while heap:
        d, v = heapq.heappop(heap)
        if v in dist or d > radius:
            continue
        dist[v] = d
        if pending is not None:
            pending.discard(v)
            if not pending:
                break
        start, end = indptr[v], indptr[v + 1]
        for i in range(start, end):
            u = int(targets_arr[i])
            nd = d + float(weights[i])
            if nd < best.get(u, _INF) and nd <= radius:
                best[u] = nd
                heapq.heappush(heap, (nd, u))
    return dist


def bounded_dijkstra(graph: RoadNetwork, source: int, radius: float) -> dict[int, float]:
    """All vertices within network distance ``radius`` of ``source``.

    Used by the CPU refinement step: each unresolved vertex ``v`` explores
    locations with ``dist(v, .) < l - dist(q, v)`` (Definition 3).
    """
    return multi_source_dijkstra(graph, {source: 0.0}, radius=radius)


def shortest_path_distance(graph: RoadNetwork, source: int, dest: int) -> float:
    """Point-to-point shortest distance; ``inf`` when unreachable."""
    if source == dest:
        return 0.0
    dist = multi_source_dijkstra(graph, {source: 0.0}, targets=[dest])
    return dist.get(dest, _INF)


def dijkstra_with_paths(
    graph: RoadNetwork, source: int
) -> tuple[dict[int, float], dict[int, int]]:
    """Dijkstra that also records predecessor vertices.

    Returns:
        ``(dist, parent)`` where ``parent[v]`` is the vertex preceding
        ``v`` on a shortest path (absent for the source / unreachable).
    """
    indptr, targets_arr, weights, _ = graph.csr_out()
    dist: dict[int, float] = {}
    parent: dict[int, int] = {}
    heap: list[tuple[float, int]] = [(0.0, source)]
    best = {source: 0.0}
    while heap:
        d, v = heapq.heappop(heap)
        if v in dist:
            continue
        dist[v] = d
        start, end = indptr[v], indptr[v + 1]
        for i in range(start, end):
            u = int(targets_arr[i])
            nd = d + float(weights[i])
            if nd < best.get(u, _INF):
                best[u] = nd
                parent[u] = v
                heapq.heappush(heap, (nd, u))
    return dist, parent


def reconstruct_path(parent: Mapping[int, int], source: int, dest: int) -> list[int]:
    """Rebuild the vertex path ``source -> dest`` from a parent map.

    Returns an empty list when ``dest`` was not reached.
    """
    if dest == source:
        return [source]
    if dest not in parent:
        return []
    path = [dest]
    v = dest
    while v != source:
        v = parent[v]
        path.append(v)
    path.reverse()
    return path
