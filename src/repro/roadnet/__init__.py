"""Road-network substrate: graphs, shortest paths, generators and datasets.

This subpackage implements the directed weighted road-network model from
Section II of the paper, plus everything the evaluation needs around it:

* :mod:`repro.roadnet.graph` — the :class:`RoadNetwork` container.
* :mod:`repro.roadnet.location` — on-edge locations ``<edge, offset>``.
* :mod:`repro.roadnet.dijkstra` — single/multi-source, bounded and
  point-to-point shortest paths.
* :mod:`repro.roadnet.generators` — synthetic road-network generators used
  in place of the (unavailable) DIMACS downloads.
* :mod:`repro.roadnet.dimacs` — DIMACS ``.gr``/``.co`` readers and writers
  so the real datasets drop in unchanged.
* :mod:`repro.roadnet.datasets` — the six named evaluation networks at a
  reduced scale (see DESIGN.md section 2).
"""

from repro.roadnet.graph import Edge, RoadNetwork, Vertex
from repro.roadnet.location import NetworkLocation
from repro.roadnet.dijkstra import (
    bounded_dijkstra,
    dijkstra,
    multi_source_dijkstra,
    shortest_path_distance,
)
from repro.roadnet.generators import grid_road_network, random_road_network
from repro.roadnet.datasets import DATASET_SPECS, load_dataset
from repro.roadnet.astar import astar, bidirectional_dijkstra
from repro.roadnet.contraction import ContractionHierarchy
from repro.roadnet.metrics import GraphStats, estimate_diameter
from repro.roadnet.simplify import contract_chains

__all__ = [
    "Edge",
    "Vertex",
    "RoadNetwork",
    "NetworkLocation",
    "dijkstra",
    "multi_source_dijkstra",
    "bounded_dijkstra",
    "shortest_path_distance",
    "grid_road_network",
    "random_road_network",
    "DATASET_SPECS",
    "load_dataset",
    "astar",
    "bidirectional_dijkstra",
    "GraphStats",
    "estimate_diameter",
    "ContractionHierarchy",
    "contract_chains",
]
