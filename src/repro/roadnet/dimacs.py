"""DIMACS shortest-path challenge graph I/O.

The paper's six datasets come from the 9th DIMACS implementation challenge
(``http://www.dis.uniroma1.it/challenge9``).  Those downloads are not
available offline, but this module implements the full format so the real
files drop in unchanged:

* ``.gr`` distance graphs — ``p sp <n> <m>`` header, ``a <u> <v> <w>``
  arc lines, ``c`` comments (1-based vertex ids);
* ``.co`` coordinate files — ``p aux sp co <n>`` header and
  ``v <id> <x> <y>`` lines;
* transparent ``.gz`` handling for both.
"""

from __future__ import annotations

import gzip
import io
from pathlib import Path
from typing import IO

from repro.errors import GraphFormatError
from repro.roadnet.graph import RoadNetwork


def _open_text(path: str | Path, mode: str) -> IO[str]:
    path = Path(path)
    if path.suffix == ".gz":
        return io.TextIOWrapper(gzip.open(path, mode + "b"))  # type: ignore[arg-type]
    return open(path, mode, encoding="ascii")


def read_gr(path: str | Path) -> RoadNetwork:
    """Read a DIMACS ``.gr``/``.gr.gz`` distance graph.

    Raises:
        GraphFormatError: missing/duplicate header, malformed arc lines,
            vertex ids outside ``[1, n]``, or arc count mismatch.
    """
    graph: RoadNetwork | None = None
    declared_arcs = 0
    seen_arcs = 0
    with _open_text(path, "r") as fh:
        for lineno, raw in enumerate(fh, start=1):
            line = raw.strip()
            if not line or line.startswith("c"):
                continue
            fields = line.split()
            if fields[0] == "p":
                if graph is not None:
                    raise GraphFormatError(f"{path}:{lineno}: duplicate problem line")
                if len(fields) != 4 or fields[1] != "sp":
                    raise GraphFormatError(f"{path}:{lineno}: expected 'p sp <n> <m>'")
                n, declared_arcs = int(fields[2]), int(fields[3])
                graph = RoadNetwork()
                graph.add_vertices(n)
            elif fields[0] == "a":
                if graph is None:
                    raise GraphFormatError(f"{path}:{lineno}: arc before problem line")
                if len(fields) != 4:
                    raise GraphFormatError(f"{path}:{lineno}: expected 'a <u> <v> <w>'")
                u, v, w = int(fields[1]), int(fields[2]), float(fields[3])
                if not (1 <= u <= graph.num_vertices and 1 <= v <= graph.num_vertices):
                    raise GraphFormatError(f"{path}:{lineno}: vertex id out of range")
                graph.add_edge(u - 1, v - 1, w)
                seen_arcs += 1
            else:
                raise GraphFormatError(f"{path}:{lineno}: unknown record '{fields[0]}'")
    if graph is None:
        raise GraphFormatError(f"{path}: no problem line found")
    if seen_arcs != declared_arcs:
        raise GraphFormatError(
            f"{path}: header declares {declared_arcs} arcs but file has {seen_arcs}"
        )
    return graph


def read_co(path: str | Path, graph: RoadNetwork) -> None:
    """Read a DIMACS ``.co`` coordinate file into ``graph`` (in place).

    The graph must already have the vertices; coordinates are attached by
    rebuilding the vertex records (vertices are immutable dataclasses).
    """
    coords: dict[int, tuple[float, float]] = {}
    with _open_text(path, "r") as fh:
        for lineno, raw in enumerate(fh, start=1):
            line = raw.strip()
            if not line or line.startswith("c") or line.startswith("p"):
                continue
            fields = line.split()
            if fields[0] != "v" or len(fields) != 4:
                raise GraphFormatError(f"{path}:{lineno}: expected 'v <id> <x> <y>'")
            coords[int(fields[1]) - 1] = (float(fields[2]), float(fields[3]))
    from repro.roadnet.graph import Vertex  # local import to avoid cycle noise

    for vid, (x, y) in coords.items():
        if not 0 <= vid < graph.num_vertices:
            raise GraphFormatError(f"{path}: coordinate for unknown vertex {vid + 1}")
        graph._vertices[vid] = Vertex(vid, x, y)  # noqa: SLF001 - intentional rebuild


def write_gr(graph: RoadNetwork, path: str | Path, comment: str = "") -> None:
    """Write ``graph`` as a DIMACS ``.gr``/``.gr.gz`` file."""
    with _open_text(path, "w") as fh:
        if comment:
            for line in comment.splitlines():
                fh.write(f"c {line}\n")
        fh.write(f"p sp {graph.num_vertices} {graph.num_edges}\n")
        for e in graph.edges():
            w = int(round(e.weight)) if float(e.weight).is_integer() else e.weight
            fh.write(f"a {e.source + 1} {e.dest + 1} {w}\n")


def write_co(graph: RoadNetwork, path: str | Path) -> None:
    """Write vertex coordinates as a DIMACS ``.co``/``.co.gz`` file."""
    with _open_text(path, "w") as fh:
        fh.write(f"p aux sp co {graph.num_vertices}\n")
        for v in graph.vertices():
            fh.write(f"v {v.id + 1} {v.x} {v.y}\n")
