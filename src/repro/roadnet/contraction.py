"""Contraction Hierarchies for fast point-to-point queries.

The modern standard for road-network shortest paths (Geisberger et al.,
2008): vertices are *contracted* in importance order, inserting shortcut
edges that preserve all shortest distances among the remaining vertices;
a query then runs two Dijkstras that only ever relax edges *upward* in
the order, meeting near the top of the hierarchy after settling a tiny
fraction of the graph.

This implementation handles directed graphs, uses the classic lazy
edge-difference ordering heuristic, and bounds the witness searches (a
failed witness search conservatively inserts the shortcut, which keeps
queries exact at the cost of a few extra edges — property-tested against
Dijkstra in ``tests/roadnet/test_contraction.py``).

Not used by the paper's algorithms — this is library substrate for
point-to-point workloads (ETAs, test oracles on big graphs), alongside
:mod:`repro.roadnet.astar`.
"""

from __future__ import annotations

import heapq

from repro.roadnet.graph import RoadNetwork

_INF = float("inf")

#: settle budget for each witness search; exceeding it inserts the
#: shortcut conservatively (exactness preserved, a little more memory)
_WITNESS_BUDGET = 60


class ContractionHierarchy:
    """A preprocessed hierarchy over one road network.

    Example:
        >>> from repro.roadnet import grid_road_network
        >>> g = grid_road_network(6, 6, seed=1)
        >>> ch = ContractionHierarchy(g)
        >>> from repro.roadnet.dijkstra import shortest_path_distance
        >>> abs(ch.distance(0, 35) - shortest_path_distance(g, 0, 35)) < 1e-9
        True
    """

    def __init__(self, graph: RoadNetwork) -> None:
        self.graph = graph
        n = graph.num_vertices
        # working adjacency (mutated during contraction): u -> {v: w}
        fwd: list[dict[int, float]] = [dict() for _ in range(n)]
        bwd: list[dict[int, float]] = [dict() for _ in range(n)]
        for e in graph.edges():
            if e.weight < fwd[e.source].get(e.dest, _INF):
                fwd[e.source][e.dest] = e.weight
                bwd[e.dest][e.source] = e.weight

        self.rank = [0] * n
        #: upward adjacency for the forward search: u -> [(v, w)]
        self.up_fwd: list[list[tuple[int, float]]] = [[] for _ in range(n)]
        #: upward adjacency for the backward search (reverse edges)
        self.up_bwd: list[list[tuple[int, float]]] = [[] for _ in range(n)]
        self.shortcuts_added = 0
        self._contract_all(fwd, bwd)

    # ------------------------------------------------------------------
    # preprocessing
    # ------------------------------------------------------------------
    def _edge_difference(
        self, v: int, fwd: list[dict[int, float]], bwd: list[dict[int, float]]
    ) -> int:
        """Shortcuts needed minus edges removed if ``v`` were contracted."""
        needed = 0
        for u, w1 in bwd[v].items():
            for w, w2 in fwd[v].items():
                if u != w:
                    needed += 1
        return needed - len(fwd[v]) - len(bwd[v])

    def _contract_all(
        self, fwd: list[dict[int, float]], bwd: list[dict[int, float]]
    ) -> None:
        n = self.graph.num_vertices
        heap = [(self._edge_difference(v, fwd, bwd), v) for v in range(n)]
        heapq.heapify(heap)
        contracted = [False] * n
        next_rank = 0
        while heap:
            priority, v = heapq.heappop(heap)
            if contracted[v]:
                continue
            # lazy update: re-evaluate, re-push if stale
            fresh = self._edge_difference(v, fwd, bwd)
            if heap and fresh > heap[0][0]:
                heapq.heappush(heap, (fresh, v))
                continue
            self._contract(v, fwd, bwd, contracted)
            contracted[v] = True
            self.rank[v] = next_rank
            next_rank += 1

    def _contract(
        self,
        v: int,
        fwd: list[dict[int, float]],
        bwd: list[dict[int, float]],
        contracted: list[bool],
    ) -> None:
        # record v's remaining edges as upward edges (v is lowest-ranked)
        for w, weight in fwd[v].items():
            self.up_fwd[v].append((w, weight))
        for u, weight in bwd[v].items():
            self.up_bwd[v].append((u, weight))
        # shortcuts among v's neighbours
        for u, w1 in list(bwd[v].items()):
            for w, w2 in list(fwd[v].items()):
                if u == w:
                    continue
                through = w1 + w2
                if not self._has_witness(u, w, v, through, fwd):
                    if through < fwd[u].get(w, _INF):
                        fwd[u][w] = through
                        bwd[w][u] = through
                        self.shortcuts_added += 1
        # remove v from the working graph
        for w in fwd[v]:
            bwd[w].pop(v, None)
        for u in bwd[v]:
            fwd[u].pop(v, None)
        fwd[v].clear()
        bwd[v].clear()

    @staticmethod
    def _has_witness(
        source: int,
        target: int,
        excluded: int,
        bound: float,
        fwd: list[dict[int, float]],
    ) -> bool:
        """Is there a ``source -> target`` path of length <= bound that
        avoids ``excluded``?  Bounded Dijkstra with a settle budget."""
        best = {source: 0.0}
        heap = [(0.0, source)]
        settled = 0
        while heap and settled < _WITNESS_BUDGET:
            d, x = heapq.heappop(heap)
            if d > best.get(x, _INF):
                continue
            if x == target:
                return True
            if d > bound:
                return False
            settled += 1
            for y, w in fwd[x].items():
                if y == excluded:
                    continue
                nd = d + w
                if nd <= bound and nd < best.get(y, _INF):
                    best[y] = nd
                    heapq.heappush(heap, (nd, y))
        return best.get(target, _INF) <= bound

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def distance(self, source: int, target: int) -> float:
        """Exact shortest distance via the bidirectional upward search."""
        d, _ = self.distance_with_stats(source, target)
        return d

    def distance_with_stats(self, source: int, target: int) -> tuple[float, int]:
        """``(distance, vertices settled)``; ``inf`` when unreachable."""
        if source == target:
            return 0.0, 0
        best_f = {source: 0.0}
        best_b = {target: 0.0}
        heap_f = [(0.0, source)]
        heap_b = [(0.0, target)]
        settled_f: set[int] = set()
        settled_b: set[int] = set()
        meet = _INF

        def step(
            heap: list[tuple[float, int]],
            best: dict[int, float],
            other: dict[int, float],
            settled: set[int],
            adjacency: list[list[tuple[int, float]]],
        ) -> None:
            nonlocal meet
            d, x = heapq.heappop(heap)
            if x in settled:
                return
            settled.add(x)
            if x in other:
                meet = min(meet, d + other[x])
            if d >= meet:
                return
            for y, w in adjacency[x]:
                nd = d + w
                if nd < best.get(y, _INF):
                    best[y] = nd
                    heapq.heappush(heap, (nd, y))
                    if y in other:
                        meet = min(meet, nd + other[y])

        while heap_f or heap_b:
            top_f = heap_f[0][0] if heap_f else _INF
            top_b = heap_b[0][0] if heap_b else _INF
            if min(top_f, top_b) >= meet:
                break
            if top_f <= top_b:
                step(heap_f, best_f, best_b, settled_f, self.up_fwd)
            else:
                step(heap_b, best_b, best_f, settled_b, self.up_bwd)
        return meet, len(settled_f) + len(settled_b)
