"""Goal-directed point-to-point shortest paths: A* and bidirectional
Dijkstra.

The kNN algorithms never need point-to-point queries, but a road-network
library does (ETA between two locations, distance checks in tests and
examples).  Both algorithms return exactly the Dijkstra distance:

* :func:`astar` uses a scaled-Euclidean heuristic that is *provably
  admissible* for the given graph — the scale is the minimum edge
  weight / Euclidean length ratio, so ``h(v) <= dist(v, goal)`` always;
* :func:`bidirectional_dijkstra` races forward and backward searches and
  stops on the standard top-of-heap criterion.
"""

from __future__ import annotations

import heapq
import math
from typing import Callable

from repro.roadnet.graph import RoadNetwork

_INF = float("inf")


def euclidean_heuristic_scale(graph: RoadNetwork) -> float:
    """The largest ``c`` such that ``c * euclid(u, v) <= weight(u->v)``
    for every edge — making ``c * euclid(v, goal)`` admissible.

    Returns 0 (degrading A* to Dijkstra) when any edge is shorter than
    its endpoints' Euclidean distance allows, or coordinates are absent.
    """
    scale = _INF
    for e in graph.edges():
        a, b = graph.vertex(e.source), graph.vertex(e.dest)
        euclid = math.hypot(a.x - b.x, a.y - b.y)
        if euclid == 0.0:
            continue
        scale = min(scale, e.weight / euclid)
    if scale is _INF or scale == _INF:
        return 0.0
    return max(0.0, scale)


def astar(
    graph: RoadNetwork,
    source: int,
    goal: int,
    heuristic: Callable[[int], float] | None = None,
) -> tuple[float, int]:
    """A* distance from ``source`` to ``goal``.

    Args:
        graph: the road network (with coordinates for the default
            heuristic).
        source: start vertex.
        goal: target vertex.
        heuristic: optional admissible ``h(vertex) -> lower bound``;
            defaults to the scaled-Euclidean bound.

    Returns:
        ``(distance, vertices_settled)``; distance is ``inf`` when the
        goal is unreachable.  With an admissible heuristic the distance
        equals Dijkstra's and the settled count is usually smaller.
    """
    if source == goal:
        return 0.0, 0
    if heuristic is None:
        scale = euclidean_heuristic_scale(graph)
        gx, gy = graph.vertex(goal).x, graph.vertex(goal).y

        def heuristic(v: int) -> float:
            vert = graph.vertex(v)
            return scale * math.hypot(vert.x - gx, vert.y - gy)

    indptr, targets, weights, _ = graph.csr_out()
    best = {source: 0.0}
    heap = [(heuristic(source), source)]
    settled: set[int] = set()
    while heap:
        f, v = heapq.heappop(heap)
        if v in settled:
            continue
        settled.add(v)
        if v == goal:
            return best[v], len(settled)
        dv = best[v]
        for i in range(indptr[v], indptr[v + 1]):
            u = int(targets[i])
            nd = dv + float(weights[i])
            if nd < best.get(u, _INF):
                best[u] = nd
                heapq.heappush(heap, (nd + heuristic(u), u))
    return _INF, len(settled)


def bidirectional_dijkstra(
    graph: RoadNetwork, source: int, goal: int
) -> tuple[float, int]:
    """Bidirectional Dijkstra distance from ``source`` to ``goal``.

    Alternates a forward search on the graph and a backward search on
    the reversed adjacency; terminates when the sum of the two heap tops
    reaches the best meeting distance.

    Returns ``(distance, vertices_settled)``.
    """
    if source == goal:
        return 0.0, 0
    f_indptr, f_targets, f_weights, _ = graph.csr_out()
    b_indptr, b_targets, b_weights, _ = graph.csr_in()

    best = {0: {source: 0.0}, 1: {goal: 0.0}}
    heaps = {0: [(0.0, source)], 1: [(0.0, goal)]}
    settled: dict[int, set[int]] = {0: set(), 1: set()}
    meet = _INF

    def expand(side: int) -> None:
        nonlocal meet
        d, v = heapq.heappop(heaps[side])
        if v in settled[side]:
            return
        settled[side].add(v)
        other = 1 - side
        if v in best[other]:
            meet = min(meet, d + best[other][v])
        indptr = f_indptr if side == 0 else b_indptr
        targets = f_targets if side == 0 else b_targets
        weights = f_weights if side == 0 else b_weights
        for i in range(indptr[v], indptr[v + 1]):
            u = int(targets[i])
            nd = d + float(weights[i])
            if nd < best[side].get(u, _INF):
                best[side][u] = nd
                heapq.heappush(heaps[side], (nd, u))
                if u in best[other]:
                    meet = min(meet, nd + best[other][u])

    while heaps[0] and heaps[1]:
        top = heaps[0][0][0] + heaps[1][0][0]
        if top >= meet:
            break
        side = 0 if heaps[0][0][0] <= heaps[1][0][0] else 1
        expand(side)
    # drain a one-sided remainder only while it can still help
    for side in (0, 1):
        while heaps[side] and heaps[side][0][0] < meet:
            expand(side)
    total = len(settled[0]) + len(settled[1])
    return meet, total
