"""Directed weighted road-network graph.

The paper (Section II) models a road network as a directed graph
``G = <V, E>`` where an edge ``e_ij`` carries a travel cost ``w``.
Undirected roads are represented by two directed edges of equal weight.

:class:`RoadNetwork` is the single graph container used by every other
subsystem (G-Grid, the baselines, the generators and the mobility layer).
It keeps adjacency in plain Python lists for easy mutation during
construction and can be *frozen* into numpy CSR arrays for fast repeated
shortest-path computation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator

import numpy as np

from repro.errors import GraphError


@dataclass(frozen=True)
class Vertex:
    """A road-network vertex.

    Attributes:
        id: dense integer id in ``[0, num_vertices)``.
        x: longitude-like coordinate (arbitrary units).
        y: latitude-like coordinate (arbitrary units).
    """

    id: int
    x: float = 0.0
    y: float = 0.0


@dataclass(frozen=True)
class Edge:
    """A directed road-network edge ``source -> dest`` with weight ``w``.

    Mirrors the paper's edge tuple ``e = <id, v_s, w>`` (the destination is
    implicit from where the edge is stored in the graph grid; here we keep
    it explicit for convenience).
    """

    id: int
    source: int
    dest: int
    weight: float

    def __post_init__(self) -> None:
        if self.weight < 0:
            raise GraphError(f"edge {self.id} has negative weight {self.weight}")


@dataclass
class _Csr:
    """Frozen CSR adjacency used by the hot shortest-path loops."""

    indptr: np.ndarray
    targets: np.ndarray
    weights: np.ndarray
    edge_ids: np.ndarray


class RoadNetwork:
    """A mutable directed graph with integer vertex ids and dense edge ids.

    Vertices must be added before edges referencing them.  Edge ids are
    assigned sequentially by :meth:`add_edge`, which matches the paper's
    assumption that an edge id keys the inverted index of the graph grid.

    Example:
        >>> g = RoadNetwork()
        >>> a, b = g.add_vertex(0.0, 0.0), g.add_vertex(1.0, 0.0)
        >>> eid = g.add_edge(a, b, 5.0)
        >>> g.edge(eid).weight
        5.0
    """

    def __init__(self) -> None:
        self._vertices: list[Vertex] = []
        self._edges: list[Edge] = []
        self._out: list[list[int]] = []  # vertex id -> list of edge ids
        self._in: list[list[int]] = []  # vertex id -> list of edge ids
        self._csr_out: _Csr | None = None
        self._csr_in: _Csr | None = None

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_vertex(self, x: float = 0.0, y: float = 0.0) -> int:
        """Add a vertex at coordinates ``(x, y)`` and return its id."""
        vid = len(self._vertices)
        self._vertices.append(Vertex(vid, x, y))
        self._out.append([])
        self._in.append([])
        self._invalidate()
        return vid

    def add_vertices(self, count: int) -> list[int]:
        """Add ``count`` vertices at the origin; return their ids."""
        return [self.add_vertex() for _ in range(count)]

    def add_edge(self, source: int, dest: int, weight: float) -> int:
        """Add a directed edge and return its id.

        Raises:
            GraphError: if an endpoint does not exist, the weight is
                negative, or the edge is a self-loop (road networks have
                no zero-length loops).
        """
        self._check_vertex(source)
        self._check_vertex(dest)
        if source == dest:
            raise GraphError(f"self-loop at vertex {source} is not allowed")
        eid = len(self._edges)
        self._edges.append(Edge(eid, source, dest, float(weight)))
        self._out[source].append(eid)
        self._in[dest].append(eid)
        self._invalidate()
        return eid

    def add_bidirectional_edge(self, u: int, v: int, weight: float) -> tuple[int, int]:
        """Add ``u -> v`` and ``v -> u`` with the same weight.

        This is the paper's recipe for modelling undirected roads.
        """
        return self.add_edge(u, v, weight), self.add_edge(v, u, weight)

    # ------------------------------------------------------------------
    # accessors
    # ------------------------------------------------------------------
    @property
    def num_vertices(self) -> int:
        return len(self._vertices)

    @property
    def num_edges(self) -> int:
        return len(self._edges)

    def vertex(self, vid: int) -> Vertex:
        self._check_vertex(vid)
        return self._vertices[vid]

    def edge(self, eid: int) -> Edge:
        if not 0 <= eid < len(self._edges):
            raise GraphError(f"unknown edge id {eid}")
        return self._edges[eid]

    def vertices(self) -> Iterator[Vertex]:
        return iter(self._vertices)

    def edges(self) -> Iterator[Edge]:
        return iter(self._edges)

    def out_edges(self, vid: int) -> list[Edge]:
        """Edges whose *source* is ``vid``."""
        self._check_vertex(vid)
        return [self._edges[e] for e in self._out[vid]]

    def in_edges(self, vid: int) -> list[Edge]:
        """Edges whose *destination* is ``vid``.

        The graph grid stores edges grouped by destination vertex
        (Section III-A), so this accessor is on the index build path.
        """
        self._check_vertex(vid)
        return [self._edges[e] for e in self._in[vid]]

    def out_degree(self, vid: int) -> int:
        self._check_vertex(vid)
        return len(self._out[vid])

    def in_degree(self, vid: int) -> int:
        self._check_vertex(vid)
        return len(self._in[vid])

    def neighbors(self, vid: int) -> list[int]:
        """Destination vertices of the out-edges of ``vid`` (with repeats)."""
        return [e.dest for e in self.out_edges(vid)]

    def coordinates(self) -> np.ndarray:
        """Return an ``(n, 2)`` float array of vertex coordinates."""
        if not self._vertices:
            return np.zeros((0, 2), dtype=np.float64)
        return np.array([(v.x, v.y) for v in self._vertices], dtype=np.float64)

    def total_weight(self) -> float:
        return float(sum(e.weight for e in self._edges))

    # ------------------------------------------------------------------
    # frozen CSR views
    # ------------------------------------------------------------------
    def csr_out(self) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """CSR arrays over out-edges: ``(indptr, targets, weights, edge_ids)``.

        Built lazily and cached; any mutation invalidates the cache.
        """
        if self._csr_out is None:
            self._csr_out = self._build_csr(self._out, by_dest=False)
        c = self._csr_out
        return c.indptr, c.targets, c.weights, c.edge_ids

    def csr_in(self) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """CSR arrays over in-edges: targets hold the *source* vertices."""
        if self._csr_in is None:
            self._csr_in = self._build_csr(self._in, by_dest=True)
        c = self._csr_in
        return c.indptr, c.targets, c.weights, c.edge_ids

    def _build_csr(self, adj: list[list[int]], by_dest: bool) -> _Csr:
        n = len(self._vertices)
        indptr = np.zeros(n + 1, dtype=np.int64)
        for vid in range(n):
            indptr[vid + 1] = indptr[vid] + len(adj[vid])
        m = int(indptr[-1])
        targets = np.zeros(m, dtype=np.int64)
        weights = np.zeros(m, dtype=np.float64)
        edge_ids = np.zeros(m, dtype=np.int64)
        pos = 0
        for vid in range(n):
            for eid in adj[vid]:
                e = self._edges[eid]
                targets[pos] = e.source if by_dest else e.dest
                weights[pos] = e.weight
                edge_ids[pos] = eid
                pos += 1
        return _Csr(indptr, targets, weights, edge_ids)

    # ------------------------------------------------------------------
    # derived graphs / queries
    # ------------------------------------------------------------------
    def reversed(self) -> "RoadNetwork":
        """Return a new graph with every edge direction flipped.

        Edge ids are *not* preserved (they are re-assigned densely), which
        is fine for the reverse-search uses inside the library.
        """
        g = RoadNetwork()
        for v in self._vertices:
            g.add_vertex(v.x, v.y)
        for e in self._edges:
            g.add_edge(e.dest, e.source, e.weight)
        return g

    def subgraph(self, vertex_ids: Iterable[int]) -> tuple["RoadNetwork", dict[int, int]]:
        """Induced subgraph over ``vertex_ids``.

        Returns the new graph and a mapping ``old id -> new id``.
        """
        keep = sorted(set(vertex_ids))
        mapping: dict[int, int] = {}
        g = RoadNetwork()
        for old in keep:
            v = self.vertex(old)
            mapping[old] = g.add_vertex(v.x, v.y)
        kept = set(keep)
        for e in self._edges:
            if e.source in kept and e.dest in kept:
                g.add_edge(mapping[e.source], mapping[e.dest], e.weight)
        return g, mapping

    def is_strongly_connected(self) -> bool:
        """True iff every vertex reaches every other vertex.

        Uses two BFS passes (forward and reverse) from vertex 0.
        """
        n = self.num_vertices
        if n <= 1:
            return True
        return self._bfs_reach(0, self._out) == n and self._bfs_reach(0, self._in) == n

    def _bfs_reach(self, start: int, adj: list[list[int]]) -> int:
        seen = bytearray(self.num_vertices)
        seen[start] = 1
        frontier = [start]
        count = 1
        while frontier:
            nxt: list[int] = []
            for vid in frontier:
                for eid in adj[vid]:
                    e = self._edges[eid]
                    other = e.dest if adj is self._out else e.source
                    if not seen[other]:
                        seen[other] = 1
                        count += 1
                        nxt.append(other)
            frontier = nxt
        return count

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _check_vertex(self, vid: int) -> None:
        if not 0 <= vid < len(self._vertices):
            raise GraphError(f"unknown vertex id {vid}")

    def _invalidate(self) -> None:
        self._csr_out = None
        self._csr_in = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RoadNetwork(|V|={self.num_vertices}, |E|={self.num_edges})"
