"""The six named evaluation road networks (Table II), at reduced scale.

The paper evaluates on DIMACS networks from New York City (264k vertices)
up to the full USA (24M vertices).  Those are neither downloadable here nor
tractable for a pure-Python reproduction, so :func:`load_dataset` generates
deterministic synthetic networks that preserve what the experiments
actually use:

* the *relative size ordering* NY < COL < FLA < CAL < LKS < USA;
* each dataset's directed ``|E| / |V|`` ratio from Table II;
* rough geographic aspect (USA is wide, NY is compact).

The default ``scale`` of 1/2000 keeps the largest network around 12k
vertices.  Passing real DIMACS files through
:func:`repro.roadnet.dimacs.read_gr` substitutes the originals unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

from repro.errors import GraphError
from repro.roadnet.generators import grid_dims_for, grid_road_network
from repro.roadnet.graph import RoadNetwork

DEFAULT_SCALE = 1.0 / 2000.0

#: Minimum synthetic size so even heavily scaled datasets stay non-trivial.
MIN_VERTICES = 100


@dataclass(frozen=True)
class DatasetSpec:
    """Static description of one Table II dataset.

    Attributes:
        name: the paper's dataset label.
        region: human-readable region string from Table II.
        paper_vertices: |V| reported in Table II.
        paper_edges: |E| reported in Table II.
        aspect: rows/cols ratio used when synthesising the stand-in.
        seed: RNG seed so every load is reproducible.
    """

    name: str
    region: str
    paper_vertices: int
    paper_edges: int
    aspect: float
    seed: int

    @property
    def edge_ratio(self) -> float:
        """Directed edges per vertex, preserved in the synthetic network."""
        return self.paper_edges / self.paper_vertices

    def scaled_vertices(self, scale: float) -> int:
        return max(MIN_VERTICES, int(round(self.paper_vertices * scale)))


#: Table II, in ascending size order (the order Figs. 5/6/10 sweep).
DATASET_SPECS: dict[str, DatasetSpec] = {
    spec.name: spec
    for spec in (
        DatasetSpec("NY", "New York City", 264_346, 733_846, 1.0, 101),
        DatasetSpec("COL", "Colorado", 435_666, 1_057_066, 1.1, 102),
        DatasetSpec("FLA", "Florida", 1_070_376, 2_712_798, 1.6, 103),
        DatasetSpec("CAL", "California and Nevada", 1_890_815, 4_657_742, 1.8, 104),
        DatasetSpec("LKS", "Great Lakes", 2_758_119, 6_885_658, 0.8, 105),
        DatasetSpec("USA", "Full USA", 23_974_347, 58_333_344, 0.6, 106),
    )
}

#: Size-ascending dataset names, the sweep order used by the benchmarks.
DATASET_ORDER: tuple[str, ...] = ("NY", "COL", "FLA", "CAL", "LKS", "USA")


@lru_cache(maxsize=32)
def _load_cached(name: str, scale: float) -> RoadNetwork:
    spec = DATASET_SPECS[name]
    n = spec.scaled_vertices(scale)
    rows, cols = grid_dims_for(n, spec.aspect)
    return grid_road_network(
        rows,
        cols,
        edge_ratio=spec.edge_ratio,
        seed=spec.seed,
    )


def load_dataset(name: str, scale: float = DEFAULT_SCALE) -> RoadNetwork:
    """Load (generate) a named evaluation network.

    Args:
        name: one of ``NY, COL, FLA, CAL, LKS, USA`` (case-insensitive).
        scale: fraction of the paper's vertex count to synthesise; the
            default 1/2000 keeps USA around 12k vertices.

    Returns:
        A deterministic, strongly connected :class:`RoadNetwork`.  Results
        are cached per ``(name, scale)``; callers must not mutate them.

    Raises:
        GraphError: unknown dataset name or non-positive scale.
    """
    key = name.upper()
    if key not in DATASET_SPECS:
        raise GraphError(
            f"unknown dataset {name!r}; expected one of {sorted(DATASET_SPECS)}"
        )
    if scale <= 0:
        raise GraphError(f"scale must be positive, got {scale}")
    return _load_cached(key, scale)


def dataset_table(scale: float = DEFAULT_SCALE) -> list[dict[str, object]]:
    """Regenerate Table II: per-dataset |V| and |E|, paper vs synthetic."""
    rows = []
    for name in DATASET_ORDER:
        spec = DATASET_SPECS[name]
        g = load_dataset(name, scale)
        rows.append(
            {
                "dataset": name,
                "region": spec.region,
                "paper_V": spec.paper_vertices,
                "paper_E": spec.paper_edges,
                "V": g.num_vertices,
                "E": g.num_edges,
                "edge_ratio": round(g.num_edges / g.num_vertices, 3),
            }
        )
    return rows
