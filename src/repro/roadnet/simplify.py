"""Road-network simplification: contracting degree-2 chains.

Raw road data is full of *shape vertices* — degree-2 vertices that only
encode geometry, not topology.  Contracting each maximal chain of them
into one edge shrinks the graph (often 2-4x on real data) while
preserving every shortest distance between the remaining vertices, which
makes index builds and searches proportionally cheaper.

Only *transit* vertices are contracted: exactly one in-edge and one
out-edge per direction forming a bidirectional pass-through (or a pure
one-way pass-through), with no other incident edges.  The mapping back
to original vertices is returned so object locations can be projected.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.roadnet.graph import RoadNetwork


@dataclass(frozen=True)
class SimplifiedNetwork:
    """Result of :func:`contract_chains`.

    Attributes:
        graph: the simplified network.
        kept: original vertex ids that survived, indexed by new id.
        new_id: ``{original id: new id}`` for surviving vertices.
    """

    graph: RoadNetwork
    kept: list[int]
    new_id: dict[int, int]


def _is_transit(graph: RoadNetwork, vid: int) -> bool:
    """A pure pass-through vertex: its edges form either one two-way
    road passing through, or one one-way road passing through."""
    out_edges = graph.out_edges(vid)
    in_edges = graph.in_edges(vid)
    out_n = {e.dest for e in out_edges}
    in_n = {e.source for e in in_edges}
    if len(out_edges) == 2 and len(in_edges) == 2:
        # two-way pass-through: same two neighbours on both sides
        return out_n == in_n and len(out_n) == 2 and vid not in out_n
    if len(out_edges) == 1 and len(in_edges) == 1:
        # one-way pass-through: in from one side, out the other
        return next(iter(in_n)) != next(iter(out_n))
    return False


def contract_chains(graph: RoadNetwork) -> SimplifiedNetwork:
    """Contract every maximal chain of transit vertices.

    Returns a new network over the non-transit vertices; each contracted
    chain becomes one edge whose weight is the chain's total weight.
    Shortest distances between surviving vertices are preserved exactly
    (property-tested against Dijkstra on the original).
    """
    n = graph.num_vertices
    transit = [_is_transit(graph, v) for v in range(n)]
    kept = [v for v in range(n) if not transit[v]]
    if not kept:  # a pure cycle: keep one vertex to anchor it
        kept = [0]
        transit[0] = False
    new_id = {old: i for i, old in enumerate(kept)}

    simplified = RoadNetwork()
    for old in kept:
        v = graph.vertex(old)
        simplified.add_vertex(v.x, v.y)

    # walk chains starting from each kept vertex's out-edges
    seen_pairs: set[tuple[int, float]] = set()
    for start in kept:
        for first in graph.out_edges(start):
            total = first.weight
            prev, cur = start, first.dest
            while transit[cur]:
                nxt = next(
                    e for e in graph.out_edges(cur) if e.dest != prev
                )
                total += nxt.weight
                prev, cur = cur, nxt.dest
            if cur == start:
                continue  # a loop road back to itself: no effect on distances
            key = (new_id[start] * graph.num_vertices + new_id[cur], round(total, 12))
            if key in seen_pairs:
                continue  # equal-weight parallel duplicate
            seen_pairs.add(key)
            simplified.add_edge(new_id[start], new_id[cur], total)
    return SimplifiedNetwork(simplified, kept, new_id)
