"""On-edge network locations.

Objects and queries live *on edges*, not just at vertices: a location is a
pair ``<edge, offset>`` where ``offset`` is the distance already travelled
from the edge's source vertex (the paper's message fields ``m.e`` and
``m.d``).  This module defines the location value type and the distance
conventions used throughout the library:

* distance *from* a location ``q = <e, d>`` to a vertex ``v``:
  ``(e.w - d) + dist(dest(e), v)`` — the traveller must first finish the
  current edge (offset 0 collapses to the source vertex);
* distance from ``q`` to an object at ``<e', d'>``:
  ``dist(q, source(e')) + d'`` — exactly the formula used by
  ``GPU_First_k`` in Section V-B, with the special case of both locations
  sharing an edge with ``d <= d'``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import GraphError
from repro.roadnet.graph import RoadNetwork


@dataclass(frozen=True)
class NetworkLocation:
    """A position on a road network: ``offset`` metres along ``edge_id``.

    Invariant (checked against a graph via :meth:`validate`):
    ``0 <= offset <= edge.weight``.
    """

    edge_id: int
    offset: float

    def validate(self, graph: RoadNetwork) -> "NetworkLocation":
        """Check this location is legal on ``graph`` and return ``self``.

        Raises:
            GraphError: if the edge is unknown or the offset is out of
                ``[0, weight]``.
        """
        edge = graph.edge(self.edge_id)
        if not 0.0 <= self.offset <= edge.weight + 1e-12:
            raise GraphError(
                f"offset {self.offset} outside [0, {edge.weight}] on edge {self.edge_id}"
            )
        return self

    def clamp(self, graph: RoadNetwork) -> "NetworkLocation":
        """Return a copy with the offset clamped into ``[0, weight]``."""
        w = graph.edge(self.edge_id).weight
        return NetworkLocation(self.edge_id, min(max(self.offset, 0.0), w))

    def at_source(self) -> bool:
        """True when the location coincides with the edge's source vertex."""
        return self.offset == 0.0

    def xy(self, graph: RoadNetwork) -> tuple[float, float]:
        """Interpolated Euclidean coordinates (for display only)."""
        edge = graph.edge(self.edge_id)
        s, t = graph.vertex(edge.source), graph.vertex(edge.dest)
        frac = 0.0 if edge.weight == 0 else self.offset / edge.weight
        return s.x + frac * (t.x - s.x), s.y + frac * (t.y - s.y)


def entry_costs(graph: RoadNetwork, loc: NetworkLocation) -> dict[int, float]:
    """Seed costs for a shortest-path search *from* ``loc``.

    Returns ``{vertex: cost}`` mapping the vertices directly reachable from
    the location: the destination of the current edge at cost
    ``weight - offset``, plus the source vertex at cost 0 when the offset
    is exactly 0 (the traveller is standing on the vertex).
    """
    loc.validate(graph)
    edge = graph.edge(loc.edge_id)
    seeds = {edge.dest: edge.weight - loc.offset}
    if loc.at_source():
        seeds[edge.source] = 0.0
    return seeds


def location_distance(
    graph: RoadNetwork,
    dist_to_vertex: dict[int, float],
    query: NetworkLocation,
    target: NetworkLocation,
) -> float:
    """Distance from ``query`` to ``target`` given vertex distances.

    ``dist_to_vertex`` must hold shortest distances *from the query* for at
    least the source vertex of ``target.edge_id`` (missing vertices are
    treated as unreachable).  Handles the same-edge shortcut where the
    target lies ahead of the query on the shared edge.
    """
    inf = float("inf")
    edge = graph.edge(target.edge_id)
    via_source = dist_to_vertex.get(edge.source, inf) + target.offset
    if target.edge_id == query.edge_id and target.offset >= query.offset:
        return min(via_source, target.offset - query.offset)
    return via_source
