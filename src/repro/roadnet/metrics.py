"""Road-network statistics.

Summary metrics for datasets and generated networks: degree
distributions, weight statistics, connectivity and a sampled diameter
estimate.  Used by the dataset table, tests and anyone validating that a
loaded network looks like a road network.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.roadnet.dijkstra import dijkstra
from repro.roadnet.graph import RoadNetwork


@dataclass(frozen=True)
class GraphStats:
    """Structural statistics of a road network."""

    vertices: int
    edges: int
    edge_ratio: float
    min_out_degree: int
    max_out_degree: int
    mean_out_degree: float
    min_weight: float
    max_weight: float
    total_weight: float
    strongly_connected: bool

    @staticmethod
    def of(graph: RoadNetwork) -> "GraphStats":
        degrees = [graph.out_degree(v.id) for v in graph.vertices()]
        weights = [e.weight for e in graph.edges()]
        n = max(1, graph.num_vertices)
        return GraphStats(
            vertices=graph.num_vertices,
            edges=graph.num_edges,
            edge_ratio=graph.num_edges / n,
            min_out_degree=min(degrees, default=0),
            max_out_degree=max(degrees, default=0),
            mean_out_degree=sum(degrees) / n,
            min_weight=min(weights, default=0.0),
            max_weight=max(weights, default=0.0),
            total_weight=sum(weights),
            strongly_connected=graph.is_strongly_connected(),
        )


def estimate_diameter(
    graph: RoadNetwork, samples: int = 8, seed: int = 0
) -> float:
    """Lower-bound diameter estimate by sampled double sweeps.

    From each of ``samples`` random sources, run Dijkstra, jump to the
    farthest reached vertex and run once more; the maximum eccentricity
    seen is a (often tight) lower bound on the weighted diameter.
    """
    if graph.num_vertices == 0:
        return 0.0
    rng = random.Random(seed)
    best = 0.0
    for _ in range(samples):
        source = rng.randrange(graph.num_vertices)
        dist = dijkstra(graph, source)
        if not dist:
            continue
        far, ecc = max(dist.items(), key=lambda kv: kv[1])
        best = max(best, ecc)
        second = dijkstra(graph, far)
        if second:
            best = max(best, max(second.values()))
    return best


def degree_histogram(graph: RoadNetwork) -> dict[int, int]:
    """``{out degree: vertex count}``."""
    hist: dict[int, int] = {}
    for v in graph.vertices():
        d = graph.out_degree(v.id)
        hist[d] = hist.get(d, 0) + 1
    return hist
