"""Seeded fault injection for the simulated device (the chaos harness).

The package splits cleanly into:

* :mod:`repro.chaos.plan` — :class:`~repro.chaos.plan.FaultPlan`, the
  frozen, seeded description of *what* fails and how often, plus the
  named profiles behind ``--chaos``;
* :mod:`repro.chaos.injector` — :class:`~repro.chaos.injector.FaultInjector`,
  the stateful hook that makes a concrete
  :class:`~repro.simgpu.device.SimGpu` actually fail;
* :mod:`repro.chaos.hub` — the process-wide opt-in
  (:func:`~repro.chaos.hub.configure_chaos` /
  :func:`~repro.chaos.hub.chaos_context`), mirroring :mod:`repro.obs`;
* :mod:`repro.chaos.harness` — chaos-vs-baseline replays with the
  exactness oracle (imported lazily: the harness needs the index, and
  the index needs this package for its chaos sync).

What *survives* the injected faults is not in this package: the
degradation ladder lives in :class:`~repro.core.ggrid.GGridIndex` and
its policies in :mod:`repro.resilience`.
"""

from repro.chaos.hub import chaos_context, configure_chaos, default_fault_plan
from repro.chaos.injector import FaultInjector
from repro.chaos.plan import FAULT_KINDS, PROFILES, FaultPlan

__all__ = [
    "FaultPlan",
    "FaultInjector",
    "PROFILES",
    "FAULT_KINDS",
    "configure_chaos",
    "default_fault_plan",
    "chaos_context",
    "ChaosReport",
    "run_chaos_replay",
]


def __getattr__(name: str):
    # lazy: harness -> core.ggrid -> chaos (this package); importing it
    # eagerly here would make the cycle real
    if name in ("ChaosReport", "run_chaos_replay"):
        from repro.chaos import harness

        return getattr(harness, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
