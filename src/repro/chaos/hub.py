"""Process-wide chaos opt-in, mirroring :mod:`repro.obs.hub`.

Chaos is strictly opt-in: nothing is injected unless a
:class:`~repro.chaos.plan.FaultPlan` is installed here (or an injector
is wired to a device by hand).  The hub exists for the same reason the
observability hub does — ``python -m repro.bench --chaos mixed`` must
reach the :class:`~repro.core.ggrid.GGridIndex` instances the experiment
drivers construct deep inside the harness.  The index checks the default
plan at construction and at :meth:`~repro.core.ggrid.GGridIndex.reset_objects`
(see ``GGridIndex._sync_chaos``) and installs/uninstalls its own
injector to match.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator

from repro.chaos.plan import FaultPlan

#: Process-wide default plan.  ``None`` (the initial state) = chaos off.
_DEFAULT: FaultPlan | None = None


def configure_chaos(plan: FaultPlan | None) -> FaultPlan | None:
    """Install (or clear, with ``None``) the process-wide fault plan.

    Returns the previous plan so callers can restore it.
    """
    global _DEFAULT
    previous = _DEFAULT
    _DEFAULT = plan
    return previous


def default_fault_plan() -> FaultPlan | None:
    return _DEFAULT


@contextmanager
def chaos_context(plan: FaultPlan) -> Iterator[FaultPlan]:
    """Scoped :func:`configure_chaos` that restores the previous plan."""
    previous = configure_chaos(plan)
    try:
        yield plan
    finally:
        configure_chaos(previous)
