"""Deterministic fault schedules.

A :class:`FaultPlan` is the *what and how often* of chaos testing: per
operation-class fault probabilities plus message-list capacity pressure,
all driven by one seed so any replay under the plan is exactly
reproducible.  Plans are frozen value objects; the stateful side — which
concrete launch/transfer/allocation actually fails — lives in
:class:`~repro.chaos.injector.FaultInjector`.

Named profiles cover the interesting regimes::

    FaultPlan.from_profile("mixed", seed=7)

=========== ==========================================================
profile     what it injects
=========== ==========================================================
kernels     transient kernel failures (~15% of launches)
transfers   host<->device transfer errors (~15% of transfers)
oom         device-OOM on ~10% of allocations
capacity    message-list backlog capped at 2 buckets per cell
mixed       all of the above at moderate rates (the acceptance profile)
blackout    every launch and transfer fails — the device is gone;
            exercises the circuit breaker and the CPU rungs end to end
=========== ==========================================================
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.errors import ConfigError

#: Fault kinds an injector counts and publishes (metric label values).
KIND_KERNEL = "kernel"
KIND_TRANSFER = "transfer"
KIND_OOM = "oom"

FAULT_KINDS: tuple[str, ...] = (KIND_KERNEL, KIND_TRANSFER, KIND_OOM)


@dataclass(frozen=True)
class FaultPlan:
    """A seeded, reproducible failure schedule.

    Attributes:
        seed: RNG seed; the same plan over the same replay injects the
            exact same faults.
        kernel_fault_rate: probability a kernel launch fails with a
            (transient) :class:`~repro.errors.KernelError`.
        transfer_fault_rate: probability a host<->device transfer fails
            with a :class:`~repro.errors.TransferError`.
        oom_rate: probability a device allocation fails with a
            :class:`~repro.errors.DeviceMemoryError`.
        kernel_filter: restrict kernel faults to these kernel names
            (empty = all kernels).
        max_faults: stop injecting after this many faults (``None`` =
            unbounded) — models a transient outage that heals.
        max_buckets_per_cell: capacity pressure — cap every cell's
            message-list backlog at this many buckets so ingest hits
            :class:`~repro.errors.CapacityError` backpressure.
    """

    seed: int = 0
    kernel_fault_rate: float = 0.0
    transfer_fault_rate: float = 0.0
    oom_rate: float = 0.0
    kernel_filter: tuple[str, ...] = ()
    max_faults: int | None = None
    max_buckets_per_cell: int | None = None

    def __post_init__(self) -> None:
        for name in ("kernel_fault_rate", "transfer_fault_rate", "oom_rate"):
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise ConfigError(f"{name} must be in [0, 1], got {rate}")
        if self.max_faults is not None and self.max_faults < 0:
            raise ConfigError(f"max_faults must be >= 0, got {self.max_faults}")
        if self.max_buckets_per_cell is not None and self.max_buckets_per_cell < 1:
            raise ConfigError(
                f"max_buckets_per_cell must be >= 1, "
                f"got {self.max_buckets_per_cell}"
            )

    @property
    def injects_device_faults(self) -> bool:
        """True when the plan needs a device-side injector at all."""
        return (
            self.kernel_fault_rate > 0
            or self.transfer_fault_rate > 0
            or self.oom_rate > 0
        )

    def with_(self, **overrides: object) -> "FaultPlan":
        """A copy with the given fields replaced."""
        return replace(self, **overrides)  # type: ignore[arg-type]

    @classmethod
    def from_profile(cls, name: str, seed: int = 0) -> "FaultPlan":
        """Resolve a named chaos profile (see the module table).

        Raises:
            ConfigError: unknown profile name.
        """
        kwargs = PROFILES.get(name)
        if kwargs is None:
            raise ConfigError(
                f"unknown chaos profile {name!r}; known: {', '.join(sorted(PROFILES))}"
            )
        return cls(seed=seed, **kwargs)


#: Named profiles for ``FaultPlan.from_profile`` and ``--chaos``.
PROFILES: dict[str, dict] = {
    "kernels": {"kernel_fault_rate": 0.15},
    "transfers": {"transfer_fault_rate": 0.15},
    "oom": {"oom_rate": 0.10},
    "capacity": {"max_buckets_per_cell": 2},
    "mixed": {
        "kernel_fault_rate": 0.10,
        "transfer_fault_rate": 0.10,
        "oom_rate": 0.05,
        "max_buckets_per_cell": 3,
    },
    "blackout": {"kernel_fault_rate": 1.0, "transfer_fault_rate": 1.0},
}
