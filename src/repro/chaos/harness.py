"""End-to-end chaos replays with a built-in correctness oracle.

:func:`run_chaos_replay` replays one generated workload twice over fresh
G-Grid indexes — once fault-free, once under a
:class:`~repro.chaos.plan.FaultPlan` — and compares every kNN answer.
This is the harness behind ``python -m repro.bench --chaos`` and the
chaos test suite, and it encodes the subsystem's whole contract:

* the replay under faults **completes** (no uncaught exceptions — the
  resilience ladder absorbs every injected device error);
* every answer is **exact** (identical result distances to the
  fault-free replay — degradation trades latency, never correctness);
* the run is **deterministic** (same plan seed, same workload seed →
  the same faults, the same rungs, the same report).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.chaos.hub import chaos_context
from repro.chaos.plan import FaultPlan
from repro.config import GGridConfig
from repro.core.ggrid import GGridIndex
from repro.mobility.workload import make_workload
from repro.roadnet.datasets import load_dataset
from repro.server.metrics import ReplayReport, TimingModel
from repro.server.server import QueryServer


@dataclass
class ChaosReport:
    """Outcome of one chaos-vs-baseline replay pair."""

    plan: FaultPlan
    baseline: ReplayReport
    chaos: ReplayReport
    #: faults the injector actually fired, by kind (empty dict when the
    #: plan injects no device faults)
    faults_injected: dict[str, int] = field(default_factory=dict)
    #: query indices whose chaos answer differed from the baseline
    mismatches: list[int] = field(default_factory=list)
    breaker_trips: int = 0

    @property
    def total_faults(self) -> int:
        return sum(self.faults_injected.values())

    @property
    def answers_match(self) -> bool:
        return not self.mismatches

    def as_dict(self) -> dict[str, object]:
        """The deterministic summary (no wall-clock-derived fields) —
        byte-identical across runs with the same seeds."""
        return {
            "profile_seed": self.plan.seed,
            "faults_injected": dict(sorted(self.faults_injected.items())),
            "total_faults": self.total_faults,
            "answers_match": self.answers_match,
            "mismatches": list(self.mismatches),
            "breaker_trips": self.breaker_trips,
            "n_queries": self.chaos.n_queries,
            "n_updates": self.chaos.n_updates,
            "retried_queries": self.chaos.retried_queries,
            "total_retries": self.chaos.total_retries,
            "degraded_queries": self.chaos.degraded_queries,
            "degraded_by_rung": self.chaos.degraded_by_rung(),
            "query_backoff_s": self.chaos.query_backoff_s,
            "updates_backpressured": self.chaos.updates_backpressured,
            "update_backoff_s": self.chaos.update_backoff_s,
        }


def run_chaos_replay(
    plan: FaultPlan,
    dataset: str = "NY",
    *,
    k: int = 8,
    num_objects: int = 60,
    duration: float = 20.0,
    num_queries: int = 10,
    update_frequency: float = 1.0,
    workload_seed: int = 7,
    config: GGridConfig | None = None,
    timing: TimingModel | None = None,
) -> ChaosReport:
    """Replay one workload fault-free and under ``plan``; compare.

    Both replays use *fresh* indexes (never the benchmark harness's
    cached ones) so the baseline is untouched by the plan and the chaos
    index picks the plan up at construction.

    Returns:
        A :class:`ChaosReport`; callers assert on
        :attr:`ChaosReport.answers_match` and the fault/degradation
        counters.
    """
    graph = load_dataset(dataset)
    workload = make_workload(
        graph,
        num_objects=num_objects,
        duration=duration,
        num_queries=num_queries,
        k=k,
        update_frequency=update_frequency,
        seed=workload_seed,
    )

    baseline_index = GGridIndex(graph, config)
    baseline_report, baseline_answers = QueryServer(
        baseline_index, timing
    ).replay(workload, collect_answers=True)

    with chaos_context(plan):
        chaos_index = GGridIndex(graph, config)
        chaos_report, chaos_answers = QueryServer(chaos_index, timing).replay(
            workload, collect_answers=True
        )
        injector = chaos_index.fault_injector
        faults = dict(injector.counts) if injector is not None else {}
        trips = chaos_index.breaker.trips

    mismatches = [
        i
        for i, (base, got) in enumerate(zip(baseline_answers, chaos_answers))
        if [round(d, 9) for d in base.distances()]
        != [round(d, 9) for d in got.distances()]
    ]
    return ChaosReport(
        plan=plan,
        baseline=baseline_report,
        chaos=chaos_report,
        faults_injected=faults,
        mismatches=mismatches,
        breaker_trips=trips,
    )
