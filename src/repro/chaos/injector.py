"""The stateful side of chaos: deciding *which* operations fail.

A :class:`FaultInjector` executes a :class:`~repro.chaos.plan.FaultPlan`
against one :class:`~repro.simgpu.device.SimGpu`.  It installs itself via
the device's hook points (``install_fault_hook``) and from then on every
kernel launch, host<->device transfer and device allocation rolls the
injector's private, plan-seeded RNG; a losing roll raises the matching
:class:`~repro.errors.GpuError` subclass with ``"injected"`` in the
message.  The RNG is consumed in device-operation order, which is
deterministic for a serial replay — so the same plan over the same
workload fails the exact same operations every run.

The injector also counts what it did (by kind) and mirrors the counts
into the process-wide observability bundle as
``repro_faults_injected_total{kind=...}`` when one is configured.
"""

from __future__ import annotations

import random

from repro.chaos.plan import KIND_KERNEL, KIND_OOM, KIND_TRANSFER, FaultPlan
from repro.errors import ConfigError, DeviceMemoryError, KernelError, TransferError
from repro.obs.hub import default_observability
from repro.simgpu.device import SimGpu

#: Mixed into the plan seed so injector rolls never correlate with the
#: index's own seeded RNG streams (write races, partitioning).
_SEED_SALT = 0xC4A05


class FaultInjector:
    """Seeded fault source for one simulated device.

    Use as a context manager (or call :meth:`install`/:meth:`uninstall`)
    around the workload that should suffer::

        with FaultInjector(plan, index.gpu):
            server.replay(trace)
    """

    def __init__(self, plan: FaultPlan, device: SimGpu) -> None:
        self.plan = plan
        self.device = device
        self._rng = random.Random(plan.seed ^ _SEED_SALT)
        self.counts: dict[str, int] = {
            KIND_KERNEL: 0,
            KIND_TRANSFER: 0,
            KIND_OOM: 0,
        }
        self.rolls = 0
        self.installed = False

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def install(self) -> None:
        """Attach to the device's fault hooks.

        Raises:
            ConfigError: another hook is already installed.
        """
        if self.installed:
            raise ConfigError("fault injector already installed")
        self.device.install_fault_hook(self)
        self.installed = True

    def uninstall(self) -> None:
        """Detach from the device (idempotent)."""
        if self.installed:
            self.device.uninstall_fault_hook()
            self.installed = False

    def __enter__(self) -> "FaultInjector":
        self.install()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.uninstall()

    # ------------------------------------------------------------------
    # hook points (called by SimGpu / DeviceMemory)
    # ------------------------------------------------------------------
    def on_kernel(self, name: str, n_threads: int) -> None:
        if self.plan.kernel_filter and name not in self.plan.kernel_filter:
            return
        if self._roll(self.plan.kernel_fault_rate):
            self._record(KIND_KERNEL)
            raise KernelError(
                f"injected fault: kernel {name!r} ({n_threads} threads) "
                f"failed to launch"
            )

    def on_transfer(self, direction: str, name: str, nbytes: int) -> None:
        if self._roll(self.plan.transfer_fault_rate):
            self._record(KIND_TRANSFER)
            raise TransferError(
                f"injected fault: {direction} transfer of {name!r} "
                f"({nbytes} bytes) failed"
            )

    def on_alloc(self, name: str, nbytes: int) -> None:
        if self._roll(self.plan.oom_rate):
            self._record(KIND_OOM)
            raise DeviceMemoryError(
                f"injected fault: device out of memory allocating "
                f"{name!r} ({nbytes} bytes)"
            )

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    @property
    def total_faults(self) -> int:
        return sum(self.counts.values())

    def _roll(self, rate: float) -> bool:
        if rate <= 0.0:
            return False
        if (
            self.plan.max_faults is not None
            and self.total_faults >= self.plan.max_faults
        ):
            return False
        self.rolls += 1
        return self._rng.random() < rate

    def _record(self, kind: str) -> None:
        self.counts[kind] += 1
        obs = default_observability()
        if obs is not None:
            obs.registry.counter(
                "repro_faults_injected_total",
                "Faults injected by the chaos harness, by kind.",
                labelnames=("kind",),
            ).labels(kind=kind).inc()
