"""Exception hierarchy for the G-Grid reproduction.

All library errors derive from :class:`ReproError` so callers can catch a
single base class.  Subclasses mirror the main subsystems: graph loading,
index construction, GPU simulation and query processing.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by this library."""


class GraphError(ReproError):
    """Raised for malformed road-network graphs (bad vertices/edges)."""


class GraphFormatError(GraphError):
    """Raised when parsing an external graph file (e.g. DIMACS) fails."""


class PartitionError(ReproError):
    """Raised when graph partitioning cannot satisfy its constraints."""


class IndexError_(ReproError):
    """Raised for G-Grid index construction or maintenance failures.

    Named with a trailing underscore to avoid shadowing the builtin
    :class:`IndexError`.
    """


class CapacityError(IndexError_):
    """Raised when a fixed-capacity array (cell/vertex/bucket) overflows."""


class CleaningLockError(IndexError_):
    """Raised when the message-list cleaning lock protocol is violated.

    Locking a list that is already frozen for an in-flight cleaning pass
    would silently advance ``p_l`` past messages the first cleaner never
    saw, and a later ``release_cleaned`` would destroy them — so nested
    locks fail loudly instead.
    """


class PersistenceError(ReproError):
    """Raised for WAL / snapshot / recovery failures (``repro.persist``)."""


class UnknownObjectError(IndexError_):
    """Raised when an operation references an object id never ingested."""


class UnknownEdgeError(IndexError_):
    """Raised when a message references an edge absent from the network."""


class GpuError(ReproError):
    """Base class for GPU-simulator errors."""


class DeviceMemoryError(GpuError):
    """Raised when a simulated allocation exceeds device memory."""


class KernelError(GpuError):
    """Raised when a simulated kernel is launched with invalid geometry."""


class TransferError(GpuError):
    """Raised for invalid host<->device transfer requests."""


class QueryError(ReproError):
    """Raised for invalid kNN query parameters (k <= 0, bad location...)."""


class ConfigError(ReproError):
    """Raised when a configuration value is out of its legal range."""


class ClusterError(ReproError):
    """Raised for sharded-cluster failures: an invalid shard map, an
    operation routed to a shard the map does not know, or a failover
    that cannot complete (no replica and no recoverable WAL)."""


class SubscriptionError(ReproError):
    """Raised by the standing-query layer (``repro.subscribe``): a
    duplicate or unknown subscription id, a non-monotone tick, a backend
    that cannot serve batched queries, or a corrupt delta stream."""


class PlanError(ReproError):
    """Raised by the adaptive query planner (``repro.plan``): an unknown
    backend name, a planner attached to an incompatible index, or a
    cache configured with a non-positive time bucket."""


class ShedError(ReproError):
    """Raised when the serving front door rejects a query instead of
    answering it (``repro.serve``, DESIGN.md §14).

    Shedding is the *only* degradation the front door is allowed on the
    query path: a query is either answered exactly or refused loudly —
    never answered partially or wrong.  The rejection is first-class
    data: which tenant was refused, its priority class, and why —

    * ``"quota"`` — the tenant's token-bucket admission quota is empty;
    * ``"deadline"`` — the query's remaining deadline budget cannot
      cover the estimated queue wait plus service time (shed *before*
      scatter-gather fan-out), or the budget expired while queued;
    * ``"brownout"`` — overload-driven class shedding: the shed-order
      state machine is rejecting this priority class outright.

    Attributes:
        tenant: the refused tenant's name.
        tenant_class: its priority class (``"paid"`` / ``"free"``).
        reason: one of ``repro.serve.shedding.SHED_REASONS``.
    """

    def __init__(self, tenant: str, tenant_class: str, reason: str) -> None:
        super().__init__(
            f"query shed for tenant {tenant!r} "
            f"(class={tenant_class}, reason={reason})"
        )
        self.tenant = tenant
        self.tenant_class = tenant_class
        self.reason = reason
