"""The cluster front door: shard routing, scatter-gather kNN, failover.

:class:`ShardRouter` puts N single-shard
:class:`~repro.server.server.QueryServer` instances behind one
update/query/replay API with the same shapes as a lone server:

* **Updates** route to the shard owning the message's cell
  (:class:`~repro.cluster.shardmap.ShardMap`); an object crossing a
  shard boundary is migrated — removed from its old owner (WAL-logged)
  and ingested into the new one.
* **Queries** scatter-gather: the home shard (the query location's
  cell) answers first, then the remaining shards are probed in
  ascending order of their
  :class:`~repro.cluster.shardmap.CellDistanceBound` lower bound, and
  probing stops as soon as the next bound strictly exceeds the current
  k-th distance.  The bound is a true lower bound and ties
  (``bound == d_k``) are still probed — an equidistant object with a
  smaller id would enter the canonical ``(distance, id)`` order — so the
  merged answer is byte-identical to a single unsharded server's.
* **Durability and failover**: every shard runs its own
  :class:`~repro.persist.manager.DurabilityManager` WAL and (optionally)
  a :class:`~repro.cluster.replica.Replica` fed by record shipping.  A
  scheduled :class:`~repro.cluster.replica.ShardFailurePlan` failure
  promotes the replica (catching up from the WAL tail) or, with no
  replica, rebuilds the shard by full WAL replay; either way the shard
  is serving again before the next event executes.
* **Rebalancing**: with a :class:`~repro.cluster.rebalance.RebalancePolicy`
  attached, a shard drawing more than ``hot_share`` of recent traffic is
  split at its weighted-median cell and the peeled range's objects are
  migrated over.

Cost accounting flows into the shared
:class:`~repro.server.metrics.ReplayReport`: each logical query becomes
*one* :class:`~repro.server.metrics.QueryRecord` whose fields sum the
per-shard probes and whose ``fanout``/``shards`` name the routing
outcome, so a fanout-1 replay is counter-identical to an unsharded
server over the same workload.
"""

from __future__ import annotations

import shutil
import tempfile
from dataclasses import dataclass
from pathlib import Path

from repro.cluster.rebalance import LoadTracker, RebalancePolicy, choose_split
from repro.cluster.replica import Replica, ShardFailurePlan
from repro.cluster.shardmap import CellDistanceBound, ShardMap
from repro.config import GGridConfig
from repro.core.ggrid import GGridIndex
from repro.core.graph_grid import GraphGrid
from repro.core.knn import KnnAnswer, KnnResultEntry
from repro.core.messages import Message
from repro.core.ordering import rank_results
from repro.core.range_query import RangeAnswer
from repro.errors import ClusterError, QueryError
from repro.mobility.workload import Query, Workload
from repro.obs.hub import Observability, default_observability
from repro.obs.metrics import RateLimitedWarner, linear_buckets
from repro.obs.slo import SloTracker, classify_fanout
from repro.persist.manager import DurabilityManager
from repro.persist.recovery import WAL_SUBDIR
from repro.persist.wal import OP_INGEST, OP_REMOVE, read_wal
from repro.resilience import RUNGS
from repro.roadnet.graph import RoadNetwork
from repro.roadnet.location import NetworkLocation
from repro.server.batching import BatchPolicy, default_batch_policy
from repro.server.metrics import QueryRecord, ReplayReport, TimingModel
from repro.server.server import QueryServer

_INF = float("inf")

FAILOVER_REPLICA = "replica"
FAILOVER_WAL = "wal"


class ClusterInstruments:
    """Metric handles the router's hot paths publish to, resolved once.

    The ``repro_shard_*`` names are part of the public metrics contract
    (README.md §Observability) alongside the server's ``repro_*``
    families.
    """

    def __init__(self, obs: Observability) -> None:
        registry = obs.registry
        self.queries = registry.counter(
            "repro_shard_queries_total",
            help="Query probes executed, per shard.",
            labelnames=("shard",),
        )
        self.updates = registry.counter(
            "repro_shard_updates_total",
            help="Location updates routed, per owning shard.",
            labelnames=("shard",),
        )
        self.fanout = registry.histogram(
            "repro_shard_fanout",
            help="Shards probed per logical kNN query.",
            buckets=linear_buckets(1.0, 1.0, 33),
        ).default()
        self.pruned = registry.counter(
            "repro_shard_pruned_total",
            help="Shard probes skipped by the cell-distance lower bound.",
        ).default()
        self.failovers = registry.counter(
            "repro_shard_failovers_total",
            help="Shard failovers, by promotion mode (replica|wal).",
            labelnames=("mode",),
        )
        self.rebalances = registry.counter(
            "repro_shard_rebalances_total",
            help="Hot-shard splits executed by the rebalance policy.",
        ).default()
        self.migrations = registry.counter(
            "repro_shard_migrations_total",
            help="Objects migrated across shard boundaries.",
        ).default()
        self.shards = registry.gauge(
            "repro_shards", help="Live shards in the cluster."
        ).default()
        #: the router is the SLO front door: it scores each *logical*
        #: (merged) query, while the shard-internal servers run with
        #: ``publish_slo=False`` so probe fragments are never counted
        self.slo = SloTracker(obs.slo_policy, registry)


@dataclass
class Shard:
    """One shard's serving stack: primary server, WAL, optional replica."""

    shard_id: int
    server: QueryServer
    manager: DurabilityManager
    directory: Path
    replica: Replica | None = None
    #: failovers this shard id has survived
    promotions: int = 0

    @property
    def index(self) -> GGridIndex:
        return self.server.index


class ShardRouter:
    """N query-server shards behind one update/query/replay front door."""

    def __init__(
        self,
        graph: RoadNetwork,
        config: GGridConfig | None = None,
        num_shards: int = 2,
        *,
        directory: str | Path | None = None,
        timing: TimingModel | None = None,
        obs: Observability | None = None,
        batch: BatchPolicy | None = None,
        replicas: bool = True,
        ship_every: int = 8,
        failure_plan: ShardFailurePlan | None = None,
        rebalance: RebalancePolicy | None = None,
        planner_factory: "object | None" = None,
    ) -> None:
        """Args:
            graph: the shared road network (replicated to every shard).
            config: G-Grid tunables; the grid is partitioned once and the
                immutable :class:`GraphGrid` shared by every shard and
                replica.
            num_shards: initial shard count (contiguous Z ranges).
            directory: durability root; each shard logs under
                ``<directory>/shard-NNN``.  ``None`` creates a private
                temporary directory removed by :meth:`close`.
            timing: the modelled-time parameters (shared by all shards).
            obs: observability bundle; defaults to the process-wide one.
            batch: epoch batching policy applied per home-shard group.
            replicas: keep a standby :class:`Replica` per shard.
            ship_every: replica apply interval, in shipped WAL records.
            failure_plan: scheduled shard failures applied at event time.
            rebalance: hot-shard split policy (``None`` = no splits).
            planner_factory: zero-arg callable returning a fresh
                :class:`~repro.plan.planner.QueryPlanner` per shard
                server (DESIGN.md §17).  Each shard plans its own
                backend from its own traffic; the scatter-gather
                pruning contract is unaffected because every backend
                answers exactly — the router's
                :class:`~repro.cluster.shardmap.CellDistanceBound`
                pruning reasons about the *answers*, not about which
                index produced them.  Failover and split shards get a
                fresh planner from the same factory.
        """
        if num_shards < 1:
            raise ClusterError(f"num_shards must be >= 1, got {num_shards}")
        self.graph = graph
        self.config = config or GGridConfig()
        self.timing = timing or TimingModel()
        self.obs = obs if obs is not None else default_observability()
        self.batch = batch if batch is not None else (
            default_batch_policy() or BatchPolicy()
        )
        self.grid = GraphGrid.build(graph, self.config)
        self.shard_map = ShardMap.balanced(self.grid.num_cells, num_shards)
        self.bound = CellDistanceBound(self.grid)
        self._own_directory = directory is None
        self.directory = (
            Path(tempfile.mkdtemp(prefix="repro-cluster-"))
            if directory is None
            else Path(directory)
        )
        self.replicas_enabled = replicas
        self.ship_every = ship_every
        self.failure_plan = failure_plan or ShardFailurePlan()
        self._pending_failures = sorted(
            self.failure_plan.failures, key=lambda f: (f[1], f[0])
        )
        self.rebalance = rebalance
        self.planner_factory = planner_factory
        self._load = LoadTracker()
        self._inst = ClusterInstruments(self.obs) if self.obs is not None else None
        #: rate-limited failover warning (1st occurrence, then every
        #: 100th, cumulative count in the message) — same contract as the
        #: server's fallback warning
        self._failover_warner = (
            RateLimitedWarner(self.obs.registry, "shard_router")
            if self.obs is not None
            else None
        )
        #: overload brownout (repro.serve): mirrored onto every shard
        #: index, including ones created later by failover or splits
        self._brownout = False
        self.shards: dict[int, Shard] = {
            sid: self._make_shard(sid) for sid in self.shard_map.shard_ids
        }
        #: which shard currently owns each object, and the object's last
        #: real location update (replayed on migration)
        self._owner: dict[int, int] = {}
        self._last_msg: dict[int, Message] = {}
        #: attached standing-query layer (repro.subscribe), tapped at the
        #: router level only — shard-internal servers stay untapped, and
        #: migrations are invisible (the logical location is unchanged)
        self.subscriptions = None
        if self._inst is not None:
            self._inst.shards.set(len(self.shards))

    @property
    def name(self) -> str:
        return f"G-Grid x{self.shard_map.num_shards}"

    @property
    def num_shards(self) -> int:
        return self.shard_map.num_shards

    def _make_shard(self, sid: int) -> Shard:
        directory = self.directory / f"shard-{sid:03d}"
        index = GGridIndex(self.graph, self.config, grid=self.grid)
        manager = DurabilityManager(directory, obs=self.obs)
        server = QueryServer(
            index,
            timing=self.timing,
            obs=self.obs,
            batch=self.batch,
            durability=manager,
            publish_slo=False,
            planner=self.planner_factory() if self.planner_factory else None,
        )
        index.brownout = self._brownout
        if server.planner is not None:
            server.planner.set_brownout(self._brownout)
        replica = (
            Replica(sid, self.graph, self.config, self.grid, self.ship_every)
            if self.replicas_enabled
            else None
        )
        return Shard(sid, server, manager, directory, replica)

    def set_brownout(self, active: bool) -> None:
        """Trip (or clear) brownout serving on every shard.

        In brownout the shard indexes skip the GPU rung and serve from
        the resilience ladder's vectorised-CPU rung (see
        :attr:`~repro.core.ggrid.GGridIndex.brownout`) — the serving
        front door's last shed-order stage before outright rejection.
        """
        self._brownout = active
        for shard in self.shards.values():
            shard.index.brownout = active
            if shard.server.planner is not None:
                shard.server.planner.set_brownout(active)

    def _scratch(self) -> ReplayReport:
        return ReplayReport(index_name=self.name, timing=self.timing)

    # ------------------------------------------------------------------
    # updates
    # ------------------------------------------------------------------
    def home_shard(self, location: NetworkLocation) -> int:
        """The shard owning the cell of ``location``'s edge."""
        return self.shard_map.shard_of_cell(
            self.grid.cell_of_edge(location.edge_id)
        )

    def update(self, message: Message, report: ReplayReport) -> None:
        """Route one update to its owning shard, migrating if needed."""
        self._maybe_fail(message.t)
        cell = self.grid.cell_of_edge(message.edge)
        sid = self.shard_map.shard_of_cell(cell)
        old_sid = self._owner.get(message.obj)
        if old_sid is not None and old_sid != sid:
            self._remove_from(old_sid, message.obj, message.t, report)
            report.shard_migrations += 1
            if self._inst is not None:
                self._inst.migrations.inc()
        shard = self.shards[sid]
        shard.server.update(message, report)
        if shard.replica is not None:
            shard.replica.ship_ingest(shard.manager.wal.last_lsn, message)
        report.shard_updates[sid] = report.shard_updates.get(sid, 0) + 1
        self._owner[message.obj] = sid
        self._last_msg[message.obj] = message
        if self.subscriptions is not None:
            self.subscriptions.observe(message)
        if self._inst is not None:
            self._inst.updates.labels(shard=str(sid)).inc()
        if self.rebalance is not None:
            self._load.record(sid, cell)
            self._load.since_check += 1
            if self._load.since_check >= self.rebalance.check_every:
                self._load.since_check = 0
                choice = choose_split(self._load, self.shard_map, self.rebalance)
                if choice is not None:
                    self._split_shard(choice[0], choice[1], message.t, report)

    def _remove_from(
        self, sid: int, obj: int, t: float, report: ReplayReport
    ) -> None:
        """WAL-logged removal from a shard, touches charged to updates."""
        shard = self.shards[sid]
        touches_before = shard.index.update_touches
        shard.server.remove_object(obj, t)
        if shard.replica is not None:
            shard.replica.ship_remove(shard.manager.wal.last_lsn, obj, t)
        report.update_touches += shard.index.update_touches - touches_before

    def remove_object(self, obj: int, t: float) -> None:
        """Deregister an object from its owning shard (WAL-logged)."""
        sid = self._owner.get(obj)
        if sid is None:
            raise ClusterError(f"unknown object {obj}: never routed here")
        self._remove_from(sid, obj, t, self._scratch())
        del self._owner[obj]
        self._last_msg.pop(obj, None)
        if self.subscriptions is not None:
            self.subscriptions.observe_remove(obj, t)

    def attach_subscriptions(self, manager: object) -> None:
        """Wire a :class:`~repro.subscribe.manager.SubscriptionManager`
        into the routed update path (called by its constructor)."""
        self.subscriptions = manager

    def tick(self, t_now: float | None = None, force_all: bool = False):
        """Refresh the attached subscriptions at ``t_now`` (defaults to
        the newest timestamp any shard has ingested)."""
        if self.subscriptions is None:
            raise ClusterError(
                "no subscription manager attached; construct a "
                "SubscriptionManager over this router first"
            )
        if t_now is None:
            t_now = max(
                (shard.index.latest_time for shard in self.shards.values()),
                default=0.0,
            )
        return self.subscriptions.tick(t_now, force_all=force_all)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def query(
        self, q: Query, report: ReplayReport, trace_parent: str | None = None
    ) -> KnnAnswer:
        """Scatter-gather one kNN query; the merged answer and its single
        fanout-stamped :class:`QueryRecord` are byte-compatible with an
        unsharded server's.

        With tracing on, the whole scatter-gather is one trace tree: a
        ``router.knn`` root span, one ``shard.probe`` child per shard
        touched (its :class:`~repro.obs.tracing.TraceContext` is encoded
        and handed to the shard's server, which decodes it — the same
        propagation a remote shard would use), the ladder-rung spans the
        shards record beneath their probes, and a final ``merge`` span.
        ``trace_parent`` joins the tree to an upstream trace (the serving
        front door's request span), as in :meth:`QueryServer.query`.
        """
        self._maybe_fail(q.t)
        cell = self.grid.cell_of_edge(q.location.edge_id)
        home_sid = self.shard_map.shard_of_cell(cell)
        if self.rebalance is not None:
            self._load.record(home_sid, cell)
        tracer = self.obs.tracer if self.obs is not None else None
        if tracer is None:
            scratch = self._scratch()
            answer = self.shards[home_sid].server.query(q, scratch)
            return self._finish_query(
                q, home_sid, answer, scratch.query_records, report
            )
        with tracer.activate(), tracer.span(
            "router.knn",
            {"k": q.k, "t": q.t, "home": home_sid},
            parent=trace_parent,
        ) as root:
            scratch = self._scratch()
            answer = self._probe(home_sid, q, scratch, role="home")
            merged = self._finish_query(
                q, home_sid, answer, scratch.query_records, report
            )
            root.set_attr("fanout", report.query_records[-1].fanout)
        return merged

    def _probe(
        self, sid: int, q: Query, scratch: ReplayReport, role: str
    ) -> KnnAnswer:
        """One traced shard probe: the probe span's context crosses the
        router→shard boundary as an encoded header."""
        tracer = self.obs.tracer if self.obs is not None else None
        if tracer is None:
            return self.shards[sid].server.query(q, scratch)
        with tracer.span("shard.probe", {"shard": sid, "role": role}) as sp:
            return self.shards[sid].server.query(
                q, scratch, trace_parent=sp.context.encode()
            )

    def query_batch(
        self,
        queries: list[Query],
        report: ReplayReport,
        trace_parent: str | None = None,
    ) -> list[KnnAnswer]:
        """Execute one epoch: batched per home-shard group, then per-query
        fan-out at the epoch timestamp.  Answers align with ``queries``.

        A traced epoch is one ``router.epoch`` trace tree: ``shard.batch``
        spans for the per-home-shard batched probes (context-propagated
        like single probes), then one ``router.fanout`` span per query
        for its cross-shard scatter and merge.  ``trace_parent`` joins
        the epoch to an upstream trace (the front door's epoch span).
        """
        if not queries:
            return []
        t_epoch = max(q.t for q in queries)
        self._maybe_fail(t_epoch)
        tracer = self.obs.tracer if self.obs is not None else None
        if tracer is None:
            return self._run_epoch(queries, t_epoch, report)
        with tracer.activate(), tracer.span(
            "router.epoch",
            {"queries": len(queries), "t": t_epoch},
            parent=trace_parent,
        ):
            return self._run_epoch(queries, t_epoch, report)

    def _run_epoch(
        self, queries: list[Query], t_epoch: float, report: ReplayReport
    ) -> list[KnnAnswer]:
        tracer = self.obs.tracer if self.obs is not None else None
        groups: dict[int, list[tuple[int, Query]]] = {}
        for i, q in enumerate(queries):
            cell = self.grid.cell_of_edge(q.location.edge_id)
            sid = self.shard_map.shard_of_cell(cell)
            if self.rebalance is not None:
                self._load.record(sid, cell)
            groups.setdefault(sid, []).append((i, q))
        out: list[KnnAnswer | None] = [None] * len(queries)
        for sid, members in groups.items():
            scratch = self._scratch()
            group_queries = [q for _, q in members]
            if tracer is not None:
                with tracer.span(
                    "shard.batch", {"shard": sid, "queries": len(members)}
                ) as sp:
                    answers = self.shards[sid].server.query_batch(
                        group_queries, scratch, trace_parent=sp.context.encode()
                    )
            else:
                answers = self.shards[sid].server.query_batch(
                    group_queries, scratch
                )
            report.n_batches += scratch.n_batches
            report.batch_cells_deduped += scratch.batch_cells_deduped
            for (i, q), answer, record in zip(
                members, answers, scratch.query_records
            ):
                # remote probes run at the epoch timestamp, matching the
                # index state the batched home probe observed
                probe = Query(t_epoch, q.location, q.k)
                out[i] = self._finish_query(probe, sid, answer, [record], report)
        return out  # type: ignore[return-value]

    def _finish_query(
        self,
        q: Query,
        home_sid: int,
        home_answer: KnnAnswer,
        home_records: list[QueryRecord],
        report: ReplayReport,
    ) -> KnnAnswer:
        """Fan out past the home shard, merge, and record one query."""
        pairs = [(e.obj, e.distance) for e in home_answer.entries]
        probed = [home_sid]
        records = list(home_records)
        answers = [home_answer]
        pruned = 0
        tracer = self.obs.tracer if self.obs is not None else None
        trace_id: str | None = None

        def fan_out() -> None:
            nonlocal pruned
            candidates = sorted(
                (
                    self.bound.lower_bound_to_cells(
                        q.location, self.shard_map.cells_of(sid)
                    ),
                    sid,
                )
                for sid in self.shard_map.shard_ids
                if sid != home_sid
            )
            for pos, (lb, sid) in enumerate(candidates):
                if lb == _INF:
                    # cell-graph-unreachable => network-unreachable: the
                    # shard cannot hold a finite-distance answer
                    pruned += 1
                    continue
                ranked = rank_results(pairs, q.k)
                if len(ranked) >= q.k and lb > ranked[-1][1]:
                    # candidates are sorted by bound: everything from
                    # here on is prunable too (ties still probe — an
                    # equidistant lower id would enter the result)
                    pruned += len(candidates) - pos
                    break
                scratch = self._scratch()
                answer = self._probe(sid, q, scratch, role="fanout")
                pairs.extend((e.obj, e.distance) for e in answer.entries)
                probed.append(sid)
                records.extend(scratch.query_records)
                answers.append(answer)

        if tracer is not None:
            with tracer.activate(), tracer.span(
                "router.fanout", {"home": home_sid, "k": q.k}
            ) as sp:
                fan_out()
                with tracer.span("merge", {"results": q.k}):
                    ranked = rank_results(pairs, q.k)
                    merged = self._merge_answers(answers, ranked)
                sp.set_attr("fanout", len(probed))
                sp.set_attr("pruned", pruned)
            trace_id = sp.trace_id_hex
        else:
            fan_out()
            merged = self._merge_answers(answers, rank_results(pairs, q.k))

        record = self._merge_records(
            records, probed, t=q.t, trace_id=trace_id
        )
        report.query_records.append(record)
        report.n_queries += 1
        if self._inst is not None:
            self._inst.fanout.observe(len(probed), exemplar=trace_id)
            if pruned:
                self._inst.pruned.inc(pruned)
            for sid in probed:
                self._inst.queries.labels(shard=str(sid)).inc()
            # the logical (merged) query is what the front door scores
            # against its SLO and retains in the slow-query log — the
            # per-probe fragments were recorded by the shard servers
            # with SLO scoring off
            self._inst.slo.record(
                classify_fanout(record.fanout),
                record.modeled_s,
                q.t,
                trace_id=trace_id,
            )
            self.obs.slow_queries.record(
                record.modeled_s,
                wall_s=record.wall_s,
                phases=record.phase_s,
                fanout=record.fanout,
                shards=list(record.shards),
                trace_id=trace_id,
                used_fallback=record.used_fallback,
            )
        return merged

    @staticmethod
    def _merge_records(
        records: list[QueryRecord],
        probed: list[int],
        t: float = 0.0,
        trace_id: str | None = None,
    ) -> QueryRecord:
        """Collapse per-probe records into one fanout-stamped record."""
        phases: dict[str, float] = {}
        for r in records:
            for phase, seconds in r.phase_s.items():
                phases[phase] = phases.get(phase, 0.0) + seconds
        worst = max(
            (r.degraded_rung for r in records),
            key=lambda rung: 0 if rung is None else RUNGS.index(rung),
        )
        return QueryRecord(
            modeled_s=sum(r.modeled_s for r in records),
            wall_s=sum(r.wall_s for r in records),
            gpu_s=sum(r.gpu_s for r in records),
            transfer_bytes=sum(r.transfer_bytes for r in records),
            used_fallback=any(r.used_fallback for r in records),
            phase_s=phases,
            degraded_rung=worst,
            retries=sum(r.retries for r in records),
            backoff_s=sum(r.backoff_s for r in records),
            fanout=len(probed),
            shards=tuple(probed),
            t=t,
            trace_id=trace_id,
        )

    @staticmethod
    def _merge_answers(
        answers: list[KnnAnswer], ranked: list[tuple[int, float]]
    ) -> KnnAnswer:
        cpu: dict[str, float] = {}
        gpu: dict[str, float] = {}
        for a in answers:
            for phase, seconds in a.cpu_seconds.items():
                cpu[phase] = cpu.get(phase, 0.0) + seconds
            for phase, seconds in a.gpu_phase_s.items():
                gpu[phase] = gpu.get(phase, 0.0) + seconds
        worst = max(
            (a.degraded_rung for a in answers),
            key=lambda rung: 0 if rung is None else RUNGS.index(rung),
        )
        return KnnAnswer(
            entries=[KnnResultEntry(obj, d) for obj, d in ranked],
            cells_cleaned=sum(a.cells_cleaned for a in answers),
            candidates=sum(a.candidates for a in answers),
            unresolved=sum(a.unresolved for a in answers),
            refine_settled=sum(a.refine_settled for a in answers),
            used_fallback=any(a.used_fallback for a in answers),
            cpu_seconds=cpu,
            gpu_phase_s=gpu,
            degraded_rung=worst,
            retries=sum(a.retries for a in answers),
            backoff_s=sum(a.backoff_s for a in answers),
        )

    def range_query(
        self, location: NetworkLocation, radius: float, t_now: float
    ) -> RangeAnswer:
        """Scatter-gather range query: probe every shard whose bound is
        within ``radius``, merge in canonical ``(distance, id)`` order."""
        self._maybe_fail(t_now)
        home_sid = self.home_shard(location)
        pairs: list[tuple[int, float]] = []
        cells_cleaned = rounds = 0
        for sid in self.shard_map.shard_ids:
            if sid != home_sid:
                lb = self.bound.lower_bound_to_cells(
                    location, self.shard_map.cells_of(sid)
                )
                if lb > radius:
                    if self._inst is not None:
                        self._inst.pruned.inc()
                    continue
            answer = self.shards[sid].index.range_query(
                location, radius, t_now=t_now
            )
            pairs.extend((e.obj, e.distance) for e in answer.entries)
            cells_cleaned += answer.cells_cleaned
            rounds = max(rounds, answer.rounds)
        return RangeAnswer(
            entries=[KnnResultEntry(obj, d) for obj, d in rank_results(pairs)],
            cells_cleaned=cells_cleaned,
            rounds=rounds,
        )

    # ------------------------------------------------------------------
    # failover
    # ------------------------------------------------------------------
    def _maybe_fail(self, t: float) -> None:
        while self._pending_failures and self._pending_failures[0][1] <= t:
            sid, _ = self._pending_failures.pop(0)
            self.fail_shard(sid)

    def fail_shard(self, sid: int) -> str:
        """Kill a shard's primary and bring its successor up, now.

        The failover ladder: promote the standby replica (cheap — only
        the WAL tail past its applied LSN replays) or, with no replica,
        rebuild from a full WAL replay.  Either way the shard resumes
        the same log so it is durable again from its first new update;
        the promoted primary serves without a standby.

        Returns:
            The promotion mode, ``"replica"`` or ``"wal"``.
        """
        shard = self.shards.get(sid)
        if shard is None:
            raise ClusterError(f"unknown shard id {sid}")
        tracer = self.obs.tracer if self.obs is not None else None

        def promote() -> tuple[GGridIndex, int, str]:
            # the primary is dead: its in-memory index is gone and its
            # WAL handle with it
            shard.manager.close()
            wal_dir = shard.directory / WAL_SUBDIR
            if shard.replica is not None:
                index, caught_up = shard.replica.promote(wal_dir)
                return index, caught_up, FAILOVER_REPLICA
            index = GGridIndex(self.graph, self.config, grid=self.grid)
            records = read_wal(wal_dir).records
            for record in records:
                if record.op == OP_INGEST:
                    index.ingest(record.to_message())
                elif record.op == OP_REMOVE:
                    index.remove_object(record.obj, record.t)
            return index, len(records), FAILOVER_WAL

        if tracer is not None:
            with tracer.activate(), tracer.span("failover", {"shard": sid}) as sp:
                index, caught_up, mode = promote()
                sp.set_attr("mode", mode)
                sp.set_attr("caught_up", caught_up)
        else:
            index, caught_up, mode = promote()
        index.brownout = self._brownout
        manager = DurabilityManager(shard.directory, obs=self.obs)
        server = QueryServer(
            index,
            timing=self.timing,
            obs=self.obs,
            batch=self.batch,
            durability=manager,
            publish_slo=False,
            # a fresh planner: its TEN foil bootstraps from the promoted
            # index's object table inside attach()
            planner=self.planner_factory() if self.planner_factory else None,
        )
        if server.planner is not None:
            server.planner.set_brownout(self._brownout)
        self.shards[sid] = Shard(
            sid,
            server,
            manager,
            shard.directory,
            replica=None,
            promotions=shard.promotions + 1,
        )
        if self._inst is not None:
            self._inst.failovers.labels(mode=mode).inc()
        if self.obs is not None and self.obs.flight is not None:
            # snapshot the queries that led up to the failover
            self.obs.flight.trigger(
                "failover", detail=f"shard={sid} mode={mode}"
            )
        if self._failover_warner is not None:
            self._failover_warner.record(
                "shards failed over to a promoted standby",
                detail=f"latest: shard={sid} mode={mode} "
                f"caught_up={caught_up} records",
            )
        return mode

    # ------------------------------------------------------------------
    # rebalancing
    # ------------------------------------------------------------------
    def _split_shard(
        self, sid: int, at_cell: int, t: float, report: ReplayReport
    ) -> int:
        """Cut a hot shard's range and migrate the peeled objects."""
        new_sid = self.shard_map.split(sid, at_cell)
        self.shards[new_sid] = self._make_shard(new_sid)
        moved = [
            obj
            for obj, owner in self._owner.items()
            if owner == sid
            and self.shard_map.shard_of_cell(
                self.grid.cell_of_edge(self._last_msg[obj].edge)
            )
            == new_sid
        ]
        for obj in sorted(moved):
            self._migrate(obj, sid, new_sid, t, report)
        self._load.clear()
        if self._inst is not None:
            self._inst.rebalances.inc()
            self._inst.shards.set(len(self.shards))
        return new_sid

    def _migrate(
        self, obj: int, old_sid: int, new_sid: int, t: float, report: ReplayReport
    ) -> None:
        """Move one object: durable remove + re-ingest of its last update.

        The costs ride the report's update fields but ``n_updates`` stays
        untouched — a migration is cluster overhead, not workload."""
        self._remove_from(old_sid, obj, t, report)
        new = self.shards[new_sid]
        scratch = self._scratch()
        new.server.update(self._last_msg[obj], scratch)
        if new.replica is not None:
            new.replica.ship_ingest(new.manager.wal.last_lsn, self._last_msg[obj])
        report.update_wall_s += scratch.update_wall_s
        report.update_touches += scratch.update_touches
        report.update_gpu_s += scratch.update_gpu_s
        report.updates_backpressured += scratch.updates_backpressured
        report.update_backoff_s += scratch.update_backoff_s
        report.shard_migrations += 1
        self._owner[obj] = new_sid
        if self._inst is not None:
            self._inst.migrations.inc()

    # ------------------------------------------------------------------
    # workload replay
    # ------------------------------------------------------------------
    def replay(
        self, workload: Workload, collect_answers: bool = False
    ) -> tuple[ReplayReport, list[KnnAnswer]]:
        """Replay a workload through the cluster (same contract as
        :meth:`QueryServer.replay`: initial load counts as updates,
        updates flush pending epochs, answers align with query order)."""
        report = ReplayReport(index_name=self.name, timing=self.timing)
        answers: list[KnnAnswer] = []
        batching = self.batch.enabled
        pending: list[Query] = []

        def flush() -> None:
            if pending:
                got = self.query_batch(pending, report)
                if collect_answers:
                    answers.extend(got)
                pending.clear()

        for obj, loc in workload.initial.items():
            self.update(Message(obj, loc.edge_id, loc.offset, 0.0), report)
        for kind, event in workload.events():
            if kind == "update":
                if not isinstance(event, Message):
                    raise QueryError(
                        f"workload produced an update event that is not a "
                        f"Message: {type(event).__name__}"
                    )
                flush()  # updates close the current epoch
                self.update(event, report)
            else:
                if not isinstance(event, Query):
                    raise QueryError(
                        f"workload produced a query event that is not a "
                        f"Query: {type(event).__name__}"
                    )
                if batching:
                    pending.append(event)
                    if len(pending) >= self.batch.batch_size:
                        flush()
                else:
                    answer = self.query(event, report)
                    if collect_answers:
                        answers.append(answer)
        flush()
        return report, answers

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def num_objects(self) -> int:
        return sum(shard.index.num_objects for shard in self.shards.values())

    def close(self) -> None:
        """Close every shard's WAL; remove a router-owned temp directory."""
        for shard in self.shards.values():
            shard.manager.close()
        if self._own_directory:
            shutil.rmtree(self.directory, ignore_errors=True)

    def __enter__(self) -> "ShardRouter":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()
