"""Hot-shard detection and split-point selection.

The router tracks per-shard and per-cell operation counts in a
:class:`LoadTracker`; every ``check_every`` updates it asks
:func:`choose_split` whether one shard's share of the window's traffic
exceeds ``hot_share``.  If so, the hot shard's Z range is cut at the
weighted median cell — the smallest prefix of its cells carrying at
least half its load — so both halves inherit comparable traffic, and the
router peels the tail half onto a fresh shard
(:meth:`~repro.cluster.shardmap.ShardMap.split`).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cluster.shardmap import ShardMap
from repro.errors import ClusterError


@dataclass(frozen=True)
class RebalancePolicy:
    """When and how aggressively the router splits hot shards.

    Attributes:
        hot_share: a shard whose share of the tracked window's operations
            exceeds this (strictly) is split.
        min_ops: do nothing until the window has at least this many
            operations (protects against splitting on startup noise).
        check_every: updates between policy evaluations.
        max_shards: hard cap on cluster size; no splits past it.
    """

    hot_share: float = 0.5
    min_ops: int = 64
    check_every: int = 32
    max_shards: int = 16

    def __post_init__(self) -> None:
        if not 0.0 < self.hot_share < 1.0:
            raise ClusterError(
                f"hot_share must be in (0, 1), got {self.hot_share}"
            )
        if self.min_ops < 1:
            raise ClusterError(f"min_ops must be >= 1, got {self.min_ops}")
        if self.check_every < 1:
            raise ClusterError(
                f"check_every must be >= 1, got {self.check_every}"
            )
        if self.max_shards < 1:
            raise ClusterError(
                f"max_shards must be >= 1, got {self.max_shards}"
            )


class LoadTracker:
    """Sliding-window operation counts per shard and per cell.

    The window resets after every split so post-split decisions reflect
    the new layout, not traffic the split already absorbed.
    """

    def __init__(self) -> None:
        self.ops_by_shard: dict[int, int] = {}
        self.ops_by_cell: dict[int, int] = {}
        self.total = 0
        self.since_check = 0

    def record(self, shard_id: int, cell: int) -> None:
        self.ops_by_shard[shard_id] = self.ops_by_shard.get(shard_id, 0) + 1
        self.ops_by_cell[cell] = self.ops_by_cell.get(cell, 0) + 1
        self.total += 1

    def clear(self) -> None:
        self.ops_by_shard.clear()
        self.ops_by_cell.clear()
        self.total = 0
        self.since_check = 0


def choose_split(
    tracker: LoadTracker, shard_map: ShardMap, policy: RebalancePolicy
) -> tuple[int, int] | None:
    """The ``(shard_id, split_cell)`` to cut, or ``None`` to do nothing.

    A shard qualifies when its share of the window exceeds
    ``policy.hot_share``, it spans at least two cells (a single cell
    cannot be cut), and the cluster is below ``max_shards``.  The split
    cell is the weighted median of the shard's per-cell counts, clamped
    so both halves keep at least one cell.
    """
    if tracker.total < policy.min_ops:
        return None
    if shard_map.num_shards >= policy.max_shards:
        return None
    hot_sid = None
    hot_ops = 0
    for sid in shard_map.shard_ids:
        ops = tracker.ops_by_shard.get(sid, 0)
        if ops > hot_ops and len(shard_map.cells_of(sid)) >= 2:
            hot_sid, hot_ops = sid, ops
    if hot_sid is None or hot_ops <= policy.hot_share * tracker.total:
        return None
    cells = shard_map.cells_of(hot_sid)
    per_cell = [tracker.ops_by_cell.get(c, 0) for c in cells]
    shard_total = sum(per_cell)
    if shard_total == 0:
        return None
    split = cells[-1]
    acc = 0
    for cell, ops in zip(cells, per_cell):
        acc += ops
        if acc * 2 >= shard_total:
            split = cell + 1
            break
    split = min(max(split, cells[0] + 1), cells[-1])
    return hot_sid, split
