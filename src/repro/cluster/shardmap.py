"""Z-range shard map and the cell-distance pruning bound.

A cluster partitions the graph grid's Z-ordered cells (Section III-A)
into contiguous ranges, one per shard.  Contiguity matters twice: the
Z-curve keeps spatially close cells close in the array, so a contiguous
range is a compact region of the road network (good update locality for
moving objects), and a range splits into two contiguous ranges with one
cut, which is all :meth:`ShardMap.split` needs to peel load off a hot
shard without remapping anything else.

:class:`CellDistanceBound` supplies the scatter-gather pruning rule: a
sound lower bound on the network distance from a query location to any
object homed in a given cell range.  A shard whose bound cannot beat the
current k-th distance holds no answer and is never probed.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

from repro.core.graph_grid import GraphGrid
from repro.errors import ClusterError
from repro.roadnet.location import NetworkLocation

_INF = float("inf")


@dataclass(frozen=True, slots=True)
class ShardRange:
    """One shard's contiguous cell range ``[lo, hi]`` (inclusive)."""

    shard_id: int
    lo: int
    hi: int

    def __post_init__(self) -> None:
        if self.shard_id < 0:
            raise ClusterError(f"shard_id must be >= 0, got {self.shard_id}")
        if self.lo < 0 or self.hi < self.lo:
            raise ClusterError(
                f"invalid cell range [{self.lo}, {self.hi}] for shard "
                f"{self.shard_id}"
            )

    @property
    def num_cells(self) -> int:
        return self.hi - self.lo + 1


class ShardMap:
    """Assignment of every grid cell to exactly one shard.

    The ranges must tile ``[0, num_cells)`` with no gaps or overlaps and
    carry distinct shard ids; cell lookup is a single array read.

    Example:
        >>> m = ShardMap.balanced(16, 4)
        >>> [m.shard_of_cell(c) for c in (0, 5, 15)]
        [0, 1, 3]
        >>> m.split(0, at_cell=2)  # peel [2, 3] off shard 0 as shard 4
        4
        >>> m.shard_of_cell(3), m.num_shards
        (4, 5)
    """

    def __init__(self, num_cells: int, ranges: list[ShardRange]) -> None:
        if num_cells < 1:
            raise ClusterError(f"num_cells must be >= 1, got {num_cells}")
        if not ranges:
            raise ClusterError("a shard map needs at least one range")
        ordered = sorted(ranges, key=lambda r: r.lo)
        expected_lo = 0
        seen: set[int] = set()
        for r in ordered:
            if r.shard_id in seen:
                raise ClusterError(f"duplicate shard id {r.shard_id}")
            seen.add(r.shard_id)
            if r.lo != expected_lo:
                raise ClusterError(
                    f"ranges must tile the cells contiguously: expected a "
                    f"range starting at {expected_lo}, got [{r.lo}, {r.hi}]"
                )
            expected_lo = r.hi + 1
        if expected_lo != num_cells:
            raise ClusterError(
                f"ranges cover cells [0, {expected_lo}) but the grid has "
                f"{num_cells}"
            )
        self.num_cells = num_cells
        self.ranges = ordered
        self._shard_of_cell: list[int] = [0] * num_cells
        self._range_of_shard: dict[int, ShardRange] = {}
        for r in ordered:
            self._range_of_shard[r.shard_id] = r
            for cell in range(r.lo, r.hi + 1):
                self._shard_of_cell[cell] = r.shard_id

    @classmethod
    def balanced(cls, num_cells: int, num_shards: int) -> "ShardMap":
        """Contiguous Z ranges of near-equal cell counts, ids ``0..n-1``."""
        if num_shards < 1:
            raise ClusterError(f"num_shards must be >= 1, got {num_shards}")
        if num_shards > num_cells:
            raise ClusterError(
                f"cannot spread {num_cells} cells over {num_shards} shards"
            )
        base, extra = divmod(num_cells, num_shards)
        ranges = []
        lo = 0
        for sid in range(num_shards):
            size = base + (1 if sid < extra else 0)
            ranges.append(ShardRange(sid, lo, lo + size - 1))
            lo += size
        return cls(num_cells, ranges)

    # ------------------------------------------------------------------
    # lookups
    # ------------------------------------------------------------------
    @property
    def num_shards(self) -> int:
        return len(self.ranges)

    @property
    def shard_ids(self) -> list[int]:
        """Shard ids in cell-range order."""
        return [r.shard_id for r in self.ranges]

    def shard_of_cell(self, cell: int) -> int:
        if not 0 <= cell < self.num_cells:
            raise ClusterError(f"cell {cell} outside [0, {self.num_cells})")
        return self._shard_of_cell[cell]

    def cells_of(self, shard_id: int) -> range:
        r = self._range_of_shard.get(shard_id)
        if r is None:
            raise ClusterError(f"unknown shard id {shard_id}")
        return range(r.lo, r.hi + 1)

    # ------------------------------------------------------------------
    # rebalancing
    # ------------------------------------------------------------------
    def split(self, shard_id: int, at_cell: int) -> int:
        """Split ``shard_id``'s range at ``at_cell``, in place.

        The shard keeps ``[lo, at_cell - 1]``; a new shard (id =
        ``max(ids) + 1``, so existing assignments never move) takes
        ``[at_cell, hi]``.  Returns the new shard id.

        Raises:
            ClusterError: unknown shard, or a cut that would leave either
                side empty.
        """
        r = self._range_of_shard.get(shard_id)
        if r is None:
            raise ClusterError(f"unknown shard id {shard_id}")
        if not r.lo < at_cell <= r.hi:
            raise ClusterError(
                f"split point {at_cell} must fall inside ({r.lo}, {r.hi}] "
                f"of shard {shard_id}"
            )
        new_id = max(self._range_of_shard) + 1
        kept = ShardRange(shard_id, r.lo, at_cell - 1)
        peeled = ShardRange(new_id, at_cell, r.hi)
        self.ranges[self.ranges.index(r)] = kept
        self.ranges.insert(self.ranges.index(kept) + 1, peeled)
        self._range_of_shard[shard_id] = kept
        self._range_of_shard[new_id] = peeled
        for cell in range(at_cell, r.hi + 1):
            self._shard_of_cell[cell] = new_id
        return new_id


class CellDistanceBound:
    """Sound lower bounds on network distance between grid cells.

    Built from the directed *cell graph*: ``cost(a -> b)`` is the minimum
    weight of any road edge whose source vertex lies in cell ``a`` and
    destination in cell ``b`` (0 within a cell).  Any network path from a
    vertex in cell ``a`` to a vertex in cell ``b`` pays at least the
    minimum crossing weight for every inter-cell hop and >= 0 inside each
    cell, so the cell-graph shortest distance never exceeds the true
    network distance.  Per-source-cell distances are one Dijkstra over at
    most ``4^psi`` nodes, cached.

    For a query at ``<e, d>`` the bound to a cell must take the *minimum*
    over the cells of both endpoints of ``e``:

    * the traveller finishes edge ``e`` first, so every reachable target
      goes through ``dest(e)`` and ``celldist(cell_of(dest(e)), .)`` is a
      valid bound for it — *except* an object ahead on the same edge
      (``d' >= d``), reached for ``d' - d`` without touching ``dest(e)``;
      that object is homed in ``cell_of(source(e))``, whose own term is 0.

    Dropping the source-cell term is unsound exactly in that same-edge
    case (all crossing edges heavy, the object one metre ahead); taking
    the min keeps both cases covered.
    """

    def __init__(self, grid: GraphGrid) -> None:
        self.grid = grid
        self.num_cells = grid.num_cells
        cell_of_vertex = grid.cell_of_vertex
        best: dict[tuple[int, int], float] = {}
        for e in grid.graph.edges():
            a = cell_of_vertex[e.source]
            b = cell_of_vertex[e.dest]
            if a == b:
                continue
            key = (a, b)
            w = best.get(key)
            if w is None or e.weight < w:
                best[key] = e.weight
        self._adj: list[list[tuple[int, float]]] = [
            [] for _ in range(self.num_cells)
        ]
        for (a, b), w in best.items():
            self._adj[a].append((b, w))
        self._cache: dict[int, list[float]] = {}

    def distances_from(self, cell: int) -> list[float]:
        """Cell-graph shortest distances from ``cell`` (cached Dijkstra)."""
        cached = self._cache.get(cell)
        if cached is not None:
            return cached
        if not 0 <= cell < self.num_cells:
            raise ClusterError(f"cell {cell} outside [0, {self.num_cells})")
        dist = [_INF] * self.num_cells
        dist[cell] = 0.0
        heap: list[tuple[float, int]] = [(0.0, cell)]
        while heap:
            d, u = heapq.heappop(heap)
            if d > dist[u]:
                continue
            for v, w in self._adj[u]:
                nd = d + w
                if nd < dist[v]:
                    dist[v] = nd
                    heapq.heappush(heap, (nd, v))
        self._cache[cell] = dist
        return dist

    def query_cells(self, location: NetworkLocation) -> tuple[int, int]:
        """The cells of the query edge's source and destination vertex."""
        e = self.grid.graph.edge(location.edge_id)
        cov = self.grid.cell_of_vertex
        return cov[e.source], cov[e.dest]

    def lower_bound_to_cells(
        self, location: NetworkLocation, cells: range
    ) -> float:
        """Lower bound from ``location`` to any object homed in ``cells``.

        ``inf`` means no object in those cells is reachable at all (every
        finite network distance admits a finite cell-graph path), so the
        caller can skip the shard outright.
        """
        src_cell, dst_cell = self.query_cells(location)
        ds = self.distances_from(src_cell)
        dd = self.distances_from(dst_cell)
        return min(min(ds[c], dd[c]) for c in cells)
