"""Sharded cluster serving: Z-range shard map, scatter-gather router,
replica failover and hot-shard rebalancing (DESIGN.md §12).

The single-machine stack — :class:`~repro.core.ggrid.GGridIndex` behind
a :class:`~repro.server.server.QueryServer` — scales to a cluster by
partitioning the graph grid's Z-ordered cells into contiguous ranges,
one :class:`ShardRouter`-managed shard per range.  Updates route to the
owning shard; kNN queries scatter-gather with a sound cell-distance
lower bound pruning shards that cannot beat the current k-th distance,
so sharded answers are byte-identical to a single server's.  Every
shard write-ahead-logs through its own
:class:`~repro.persist.manager.DurabilityManager`, feeds a standby
:class:`Replica` by record shipping, and fails over through replica
promotion (or full WAL replay) without losing an acknowledged update.

Example:
    >>> from repro.cluster import ShardMap
    >>> ShardMap.balanced(16, 4).shard_ids
    [0, 1, 2, 3]
"""

from repro.cluster.rebalance import LoadTracker, RebalancePolicy, choose_split
from repro.cluster.replica import Replica, ShardFailurePlan
from repro.cluster.router import (
    FAILOVER_REPLICA,
    FAILOVER_WAL,
    ClusterInstruments,
    Shard,
    ShardRouter,
)
from repro.cluster.shardmap import CellDistanceBound, ShardMap, ShardRange

__all__ = [
    "CellDistanceBound",
    "ClusterInstruments",
    "FAILOVER_REPLICA",
    "FAILOVER_WAL",
    "LoadTracker",
    "RebalancePolicy",
    "Replica",
    "Shard",
    "ShardFailurePlan",
    "ShardMap",
    "ShardRange",
    "ShardRouter",
    "choose_split",
]
