"""Per-shard standby replicas fed by WAL record shipping.

Each shard's :class:`~repro.server.server.QueryServer` WAL-logs every
update before applying it (DESIGN.md §11).  The router ships each logged
record — its LSN and operation — to the shard's :class:`Replica`, which
buffers a small window and applies it to a standby index every
``ship_every`` records, so the standby trails the primary by a bounded
lag.  On failover :meth:`Replica.promote` discards the in-flight buffer
(shipments are not acknowledged durably; the log is the truth) and
catches up from the records past its applied LSN read straight from the
shard's WAL directory, which is cheap because only the lag window
remains.

:class:`ShardFailurePlan` is the cluster-level sibling of
:class:`~repro.chaos.plan.FaultPlan`: a seeded, frozen schedule of
whole-shard failures the router applies at event time during a replay.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from pathlib import Path

from repro.chaos.plan import FaultPlan
from repro.config import GGridConfig
from repro.core.ggrid import GGridIndex
from repro.core.graph_grid import GraphGrid
from repro.core.messages import Message
from repro.errors import ClusterError
from repro.persist.wal import OP_INGEST, OP_REMOVE, WalRecord, read_wal
from repro.roadnet.graph import RoadNetwork


class Replica:
    """A lagged standby index for one shard.

    The replica holds its own :class:`~repro.core.ggrid.GGridIndex`
    (sharing the primary's immutable :class:`GraphGrid`) and an ordered
    buffer of shipped-but-unapplied WAL records.

    Attributes:
        applied_lsn: LSN of the newest record applied to the standby.
        shipped: records shipped to this replica over its lifetime.
    """

    def __init__(
        self,
        shard_id: int,
        graph: RoadNetwork,
        config: GGridConfig,
        grid: GraphGrid,
        ship_every: int = 8,
    ) -> None:
        if ship_every < 1:
            raise ClusterError(f"ship_every must be >= 1, got {ship_every}")
        self.shard_id = shard_id
        self.index = GGridIndex(graph, config, grid=grid)
        self.ship_every = ship_every
        self.applied_lsn = 0
        self.shipped = 0
        self._buffer: list[WalRecord] = []

    @property
    def lag(self) -> int:
        """Shipped records not yet applied to the standby."""
        return len(self._buffer)

    # ------------------------------------------------------------------
    # shipping
    # ------------------------------------------------------------------
    def ship_ingest(self, lsn: int, message: Message) -> None:
        """Ship one logged location update (LSN from the primary's WAL)."""
        self._ship(
            WalRecord(
                lsn, OP_INGEST, message.obj, message.edge, message.offset, message.t
            )
        )

    def ship_remove(self, lsn: int, obj: int, t: float) -> None:
        """Ship one logged object removal."""
        self._ship(WalRecord(lsn, OP_REMOVE, obj, None, None, t))

    def _ship(self, record: WalRecord) -> None:
        if record.lsn <= self.applied_lsn or (
            self._buffer and record.lsn <= self._buffer[-1].lsn
        ):
            raise ClusterError(
                f"out-of-order shipment: lsn {record.lsn} after "
                f"{self._buffer[-1].lsn if self._buffer else self.applied_lsn}"
            )
        self._buffer.append(record)
        self.shipped += 1
        if len(self._buffer) >= self.ship_every:
            self.apply_buffer()

    def apply_buffer(self) -> int:
        """Apply every buffered record to the standby, in LSN order."""
        applied = 0
        for record in self._buffer:
            self._apply(record)
            self.applied_lsn = record.lsn
            applied += 1
        self._buffer.clear()
        return applied

    def _apply(self, record: WalRecord) -> None:
        if record.op == OP_INGEST:
            self.index.ingest(record.to_message())
        elif record.op == OP_REMOVE:
            self.index.remove_object(record.obj, record.t)
        else:
            raise ClusterError(f"unknown WAL op {record.op!r}")

    # ------------------------------------------------------------------
    # failover
    # ------------------------------------------------------------------
    def promote(self, wal_directory: str | Path) -> tuple[GGridIndex, int]:
        """Catch the standby up from the durable log and hand it over.

        The in-flight buffer is dropped first: the WAL is the
        authoritative record of what the dead primary acknowledged, and
        re-reading from ``applied_lsn`` replays exactly the buffered
        window (plus anything shipped after the failure was detected)
        without double-applying.

        Returns:
            The caught-up index and the number of records replayed.
        """
        self._buffer.clear()
        caught_up = 0
        for record in read_wal(wal_directory).records:
            if record.lsn <= self.applied_lsn:
                continue
            self._apply(record)
            self.applied_lsn = record.lsn
            caught_up += 1
        return self.index, caught_up


@dataclass(frozen=True)
class ShardFailurePlan:
    """A seeded, reproducible schedule of whole-shard failures.

    Attributes:
        failures: ``(shard_id, event_time)`` pairs; the router fails each
            shard at the first event whose timestamp reaches the time.
    """

    failures: tuple[tuple[int, float], ...] = ()

    def __post_init__(self) -> None:
        for sid, t in self.failures:
            if sid < 0 or t < 0:
                raise ClusterError(f"invalid failure ({sid}, {t})")

    @classmethod
    def single(cls, shard_id: int, at: float) -> "ShardFailurePlan":
        """Fail one shard at one time."""
        return cls(((shard_id, at),))

    @classmethod
    def from_fault_plan(
        cls, plan: FaultPlan, num_shards: int, duration: float
    ) -> "ShardFailurePlan":
        """Derive a shard-failure schedule from a chaos fault plan.

        Deterministic in ``plan.seed``: a plan that injects any fault
        kills one randomly chosen shard somewhere in the middle half of
        the replay (a whole-process death is the cluster-level analogue
        of the plan's device faults); a fault-free plan kills nothing.
        """
        if num_shards < 1:
            raise ClusterError(f"num_shards must be >= 1, got {num_shards}")
        if duration <= 0:
            raise ClusterError(f"duration must be positive, got {duration}")
        if not (plan.injects_device_faults or plan.max_buckets_per_cell):
            return cls()
        rng = random.Random(plan.seed)
        sid = rng.randrange(num_shards)
        at = duration * rng.uniform(0.25, 0.75)
        return cls(((sid, at),))
