"""Crash recovery: newest valid snapshot + WAL replay past its watermark.

:func:`recover` rebuilds a queryable :class:`~repro.core.ggrid.GGridIndex`
from a durability directory (see
:class:`~repro.persist.manager.DurabilityManager` for the layout):

1. read the WAL — every complete, CRC-valid record up to the first torn
   frame is the *surviving prefix*;
2. pick the newest snapshot whose CRC validates and whose watermark does
   not exceed the surviving prefix's last LSN (a snapshot ahead of the
   log would resurrect updates the durable history lost);
3. restore the index from the snapshot body (or build a fresh one from
   the caller-provided graph/config when no snapshot qualifies) and
   replay the WAL records after the watermark.

The contract — proven by the conformance suite in ``tests/persist`` —
is that for any byte-level truncation of the log, the recovered index
answers kNN and range queries byte-identically to a fresh index fed the
same surviving prefix of updates.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from pathlib import Path

from repro.config import GGridConfig
from repro.core.ggrid import GGridIndex
from repro.errors import PersistenceError, ReproError
from repro.obs.hub import Observability, default_observability
from repro.obs.metrics import log_scale_buckets
from repro.persistence import index_from_state
from repro.persist.snapshot import SnapshotStore
from repro.persist.wal import OP_INGEST, OP_REMOVE, read_wal
from repro.roadnet.graph import RoadNetwork

WAL_SUBDIR = "wal"
SNAPSHOT_SUBDIR = "snapshots"


@dataclass
class RecoveryReport:
    """What one :func:`recover` call found and did."""

    snapshot_path: Path | None = None
    snapshot_watermark: int = 0
    snapshots_rejected: int = 0
    wal_records_seen: int = 0
    records_replayed: int = 0
    records_skipped: int = 0  # lsn <= watermark: already in the snapshot
    records_failed: int = 0  # replay raised (counted, not fatal)
    torn_tail: bool = False
    last_lsn: int = 0
    duration_s: float = 0.0
    failures: list[str] = field(default_factory=list)


def recover(
    directory: str | Path,
    graph: RoadNetwork | None = None,
    config: GGridConfig | None = None,
    obs: Observability | None = None,
) -> tuple[GGridIndex, RecoveryReport]:
    """Rebuild an index from a durability directory.

    Args:
        directory: the :class:`DurabilityManager` root (``wal/`` +
            ``snapshots/`` subdirectories).
        graph: road network used when no usable snapshot exists (the
            WAL does not persist the graph); required in that case.
        config: index configuration for the no-snapshot path.
        obs: observability bundle; defaults to the process-wide one.
            Publishes ``repro_recovery_replayed_total``, the
            ``repro_recovery_seconds`` histogram and a ``recovery``
            span when a tracer is active.

    Raises:
        PersistenceError: nothing to recover from — no usable snapshot
            and no ``graph`` to build a fresh index with.
    """
    directory = Path(directory)
    obs = obs if obs is not None else default_observability()
    registry = obs.registry if obs is not None else None
    tracer = obs.tracer if obs is not None else None
    report = RecoveryReport()
    started = time.perf_counter()

    def _run() -> GGridIndex:
        wal = read_wal(directory / WAL_SUBDIR)
        report.wal_records_seen = len(wal.records)
        report.torn_tail = wal.torn
        report.last_lsn = wal.last_lsn
        store = SnapshotStore(directory / SNAPSHOT_SUBDIR)
        snapshot, rejected = store.newest_valid(max_watermark=wal.last_lsn)
        report.snapshots_rejected = rejected
        if snapshot is not None:
            report.snapshot_path = snapshot.path
            report.snapshot_watermark = snapshot.watermark
            index = index_from_state(snapshot.body)
        elif graph is not None:
            index = GGridIndex(graph, config)
        else:
            raise PersistenceError(
                f"cannot recover from {directory}: no usable snapshot and "
                f"no graph provided to build a fresh index"
            )
        watermark = report.snapshot_watermark
        for record in wal.records:
            if record.lsn <= watermark:
                report.records_skipped += 1
                continue
            try:
                if record.op == OP_INGEST:
                    index.ingest(record.to_message())
                elif record.op == OP_REMOVE:
                    index.remove_object(record.obj, record.t)
                else:
                    raise PersistenceError(
                        f"unknown WAL op {record.op!r} at lsn={record.lsn}"
                    )
            except ReproError as exc:
                # a record the live index also rejected (e.g. capacity
                # pressure under a chaos cap): count it and keep going —
                # losing the rest of the log over it would be worse
                report.records_failed += 1
                report.failures.append(f"lsn={record.lsn}: {exc}")
                continue
            report.records_replayed += 1
        return index

    if tracer is not None:
        with tracer.activate(), tracer.span("recovery") as sp:
            index = _run()
            sp.set_attr("records_replayed", report.records_replayed)
            sp.set_attr("snapshot_watermark", report.snapshot_watermark)
            sp.set_attr("torn_tail", report.torn_tail)
    else:
        index = _run()
    report.duration_s = time.perf_counter() - started
    if registry is not None:
        registry.counter(
            "repro_recovery_replayed_total",
            help="WAL records replayed by recovery runs.",
        ).default().inc(report.records_replayed)
        registry.counter(
            "repro_recoveries_total",
            help="Recovery runs completed.",
        ).default().inc()
        registry.histogram(
            "repro_recovery_seconds",
            help="Wall-clock duration of recovery runs.",
            buckets=log_scale_buckets(1e-4, 100.0, 4),
        ).default().observe(report.duration_s)
        if report.torn_tail:
            registry.counter(
                "repro_recovery_torn_tails_total",
                help="Recoveries that found a torn WAL tail.",
            ).default().inc()
        if report.records_failed:
            registry.warn(
                "recovery",
                f"{report.records_failed} WAL records failed to replay "
                f"(first: {report.failures[0]})",
            )
    return index, report
