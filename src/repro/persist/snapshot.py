"""Versioned, CRC-wrapped compacted snapshots with a WAL watermark.

A snapshot is the full :func:`repro.persistence.index_state` body — the
graph, config, object table *and* the per-cell compacted message
backlogs — wrapped in an envelope carrying a CRC over the canonical
body serialization and the WAL watermark (the LSN of the last record
the snapshot reflects).  Recovery loads the newest snapshot whose CRC
validates *and* whose watermark does not run ahead of the surviving
WAL: a crash can lose un-synced WAL tail bytes, and a snapshot that
reflects records the log no longer holds would resurrect updates the
durable history says never happened.
"""

from __future__ import annotations

import json
import zlib
from dataclasses import dataclass
from pathlib import Path
from typing import Any

from repro.core.ggrid import GGridIndex
from repro.errors import PersistenceError, ReproError
from repro.obs.metrics import MetricsRegistry
from repro.persistence import SNAPSHOT_VERSION, index_state

_SNAPSHOT_GLOB = "snapshot-*.json"


def _canonical(body: dict[str, Any]) -> bytes:
    """The byte string the envelope CRC covers (stable across round trips)."""
    return json.dumps(body, sort_keys=True, separators=(",", ":")).encode("utf-8")


@dataclass(frozen=True, slots=True)
class LoadedSnapshot:
    """One validated snapshot: its state body, watermark and origin."""

    body: dict[str, Any]
    watermark: int
    path: Path


class SnapshotStore:
    """Writes and selects compacted snapshots in one directory.

    Args:
        directory: snapshot directory (created if missing).
        keep: retained snapshot files; older ones are pruned after a
            successful write (several are kept so a corrupt newest file
            degrades recovery to an older snapshot plus more WAL replay,
            never to data loss).
        registry: optional metrics registry; publishes
            ``repro_snapshots_total`` and ``repro_snapshot_bytes_total``.
    """

    def __init__(
        self,
        directory: str | Path,
        keep: int = 3,
        registry: MetricsRegistry | None = None,
    ) -> None:
        if keep < 1:
            raise PersistenceError(f"keep must be >= 1, got {keep}")
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.keep = keep
        self.snapshots_written = 0
        self._snapshots = None
        self._bytes = None
        if registry is not None:
            self._snapshots = registry.counter(
                "repro_snapshots_total",
                help="Compacted snapshots written.",
            ).default()
            self._bytes = registry.counter(
                "repro_snapshot_bytes_total",
                help="Bytes written as compacted snapshots.",
            ).default()

    # ------------------------------------------------------------------
    # writing
    # ------------------------------------------------------------------
    def write(self, index: GGridIndex, watermark: int) -> Path:
        """Persist ``index`` as the snapshot covering WAL LSNs <= watermark.

        The envelope is written to a temporary file first and renamed
        into place, so a crash mid-write leaves either the old set of
        snapshots or the old set plus one complete new file — never a
        half-written newest snapshot that shadows a good older one.
        """
        body = index_state(index)
        payload = _canonical(body)
        envelope = {
            "crc": zlib.crc32(payload),
            "watermark": int(watermark),
            "body": body,
        }
        path = self.directory / f"snapshot-{int(watermark):012d}.json"
        tmp = path.with_suffix(".json.tmp")
        with open(tmp, "w", encoding="utf-8") as fh:
            json.dump(envelope, fh)
        tmp.replace(path)
        self.snapshots_written += 1
        if self._snapshots is not None:
            self._snapshots.inc()
            self._bytes.inc(path.stat().st_size)
        self._prune()
        return path

    def _prune(self) -> None:
        files = self.paths()
        for stale in files[: max(0, len(files) - self.keep)]:
            stale.unlink()

    # ------------------------------------------------------------------
    # reading
    # ------------------------------------------------------------------
    def paths(self) -> list[Path]:
        """Snapshot files, oldest watermark first."""
        return sorted(self.directory.glob(_SNAPSHOT_GLOB))

    def load(self, path: Path) -> LoadedSnapshot:
        """Validate and load one snapshot file.

        Raises:
            PersistenceError: unreadable, CRC-mismatched or wrong-version
                snapshots.
        """
        try:
            with open(path, encoding="utf-8") as fh:
                envelope = json.load(fh)
        except (OSError, ValueError) as exc:
            raise PersistenceError(f"unreadable snapshot {path}: {exc}") from exc
        try:
            crc = int(envelope["crc"])
            watermark = int(envelope["watermark"])
            body = envelope["body"]
        except (KeyError, TypeError, ValueError) as exc:
            raise PersistenceError(f"malformed snapshot envelope {path}") from exc
        if not isinstance(body, dict):
            raise PersistenceError(f"malformed snapshot envelope {path}")
        if zlib.crc32(_canonical(body)) != crc:
            raise PersistenceError(f"snapshot {path} failed its CRC check")
        if body.get("version") != SNAPSHOT_VERSION:
            raise PersistenceError(
                f"snapshot {path} has version {body.get('version')!r}, "
                f"expected {SNAPSHOT_VERSION}"
            )
        return LoadedSnapshot(body, watermark, path)

    def newest_valid(
        self, max_watermark: int | None = None
    ) -> tuple[LoadedSnapshot | None, int]:
        """The newest loadable snapshot (and how many were rejected).

        Args:
            max_watermark: when given, snapshots whose watermark exceeds
                it are skipped — they reflect WAL records the surviving
                log no longer contains (see the module docstring).
        """
        rejected = 0
        for path in reversed(self.paths()):
            try:
                snapshot = self.load(path)
            except ReproError:
                rejected += 1
                continue
            if max_watermark is not None and snapshot.watermark > max_watermark:
                rejected += 1
                continue
            return snapshot, rejected
        return None, rejected
