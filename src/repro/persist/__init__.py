"""Durable persistence and crash recovery (DESIGN.md §11).

The serving-path contract:

* every ``ingest`` / ``remove_object`` is append-logged to a CRC-framed,
  segment-rotating :class:`WriteAheadLog` before it is applied;
* a :class:`SnapshotPolicy` periodically cuts CRC-wrapped compacted
  snapshots (:class:`SnapshotStore`) carrying a WAL watermark;
* after a crash, :func:`recover` loads the newest valid snapshot that
  the surviving log supports and replays the WAL records past its
  watermark, tolerating a torn tail.

For any byte-level truncation of the log, the recovered index answers
queries byte-identically to a fresh index fed the same surviving prefix
of updates — the conformance suite in ``tests/persist`` enforces this.
"""

from repro.persist.manager import DurabilityManager, SnapshotPolicy
from repro.persist.recovery import RecoveryReport, recover
from repro.persist.snapshot import LoadedSnapshot, SnapshotStore
from repro.persist.wal import (
    WalAppend,
    WalReadResult,
    WalRecord,
    WriteAheadLog,
    iter_wal,
    read_wal,
)

__all__ = [
    "DurabilityManager",
    "SnapshotPolicy",
    "RecoveryReport",
    "recover",
    "LoadedSnapshot",
    "SnapshotStore",
    "WalAppend",
    "WalReadResult",
    "WalRecord",
    "WriteAheadLog",
    "iter_wal",
    "read_wal",
]
