"""A CRC-framed, segment-rotating write-ahead log for index updates.

Every mutating operation — ``ingest`` and ``remove_object`` — is
append-logged as one framed record before (or, for the conformance
definition below, atomically with) being applied to the in-memory
index, so a process death never loses an acknowledged update.  The
design follows the classic snapshot + replay recovery model for massive
update streams (see PAPERS.md: the manycore moving-objects line and
FliX's durable ingest log decoupled from the device-resident index):

* **Framing** — each record is ``<u32 length><u32 crc32(payload)>``
  followed by a compact JSON payload carrying the LSN, the operation
  and the message fields.  The CRC detects torn or bit-rotted tails.
* **Segments** — a segment file holds at most ``max_segment_bytes`` of
  records; appends past that rotate to a new ``wal-NNNNNNNN.seg``.
  Every segment starts with an 8-byte magic so foreign files fail fast.
* **Fsync batching** — ``fsync_every`` records per ``os.fsync`` (1 =
  every append, 0 = only on rotation/close); the standard durability /
  throughput dial.
* **Torn tails** — a reader stops at the first frame that is short,
  oversized or CRC-mismatched.  Everything before it replays; the
  surviving prefix is exactly the set of complete, CRC-valid records,
  which is what the recovery conformance suite truncates against.

A writer opening an existing directory scans it, resumes the LSN
sequence after the last valid record and truncates any torn tail so the
log stays contiguous.
"""

from __future__ import annotations

import json
import os
import struct
import zlib
from dataclasses import dataclass
from pathlib import Path
from typing import Iterator

from repro.core.messages import Message
from repro.errors import PersistenceError
from repro.obs.metrics import MetricsRegistry

#: per-segment header: identifies the file format and framing version
SEGMENT_MAGIC = b"GGWAL\x00\x01\n"

#: frame header: payload length, then crc32 of the payload
_FRAME = struct.Struct("<II")

#: sanity bound on one record's payload — anything larger is corruption
MAX_RECORD_BYTES = 1 << 20

OP_INGEST = "ingest"
OP_REMOVE = "remove"

_SEGMENT_GLOB = "wal-*.seg"


@dataclass(frozen=True, slots=True)
class WalRecord:
    """One logged update: an ``ingest`` message or an object removal."""

    lsn: int
    op: str
    obj: int
    edge: int | None
    offset: float | None
    t: float

    def to_message(self) -> Message:
        """The :class:`Message` an ``ingest`` record replays as."""
        if self.op != OP_INGEST:
            raise PersistenceError(f"record lsn={self.lsn} is not an ingest")
        return Message(self.obj, self.edge, self.offset, self.t)

    def encode(self) -> bytes:
        payload = json.dumps(
            {
                "lsn": self.lsn,
                "op": self.op,
                "obj": self.obj,
                "edge": self.edge,
                "offset": self.offset,
                "t": self.t,
            },
            separators=(",", ":"),
        ).encode("utf-8")
        return _FRAME.pack(len(payload), zlib.crc32(payload)) + payload

    @staticmethod
    def decode_payload(payload: bytes) -> "WalRecord":
        try:
            raw = json.loads(payload.decode("utf-8"))
            return WalRecord(
                lsn=int(raw["lsn"]),
                op=str(raw["op"]),
                obj=int(raw["obj"]),
                edge=None if raw["edge"] is None else int(raw["edge"]),
                offset=None if raw["offset"] is None else float(raw["offset"]),
                t=float(raw["t"]),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise PersistenceError(f"undecodable WAL payload: {exc}") from exc


@dataclass(frozen=True, slots=True)
class WalAppend:
    """Where one appended record landed (the conformance tests truncate
    WAL files at exactly these byte extents)."""

    lsn: int
    segment: Path
    end_offset: int
    nbytes: int


@dataclass
class WalReadResult:
    """Everything a reader could salvage from a WAL directory."""

    records: list[WalRecord]
    torn: bool = False
    torn_segment: Path | None = None
    torn_offset: int = 0
    bytes_read: int = 0

    @property
    def last_lsn(self) -> int:
        """LSN of the newest surviving record (0 when the log is empty)."""
        return self.records[-1].lsn if self.records else 0


def _segments(directory: Path) -> list[Path]:
    return sorted(directory.glob(_SEGMENT_GLOB))


def _read_segment(path: Path, out: WalReadResult) -> bool:
    """Append ``path``'s valid records to ``out``.

    Returns False when the segment ends in a torn/corrupt frame — the
    caller must stop reading later segments too, because the LSN
    sequence after the tear is no longer contiguous with what survived.
    """
    data = path.read_bytes()
    if len(data) < len(SEGMENT_MAGIC) or not data.startswith(SEGMENT_MAGIC):
        out.torn, out.torn_segment, out.torn_offset = True, path, 0
        return False
    pos = len(SEGMENT_MAGIC)
    while pos < len(data):
        if pos + _FRAME.size > len(data):
            out.torn, out.torn_segment, out.torn_offset = True, path, pos
            return False
        length, crc = _FRAME.unpack_from(data, pos)
        if not 0 < length <= MAX_RECORD_BYTES:
            out.torn, out.torn_segment, out.torn_offset = True, path, pos
            return False
        start = pos + _FRAME.size
        payload = data[start : start + length]
        if len(payload) < length or zlib.crc32(payload) != crc:
            out.torn, out.torn_segment, out.torn_offset = True, path, pos
            return False
        try:
            record = WalRecord.decode_payload(payload)
        except PersistenceError:
            out.torn, out.torn_segment, out.torn_offset = True, path, pos
            return False
        if out.records and record.lsn != out.records[-1].lsn + 1:
            # a gap or repeat means this frame survived a tear by luck;
            # replaying it would apply updates out of order
            out.torn, out.torn_segment, out.torn_offset = True, path, pos
            return False
        out.records.append(record)
        pos = start + length
        out.bytes_read += _FRAME.size + length
    return True


def read_wal(directory: str | Path) -> WalReadResult:
    """Read every surviving record from a WAL directory.

    Replay stops at the first torn or corrupt frame anywhere in the
    segment sequence (``torn`` / ``torn_segment`` / ``torn_offset``
    report where); records after a tear cannot be trusted to be
    contiguous with the surviving prefix.
    """
    directory = Path(directory)
    result = WalReadResult(records=[])
    for segment in _segments(directory):
        if not _read_segment(segment, result):
            break
    return result


def iter_wal(directory: str | Path) -> Iterator[WalRecord]:
    """Convenience: just the surviving records, in LSN order."""
    yield from read_wal(directory).records


class WriteAheadLog:
    """Append-only durable log over a directory of rotating segments.

    Args:
        directory: segment directory (created if missing).
        max_segment_bytes: rotation threshold — an append that would
            push the current segment past this opens a new one.
        fsync_every: records per ``os.fsync`` batch; ``1`` syncs every
            append, ``0`` syncs only on rotation and close.
        registry: optional metrics registry; publishes
            ``repro_wal_records_total``, ``repro_wal_bytes_total``,
            ``repro_wal_fsyncs_total`` and ``repro_wal_segments_total``.
    """

    def __init__(
        self,
        directory: str | Path,
        max_segment_bytes: int = 4 << 20,
        fsync_every: int = 64,
        registry: MetricsRegistry | None = None,
    ) -> None:
        if max_segment_bytes <= len(SEGMENT_MAGIC) + _FRAME.size:
            raise PersistenceError(
                f"max_segment_bytes {max_segment_bytes} cannot hold one record"
            )
        if fsync_every < 0:
            raise PersistenceError(f"fsync_every must be >= 0, got {fsync_every}")
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.max_segment_bytes = max_segment_bytes
        self.fsync_every = fsync_every
        self.records_appended = 0
        self.bytes_appended = 0
        self.fsyncs = 0
        self._pending_sync = 0
        self._fh = None
        self._records = None
        self._bytes = None
        self._fsyncs_metric = None
        self._segments_metric = None
        if registry is not None:
            self._records = registry.counter(
                "repro_wal_records_total",
                help="Records appended to the write-ahead log.",
                labelnames=("op",),
            )
            self._bytes = registry.counter(
                "repro_wal_bytes_total",
                help="Bytes appended to the write-ahead log (frames included).",
            ).default()
            self._fsyncs_metric = registry.counter(
                "repro_wal_fsyncs_total",
                help="fsync calls issued by the WAL writer.",
            ).default()
            self._segments_metric = registry.counter(
                "repro_wal_segments_total",
                help="WAL segments opened (including resumed ones).",
            ).default()
        self._resume()

    # ------------------------------------------------------------------
    # opening / resuming
    # ------------------------------------------------------------------
    def _resume(self) -> None:
        """Scan the directory, trim any torn tail, continue the LSN run."""
        existing = _segments(self.directory)
        salvaged = read_wal(self.directory)
        self.next_lsn = salvaged.last_lsn + 1
        if salvaged.torn and salvaged.torn_segment is not None:
            # drop the torn bytes (and any unreachable later segments) so
            # new appends extend the surviving prefix contiguously
            tear_index = existing.index(salvaged.torn_segment)
            for orphan in existing[tear_index + 1 :]:
                orphan.unlink()
            with open(salvaged.torn_segment, "r+b") as fh:
                fh.truncate(salvaged.torn_offset)
            existing = existing[: tear_index + 1]
            if salvaged.torn_offset <= len(SEGMENT_MAGIC):
                existing[-1].unlink()
                existing.pop()
        if existing:
            self._segment_index = int(existing[-1].stem.split("-")[1])
            self._segment_path = existing[-1]
            self._segment_size = self._segment_path.stat().st_size
            self._fh = open(self._segment_path, "ab")
            if self._segments_metric is not None:
                self._segments_metric.inc()
        else:
            self._segment_index = 0
            self._open_next_segment()

    def _open_next_segment(self) -> None:
        if self._fh is not None:
            self._sync(force=True)
            self._fh.close()
        self._segment_index += 1
        self._segment_path = self.directory / f"wal-{self._segment_index:08d}.seg"
        self._fh = open(self._segment_path, "wb")
        self._fh.write(SEGMENT_MAGIC)
        self._fh.flush()
        self._segment_size = len(SEGMENT_MAGIC)
        if self._segments_metric is not None:
            self._segments_metric.inc()

    # ------------------------------------------------------------------
    # appending
    # ------------------------------------------------------------------
    @property
    def last_lsn(self) -> int:
        """LSN of the newest durable-or-pending record (0 = empty log)."""
        return self.next_lsn - 1

    def append_ingest(self, message: Message) -> WalAppend:
        """Log one location update (Algorithm 1's input message)."""
        return self._append(
            WalRecord(
                self.next_lsn,
                OP_INGEST,
                message.obj,
                message.edge,
                message.offset,
                message.t,
            )
        )

    def append_remove(self, obj: int, t: float) -> WalAppend:
        """Log one object deregistration."""
        return self._append(WalRecord(self.next_lsn, OP_REMOVE, obj, None, None, t))

    def _append(self, record: WalRecord) -> WalAppend:
        if self._fh is None:
            raise PersistenceError("write-ahead log is closed")
        frame = record.encode()
        if self._segment_size + len(frame) > self.max_segment_bytes:
            self._open_next_segment()
        self._fh.write(frame)
        self._segment_size += len(frame)
        self.next_lsn = record.lsn + 1
        self.records_appended += 1
        self.bytes_appended += len(frame)
        self._pending_sync += 1
        if self.fsync_every and self._pending_sync >= self.fsync_every:
            self._sync(force=True)
        else:
            self._fh.flush()
        if self._records is not None:
            self._records.labels(op=record.op).inc()
            self._bytes.inc(len(frame))
        return WalAppend(
            record.lsn, self._segment_path, self._segment_size, len(frame)
        )

    def _sync(self, force: bool = False) -> None:
        if self._fh is None or (not force and not self._pending_sync):
            return
        self._fh.flush()
        os.fsync(self._fh.fileno())
        self.fsyncs += 1
        self._pending_sync = 0
        if self._fsyncs_metric is not None:
            self._fsyncs_metric.inc()

    def sync(self) -> None:
        """Force pending records to stable storage (snapshot barrier)."""
        if self._pending_sync:
            self._sync(force=True)

    def segments(self) -> list[Path]:
        return _segments(self.directory)

    def close(self) -> None:
        if self._fh is not None:
            self._sync(force=True)
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "WriteAheadLog":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()
