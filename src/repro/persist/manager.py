"""The durability front-door: one directory, WAL + snapshots + policy.

:class:`DurabilityManager` owns the on-disk layout

.. code-block:: text

    <directory>/
        wal/        wal-00000001.seg, wal-00000002.seg, ...
        snapshots/  snapshot-000000000120.json, ...

and the background snapshot policy: the serving path calls
:meth:`log_ingest` / :meth:`log_remove` before applying each update and
:meth:`maybe_snapshot` after, and the manager decides when enough
records (or enough event time) have accumulated to cut a new compacted
snapshot.  Snapshots are preceded by a WAL fsync barrier so a
snapshot's watermark never runs ahead of the durable log.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

from repro.core.ggrid import GGridIndex
from repro.core.messages import Message
from repro.errors import PersistenceError
from repro.obs.hub import Observability, default_observability
from repro.persist.recovery import (
    SNAPSHOT_SUBDIR,
    WAL_SUBDIR,
    RecoveryReport,
    recover,
)
from repro.persist.snapshot import SnapshotStore
from repro.persist.wal import WalAppend, WriteAheadLog


@dataclass(frozen=True, slots=True)
class SnapshotPolicy:
    """When the manager cuts a background snapshot.

    Attributes:
        every_records: snapshot once this many WAL records accumulate
            past the previous snapshot's watermark (``0`` disables the
            record trigger).
        every_seconds: snapshot once event time (message timestamps)
            advances this far past the previous snapshot (``0.0``
            disables the time trigger).
    """

    every_records: int = 0
    every_seconds: float = 0.0

    def __post_init__(self) -> None:
        if self.every_records < 0:
            raise PersistenceError(
                f"every_records must be >= 0, got {self.every_records}"
            )
        if self.every_seconds < 0:
            raise PersistenceError(
                f"every_seconds must be >= 0, got {self.every_seconds}"
            )

    @property
    def enabled(self) -> bool:
        return self.every_records > 0 or self.every_seconds > 0


class DurabilityManager:
    """WAL + snapshot store + snapshot policy over one directory."""

    def __init__(
        self,
        directory: str | Path,
        *,
        max_segment_bytes: int = 4 << 20,
        fsync_every: int = 64,
        snapshot_policy: SnapshotPolicy | None = None,
        keep_snapshots: int = 3,
        obs: Observability | None = None,
    ) -> None:
        self.directory = Path(directory)
        obs = obs if obs is not None else default_observability()
        registry = obs.registry if obs is not None else None
        self.wal = WriteAheadLog(
            self.directory / WAL_SUBDIR,
            max_segment_bytes=max_segment_bytes,
            fsync_every=fsync_every,
            registry=registry,
        )
        self.snapshots = SnapshotStore(
            self.directory / SNAPSHOT_SUBDIR,
            keep=keep_snapshots,
            registry=registry,
        )
        self.policy = snapshot_policy or SnapshotPolicy()
        self._obs = obs
        # resume the policy cursors from what is already on disk, so a
        # restarted server does not immediately re-snapshot
        loaded, _ = self.snapshots.newest_valid(max_watermark=self.wal.last_lsn)
        self._last_snapshot_lsn = loaded.watermark if loaded is not None else 0
        self._last_snapshot_t = (
            float(loaded.body["latest_time"]) if loaded is not None else 0.0
        )
        self._latest_event_t = self._last_snapshot_t

    # ------------------------------------------------------------------
    # the update-path hooks
    # ------------------------------------------------------------------
    def log_ingest(self, message: Message) -> WalAppend:
        """Append one location update to the WAL (call before applying)."""
        self._latest_event_t = max(self._latest_event_t, message.t)
        return self.wal.append_ingest(message)

    def log_remove(self, obj: int, t: float) -> WalAppend:
        """Append one object removal to the WAL (call before applying)."""
        self._latest_event_t = max(self._latest_event_t, t)
        return self.wal.append_remove(obj, t)

    def maybe_snapshot(self, index: GGridIndex) -> Path | None:
        """Cut a snapshot if the policy says one is due."""
        policy = self.policy
        if not policy.enabled:
            return None
        due = False
        if policy.every_records:
            due = self.wal.last_lsn - self._last_snapshot_lsn >= policy.every_records
        if not due and policy.every_seconds:
            due = self._latest_event_t - self._last_snapshot_t >= policy.every_seconds
        if not due:
            return None
        return self.snapshot(index)

    def snapshot(self, index: GGridIndex) -> Path:
        """Cut a compacted snapshot at the current WAL watermark now.

        The WAL is fsynced first: the watermark must name records that
        are already durable, or a crash between snapshot and sync could
        leave a snapshot ahead of the log (which recovery would then
        rightly refuse to use).
        """
        self.wal.sync()
        watermark = self.wal.last_lsn
        path = self.snapshots.write(index, watermark)
        self._last_snapshot_lsn = watermark
        self._last_snapshot_t = self._latest_event_t
        return path

    # ------------------------------------------------------------------
    # recovery
    # ------------------------------------------------------------------
    def recover(self, graph=None, config=None) -> tuple[GGridIndex, RecoveryReport]:
        """Recover an index from this manager's directory (see
        :func:`repro.persist.recovery.recover`)."""
        return recover(self.directory, graph=graph, config=config, obs=self._obs)

    def close(self) -> None:
        self.wal.close()

    def __enter__(self) -> "DurabilityManager":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()
