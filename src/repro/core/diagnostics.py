"""Operational diagnostics for a running G-Grid index.

Production indexes need observability: how much backlog is cached where,
how well the partitioner did, how busy the device is.  This module
computes those summaries without mutating the index, so dashboards (or
tests) can poll them between queries.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.ggrid import GGridIndex


@dataclass(frozen=True)
class BacklogStats:
    """Distribution of cached (uncleaned) messages across cells."""

    total_messages: int
    cells_with_backlog: int
    max_cell_backlog: int
    mean_cell_backlog: float
    buckets_allocated: int

    @staticmethod
    def of(index: GGridIndex) -> "BacklogStats":
        counts = [m.num_messages for m in index.lists.values() if m.num_messages]
        return BacklogStats(
            total_messages=sum(counts),
            cells_with_backlog=len(counts),
            max_cell_backlog=max(counts, default=0),
            mean_cell_backlog=(sum(counts) / len(counts)) if counts else 0.0,
            buckets_allocated=sum(m.num_buckets for m in index.lists.values()),
        )


@dataclass(frozen=True)
class OccupancyStats:
    """Distribution of live objects across cells (from the object table)."""

    objects: int
    occupied_cells: int
    max_cell_objects: int
    mean_cell_objects: float

    @staticmethod
    def of(index: GGridIndex) -> "OccupancyStats":
        # iterate only occupied cells (via the object table's inverse
        # map) — a snapshot must not cost O(grid cells) on sparse grids
        counts = [
            len(index.object_table.objects_in_cell(z))
            for z in index.object_table.occupied_cells()
        ]
        occupied = [c for c in counts if c]
        return OccupancyStats(
            objects=index.num_objects,
            occupied_cells=len(occupied),
            max_cell_objects=max(counts, default=0),
            mean_cell_objects=(sum(occupied) / len(occupied)) if occupied else 0.0,
        )


@dataclass(frozen=True)
class PartitionQuality:
    """How well the grid partitioning kept the network local."""

    cells: int
    internal_edge_fraction: float
    mean_cell_degree: float
    max_cell_size: int

    @staticmethod
    def of(index: GGridIndex) -> "PartitionQuality":
        grid = index.grid
        graph = index.graph
        internal = sum(
            1
            for e in graph.edges()
            if grid.cell_of_vertex[e.source] == grid.cell_of_vertex[e.dest]
        )
        degrees = [len(grid.neighbors(z)) for z in range(grid.num_cells)]
        return PartitionQuality(
            cells=grid.num_cells,
            internal_edge_fraction=internal / max(1, graph.num_edges),
            mean_cell_degree=sum(degrees) / max(1, len(degrees)),
            max_cell_size=max((c.n_v for c in grid.cells), default=0),
        )


def snapshot(index: GGridIndex) -> dict[str, object]:
    """One flat diagnostics record: backlog + occupancy + partition +
    device counters + sizes.  JSON-serialisable."""
    backlog = BacklogStats.of(index)
    occupancy = OccupancyStats.of(index)
    quality = PartitionQuality.of(index)
    gpu = index.stats
    sizes = index.size_bytes()
    return {
        "messages_ingested": index.messages_ingested,
        "objects": occupancy.objects,
        "backlog_messages": backlog.total_messages,
        "backlog_max_cell": backlog.max_cell_backlog,
        "backlog_cells": backlog.cells_with_backlog,
        "occupied_cells": occupancy.occupied_cells,
        "max_cell_objects": occupancy.max_cell_objects,
        "internal_edge_fraction": quality.internal_edge_fraction,
        "mean_cell_degree": quality.mean_cell_degree,
        "gpu_kernels": gpu.kernel_launches,
        "gpu_bytes": gpu.total_bytes,
        "gpu_time_s": gpu.gpu_time_s,
        "size_cpu_bytes": sizes["cpu"],
        "size_gpu_bytes": sizes["gpu"],
    }
