"""The graph grid: an array-based grid index over the road network.

Section III-A: vertices are partitioned into ``2^psi x 2^psi`` cells
(:mod:`repro.partition.grid_assign`), cells are laid out in one array
ordered by Z-value, and each cell stores fixed-capacity arrays — at most
``delta_c`` vertex elements, each holding at most ``delta_v`` *incoming*
edges.  A real vertex with more than ``delta_v`` in-edges spills into
*virtual vertex* elements in the same cell.  An inverted index maps every
edge id to its source vertex and that vertex's cell, which is how a
message ``m = <o, e, d, t>`` is routed to a cell (``getCell`` in
Algorithm 1).

Two identical copies of this structure live on the CPU and the GPU; the
index build ships one copy to the simulated device and accounts the
transfer.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.config import GGridConfig
from repro.errors import UnknownEdgeError
from repro.partition.grid_assign import GridAssignment, assign_cells
from repro.roadnet.graph import RoadNetwork
from repro.simgpu.memory import CELL_BYTES, EDGE_BYTES, TABLE_ENTRY_BYTES, VERTEX_BYTES


@dataclass(frozen=True, slots=True)
class GridEdgeRec:
    """An edge stored in a vertex element: ``<id, v_s, w>``."""

    edge_id: int
    source: int
    weight: float


@dataclass(slots=True)
class GridVertexElement:
    """One vertex slot of a cell: ``<id, A_e, n>``.

    ``real_id`` is the road-network vertex; ``virtual_rank`` is 0 for the
    primary element and ``1, 2, ...`` for the virtual vertices created
    when the in-degree exceeds ``delta_v`` (Section III-A).
    """

    real_id: int
    virtual_rank: int
    edges: list[GridEdgeRec] = field(default_factory=list)

    @property
    def n(self) -> int:
        return len(self.edges)

    @property
    def is_virtual(self) -> bool:
        return self.virtual_rank > 0


@dataclass(slots=True)
class GridCell:
    """One grid cell: ``<A_v, n_v, n_e>`` at Z-position ``z``."""

    z: int
    elements: list[GridVertexElement] = field(default_factory=list)
    #: distinct real vertex ids in this cell (the partitioning output)
    real_vertices: list[int] = field(default_factory=list)
    #: number of edges whose *source* vertex lies in this cell
    n_source_edges: int = 0

    @property
    def n_v(self) -> int:
        return len(self.real_vertices)


class CellSlab:
    """Packed array view of the candidate subgraph over a cell set.

    Built by :meth:`GraphGrid.pack_of_cells` from the grid's one-time
    packed arrays: the distinct vertices of the cells (in the exact order
    :meth:`GraphGrid.vertices_of_cells` returns them) plus the in-edge
    records whose *source also lies inside the cell set*, already
    translated to local vertex indices.  The SDist backends consume this
    directly instead of re-flattening ``GridVertexElement`` lists per
    launch; the legacy lockstep kernel can still iterate a slab (it lazily
    materialises the element list), so a slab is a drop-in for the
    ``elements`` argument of either backend.
    """

    __slots__ = (
        "_grid",
        "zs",
        "vertex_ids",
        "src_local",
        "tgt_local",
        "weights",
        "n_elements",
        "_base_of_cell",
        "_vertex_list",
        "_elements",
    )

    def __init__(
        self,
        grid: "GraphGrid",
        zs: list[int],
        vertex_ids: np.ndarray,
        src_local: np.ndarray,
        tgt_local: np.ndarray,
        weights: np.ndarray,
        n_elements: int,
        base_of_cell: dict[int, int],
    ) -> None:
        self._grid = grid
        self.zs = zs
        self.vertex_ids = vertex_ids
        self.src_local = src_local
        self.tgt_local = tgt_local
        self.weights = weights
        self.n_elements = n_elements
        self._base_of_cell = base_of_cell
        self._vertex_list: list[int] | None = None
        self._elements: list[GridVertexElement] | None = None

    @property
    def n_vertices(self) -> int:
        return len(self.vertex_ids)

    def __len__(self) -> int:
        """Element count — a slab passed as ``elements`` keeps the GPU
        thread-count accounting (one thread per vertex element) exact."""
        return self.n_elements

    def __iter__(self):
        """Iterate the per-element view (lockstep-backend compatibility)."""
        return iter(self.elements)

    @property
    def elements(self) -> list[GridVertexElement]:
        """The per-element object view, materialised on first use."""
        if self._elements is None:
            self._elements = self._grid.elements_of_cells(set(self.zs))
        return self._elements

    @property
    def vertex_list(self) -> list[int]:
        """``vertex_ids`` as plain Python ints (the kernels' ``V`` list)."""
        if self._vertex_list is None:
            self._vertex_list = self.vertex_ids.tolist()
        return self._vertex_list

    def local_of(self, vertex: int) -> int | None:
        """Local index of a global vertex id; None when outside the slab."""
        base = self._base_of_cell.get(self._grid.cell_of_vertex[vertex])
        if base is None:
            return None
        return base + int(self._grid.vert_pos_in_cell[vertex])


class GraphGrid:
    """The assembled grid over a road network.

    Example:
        >>> from repro.roadnet import grid_road_network
        >>> from repro.config import GGridConfig
        >>> g = grid_road_network(6, 6, seed=1)
        >>> grid = GraphGrid.build(g, GGridConfig())
        >>> grid.num_cells >= 1 and grid.cell_of_edge(0) >= 0
        True
    """

    def __init__(
        self,
        graph: RoadNetwork,
        assignment: GridAssignment,
        config: GGridConfig,
    ) -> None:
        self.graph = graph
        self.assignment = assignment
        self.config = config
        self.cells: list[GridCell] = [GridCell(z) for z in range(assignment.num_cells)]
        self.cell_of_vertex: list[int] = list(assignment.cell_of_vertex)
        self._edge_cell: list[int] = [0] * graph.num_edges
        self._edge_source: list[int] = [0] * graph.num_edges
        self._neighbors: list[frozenset[int]] = []
        self._populate()

    @staticmethod
    def build(graph: RoadNetwork, config: GGridConfig) -> "GraphGrid":
        """Partition ``graph`` per the config and assemble the grid."""
        assignment = assign_cells(
            graph, config.delta_c, seed=config.seed, method=config.partitioner
        )
        return GraphGrid(graph, assignment, config)

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def _populate(self) -> None:
        delta_v = self.config.delta_v
        # packed struct-of-arrays form (DESIGN.md §16), built once here:
        # per-cell CSR of vertices / elements / in-edge records, all in
        # the same order the per-element object view uses
        vert_counts = [0] * len(self.cells)
        elem_counts = [0] * len(self.cells)
        rec_counts = [0] * len(self.cells)
        vert_ids: list[int] = []
        vert_pos: list[int] = [0] * self.graph.num_vertices
        rec_src: list[int] = []
        rec_tgt_pos: list[int] = []
        rec_weight: list[float] = []
        rec_edge_id: list[int] = []
        for z, vertex_ids in enumerate(self.assignment.vertices_of_cell):
            cell = self.cells[z]
            cell.real_vertices = list(vertex_ids)
            vert_counts[z] = len(vertex_ids)
            for pos, vid in enumerate(vertex_ids):
                vert_ids.append(vid)
                vert_pos[vid] = pos
                in_edges = self.graph.in_edges(vid)
                records = [GridEdgeRec(e.id, e.source, e.weight) for e in in_edges]
                for rec in records:
                    rec_src.append(rec.source)
                    rec_tgt_pos.append(pos)
                    rec_weight.append(rec.weight)
                    rec_edge_id.append(rec.edge_id)
                rec_counts[z] += len(records)
                if not records:
                    cell.elements.append(GridVertexElement(vid, 0))
                for rank, start in enumerate(range(0, len(records), delta_v)):
                    cell.elements.append(
                        GridVertexElement(vid, rank, records[start : start + delta_v])
                    )
                cell.n_source_edges += self.graph.out_degree(vid)
            elem_counts[z] = len(cell.elements)
        # inverted index: edge -> (source vertex, cell of the source vertex)
        for e in self.graph.edges():
            self._edge_source[e.id] = e.source
            self._edge_cell[e.id] = self.cell_of_vertex[e.source]
        # cell adjacency: an edge from cell A to cell B links them both ways
        neighbor_sets: list[set[int]] = [set() for _ in self.cells]
        for e in self.graph.edges():
            a = self.cell_of_vertex[e.source]
            b = self.cell_of_vertex[e.dest]
            if a != b:
                neighbor_sets[a].add(b)
                neighbor_sets[b].add(a)
        self._neighbors = [frozenset(s) for s in neighbor_sets]

        # freeze the packed arrays
        cell_np = np.asarray(self.cell_of_vertex, dtype=np.int64)
        self.vert_pos_in_cell = np.asarray(vert_pos, dtype=np.int64)
        self._cell_vert_indptr = np.concatenate(
            ([0], np.cumsum(np.asarray(vert_counts, dtype=np.int64)))
        )
        self._cell_vert_ids = np.asarray(vert_ids, dtype=np.int64)
        self._cell_elem_counts = np.asarray(elem_counts, dtype=np.int64)
        self._cell_rec_indptr = np.concatenate(
            ([0], np.cumsum(np.asarray(rec_counts, dtype=np.int64)))
        )
        self._rec_src = np.asarray(rec_src, dtype=np.int64)
        self._rec_src_cell = cell_np[self._rec_src] if len(rec_src) else np.empty(0, np.int64)
        self._rec_src_pos = (
            self.vert_pos_in_cell[self._rec_src] if len(rec_src) else np.empty(0, np.int64)
        )
        self._rec_tgt_pos = np.asarray(rec_tgt_pos, dtype=np.int64)
        self._rec_weight = np.asarray(rec_weight, dtype=np.float64)
        self._rec_edge_id = np.asarray(rec_edge_id, dtype=np.int64)
        self.edge_source_arr = np.asarray(self._edge_source, dtype=np.int64)
        # out-edge destination cells (for the vectorised boundary test)
        out_indptr, out_targets, _, _ = self.graph.csr_out()
        self._out_indptr = out_indptr
        self._out_dest_cell = cell_np[out_targets] if len(out_targets) else np.empty(0, np.int64)
        # reusable scratch, reset after every use (single-threaded builds)
        self._base_scratch = np.full(len(self.cells), -1, dtype=np.int64)

    # ------------------------------------------------------------------
    # packed candidate-subgraph views
    # ------------------------------------------------------------------
    def pack_of_cells(self, cells: set[int]) -> CellSlab:
        """Slice the packed arrays down to a candidate cell set.

        The slab's vertex order matches :meth:`vertices_of_cells`
        exactly, and the kept edge records are the same records (in the
        same order) the per-element kernels walk — which is why the SDist
        backends produce bit-identical distances from either form.
        """
        zs = sorted(cells)
        base = self._base_scratch
        vi = self._cell_vert_indptr
        ri = self._cell_rec_indptr
        offset = 0
        n_elements = 0
        vert_parts: list[np.ndarray] = []
        rec_slices: list[tuple[int, int, int]] = []  # (rec_start, rec_end, cell_base)
        base_of_cell: dict[int, int] = {}
        for z in zs:
            base[z] = offset
            base_of_cell[z] = offset
            vert_parts.append(self._cell_vert_ids[vi[z] : vi[z + 1]])
            rec_slices.append((int(ri[z]), int(ri[z + 1]), offset))
            offset += int(vi[z + 1] - vi[z])
            n_elements += int(self._cell_elem_counts[z])
        vertex_ids = (
            np.concatenate(vert_parts) if vert_parts else np.empty(0, np.int64)
        )
        n_recs = sum(end - start for start, end, _ in rec_slices)
        src_cell = np.empty(n_recs, dtype=np.int64)
        src_pos = np.empty(n_recs, dtype=np.int64)
        tgt_local = np.empty(n_recs, dtype=np.int64)
        weights = np.empty(n_recs, dtype=np.float64)
        at = 0
        for start, end, cell_base in rec_slices:
            n = end - start
            src_cell[at : at + n] = self._rec_src_cell[start:end]
            src_pos[at : at + n] = self._rec_src_pos[start:end]
            np.add(self._rec_tgt_pos[start:end], cell_base, out=tgt_local[at : at + n])
            weights[at : at + n] = self._rec_weight[start:end]
            at += n
        src_base = base[src_cell]
        keep = src_base >= 0  # drop records whose source is outside the slab
        base[zs] = -1  # reset the scratch for the next pack
        return CellSlab(
            self,
            zs,
            vertex_ids,
            (src_base + src_pos)[keep],
            tgt_local[keep],
            weights[keep],
            n_elements,
            base_of_cell,
        )

    # ------------------------------------------------------------------
    # lookups
    # ------------------------------------------------------------------
    @property
    def num_cells(self) -> int:
        return len(self.cells)

    def cell(self, z: int) -> GridCell:
        return self.cells[z]

    def cell_of_edge(self, edge_id: int) -> int:
        """``getCell``: the cell of the edge's source vertex (Algorithm 1).

        Raises:
            UnknownEdgeError: for edge ids outside the network.
        """
        if not 0 <= edge_id < len(self._edge_cell):
            raise UnknownEdgeError(f"unknown edge id {edge_id}")
        return self._edge_cell[edge_id]

    def source_of_edge(self, edge_id: int) -> int:
        if not 0 <= edge_id < len(self._edge_source):
            raise UnknownEdgeError(f"unknown edge id {edge_id}")
        return self._edge_source[edge_id]

    def neighbors(self, z: int) -> frozenset[int]:
        """Cells sharing at least one edge with cell ``z`` (Section V-A)."""
        return self._neighbors[z]

    def neighbors_of_set(self, cells: set[int]) -> set[int]:
        """``neighbors(L) \\ L``: the next expansion ring of Algorithm 4."""
        ring: set[int] = set()
        for z in cells:
            ring |= self._neighbors[z]
        return ring - cells

    def vertices_of_cells(self, cells: set[int]) -> list[int]:
        """Distinct real vertex ids across ``cells`` (the set ``V``)."""
        vi = self._cell_vert_indptr
        parts = [self._cell_vert_ids[vi[z] : vi[z + 1]] for z in sorted(cells)]
        if not parts:
            return []
        return np.concatenate(parts).tolist()

    def elements_of_cells(self, cells: set[int]) -> list[GridVertexElement]:
        """Vertex elements (incl. virtual) across ``cells``; one GPU thread
        is assigned per element in ``GPU_SDist``."""
        result: list[GridVertexElement] = []
        for z in sorted(cells):
            result.extend(self.cells[z].elements)
        return result

    def boundary_vertices(self, cells: set[int]) -> list[int]:
        """Vertices "on the edge of" ``cells`` (Definition 3): vertices with
        an out-edge whose destination lies outside the cell set.

        Vectorised over the packed arrays; the result keeps the
        :meth:`vertices_of_cells` ordering the per-vertex scan produced.
        """
        zs = sorted(cells)
        vi = self._cell_vert_indptr
        parts = [self._cell_vert_ids[vi[z] : vi[z + 1]] for z in zs]
        if not parts:
            return []
        verts = np.concatenate(parts)
        if not len(verts):
            return []
        member = self._base_scratch  # reuse as a membership mark (-1 = out)
        member[zs] = 1
        starts = self._out_indptr[verts]
        counts = self._out_indptr[verts + 1] - starts
        total = int(counts.sum())
        if total == 0:
            member[zs] = -1
            return []
        cum = np.concatenate(([0], np.cumsum(counts)))
        flat = np.repeat(starts - cum[:-1], counts) + np.arange(total)
        outside = member[self._out_dest_cell[flat]] < 0
        seg = np.repeat(np.arange(len(verts)), counts)
        out_counts = np.bincount(seg, weights=outside, minlength=len(verts))
        member[zs] = -1
        return verts[out_counts > 0].tolist()

    # ------------------------------------------------------------------
    # size accounting (Fig. 6)
    # ------------------------------------------------------------------
    def size_bytes(self) -> int:
        """Modelled byte size of the grid using the paper's C layout:
        128 bytes per cell (padded), 32 per overflow vertex element,
        plus the inverted index at one hash entry per edge."""
        total = 0
        for cell in self.cells:
            total += CELL_BYTES
            overflow = max(0, len(cell.elements) - self.config.delta_c)
            total += overflow * VERTEX_BYTES
        total += self.graph.num_edges * (TABLE_ENTRY_BYTES + EDGE_BYTES)
        return total

    def device_nbytes(self) -> int:
        """Size of the GPU-resident copy (no inverted index on device)."""
        total = 0
        for cell in self.cells:
            total += CELL_BYTES
            overflow = max(0, len(cell.elements) - self.config.delta_c)
            total += overflow * VERTEX_BYTES
        return total
