"""The graph grid: an array-based grid index over the road network.

Section III-A: vertices are partitioned into ``2^psi x 2^psi`` cells
(:mod:`repro.partition.grid_assign`), cells are laid out in one array
ordered by Z-value, and each cell stores fixed-capacity arrays — at most
``delta_c`` vertex elements, each holding at most ``delta_v`` *incoming*
edges.  A real vertex with more than ``delta_v`` in-edges spills into
*virtual vertex* elements in the same cell.  An inverted index maps every
edge id to its source vertex and that vertex's cell, which is how a
message ``m = <o, e, d, t>`` is routed to a cell (``getCell`` in
Algorithm 1).

Two identical copies of this structure live on the CPU and the GPU; the
index build ships one copy to the simulated device and accounts the
transfer.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.config import GGridConfig
from repro.errors import UnknownEdgeError
from repro.partition.grid_assign import GridAssignment, assign_cells
from repro.roadnet.graph import RoadNetwork
from repro.simgpu.memory import CELL_BYTES, EDGE_BYTES, TABLE_ENTRY_BYTES, VERTEX_BYTES


@dataclass(frozen=True, slots=True)
class GridEdgeRec:
    """An edge stored in a vertex element: ``<id, v_s, w>``."""

    edge_id: int
    source: int
    weight: float


@dataclass(slots=True)
class GridVertexElement:
    """One vertex slot of a cell: ``<id, A_e, n>``.

    ``real_id`` is the road-network vertex; ``virtual_rank`` is 0 for the
    primary element and ``1, 2, ...`` for the virtual vertices created
    when the in-degree exceeds ``delta_v`` (Section III-A).
    """

    real_id: int
    virtual_rank: int
    edges: list[GridEdgeRec] = field(default_factory=list)

    @property
    def n(self) -> int:
        return len(self.edges)

    @property
    def is_virtual(self) -> bool:
        return self.virtual_rank > 0


@dataclass(slots=True)
class GridCell:
    """One grid cell: ``<A_v, n_v, n_e>`` at Z-position ``z``."""

    z: int
    elements: list[GridVertexElement] = field(default_factory=list)
    #: distinct real vertex ids in this cell (the partitioning output)
    real_vertices: list[int] = field(default_factory=list)
    #: number of edges whose *source* vertex lies in this cell
    n_source_edges: int = 0

    @property
    def n_v(self) -> int:
        return len(self.real_vertices)


class GraphGrid:
    """The assembled grid over a road network.

    Example:
        >>> from repro.roadnet import grid_road_network
        >>> from repro.config import GGridConfig
        >>> g = grid_road_network(6, 6, seed=1)
        >>> grid = GraphGrid.build(g, GGridConfig())
        >>> grid.num_cells >= 1 and grid.cell_of_edge(0) >= 0
        True
    """

    def __init__(
        self,
        graph: RoadNetwork,
        assignment: GridAssignment,
        config: GGridConfig,
    ) -> None:
        self.graph = graph
        self.assignment = assignment
        self.config = config
        self.cells: list[GridCell] = [GridCell(z) for z in range(assignment.num_cells)]
        self.cell_of_vertex: list[int] = list(assignment.cell_of_vertex)
        self._edge_cell: list[int] = [0] * graph.num_edges
        self._edge_source: list[int] = [0] * graph.num_edges
        self._neighbors: list[frozenset[int]] = []
        self._populate()

    @staticmethod
    def build(graph: RoadNetwork, config: GGridConfig) -> "GraphGrid":
        """Partition ``graph`` per the config and assemble the grid."""
        assignment = assign_cells(graph, config.delta_c, seed=config.seed)
        return GraphGrid(graph, assignment, config)

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def _populate(self) -> None:
        delta_v = self.config.delta_v
        for z, vertex_ids in enumerate(self.assignment.vertices_of_cell):
            cell = self.cells[z]
            cell.real_vertices = list(vertex_ids)
            for vid in vertex_ids:
                in_edges = self.graph.in_edges(vid)
                records = [GridEdgeRec(e.id, e.source, e.weight) for e in in_edges]
                if not records:
                    cell.elements.append(GridVertexElement(vid, 0))
                for rank, start in enumerate(range(0, len(records), delta_v)):
                    cell.elements.append(
                        GridVertexElement(vid, rank, records[start : start + delta_v])
                    )
                cell.n_source_edges += self.graph.out_degree(vid)
        # inverted index: edge -> (source vertex, cell of the source vertex)
        for e in self.graph.edges():
            self._edge_source[e.id] = e.source
            self._edge_cell[e.id] = self.cell_of_vertex[e.source]
        # cell adjacency: an edge from cell A to cell B links them both ways
        neighbor_sets: list[set[int]] = [set() for _ in self.cells]
        for e in self.graph.edges():
            a = self.cell_of_vertex[e.source]
            b = self.cell_of_vertex[e.dest]
            if a != b:
                neighbor_sets[a].add(b)
                neighbor_sets[b].add(a)
        self._neighbors = [frozenset(s) for s in neighbor_sets]

    # ------------------------------------------------------------------
    # lookups
    # ------------------------------------------------------------------
    @property
    def num_cells(self) -> int:
        return len(self.cells)

    def cell(self, z: int) -> GridCell:
        return self.cells[z]

    def cell_of_edge(self, edge_id: int) -> int:
        """``getCell``: the cell of the edge's source vertex (Algorithm 1).

        Raises:
            UnknownEdgeError: for edge ids outside the network.
        """
        if not 0 <= edge_id < len(self._edge_cell):
            raise UnknownEdgeError(f"unknown edge id {edge_id}")
        return self._edge_cell[edge_id]

    def source_of_edge(self, edge_id: int) -> int:
        if not 0 <= edge_id < len(self._edge_source):
            raise UnknownEdgeError(f"unknown edge id {edge_id}")
        return self._edge_source[edge_id]

    def neighbors(self, z: int) -> frozenset[int]:
        """Cells sharing at least one edge with cell ``z`` (Section V-A)."""
        return self._neighbors[z]

    def neighbors_of_set(self, cells: set[int]) -> set[int]:
        """``neighbors(L) \\ L``: the next expansion ring of Algorithm 4."""
        ring: set[int] = set()
        for z in cells:
            ring |= self._neighbors[z]
        return ring - cells

    def vertices_of_cells(self, cells: set[int]) -> list[int]:
        """Distinct real vertex ids across ``cells`` (the set ``V``)."""
        result: list[int] = []
        for z in sorted(cells):
            result.extend(self.cells[z].real_vertices)
        return result

    def elements_of_cells(self, cells: set[int]) -> list[GridVertexElement]:
        """Vertex elements (incl. virtual) across ``cells``; one GPU thread
        is assigned per element in ``GPU_SDist``."""
        result: list[GridVertexElement] = []
        for z in sorted(cells):
            result.extend(self.cells[z].elements)
        return result

    def boundary_vertices(self, cells: set[int]) -> list[int]:
        """Vertices "on the edge of" ``cells`` (Definition 3): vertices with
        an out-edge whose destination lies outside the cell set."""
        result = []
        for vid in self.vertices_of_cells(cells):
            for e in self.graph.out_edges(vid):
                if self.cell_of_vertex[e.dest] not in cells:
                    result.append(vid)
                    break
        return result

    # ------------------------------------------------------------------
    # size accounting (Fig. 6)
    # ------------------------------------------------------------------
    def size_bytes(self) -> int:
        """Modelled byte size of the grid using the paper's C layout:
        128 bytes per cell (padded), 32 per overflow vertex element,
        plus the inverted index at one hash entry per edge."""
        total = 0
        for cell in self.cells:
            total += CELL_BYTES
            overflow = max(0, len(cell.elements) - self.config.delta_c)
            total += overflow * VERTEX_BYTES
        total += self.graph.num_edges * (TABLE_ENTRY_BYTES + EDGE_BYTES)
        return total

    def device_nbytes(self) -> int:
        """Size of the GPU-resident copy (no inverted index on device)."""
        total = 0
        for cell in self.cells:
            total += CELL_BYTES
            overflow = max(0, len(cell.elements) - self.config.delta_c)
            total += overflow * VERTEX_BYTES
        return total
