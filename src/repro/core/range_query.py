"""Range queries over the G-Grid: all objects within a network radius.

A natural extension of the paper's machinery (the "find every car within
2 km" companion of the kNN query).  The same lazy cleaning and restricted
GPU distance computation apply, with a cleaner termination argument than
kNN needs:

    expand and clean candidate-cell rings until **every boundary vertex
    of the cleaned set has restricted distance >= radius**.

At that point the restricted distances are exact for everything that
matters: any true shortest path that leaves the cleaned set first exits
at some boundary vertex ``u`` with an in-set prefix of length
``>= D[u] >= radius``, so neither an outside object nor an
out-and-back shortcut can beat the radius.  No CPU refinement phase is
needed — Theorem-style exactness falls out of the stopping rule (tested
against the brute-force oracle in ``tests/core/test_range_query.py``).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.cleaning import CleanedLocation
from repro.core.knn import KnnProcessor, KnnResultEntry
from repro.core.ordering import rank_results
from repro.core.sdist import get_sdist_kernel
from repro.errors import QueryError
from repro.roadnet.location import NetworkLocation, entry_costs, location_distance

_INF = float("inf")


@dataclass
class RangeAnswer:
    """Objects within ``radius`` of the query, ascending by distance."""

    entries: list[KnnResultEntry] = field(default_factory=list)
    cells_cleaned: int = 0
    rounds: int = 0

    def objects(self) -> list[int]:
        return [e.obj for e in self.entries]

    def distances(self) -> list[float]:
        return [e.distance for e in self.entries]


def range_query(
    processor: KnnProcessor,
    location: NetworkLocation,
    radius: float,
    t_now: float,
) -> RangeAnswer:
    """All objects within network distance ``radius`` of ``location``.

    Args:
        processor: a G-Grid's kNN processor (shares its cleaner/GPU).
        location: the query location.
        radius: network-distance radius (``> 0``).
        t_now: query time.

    Raises:
        QueryError: for non-positive radii.
    """
    if radius <= 0:
        raise QueryError(f"radius must be positive, got {radius}")
    location.validate(processor.graph)
    answer = RangeAnswer()
    grid = processor.grid
    config = processor.config

    c_q = grid.cell_of_edge(location.edge_id)
    frontier = {c_q} | set(grid.neighbors(c_q))
    cells: set[int] = set()
    occupants: dict[int, tuple[int, CleanedLocation]] = {}
    seeds = entry_costs(processor.graph, location)
    dist: dict[int, float] = {}

    while frontier:
        result = processor.cleaner.clean(
            {c: processor.lists[c] if c in processor.lists else processor._list_of(c)
             for c in frontier},
            t_now,
            processor.object_table,
        )
        occupants.update(result.all_objects())
        cells |= frontier
        answer.rounds += 1

        slab = grid.pack_of_cells(cells)
        dist = processor.gpu.launch(
            "GPU_SDist",
            max(1, len(slab)),
            get_sdist_kernel(config.sdist_backend),
            slab,
            slab.vertex_list,
            seeds,
            config.delta_v,
            config.sdist_early_exit,
        )
        boundary = grid.boundary_vertices(cells)
        open_boundary = [v for v in boundary if dist.get(v, _INF) < radius]
        if not open_boundary:
            break
        # expand only around still-open boundary vertices
        open_cells = {grid.cell_of_vertex[v] for v in open_boundary}
        ring = grid.neighbors_of_set(cells)
        frontier = {
            c for c in ring
            if any(c in grid.neighbors(oc) for oc in open_cells)
        } or ring

    answer.cells_cleaned = len(cells)
    scored = []
    for obj, (_, loc) in occupants.items():
        target = NetworkLocation(loc.edge, loc.offset)
        d = location_distance(processor.graph, dist, location, target)
        if d <= radius:
            scored.append((obj, d))
    # canonical result order (distance, then object id) — repro.core.ordering
    answer.entries = [KnnResultEntry(obj, d) for obj, d in rank_results(scored)]
    return answer
