"""Bucketed per-cell message lists (Section III-C).

Each grid cell owns a linked list of fixed-capacity buckets holding the
location updates that arrived for that cell, in chronological order.  A
list carries three pointers: ``p_h`` (head), ``p_t`` (tail) and ``p_l``
(lock) — buckets *before* ``p_l`` are frozen for an in-flight cleaning
pass (Section IV-B1) while new messages keep appending at the tail, so
ingest never blocks on cleaning.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

import numpy as np

from repro.errors import CapacityError, CleaningLockError
from repro.core.messages import Message
from repro.simgpu.memory import MESSAGE_BYTES


@dataclass
class Bucket:
    """A fixed-capacity message bucket: ``<A_m, n, t, p_n>``.

    ``t`` is the timestamp of the *latest* message in the bucket — the
    maximum over all messages, not the last one's.  Removal markers and
    skewed client clocks can append out of order, and ``t`` feeds the
    whole-bucket stale-pruning of :meth:`MessageList.locked_buckets`:
    taking the last message's timestamp would let a bucket holding a
    fresh message be discarded as wholly obsolete.  ``cell`` is carried
    for diagnostics only (overflow errors name the cell).
    """

    capacity: int
    messages: list[Message] = field(default_factory=list)
    next: "Bucket | None" = None
    cell: int | None = None
    #: cached ``(obj, t, removal_flag)`` columns + the length they cover
    _cols: tuple[np.ndarray, np.ndarray, np.ndarray, int] | None = field(
        default=None, repr=False, compare=False
    )

    @property
    def n(self) -> int:
        return len(self.messages)

    def columns(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Array-backed ``(obj, t, flag)`` columns over the messages.

        ``flag`` is the sort-key tiebreak of
        :attr:`repro.core.messages.Message.sort_key`: 0 for removal
        markers, 1 for location updates.  Cached until the bucket grows
        (buckets are append-only), so repeated host dedups of the same
        backlog pay the materialisation once.
        """
        cols = self._cols
        n = len(self.messages)
        if cols is None or cols[3] != n:
            cols = (
                np.fromiter((m.obj for m in self.messages), np.int64, n),
                np.fromiter((m.t for m in self.messages), np.float64, n),
                np.fromiter(
                    (0 if m.is_removal else 1 for m in self.messages), np.int64, n
                ),
                n,
            )
            self._cols = cols
        return cols[0], cols[1], cols[2]

    @property
    def t(self) -> float:
        """Latest message time (max over the bucket); ``-inf`` if empty."""
        return max(m.t for m in self.messages) if self.messages else float("-inf")

    @property
    def full(self) -> bool:
        return len(self.messages) >= self.capacity

    def append(self, message: Message) -> None:
        if self.full:
            where = "unassigned" if self.cell is None else str(self.cell)
            raise CapacityError(
                f"bucket full at capacity {self.capacity} "
                f"(cell={where}, n={self.n})"
            )
        self.messages.append(message)

    def device_nbytes(self) -> int:
        """Transfer size: the paper ships only the used message slots."""
        return self.n * MESSAGE_BYTES


class MessageList:
    """The per-cell chronological update log.

    Example:
        >>> lst = MessageList(capacity=2)
        >>> for i in range(5):
        ...     lst.append(Message(obj=1, edge=0, offset=0.0, t=float(i)))
        >>> lst.num_messages, lst.num_buckets
        (5, 3)
    """

    def __init__(
        self,
        capacity: int,
        cell: int | None = None,
        max_buckets: int | None = None,
    ) -> None:
        """Args:
            capacity: messages per bucket (``delta_b``).
            cell: owning cell id, carried into overflow diagnostics.
            max_buckets: optional backlog cap — :meth:`append` refuses to
                open a bucket beyond this many, raising
                :class:`~repro.errors.CapacityError` so the caller can
                force an in-line cleaning (backpressure) instead of
                growing without bound.  ``None`` (default) is unbounded.
        """
        if capacity < 1:
            raise CapacityError(f"bucket capacity must be >= 1, got {capacity}")
        if max_buckets is not None and max_buckets < 1:
            raise CapacityError(f"max_buckets must be >= 1, got {max_buckets}")
        self.capacity = capacity
        self.cell = cell
        self.max_buckets = max_buckets
        self._head: Bucket | None = None
        self._tail: Bucket | None = None
        self._lock: Bucket | None = None  # p_l: cleaning frontier

    # ------------------------------------------------------------------
    # ingest path
    # ------------------------------------------------------------------
    def append(self, message: Message) -> None:
        """Append a message at the tail, opening a new bucket when full.

        Raises:
            CapacityError: opening a new bucket would exceed
                ``max_buckets``; the message names the cell and the
                backlog depth so chaos-test failures are diagnosable.
        """
        if self._tail is None or self._tail.full:
            if self.max_buckets is not None and self.num_buckets >= self.max_buckets:
                where = "unassigned" if self.cell is None else str(self.cell)
                raise CapacityError(
                    f"message list overflow in cell {where}: backlog depth "
                    f"{self.num_buckets} buckets / {self.num_messages} messages "
                    f"at max_buckets={self.max_buckets}; clean the cell to "
                    f"compact before appending"
                )
            bucket = Bucket(self.capacity, cell=self.cell)
            if self._tail is None:
                self._head = self._tail = bucket
            else:
                self._tail.next = bucket
                self._tail = bucket
        self._tail.append(message)

    # ------------------------------------------------------------------
    # cleaning protocol (Section IV-B1)
    # ------------------------------------------------------------------
    @property
    def locked(self) -> bool:
        """True while a cleaning pass owns this list (``p_l`` is set).

        A lock taken on an empty list freezes nothing, but the list is
        still owned by that pass — a second ``lock_for_cleaning`` must
        not steal it, so emptiness does not clear this flag.
        """
        return self._lock is not None

    def lock_for_cleaning(self) -> None:
        """Freeze the current contents: append a fresh (empty) tail bucket
        and point ``p_l`` at it.  Everything before ``p_l`` belongs to the
        cleaner; new messages land in / after the fresh bucket.

        Raises:
            CleaningLockError: the list is already locked.  Re-locking
                would advance ``p_l`` past messages appended after the
                first lock, and the eventual ``release_cleaned`` would
                destroy them without any cleaner ever seeing them.
        """
        if self._lock is not None:
            where = "unassigned" if self.cell is None else str(self.cell)
            raise CleaningLockError(
                f"message list of cell {where} is already locked for "
                f"cleaning; release or abort the in-flight pass first"
            )
        fresh = Bucket(self.capacity, cell=self.cell)
        if self._tail is None:
            self._head = self._tail = fresh
        else:
            self._tail.next = fresh
            self._tail = fresh
        self._lock = fresh

    def locked_buckets(self, t_now: float, t_delta: float) -> list[Bucket]:
        """The live locked buckets to ship to the GPU.

        Buckets whose latest message is older than ``t_now - t_delta`` are
        wholly obsolete (every object must update at least once per
        ``t_delta``) and are skipped — the paper discards them outright.
        """
        cutoff = t_now - t_delta
        result = []
        node = self._head
        while node is not None and node is not self._lock:
            if node.t >= cutoff and node.n > 0:
                result.append(node)
            node = node.next
        return result

    def unlock_abort(self) -> None:
        """Abandon a cleaning pass without consuming anything.

        Clears ``p_l`` so the frozen buckets rejoin the live list intact;
        used when the GPU pipeline fails mid-clean (e.g. device memory
        exhaustion) so no cached update is ever lost to a fault.
        """
        self._lock = None

    def release_cleaned(self) -> int:
        """Drop the buckets consumed by a finished cleaning pass.

        Returns the number of messages discarded.  The list head moves to
        ``p_l`` (the bucket that was fresh at lock time) and the lock
        clears.

        Raises:
            CleaningLockError: no cleaning lock is held.  Releasing an
                unlocked list would walk to the null lock pointer and
                destroy every cached message.
        """
        if self._lock is None:
            where = "unassigned" if self.cell is None else str(self.cell)
            raise CleaningLockError(
                f"release_cleaned on cell {where} without an in-flight "
                f"cleaning lock"
            )
        dropped = 0
        node = self._head
        while node is not None and node is not self._lock:
            dropped += node.n
            node = node.next
        self._head = self._lock if self._lock is not None else None
        if self._head is None:
            self._tail = None
        self._lock = None
        return dropped

    def prepend_snapshot(self, messages: list[Message]) -> None:
        """Re-insert a cleaned snapshot before the current head.

        Section IV-B4: the final result table ``R`` is sent back to the
        CPU "to update the message lists of the corresponding cells" —
        i.e. the cleaned per-object latest locations become the compacted
        new content of the list, ahead of anything that arrived after the
        cleaning lock.  ``messages`` must be in chronological order (their
        timestamps precede any post-lock message by construction).

        On a *locked* list the snapshot is inserted at the lock frontier
        — between the frozen region and ``p_l`` — and ``p_l`` is moved
        back onto the first snapshot bucket.  Inserting before ``p_l``
        without moving it would put the snapshot inside the region a
        later ``release_cleaned`` discards, silently dropping it.
        """
        if not messages:
            return
        buckets: list[Bucket] = []
        for start in range(0, len(messages), self.capacity):
            bucket = Bucket(
                self.capacity,
                list(messages[start : start + self.capacity]),
                cell=self.cell,
            )
            buckets.append(bucket)
        for earlier, later in zip(buckets, buckets[1:]):
            earlier.next = later
        if self._lock is not None:
            # find the predecessor of p_l, splice the snapshot in just
            # before it and repoint p_l so the snapshot survives release
            prev = None
            node = self._head
            while node is not self._lock:
                prev = node
                node = node.next
            buckets[-1].next = self._lock
            if prev is None:
                self._head = buckets[0]
            else:
                prev.next = buckets[0]
            self._lock = buckets[0]
            return
        buckets[-1].next = self._head
        self._head = buckets[0]
        if self._tail is None:
            self._tail = buckets[-1]

    # ------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------
    def buckets(self) -> Iterator[Bucket]:
        node = self._head
        while node is not None:
            yield node
            node = node.next

    @property
    def num_buckets(self) -> int:
        return sum(1 for _ in self.buckets())

    @property
    def num_messages(self) -> int:
        return sum(b.n for b in self.buckets())

    def messages(self) -> list[Message]:
        """All cached messages in chronological order (test helper)."""
        return [m for b in self.buckets() for m in b.messages]

    def size_bytes(self) -> int:
        """Modelled footprint: full slot arrays plus bucket headers."""
        return self.num_buckets * (self.capacity * MESSAGE_BYTES + 16)
