"""Message cleaning: materialising cached updates on demand (Algorithm 2).

Given the message lists of the cells a query touches, cleaning

1. **locks** each list (fresh tail bucket, ``p_l`` pointer) and gathers
   the live buckets, discarding buckets whose newest message is older
   than ``t_now - t_delta`` (every object must update at least once per
   ``t_delta``, so such buckets are wholly obsolete);
2. **ships** the buckets to the GPU — pipelined, so the device cleans
   early chunks while later chunks are still in flight (Section V-A);
3. **deduplicates** them with the X-shuffle kernel into the intermediate
   table ``T`` (one candidate slot per object per bundle);
4. **collects** the per-object latest messages into the result table
   ``R``, copies ``R`` back and rewrites each cell's message list as the
   compacted snapshot (one message per live object).

The result — the up-to-date occupants of every cleaned cell — is what the
kNN candidate phase consumes.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

import numpy as np

from repro.config import GGridConfig
from repro.core.message_list import Bucket, MessageList
from repro.core.messages import CellMessage, Message
from repro.core.object_table import ObjectTable
from repro.core.xshuffle import IntermediateTable, collect_kernel, x_shuffle_kernel
from repro.obs.tracing import span
from repro.simgpu.device import SimGpu
from repro.simgpu.memory import MESSAGE_BYTES
from repro.simgpu.stream import PipelinedStream

#: Buckets are shipped to the GPU in chunks of this many bundles.
_CHUNK_BUNDLES = 4

#: Host dedup switches from the scalar loop to the columnar lexsort at
#: this many messages (numpy setup costs more than it saves below it).
_HOST_DEDUP_SCALAR_MAX = 64


@dataclass(frozen=True, slots=True)
class CleanedLocation:
    """Latest known position of an object after cleaning."""

    edge: int
    offset: float
    t: float


@dataclass
class CleaningResult:
    """Outcome of one ``Message_Cleaning`` invocation.

    Attributes:
        occupants: per cleaned cell, the live objects and their latest
            locations (removal-marker-latest objects are excluded).
        cells: the cells actually cleaned (locked lists are skipped).
        messages_processed: messages the GPU kernels consumed.
        buckets_shipped: buckets transferred to the device.
        messages_dropped: messages discarded as obsolete before transfer.
    """

    occupants: dict[int, dict[int, CleanedLocation]] = field(default_factory=dict)
    cells: set[int] = field(default_factory=set)
    messages_processed: int = 0
    buckets_shipped: int = 0
    messages_dropped: int = 0
    objects_expired: int = 0

    def all_objects(self) -> dict[int, tuple[int, CleanedLocation]]:
        """Flatten to ``{obj: (cell, location)}``."""
        flat: dict[int, tuple[int, CleanedLocation]] = {}
        for cell, objs in self.occupants.items():
            for obj, loc in objs.items():
                flat[obj] = (cell, loc)
        return flat


class MessageCleaner:
    """Executes Algorithm 2 against a set of per-cell message lists."""

    def __init__(self, gpu: SimGpu, config: GGridConfig) -> None:
        self.gpu = gpu
        self.config = config
        self._rng = random.Random(config.seed ^ 0x5EED)
        self._stream = PipelinedStream(gpu, enabled=config.pipelined_transfers)
        #: lifetime counters the batching cost tests and the ``batch``
        #: experiment compare: cleaning passes completed and cells
        #: cleaned across them (a cell re-cleaned by a later pass counts
        #: again — that repetition is exactly what epoch batching dedups)
        self.cleanings_total = 0
        self.cells_cleaned_total = 0

    def clean(
        self,
        lists: dict[int, MessageList],
        t_now: float,
        object_table: ObjectTable,
        use_gpu: bool = True,
    ) -> CleaningResult:
        """Clean the given cells' message lists; see the module docstring.

        Args:
            lists: ``{cell id: its message list}`` for the cells to clean.
            t_now: current time (prunes buckets older than ``t_delta``).
            object_table: the eager object table, used to drop objects
                whose newest message lives in a cell outside this pass.
            use_gpu: run steps 2-4 on the device (the paper's pipeline).
                ``False`` deduplicates on the host instead — the
                degraded-mode rung used when the device is faulting; the
                result (and the compacted lists) are identical, only the
                X-shuffle/transfer machinery is bypassed.
        """
        with span("clean_cells") as sp:
            result = self._clean(lists, t_now, object_table, use_gpu)
            sp.set_attr("cells", len(result.cells))
            sp.set_attr("messages", result.messages_processed)
            sp.set_attr("buckets", result.buckets_shipped)
        self.cleanings_total += 1
        self.cells_cleaned_total += len(result.cells)
        return result

    def _clean(
        self,
        lists: dict[int, MessageList],
        t_now: float,
        object_table: ObjectTable,
        use_gpu: bool = True,
    ) -> CleaningResult:
        result = CleaningResult()
        config = self.config

        # -- step 1: preprocessing — lock lists and gather live buckets --
        locked: dict[int, MessageList] = {}
        live_pairs: list[tuple[int, Bucket]] = []
        for cell, mlist in lists.items():
            if mlist.locked:  # concurrent cleaning owns it: skip safely
                continue
            before = mlist.num_messages
            mlist.lock_for_cleaning()
            locked[cell] = mlist
            live = mlist.locked_buckets(t_now, config.t_delta)
            shipped = 0
            for bucket in live:
                live_pairs.append((cell, bucket))
                shipped += bucket.n
            result.messages_dropped += before - shipped
            result.cells.add(cell)
        result.buckets_shipped = len(live_pairs)

        try:
            if use_gpu:
                tagged_buckets = [
                    [CellMessage.tag(m, cell) for m in bucket.messages]
                    for cell, bucket in live_pairs
                ]
                latest = self._run_gpu_pipeline(tagged_buckets, result)
            else:
                latest = self._dedup_host(live_pairs, result)
        except Exception:
            # fault during the GPU phase: put every frozen bucket back —
            # cached updates must survive any cleaning failure
            for mlist in locked.values():
                mlist.unlock_abort()
            self.gpu.free("clean.T")
            self.gpu.free("clean.R")
            raise

        # -- step 4 (CPU side): build R, reconcile with the object table,
        #    and rewrite the cleaned lists as compacted snapshots --
        for cell in locked:
            result.occupants[cell] = {}
        # expire contract violators from the object table too: an object
        # whose last report predates t_now - t_delta was pruned from the
        # message lists above, and leaving it in the table would let the
        # CPU refinement (which enumerates objects via the table) see a
        # different world than the GPU candidate phase
        cutoff = t_now - config.t_delta
        for cell in locked:
            # columnar scan: one vectorised timestamp compare per cell;
            # the expired ids are materialised before removal mutates the
            # underlying per-cell set
            cols = object_table.cell_columns(cell)
            if cols is None:
                continue
            for obj in cols.objs[cols.ts < cutoff].tolist():
                object_table.remove(obj)
                result.objects_expired += 1
        for obj, message in latest.items():
            if message.is_removal:
                continue  # the object left this cell
            entry = object_table.try_get(obj)
            if entry is None or entry.cell != message.cell:
                continue  # moved away; its newer message lives elsewhere
            result.occupants.setdefault(message.cell, {})[obj] = CleanedLocation(
                message.edge, message.offset, message.t
            )

        for cell, mlist in locked.items():
            mlist.release_cleaned()
            snapshot = [
                Message(obj, loc.edge, loc.offset, loc.t)
                for obj, loc in sorted(
                    result.occupants.get(cell, {}).items(),
                    key=lambda kv: kv[1].t,
                )
            ]
            mlist.prepend_snapshot(snapshot)
        return result

    def _dedup_host(
        self,
        live_pairs: list[tuple[int, Bucket]],
        result: CleaningResult,
    ) -> dict[int, CellMessage]:
        """Degraded-mode steps 2-4 on the host: per-object latest message.

        Semantically identical to X-shuffle + collect (which keep the
        message with the greatest :attr:`CellMessage.sort_key` per
        object, removal markers losing timestamp ties) without touching
        the device.  Used by the resilience ladder when the GPU is
        faulting; the wall time it costs is charged through the normal
        CPU-phase measurement of the caller.

        Above ``_HOST_DEDUP_SCALAR_MAX`` messages the scan runs over the
        buckets' cached ``(obj, t, removal)`` columns with one lexsort
        instead of a per-message dict probe; the winner per object (the
        *first* message carrying the maximal ``(t, flag)`` key) and even
        the result's insertion order (objects by first occurrence) match
        the scalar loop exactly — equivalence-tested in
        ``tests/core/test_cleaning.py``.
        """
        total = sum(bucket.n for _, bucket in live_pairs)
        with span("dedup_host") as sp:
            result.messages_processed += total
            sp.set_attr("messages", total)
            if total == 0:
                return {}
            if total <= _HOST_DEDUP_SCALAR_MAX:
                winners: dict[int, tuple[tuple[float, int], int, Message]] = {}
                for cell, bucket in live_pairs:
                    for m in bucket.messages:
                        key = (m.t, 0 if m.is_removal else 1)
                        prev = winners.get(m.obj)
                        if prev is None or prev[0] < key:
                            winners[m.obj] = (key, cell, m)
                return {
                    obj: CellMessage.tag(m, cell)
                    for obj, (_, cell, m) in winners.items()
                }
            # columnar path: concatenate the bucket columns, lexsort by
            # (obj, t, flag, -seq) and take each object group's last row
            objs = np.empty(total, dtype=np.int64)
            ts = np.empty(total, dtype=np.float64)
            flags = np.empty(total, dtype=np.int64)
            starts: list[int] = []
            at = 0
            for cell, bucket in live_pairs:
                o, t, fl = bucket.columns()
                n = len(o)
                objs[at : at + n] = o
                ts[at : at + n] = t
                flags[at : at + n] = fl
                starts.append(at)
                at += n
            seq = np.arange(total, dtype=np.int64)
            order = np.lexsort((-seq, flags, ts, objs))
            sorted_objs = objs[order]
            last = np.nonzero(np.append(sorted_objs[1:] != sorted_objs[:-1], True))[0]
            group_starts = np.concatenate(([0], last[:-1] + 1))
            win_seq = order[last]  # earliest message with the max (t, flag)
            # scalar-identical insertion order: objects by first occurrence
            first_seq = np.minimum.reduceat(order, group_starts)
            group_rank = np.argsort(first_seq, kind="stable")
            pair_starts = np.asarray(starts, dtype=np.int64)
            pair_idx = np.searchsorted(pair_starts, win_seq, side="right") - 1
            latest: dict[int, CellMessage] = {}
            for g in group_rank.tolist():
                s = int(win_seq[g])
                pi = int(pair_idx[g])
                cell, bucket = live_pairs[pi]
                m = bucket.messages[s - int(pair_starts[pi])]
                latest[m.obj] = CellMessage.tag(m, cell)
            return latest

    def _run_gpu_pipeline(
        self,
        tagged_buckets: list[list[CellMessage]],
        result: CleaningResult,
    ) -> dict[int, CellMessage]:
        """Steps 2-4 (GPU side): ship, X-shuffle and collect."""
        if not tagged_buckets:
            return {}
        config = self.config
        bundle_size = config.bundle_size
        num_bundles = -(-len(tagged_buckets) // bundle_size)

        # -- step 2: prepare device memory for T --
        table = IntermediateTable(num_bundles)
        self.gpu.memory.store("clean.T", table, nbytes=0)

        # -- step 3: pipelined transfer + parallel X-shuffle cleaning --
        chunk_size = _CHUNK_BUNDLES * bundle_size
        chunks = [
            tagged_buckets[i : i + chunk_size]
            for i in range(0, len(tagged_buckets), chunk_size)
        ]

        def process(chunk_index: int, chunk: list[list[CellMessage]]) -> int:
            first_bundle = chunk_index * _CHUNK_BUNDLES
            return self.gpu.launch(
                "GPU_X_Shuffle",
                len(chunk),
                x_shuffle_kernel,
                chunk,
                config.eta,
                table,
                first_bundle,
                self._rng,
            )

        with span("xshuffle_dedup") as sp:
            processed = self._stream.run(chunks, process, name="clean.buckets")
            result.messages_processed += sum(processed)
            sp.set_attr("chunks", len(chunks))
            sp.set_attr("messages", sum(processed))

        # -- step 4 (GPU side): collect the latest message per object --
        with span("collect"):
            latest = self.gpu.launch(
                "GPU_Collect", max(1, len(table.slots)), collect_kernel, table
            )
            self.gpu.memory.store(
                "clean.R", latest, nbytes=len(latest) * MESSAGE_BYTES
            )
            self.gpu.from_device("clean.R")
            self.gpu.free("clean.R")
            self.gpu.free("clean.T")
        return latest
