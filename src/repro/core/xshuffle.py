"""GPU_X_Shuffle: lock-free message deduplication (Algorithm 3).

One GPU thread is assigned per message bucket; threads are grouped into
bundles of ``2^eta`` lanes.  In every round each thread reads one message
from its bucket, then the bundle performs ``eta`` butterfly shuffles with
lane masks ``2^(eta-1) ... 2^0``.  Between shuffles each thread checks the
message it received against a small per-thread cache ``Gamma``: an older
message of a cached object is *replaced in flight* by the cached newer
one, which is how duplicates die without any lock.  Theorem 1 guarantees
at most ``mu(eta)`` distinct messages of any object survive a round, so
the final racy writes into the intermediate table ``T`` need only be
repeated ``mu(eta)`` times to ensure the newest message lands.

The write race is simulated faithfully: every repetition, all lanes read a
snapshot of ``T``, decide whether to write, and the writes are applied in
a seeded random order with last-write-wins — exactly the hazard a real
GPU exhibits.  The convergence argument (each repetition strictly
increases the stored timestamp while a newer message exists, and there
are at most ``mu(eta)`` distinct values) is what the property tests
exercise.

Deviations from the paper's pseudocode (both required for Theorem 1 to
hold, see ``tests/core/test_xshuffle.py``):

* the cache ``Gamma`` is cleared at the start of each read round —
  Algorithm 3 allocates it once, but its size-``eta`` capacity is only
  sufficient per round; clearing keeps the bound tight and cannot lose
  messages (a cached entry only duplicates a message still in flight);
* a final cache check runs *after* the last shuffle — Algorithm 3's loop
  checks before shuffling, so a message arriving on the ``eta``-th
  shuffle would never meet the cache, yet the coverage argument behind
  Theorem 1 (Lemma 1 with ``k = eta``) counts exactly those meetings.
  Without the final check, a 4-lane bundle can end with 2 distinct
  survivors where ``mu`` says 1.

All bundles of a launch execute in lockstep on the device, so the kernel
charges its work once over the full thread count (rounds x (read + eta
cache/compare steps + eta shuffles) + mu(eta) table-write repetitions);
only the racy atomic writes are charged per actual conflict.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.core.messages import CellMessage
from repro.core.mu import mu
from repro.simgpu import warp as warp_mod
from repro.simgpu.kernel import KernelContext


@dataclass
class IntermediateTable:
    """The table ``T``: per object, one candidate slot per bundle."""

    num_bundles: int
    slots: dict[int, list[CellMessage | None]] = field(default_factory=dict)

    def slot(self, obj: int, bundle: int) -> CellMessage | None:
        row = self.slots.get(obj)
        return row[bundle] if row is not None else None

    def store(self, obj: int, bundle: int, message: CellMessage) -> None:
        row = self.slots.get(obj)
        if row is None:
            row = [None] * self.num_bundles
            self.slots[obj] = row
        row[bundle] = message

    def device_nbytes(self) -> int:
        from repro.simgpu.memory import MESSAGE_BYTES, TABLE_ENTRY_BYTES

        return sum(
            TABLE_ENTRY_BYTES + self.num_bundles * MESSAGE_BYTES for _ in self.slots
        )


def x_shuffle_kernel(
    ctx: KernelContext,
    buckets: list[list[CellMessage]],
    eta: int,
    table: IntermediateTable,
    first_bundle: int,
    rng: random.Random,
) -> int:
    """Clean a batch of buckets into ``table``; returns messages processed.

    Args:
        ctx: kernel context for work accounting.
        buckets: one message bucket per thread (ragged; short/empty
            buckets read ``None`` past their end).
        eta: bundle-size exponent (``2^eta`` lanes per bundle).
        table: the shared intermediate table ``T``.
        first_bundle: global bundle index of this batch's first bundle
            (bundles from different pipeline chunks must not collide).
        rng: seeded source for the simulated write-race ordering.
    """
    bundle_size = 1 << eta
    mu_eta = mu(eta)
    processed = 0
    atomic_writes = 0
    for start in range(0, len(buckets), bundle_size):
        bundle = buckets[start : start + bundle_size]
        bundle = bundle + [[] for _ in range(bundle_size - len(bundle))]
        bundle_id = first_bundle + start // bundle_size
        done, writes = _clean_bundle(bundle, eta, mu_eta, table, bundle_id, rng)
        processed += done
        atomic_writes += writes

    # Lockstep accounting over the whole launch: every thread walks the
    # longest bucket's rounds (shorter buckets idle but stay in step).
    rounds = max((len(b) for b in buckets), default=0)
    if rounds:
        # register work per round: (eta + 1) x (cache lookup + compare)
        ctx.charge(rounds * 2 * (eta + 1))
        # global-memory work per round: the bucket read + mu snapshot
        # reads of T (this is what makes very large serial buckets —
        # few threads, many rounds — lose in Fig. 4a)
        ctx.charge_mem(rounds * (1 + mu_eta))
        for _ in range(rounds * eta):
            ctx.charge_shuffle(bundle_size)
    ctx.charge_atomic(atomic_writes)
    return processed


def shuffle_round(
    lanes: list[CellMessage | None], eta: int
) -> list[CellMessage | None]:
    """One cache-and-shuffle round over a bundle's lanes (Algorithm 3
    lines 5-10 plus the final post-shuffle check, see module docstring).

    Returns the surviving per-lane messages; at most ``mu(eta)`` distinct
    messages of any single object remain, and the newest message of every
    object is always among the survivors.
    """
    bundle_size = 1 << eta
    lanes = list(lanes)
    caches: list[dict[int, CellMessage]] = [dict() for _ in range(bundle_size)]

    def check(lane: int) -> None:
        m = lanes[lane]
        if m is None:
            return
        cached = caches[lane].get(m.obj)
        if cached is None or cached.sort_key < m.sort_key:
            caches[lane][m.obj] = m
        else:
            lanes[lane] = cached  # carry the newer message onward

    for j in range(1, eta + 1):
        for lane in range(bundle_size):
            check(lane)
        lanes = warp_mod.shuffle_xor(lanes, 1 << (eta - j))
    for lane in range(bundle_size):
        check(lane)  # final check: meetings at the eta-th shuffle count
    return lanes


def _clean_bundle(
    bundle: list[list[CellMessage]],
    eta: int,
    mu_eta: int,
    table: IntermediateTable,
    bundle_id: int,
    rng: random.Random,
) -> tuple[int, int]:
    """Run Algorithm 3 on one bundle; returns (messages, atomic writes)."""
    rounds = max((len(b) for b in bundle), default=0)
    processed = 0
    atomic_writes = 0
    for i in range(rounds - 1, -1, -1):
        # every lane reads one message from its bucket (line 4)
        read: list[CellMessage | None] = [
            bucket[i] if i < len(bucket) else None for bucket in bundle
        ]
        processed += sum(1 for m in read if m is not None)
        lanes = shuffle_round(read, eta)
        # racy table writes, repeated mu(eta) times (lines 11-13)
        for _ in range(mu_eta):
            snapshot = {
                lane: table.slot(m.obj, bundle_id)
                for lane, m in enumerate(lanes)
                if m is not None
            }
            writers = [
                lane
                for lane, m in enumerate(lanes)
                if m is not None
                and (snapshot[lane] is None or snapshot[lane].sort_key < m.sort_key)
            ]
            rng.shuffle(writers)  # last write wins, in arbitrary order
            for lane in writers:
                table.store(lanes[lane].obj, bundle_id, lanes[lane])
            atomic_writes += len(writers)
    return processed, atomic_writes


def collect_kernel(
    ctx: KernelContext, table: IntermediateTable
) -> dict[int, CellMessage]:
    """``GPU_Collect``: reduce each object's bundle slots to its latest.

    One thread per object scans the object's per-bundle candidates and
    returns ``{obj: latest message}``.
    """
    result: dict[int, CellMessage] = {}
    for obj, row in table.slots.items():
        latest: CellMessage | None = None
        for m in row:
            if m is not None and (latest is None or m.sort_key > latest.sort_key):
                latest = m
        if latest is not None:
            result[obj] = latest
    # parallel reduction over the bundle axis: log2 depth per object
    depth = max(1, (table.num_bundles - 1).bit_length())
    ctx.charge(depth, n_threads=max(1, len(table.slots)))
    return result
