"""The paper's contribution: the G-Grid index and its query processor.

Public surface:

* :class:`repro.core.ggrid.GGridIndex` — build, ingest updates
  (Algorithm 1), clean lazily (Algorithms 2–3) and answer kNN queries
  (Algorithms 4–6);
* :class:`repro.config.GGridConfig` — every tunable;
* :mod:`repro.core.mu` — the combinatorics behind the X-shuffle bound.
"""

from repro.config import GGridConfig
from repro.core.ggrid import GGridIndex
from repro.core.knn import BatchExecStats, KnnAnswer, KnnResultEntry
from repro.core.messages import Message
from repro.core.mu import mu
from repro.core.range_query import RangeAnswer

__all__ = [
    "BatchExecStats",
    "GGridConfig",
    "GGridIndex",
    "Message",
    "KnnAnswer",
    "KnnResultEntry",
    "RangeAnswer",
    "mu",
]
