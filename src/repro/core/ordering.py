"""The canonical kNN result order: ``(distance, object id)``.

Every component that ranks objects by network distance — ``GPU_First_k``,
the CPU refinement, the exact-Dijkstra fallback, range queries and the
test oracles — must break distance ties the same way, or "batched ==
sequential == oracle" comparisons are ill-defined: two objects at exactly
the same distance (common with co-located objects or symmetric grids)
could legally appear in either order and a byte-identical assertion would
flap.

The documented total order is **ascending distance, then ascending object
id**.  It is deterministic, independent of dict/set iteration order, and
stable across the single-query, batched and degraded execution paths.
"""

from __future__ import annotations

from typing import Iterable

_INF = float("inf")


def result_sort_key(item: tuple[int, float]) -> tuple[float, int]:
    """Sort key for one ``(obj, distance)`` pair: distance, then id."""
    obj, distance = item
    return (distance, obj)


def rank_results(
    items: Iterable[tuple[int, float]], k: int | None = None
) -> list[tuple[int, float]]:
    """Sort ``(obj, distance)`` pairs into the canonical order.

    Infinite distances (unreachable objects) are dropped; when ``k`` is
    given the list is truncated to the k best.
    """
    ranked = sorted(
        (item for item in items if item[1] < _INF), key=result_sort_key
    )
    return ranked if k is None else ranked[:k]
