"""Location-update messages.

Every moving object periodically reports ``m = <o, e, d, t>`` — object id,
edge id, offset from the edge's source vertex, and timestamp (Section II).
Inside the cleaning pipeline messages carry their cell too
(``m = <o, c, e, d, t>``, Section IV-B1).  A *removal marker*
``<o, null, null, t>`` is appended to an object's previous cell when it
moves between cells (Algorithm 1, line 5).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.simgpu.memory import MESSAGE_BYTES


@dataclass(frozen=True, slots=True)
class Message:
    """A raw location update from an object.

    Attributes:
        obj: object id.
        edge: edge id the object is on, or ``None`` for a removal marker.
        offset: distance from the edge's source vertex (``None`` for
            removal markers).
        t: update timestamp (seconds; monotone per object).
    """

    obj: int
    edge: int | None
    offset: float | None
    t: float

    @property
    def is_removal(self) -> bool:
        """True for the ``<o, null, null, t>`` markers of Algorithm 1."""
        return self.edge is None

    @property
    def sort_key(self) -> tuple[float, int]:
        """Recency ordering used by every 'newest message wins' compare.

        A removal marker carries the *same* timestamp as the move message
        that spawned it (Algorithm 1 line 5), so ties must resolve in
        favour of the real location update — otherwise the marker can win
        the dedup race and the object silently vanishes from both cells.
        """
        return (self.t, 0 if self.is_removal else 1)

    def device_nbytes(self) -> int:
        """Packed size when shipped to the GPU (five 4-byte fields)."""
        return MESSAGE_BYTES

    def newer_than(self, other: "Message | None") -> bool:
        """Recency comparison with ``None`` meaning 'no message'."""
        return other is None or self.sort_key > other.sort_key


@dataclass(frozen=True, slots=True)
class CellMessage:
    """A message tagged with its cell id for GPU processing (5-tuple)."""

    obj: int
    cell: int
    edge: int | None
    offset: float | None
    t: float

    @property
    def is_removal(self) -> bool:
        return self.edge is None

    @property
    def sort_key(self) -> tuple[float, int]:
        """See :attr:`Message.sort_key` — markers lose timestamp ties."""
        return (self.t, 0 if self.is_removal else 1)

    def device_nbytes(self) -> int:
        return MESSAGE_BYTES

    @staticmethod
    def tag(message: Message, cell: int) -> "CellMessage":
        """Attach a cell id to a raw message."""
        return CellMessage(message.obj, cell, message.edge, message.offset, message.t)
