"""Closed-form cost formulas from Section VI.

These are the paper's analytical space and query cost bounds; the
``bench_costmodel`` benchmark compares them against measured counter
values to validate that the implementation scales the way the analysis
predicts.
"""

from __future__ import annotations

import math

from repro.core.mu import mu as mu_fn
from repro.simgpu.memory import MESSAGE_BYTES, TABLE_ENTRY_BYTES


def space_graph_grid(num_vertices: int, num_edges: int) -> int:
    """Section VI-A: the graph grid is ``O(|V| + |E|)`` (in entries)."""
    return num_vertices + num_edges


def space_message_lists(f_delta: float, num_objects: int) -> float:
    """Section VI-A: ``O(f_delta * |O|)`` live messages at steady state —
    each object sends ``f_delta`` messages per retention window."""
    return f_delta * num_objects


def space_object_table(num_objects: int) -> int:
    """Section VI-A: one entry per object."""
    return num_objects * (TABLE_ENTRY_BYTES + 16)


def messages_transferred_bound(f_delta: float, rho: float, k: int) -> float:
    """Section VI-B1: messages shipped per query is ``O(f_delta rho k)``."""
    return f_delta * rho * k


def transfer_bytes_bound(f_delta: float, rho: float, k: int) -> float:
    """Byte form of :func:`messages_transferred_bound`."""
    return messages_transferred_bound(f_delta, rho, k) * MESSAGE_BYTES


def cleaning_ops_bound(delta_b: int, eta: int, f_delta: float, rho: float, k: int) -> float:
    """Section VI-B1: per-thread cleaning cost.

    ``O(delta_b)`` for the shuffled rounds plus the logarithmic
    ``GPU_Collect`` term ``O((log(f_delta rho k) - log(delta_b)) / eta)``.
    """
    collect = max(
        0.0,
        (math.log2(max(2.0, f_delta * rho * k)) - math.log2(delta_b)) / eta,
    )
    return delta_b * (1 + 2 * eta + mu_fn(eta)) + collect


def candidate_ops_bound(rho: float, k: int, delta_v: int) -> float:
    """Section VI-B2: computing the candidate set is ``O(rho k delta_v)``."""
    return rho * k * delta_v


def refine_radius(m_ratio: float, rho: float, k: int) -> float:
    """Section VI-B2: expected unresolved-range search radius
    ``O(m sqrt(k / pi) - sqrt(rho k) / 2)``."""
    return max(0.0, m_ratio * math.sqrt(k / math.pi) - math.sqrt(rho * k) / 2)


def refine_ops_bound(m_ratio: float, rho: float, k: int) -> float:
    """Section VI-B2: per-vertex refinement Dijkstra cost
    ``O((m - sqrt(rho)) sqrt(k) log((m - sqrt(rho)) sqrt(k)))``."""
    base = max(1.0, (m_ratio - math.sqrt(rho)) * math.sqrt(k))
    return base * math.log2(base + 1)
