"""The G-Grid index facade: build, ingest, query.

:class:`GGridIndex` wires together the paper's three index components —
the graph grid (Section III-A), the object table (III-B) and the per-cell
message lists (III-C) — with the GPU cleaner and the kNN processor, and
exposes the update/query API the experiments drive:

* :meth:`GGridIndex.ingest` — Algorithm 1 (cache the message, mark the
  old cell on a move, eagerly refresh the object table);
* :meth:`GGridIndex.knn` — Algorithm 4;
* :meth:`GGridIndex.size_bytes` — the Fig. 6 index-size breakdown.

Example:
    >>> from repro.roadnet import grid_road_network
    >>> from repro.core import GGridIndex, Message
    >>> g = grid_road_network(8, 8, seed=1)
    >>> index = GGridIndex(g)
    >>> index.ingest(Message(obj=7, edge=0, offset=0.1, t=1.0))
    >>> from repro.roadnet import NetworkLocation
    >>> index.knn(NetworkLocation(1, 0.0), k=1, t_now=2.0).objects()
    [7]
"""

from __future__ import annotations

from typing import Callable, Mapping

from repro.chaos.hub import default_fault_plan
from repro.chaos.injector import FaultInjector
from repro.config import GGridConfig
from repro.core.cleaning import CleaningResult, MessageCleaner
from repro.core.graph_grid import GraphGrid
from repro.core.knn import BatchExecStats, KnnAnswer, KnnProcessor
from repro.core.message_list import MessageList
from repro.core.messages import Message
from repro.core.object_table import ObjectEntry, ObjectTable
from repro.errors import CapacityError, GpuError, QueryError
from repro.obs.tracing import span
from repro.roadnet.graph import RoadNetwork
from repro.roadnet.location import NetworkLocation
from repro.resilience import (
    RUNG_CPU_SDIST,
    RUNG_DIJKSTRA,
    ResiliencePolicy,
    tag_ladder_outcome,
)
from repro.simgpu.device import SimGpu
from repro.simgpu.stats import GpuStats


class GGridIndex:
    """The complete G-Grid index over one road network."""

    name = "G-Grid"

    def __init__(
        self,
        graph: RoadNetwork,
        config: GGridConfig | None = None,
        gpu: SimGpu | None = None,
        resilience: ResiliencePolicy | None = None,
        grid: GraphGrid | None = None,
    ) -> None:
        """Build the index: partition the network into the graph grid and
        ship the GPU-resident copy to the device (a one-time transfer
        accounted in the device stats).

        ``grid`` shares a prebuilt :class:`GraphGrid` instead of
        repartitioning the network — the grid is immutable during
        serving, so the cluster layer builds it once and every shard
        (and replica) reuses it; each index still ships its own
        device-resident copy.
        """
        self.graph = graph
        self.config = config or GGridConfig()
        self.gpu = gpu or SimGpu(self.config.gpu)
        self.grid = grid if grid is not None else GraphGrid.build(graph, self.config)
        self.gpu.to_device("ggrid.grid", self.grid, nbytes=self.grid.device_nbytes())
        self.object_table = ObjectTable()
        self.lists: dict[int, MessageList] = {}
        self.cleaner = MessageCleaner(self.gpu, self.config)
        self._processor = KnnProcessor(
            graph,
            self.grid,
            self.lists,
            self.object_table,
            self.cleaner,
            self.gpu,
            self.config,
            list_factory=self._list_of,
        )
        self.messages_ingested = 0
        self.update_touches = 0  # index entries touched per update (lazy: few)
        self.latest_time = 0.0
        # -- resilience state (see repro.resilience / DESIGN.md) --
        self.resilience = resilience or ResiliencePolicy()
        self.breaker = self.resilience.make_breaker()
        self.backpressure_cleanings = 0  # ingests that forced an in-line clean
        self.resilience_backoff_s = 0.0  # modelled update-side retry backoff
        #: overload brownout (repro.serve, DESIGN.md §14): when True the
        #: query ladder skips the GPU rung entirely and serves from the
        #: vectorised-CPU rung — under a device-fault storm this avoids
        #: paying retries + modelled backoff per query.  Answers on
        #: every rung are exact, so brownout trades latency/throughput
        #: headroom, never correctness.
        self.brownout = False
        self.max_buckets_per_cell = self.config.max_buckets_per_cell
        self._injector: FaultInjector | None = None
        self._chaos_plan = None
        self._sync_chaos()

    # ------------------------------------------------------------------
    # updates (Algorithm 1)
    # ------------------------------------------------------------------
    def ingest(self, message: Message) -> None:
        """Cache one location update.

        Appends the message to its cell's list; when the object moved
        from another cell, a removal marker is appended there too; the
        object table is refreshed eagerly (it is a cheap hash put).

        Raises:
            QueryError: for removal-marker messages (library callers send
                only real location updates).
            UnknownEdgeError: when the edge is not in the network.
        """
        if message.is_removal:
            raise QueryError("clients send location updates, not removal markers")
        # span() is a shared no-op unless a tracer is active — the lazy
        # ingest hot path must stay allocation-free when untraced
        with span("ingest"):
            cell = self.grid.cell_of_edge(message.edge)
            self._append_with_backpressure(cell, message)
            touches = 2  # the cached message + the object-table put
            previous = self.object_table.try_get(message.obj)
            if previous is not None and previous.cell != cell:
                marker = Message(message.obj, None, None, message.t)
                self._append_with_backpressure(previous.cell, marker)
                touches += 1
            self.object_table.put(
                message.obj,
                ObjectEntry(cell, message.edge, message.offset, message.t),
            )
            self.messages_ingested += 1
            self.update_touches += touches
            self.latest_time = max(self.latest_time, message.t)

    def bulk_load(self, placements: Mapping[int, NetworkLocation], t: float) -> None:
        """Ingest an initial placement for many objects at time ``t``."""
        for obj, loc in placements.items():
            self.ingest(Message(obj, loc.edge_id, loc.offset, t))

    def remove_object(self, obj: int, t: float) -> None:
        """Deregister an object (e.g. a car going offline).

        Appends a removal marker to the object's cell — so a later
        cleaning of that cell drops any cached location messages — and
        deletes the object-table entry immediately.  Under capacity
        pressure the marker rides the same in-line-cleaning backpressure
        as ingest: removals are how the cluster layer migrates objects
        between shards, and a standby replica applying shipped removals
        gets no query-driven cleanings to drain its lists.

        Raises:
            UnknownObjectError: when the object was never ingested.
        """
        entry = self.object_table.get(obj)
        self._append_with_backpressure(entry.cell, Message(obj, None, None, t))
        self.object_table.remove(obj)
        self.update_touches += 2
        self.latest_time = max(self.latest_time, t)

    def _list_of(self, cell: int) -> MessageList:
        mlist = self.lists.get(cell)
        if mlist is None:
            mlist = MessageList(
                self.config.delta_b,
                cell=cell,
                max_buckets=self.max_buckets_per_cell,
            )
            self.lists[cell] = mlist
        return mlist

    def _append_with_backpressure(self, cell: int, message: Message) -> None:
        """Append to a cell's list, compacting in line when it is full.

        An uncapped list (the default) never raises; under capacity
        pressure (``max_buckets_per_cell``, e.g. a chaos profile) a full
        backlog triggers a forced in-line cleaning of that one cell —
        the update pays the compaction instead of failing — and the
        append is retried against the compacted list.  Only if the cell
        still cannot hold one more message (live objects genuinely
        exceed its capacity) does the :class:`~repro.errors.CapacityError`
        propagate.
        """
        mlist = self._list_of(cell)
        try:
            mlist.append(message)
        except CapacityError:
            if not self.resilience.enabled:
                raise
            self.backpressure_cleanings += 1
            now = max(self.latest_time, message.t)
            self._resilient_clean({cell: mlist}, now)
            mlist.append(message)

    # ------------------------------------------------------------------
    # queries (Algorithm 4)
    # ------------------------------------------------------------------
    def knn(
        self, location: NetworkLocation, k: int, t_now: float | None = None
    ) -> KnnAnswer:
        """The k nearest objects to ``location`` at time ``t_now``
        (defaults to the newest ingested timestamp).

        When the device faults mid-query the resilience ladder takes
        over (see :mod:`repro.resilience`): the GPU phase is
        retried with exponential backoff charged to modelled time, then
        the query degrades to the host-executed SDist path and, as a
        last resort, to an exact Dijkstra sweep.  Every rung returns the
        same exact answer; :attr:`KnnAnswer.degraded_rung`,
        :attr:`KnnAnswer.retries` and :attr:`KnnAnswer.backoff_s` record
        what it cost.  Non-device errors propagate unchanged.
        """
        now = self.latest_time if t_now is None else t_now
        return self._run_resilient(
            now,
            lambda use_gpu: self._processor.query(location, k, now, use_gpu=use_gpu),
            lambda: self._processor.exact_query(location, k),
        )

    def knn_batch(
        self,
        queries: list[tuple[NetworkLocation, int]],
        t_now: float | None = None,
        exec_stats: BatchExecStats | None = None,
    ) -> list[KnnAnswer]:
        """Answer an epoch batch of queries with a shared GPU pipeline.

        Overlapping candidate regions are shipped to the device and
        deduplicated once for the whole batch — the paper's multi-query
        parallelism (the *G-Grid* vs *G-Grid (L)* gap in Fig. 5) — and
        the surviving queries' candidate kernels run as fused per-batch
        launches with one shared device-to-host transfer.  Answers are
        identical to issuing each query individually.  Device faults
        degrade the whole batch down the same ladder as :meth:`knn`;
        retry backoff is charged once, on the first answer.  When
        ``exec_stats`` is given it is filled with the batch's
        work-sharing accounting (reset on every ladder attempt, so it
        reflects the attempt that produced the answers).
        """
        now = self.latest_time if t_now is None else t_now

        def exact() -> list[KnnAnswer]:
            answers = [self._processor.exact_query(loc, k) for loc, k in queries]
            if exec_stats is not None:
                exec_stats.reset()
                exec_stats.queries = len(answers)
                exec_stats.fallbacks = len(answers)
            return answers

        return self._run_resilient(
            now,
            lambda use_gpu: self._processor.query_batch(
                queries, now, use_gpu=use_gpu, exec_stats=exec_stats
            ),
            exact,
        )

    def _run_resilient(
        self,
        now: float,
        attempt: Callable[[bool], KnnAnswer | list[KnnAnswer]],
        exact: Callable[[], KnnAnswer | list[KnnAnswer]],
    ):
        """Run a query callable down the degradation ladder.

        ``attempt(use_gpu)`` runs the normal processor path;
        ``exact()`` is the rung-3 Dijkstra fallback.  Only
        :class:`~repro.errors.GpuError` (and subclasses — the simulated
        device's failure modes) triggers degradation; anything else is a
        bug and propagates.  Whole-query retry is safe: a faulted
        cleaning rolls its locks back (cached updates survive), and a
        fault after cleaning leaves only compacted lists behind, which
        re-clean to the identical result.
        """
        policy = self.resilience
        if not policy.enabled:
            return attempt(True)
        retries = 0
        backoff_s = 0.0
        if not self.brownout and self.breaker.allow_gpu(now):
            while True:
                try:
                    # rung spans make the ladder legible in query traces;
                    # span() is the shared no-op when tracing is off, and
                    # an erroring attempt still closes its span cleanly
                    with span("rung_gpu") as rung_sp:
                        rung_sp.set_attr("attempt", retries)
                        result = attempt(True)
                    self.breaker.record_success(now)
                    return tag_ladder_outcome(result, None, retries, backoff_s)
                except GpuError:
                    self.breaker.record_failure(now)
                    if retries >= policy.retry.max_retries:
                        break
                    if not self.breaker.allow_gpu(now):
                        break  # breaker tripped open mid-retry
                    backoff_s += policy.retry.backoff_s(retries)
                    retries += 1
        # -- rung 2: vectorised SDist + dedup on the host, same answers --
        try:
            with span("rung_cpu_sdist"):
                result = attempt(False)
            return tag_ladder_outcome(result, RUNG_CPU_SDIST, retries, backoff_s)
        except GpuError:  # pragma: no cover - rung 2 touches no device
            pass
        # -- rung 3: exact Dijkstra over the eager object table --
        with span("rung_dijkstra"):
            result = exact()
        return tag_ladder_outcome(result, RUNG_DIJKSTRA, retries, backoff_s)

    def _resilient_clean(
        self, lists: dict[int, MessageList], now: float
    ) -> CleaningResult:
        """Update-side ladder: clean on the device, degrade to the host.

        Mirrors :meth:`_run_resilient` for cleanings that happen outside
        a query (backpressure compaction, maintenance policies).  Backoff
        here has no answer to ride on, so it accumulates in
        :attr:`resilience_backoff_s` for the server to charge to update
        time.
        """
        policy = self.resilience
        if not policy.enabled:
            return self.cleaner.clean(lists, now, self.object_table)
        retries = 0
        if self.breaker.allow_gpu(now):
            while True:
                try:
                    result = self.cleaner.clean(lists, now, self.object_table)
                    self.breaker.record_success(now)
                    return result
                except GpuError:
                    self.breaker.record_failure(now)
                    if retries >= policy.retry.max_retries:
                        break
                    if not self.breaker.allow_gpu(now):
                        break
                    self.resilience_backoff_s += policy.retry.backoff_s(retries)
                    retries += 1
        return self.cleaner.clean(lists, now, self.object_table, use_gpu=False)

    def range_query(
        self,
        location: NetworkLocation,
        radius: float,
        t_now: float | None = None,
    ):
        """All objects within network distance ``radius`` of ``location``.

        An extension beyond the paper's kNN query built on the same lazy
        cleaning and GPU distance machinery — see
        :mod:`repro.core.range_query` for the exactness argument.

        Returns:
            A :class:`~repro.core.range_query.RangeAnswer` sorted by
            ascending distance.
        """
        from repro.core.range_query import range_query as _range_query

        now = self.latest_time if t_now is None else t_now
        return _range_query(self._processor, location, radius, now)

    def clean_cells(self, cells: set[int], t_now: float | None = None) -> CleaningResult:
        """Force-clean specific cells (maintenance / test hook).

        Device faults propagate to the caller after rolling back — a
        maintenance pass that cannot run is skipped, not silently
        degraded; nothing is lost and no list stays locked.
        """
        now = self.latest_time if t_now is None else t_now
        return self.cleaner.clean({c: self._list_of(c) for c in cells}, now, self.object_table)

    def reset_objects(self) -> None:
        """Drop all object state (locations, cached messages, counters),
        keeping the built graph grid.  Benchmark replays use this to
        reuse one expensive build across independent runs — which is why
        the chaos wiring is re-synchronised here: a cached index built
        under a fault plan must shed its injector when the plan is gone
        (and vice versa)."""
        self.object_table = ObjectTable()
        self.lists.clear()
        self._processor.object_table = self.object_table
        self.messages_ingested = 0
        self.update_touches = 0
        self.latest_time = 0.0
        self.gpu.stats.reset()
        self.cleaner.cleanings_total = 0
        self.cleaner.cells_cleaned_total = 0
        self.breaker.reset()
        self.backpressure_cleanings = 0
        self.resilience_backoff_s = 0.0
        self._sync_chaos()

    def _sync_chaos(self) -> None:
        """Match this index's fault wiring to the process-wide plan.

        Called at construction and on :meth:`reset_objects`.  Keyed on
        plan identity: with no configured plan this is one attribute
        compare and an early return, so the non-chaos path stays free of
        injection machinery.
        """
        plan = default_fault_plan()
        if plan is self._chaos_plan:
            return
        if self._injector is not None:
            self._injector.uninstall()
            self._injector = None
        self._chaos_plan = plan
        self.max_buckets_per_cell = self.config.max_buckets_per_cell
        if plan is None:
            return
        if plan.max_buckets_per_cell is not None:
            self.max_buckets_per_cell = plan.max_buckets_per_cell
        if plan.injects_device_faults:
            self._injector = FaultInjector(plan, self.gpu)
            self._injector.install()

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    @property
    def num_objects(self) -> int:
        return len(self.object_table)

    @property
    def fault_injector(self) -> FaultInjector | None:
        """The installed chaos injector, if a fault plan is active."""
        return self._injector

    @property
    def stats(self) -> GpuStats:
        return self.gpu.stats

    def pending_messages(self) -> int:
        """Messages cached but not yet cleaned."""
        return sum(lst.num_messages for lst in self.lists.values())

    def size_bytes(self) -> dict[str, int]:
        """The Fig. 6 breakdown: CPU copy, GPU copy and total."""
        grid_cpu = self.grid.size_bytes()
        table = self.object_table.size_bytes()
        lists = sum(lst.size_bytes() for lst in self.lists.values())
        gpu_copy = self.grid.device_nbytes()
        cpu_total = grid_cpu + table + lists
        return {
            "grid": grid_cpu,
            "object_table": table,
            "message_lists": lists,
            "cpu": cpu_total,
            "gpu": gpu_copy,
            "total": cpu_total + gpu_copy,
        }
