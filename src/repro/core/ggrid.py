"""The G-Grid index facade: build, ingest, query.

:class:`GGridIndex` wires together the paper's three index components —
the graph grid (Section III-A), the object table (III-B) and the per-cell
message lists (III-C) — with the GPU cleaner and the kNN processor, and
exposes the update/query API the experiments drive:

* :meth:`GGridIndex.ingest` — Algorithm 1 (cache the message, mark the
  old cell on a move, eagerly refresh the object table);
* :meth:`GGridIndex.knn` — Algorithm 4;
* :meth:`GGridIndex.size_bytes` — the Fig. 6 index-size breakdown.

Example:
    >>> from repro.roadnet import grid_road_network
    >>> from repro.core import GGridIndex, Message
    >>> g = grid_road_network(8, 8, seed=1)
    >>> index = GGridIndex(g)
    >>> index.ingest(Message(obj=7, edge=0, offset=0.1, t=1.0))
    >>> from repro.roadnet import NetworkLocation
    >>> index.knn(NetworkLocation(1, 0.0), k=1, t_now=2.0).objects()
    [7]
"""

from __future__ import annotations

from typing import Mapping

from repro.config import GGridConfig
from repro.core.cleaning import CleaningResult, MessageCleaner
from repro.core.graph_grid import GraphGrid
from repro.core.knn import KnnAnswer, KnnProcessor
from repro.core.message_list import MessageList
from repro.core.messages import Message
from repro.core.object_table import ObjectEntry, ObjectTable
from repro.errors import QueryError
from repro.obs.tracing import span
from repro.roadnet.graph import RoadNetwork
from repro.roadnet.location import NetworkLocation
from repro.simgpu.device import SimGpu
from repro.simgpu.stats import GpuStats


class GGridIndex:
    """The complete G-Grid index over one road network."""

    name = "G-Grid"

    def __init__(
        self,
        graph: RoadNetwork,
        config: GGridConfig | None = None,
        gpu: SimGpu | None = None,
    ) -> None:
        """Build the index: partition the network into the graph grid and
        ship the GPU-resident copy to the device (a one-time transfer
        accounted in the device stats)."""
        self.graph = graph
        self.config = config or GGridConfig()
        self.gpu = gpu or SimGpu(self.config.gpu)
        self.grid = GraphGrid.build(graph, self.config)
        self.gpu.to_device("ggrid.grid", self.grid, nbytes=self.grid.device_nbytes())
        self.object_table = ObjectTable()
        self.lists: dict[int, MessageList] = {}
        self.cleaner = MessageCleaner(self.gpu, self.config)
        self._processor = KnnProcessor(
            graph,
            self.grid,
            self.lists,
            self.object_table,
            self.cleaner,
            self.gpu,
            self.config,
        )
        self.messages_ingested = 0
        self.update_touches = 0  # index entries touched per update (lazy: few)
        self.latest_time = 0.0

    # ------------------------------------------------------------------
    # updates (Algorithm 1)
    # ------------------------------------------------------------------
    def ingest(self, message: Message) -> None:
        """Cache one location update.

        Appends the message to its cell's list; when the object moved
        from another cell, a removal marker is appended there too; the
        object table is refreshed eagerly (it is a cheap hash put).

        Raises:
            QueryError: for removal-marker messages (library callers send
                only real location updates).
            UnknownEdgeError: when the edge is not in the network.
        """
        if message.is_removal:
            raise QueryError("clients send location updates, not removal markers")
        # span() is a shared no-op unless a tracer is active — the lazy
        # ingest hot path must stay allocation-free when untraced
        with span("ingest"):
            cell = self.grid.cell_of_edge(message.edge)
            self._list_of(cell).append(message)
            touches = 2  # the cached message + the object-table put
            previous = self.object_table.try_get(message.obj)
            if previous is not None and previous.cell != cell:
                marker = Message(message.obj, None, None, message.t)
                self._list_of(previous.cell).append(marker)
                touches += 1
            self.object_table.put(
                message.obj,
                ObjectEntry(cell, message.edge, message.offset, message.t),
            )
            self.messages_ingested += 1
            self.update_touches += touches
            self.latest_time = max(self.latest_time, message.t)

    def bulk_load(self, placements: Mapping[int, NetworkLocation], t: float) -> None:
        """Ingest an initial placement for many objects at time ``t``."""
        for obj, loc in placements.items():
            self.ingest(Message(obj, loc.edge_id, loc.offset, t))

    def remove_object(self, obj: int, t: float) -> None:
        """Deregister an object (e.g. a car going offline).

        Appends a removal marker to the object's cell — so a later
        cleaning of that cell drops any cached location messages — and
        deletes the object-table entry immediately.

        Raises:
            UnknownObjectError: when the object was never ingested.
        """
        entry = self.object_table.get(obj)
        self._list_of(entry.cell).append(Message(obj, None, None, t))
        self.object_table.remove(obj)
        self.update_touches += 2
        self.latest_time = max(self.latest_time, t)

    def _list_of(self, cell: int) -> MessageList:
        mlist = self.lists.get(cell)
        if mlist is None:
            mlist = MessageList(self.config.delta_b)
            self.lists[cell] = mlist
        return mlist

    # ------------------------------------------------------------------
    # queries (Algorithm 4)
    # ------------------------------------------------------------------
    def knn(
        self, location: NetworkLocation, k: int, t_now: float | None = None
    ) -> KnnAnswer:
        """The k nearest objects to ``location`` at time ``t_now``
        (defaults to the newest ingested timestamp)."""
        now = self.latest_time if t_now is None else t_now
        return self._processor.query(location, k, now)

    def knn_batch(
        self,
        queries: list[tuple[NetworkLocation, int]],
        t_now: float | None = None,
    ) -> list[KnnAnswer]:
        """Answer several concurrent queries with shared GPU cleaning.

        Overlapping candidate regions are shipped to the device and
        deduplicated once for the whole batch — the paper's multi-query
        parallelism (the *G-Grid* vs *G-Grid (L)* gap in Fig. 5).
        Answers are identical to issuing each query individually.
        """
        now = self.latest_time if t_now is None else t_now
        return self._processor.query_batch(queries, now)

    def range_query(
        self,
        location: NetworkLocation,
        radius: float,
        t_now: float | None = None,
    ):
        """All objects within network distance ``radius`` of ``location``.

        An extension beyond the paper's kNN query built on the same lazy
        cleaning and GPU distance machinery — see
        :mod:`repro.core.range_query` for the exactness argument.

        Returns:
            A :class:`~repro.core.range_query.RangeAnswer` sorted by
            ascending distance.
        """
        from repro.core.range_query import range_query as _range_query

        now = self.latest_time if t_now is None else t_now
        return _range_query(self._processor, location, radius, now)

    def clean_cells(self, cells: set[int], t_now: float | None = None) -> CleaningResult:
        """Force-clean specific cells (maintenance / test hook)."""
        now = self.latest_time if t_now is None else t_now
        return self.cleaner.clean(
            {c: self._list_of(c) for c in cells}, now, self.object_table
        )

    def reset_objects(self) -> None:
        """Drop all object state (locations, cached messages, counters),
        keeping the built graph grid.  Benchmark replays use this to
        reuse one expensive build across independent runs."""
        self.object_table = ObjectTable()
        self.lists.clear()
        self._processor.object_table = self.object_table
        self.messages_ingested = 0
        self.update_touches = 0
        self.latest_time = 0.0
        self.gpu.stats.reset()

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    @property
    def num_objects(self) -> int:
        return len(self.object_table)

    @property
    def stats(self) -> GpuStats:
        return self.gpu.stats

    def pending_messages(self) -> int:
        """Messages cached but not yet cleaned."""
        return sum(lst.num_messages for lst in self.lists.values())

    def size_bytes(self) -> dict[str, int]:
        """The Fig. 6 breakdown: CPU copy, GPU copy and total."""
        grid_cpu = self.grid.size_bytes()
        table = self.object_table.size_bytes()
        lists = sum(lst.size_bytes() for lst in self.lists.values())
        gpu_copy = self.grid.device_nbytes()
        cpu_total = grid_cpu + table + lists
        return {
            "grid": grid_cpu,
            "object_table": table,
            "message_lists": lists,
            "cpu": cpu_total,
            "gpu": gpu_copy,
            "total": cpu_total + gpu_copy,
        }
