"""Vectorised GPU_SDist backend.

:func:`repro.core.sdist.sdist_kernel` walks the vertex elements in a
Python loop — faithful to the per-thread kernel but slow on large
candidate sets.  This backend performs the same restricted Bellman–Ford
with numpy array operations: all edges of the candidate subgraph are
relaxed per round with one ``minimum.at`` scatter, which is also exactly
how a real GPU executes the kernel (one lane per edge slot, lockstep
rounds, no write conflicts beyond atomic-min semantics).

When the caller passes a :class:`~repro.core.graph_grid.CellSlab` (the
packed array view sliced from the grid's one-time CSR form), the kernel
consumes its pre-flattened local-index arrays directly — no per-launch
``index_of`` rebuild, no per-edge Python loop.  A plain element list
still works (the flattening happens here, as before), which keeps the
kernel callable on hand-built subgraphs in tests.

Selected via ``GGridConfig.sdist_backend = "vectorized"``; results are
bit-identical to the lockstep backend (property-tested) and the charged
GPU work is the same — only the *host* simulation gets faster.
"""

from __future__ import annotations

import numpy as np

from repro.core.graph_grid import CellSlab, GridVertexElement
from repro.simgpu.kernel import KernelContext

_INF = float("inf")


def _flatten_elements(
    elements: list[GridVertexElement], vertices: list[int]
) -> tuple[np.ndarray, np.ndarray, np.ndarray, dict[int, int]]:
    """Legacy per-launch flattening for plain element lists."""
    index_of = {v: i for i, v in enumerate(vertices)}
    sources = []
    targets = []
    weights = []
    for element in elements:
        ti = index_of[element.real_id]
        for rec in element.edges:
            si = index_of.get(rec.source)
            if si is None:
                continue  # source outside the shipped cells
            sources.append(si)
            targets.append(ti)
            weights.append(rec.weight)
    return (
        np.array(sources, dtype=np.int64),
        np.array(targets, dtype=np.int64),
        np.array(weights, dtype=np.float64),
        index_of,
    )


def sdist_kernel_vectorized(
    ctx: KernelContext,
    elements: list[GridVertexElement] | CellSlab,
    vertices: list[int],
    seeds: dict[int, float],
    delta_v: int,
    early_exit: bool = True,
) -> dict[int, float]:
    """Drop-in replacement for :func:`repro.core.sdist.sdist_kernel`.

    Same signature, same results, same cost accounting; the relaxation
    loop runs as numpy scatter operations instead of per-element Python.
    ``elements`` may be a :class:`CellSlab`, in which case the flattened
    arrays come straight from the packed grid (``vertices`` must then be
    the slab's own vertex list, which the query processor guarantees).
    """
    n = len(vertices)
    dist = np.full(n, np.inf)
    if isinstance(elements, CellSlab):
        src, tgt, wgt = elements.src_local, elements.tgt_local, elements.weights
        for v, cost in seeds.items():
            i = elements.local_of(v)
            if i is not None:
                dist[i] = min(dist[i], cost)
    else:
        src, tgt, wgt, index_of = _flatten_elements(elements, vertices)
        for v, cost in seeds.items():
            i = index_of.get(v)
            if i is not None:
                dist[i] = min(dist[i], cost)

    rounds_run = 0
    for _ in range(max(1, n)):
        rounds_run += 1
        before = dist.copy()
        if len(src):
            candidate = dist[src] + wgt
            np.minimum.at(dist, tgt, candidate)
        ctx.sync_threads()
        if early_exit and np.array_equal(before, dist):
            break
    ctx.charge(rounds_run * delta_v, n_threads=max(1, len(elements)))
    return {
        vertices[i]: float(dist[i]) for i in range(n) if dist[i] < _INF
    }
