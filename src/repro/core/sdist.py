"""GPU_SDist: parallel shortest distances over the candidate cells
(Algorithm 5).

Dijkstra's algorithm is inherently sequential, so the paper adapts
Bellman–Ford instead: one GPU thread per *vertex element* repeatedly
relaxes the (at most ``delta_v``) incoming edges stored with its vertex.
Because the graph grid groups edges by destination vertex, two threads
never write the same distance slot and no locking is needed; a barrier
separates rounds.  Distances are restricted to the shipped subgraph —
edges whose source lies outside the candidate cells are skipped, which is
exactly what the unresolved-vertex refinement compensates for.

Algorithm 5 always runs ``|V|`` rounds; with
``GGridConfig.sdist_early_exit`` (default on, ablated in the benchmarks)
the kernel stops as soon as a round changes nothing, charging only the
rounds it ran.
"""

from __future__ import annotations

from typing import Mapping

from repro.core.graph_grid import CellSlab, GridVertexElement
from repro.core.ordering import result_sort_key
from repro.simgpu.kernel import JobContext, KernelContext

_INF = float("inf")


def get_sdist_kernel(backend: str):
    """Resolve the configured SDist backend.

    ``"lockstep"`` is the faithful per-element kernel below;
    ``"vectorized"`` is the numpy formulation in
    :mod:`repro.core.sdist_vectorized` (same results, faster host
    simulation).

    Raises:
        ConfigError: unknown backend name.
    """
    from repro.errors import ConfigError

    if backend == "lockstep":
        return sdist_kernel
    if backend == "vectorized":
        from repro.core.sdist_vectorized import sdist_kernel_vectorized

        return sdist_kernel_vectorized
    raise ConfigError(f"unknown sdist backend {backend!r}")


def sdist_kernel(
    ctx: KernelContext,
    elements: list[GridVertexElement] | CellSlab,
    vertices: list[int],
    seeds: Mapping[int, float],
    delta_v: int,
    early_exit: bool = True,
) -> dict[int, float]:
    """Compute restricted shortest distances from the query seeds.

    Args:
        ctx: kernel context (one thread per vertex element).
        elements: vertex elements (incl. virtual) of the candidate cells;
            each carries its incoming-edge records.  A
            :class:`~repro.core.graph_grid.CellSlab` also works — this
            faithful kernel iterates its per-element view.
        vertices: the distinct real vertex ids (``V``); the round count.
        seeds: ``{vertex: initial distance}`` from the query location
            (see :func:`repro.roadnet.location.entry_costs`).
        delta_v: vertex capacity — the per-thread inner loop length.
        early_exit: stop when a round makes no improvement.

    Returns:
        ``{vertex: distance}`` for every vertex of ``V`` reachable from
        the seeds *within* the candidate subgraph.
    """
    in_set = set(vertices)
    dist: dict[int, float] = {
        v: seeds.get(v, _INF) for v in vertices
    }
    rounds_run = 0
    for _ in range(max(1, len(vertices))):
        changed = False
        rounds_run += 1
        for element in elements:
            v = element.real_id
            dv = dist[v]
            for rec in element.edges:
                src = rec.source
                if src not in in_set:
                    continue  # source outside the shipped subgraph
                ds = dist[src]
                if ds + rec.weight < dv:
                    dv = ds + rec.weight
                    changed = True
            dist[v] = dv
        ctx.sync_threads()
        if early_exit and not changed:
            break
    # every thread scans its delta_v edge slots each round (Algorithm 5)
    ctx.charge(rounds_run * delta_v)
    return {v: d for v, d in dist.items() if d < _INF}


def first_k_kernel(
    ctx: KernelContext,
    object_distances: dict[int, float],
    k: int,
) -> list[tuple[int, float]]:
    """``GPU_First_k``: the k candidate objects nearest to the query.

    One thread per object computes its distance (done by the caller and
    passed in); a parallel bitonic-style sort picks the k smallest.  The
    simulated cost is the parallel sort depth ``O(log^2 |M|)``.

    Returns ``(obj, distance)`` pairs in the canonical result order
    (ascending distance, ties broken by ascending object id — see
    :mod:`repro.core.ordering`).
    """
    n = max(1, len(object_distances))
    depth = max(1, n.bit_length())
    ctx.charge(1 + depth * depth)  # distance eval + bitonic sort stages
    ranked = sorted(object_distances.items(), key=result_sort_key)
    return ranked[:k]


def unresolved_kernel(
    ctx: KernelContext,
    boundary_vertices: list[int],
    dist: Mapping[int, float],
    l_bound: float,
) -> list[tuple[int, float]]:
    """``GPU_Unresolved``: boundary vertices closer to the query than the
    k-th candidate (Definition 3).

    One thread per vertex performs the O(1) boolean check.

    Returns ``(vertex, restricted distance)`` pairs.
    """
    ctx.charge(1, n_threads=max(1, len(boundary_vertices)))
    result = []
    for v in boundary_vertices:
        d = dist.get(v, _INF)
        if d < l_bound:
            result.append((v, d))
    return result


# ----------------------------------------------------------------------
# fused batch kernels (the epoch-batched execution engine)
# ----------------------------------------------------------------------
# Each ``*_batch_kernel`` runs one job per in-flight query inside a
# single launch: the queries' thread blocks execute side by side, so a
# batch of Q queries pays one launch overhead (and one D2H staging
# round-trip, handled by the caller) instead of Q.  Every job charges its
# work through a :class:`~repro.simgpu.kernel.JobContext` with that job's
# own thread count, which makes the fused launch's simulated kernel time
# exactly the sum of the per-query launches it replaces — batching saves
# fixed overheads, never modelled work.  Results are job-ordered and
# bit-identical to running each per-query kernel individually.


def sdist_batch_kernel(
    ctx: KernelContext,
    jobs: list[tuple[list[GridVertexElement] | CellSlab, list[int], Mapping[int, float]]],
    kernel,
    delta_v: int,
    early_exit: bool = True,
) -> list[dict[int, float]]:
    """``GPU_SDist_Batch``: per-query restricted distances, one launch.

    Args:
        ctx: the fused launch's context.
        jobs: per query, its ``(elements, vertices, seeds)`` triple — the
            same arguments the per-query :func:`sdist_kernel` takes.
        kernel: the configured SDist backend (lockstep or vectorized).
        delta_v: vertex capacity (shared by all jobs; a config constant).
        early_exit: stop each job when a round changes nothing.

    Returns one ``{vertex: distance}`` map per job, in job order.
    """
    results = []
    for elements, vertices, seeds in jobs:
        sub = JobContext(ctx, max(1, len(elements)))
        results.append(kernel(sub, elements, vertices, seeds, delta_v, early_exit))
    return results


def first_k_batch_kernel(
    ctx: KernelContext,
    jobs: list[tuple[dict[int, float], int]],
) -> list[list[tuple[int, float]]]:
    """``GPU_First_k_Batch``: per-query candidate ranking, one launch.

    ``jobs`` holds one ``(object_distances, k)`` pair per query; returns
    each query's ranked candidates in the canonical result order.
    """
    return [
        first_k_kernel(JobContext(ctx, max(1, len(object_distances))), object_distances, k)
        for object_distances, k in jobs
    ]


def unresolved_batch_kernel(
    ctx: KernelContext,
    jobs: list[tuple[list[int], Mapping[int, float], float]],
) -> list[list[tuple[int, float]]]:
    """``GPU_Unresolved_Batch``: per-query boundary checks, one launch.

    ``jobs`` holds one ``(boundary_vertices, dist, l_bound)`` triple per
    query; returns each query's unresolved ``(vertex, distance)`` pairs.
    """
    return [
        unresolved_kernel(JobContext(ctx, max(1, len(boundary))), boundary, dist, l_bound)
        for boundary, dist, l_bound in jobs
    ]
