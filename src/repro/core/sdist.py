"""GPU_SDist: parallel shortest distances over the candidate cells
(Algorithm 5).

Dijkstra's algorithm is inherently sequential, so the paper adapts
Bellman–Ford instead: one GPU thread per *vertex element* repeatedly
relaxes the (at most ``delta_v``) incoming edges stored with its vertex.
Because the graph grid groups edges by destination vertex, two threads
never write the same distance slot and no locking is needed; a barrier
separates rounds.  Distances are restricted to the shipped subgraph —
edges whose source lies outside the candidate cells are skipped, which is
exactly what the unresolved-vertex refinement compensates for.

Algorithm 5 always runs ``|V|`` rounds; with
``GGridConfig.sdist_early_exit`` (default on, ablated in the benchmarks)
the kernel stops as soon as a round changes nothing, charging only the
rounds it ran.
"""

from __future__ import annotations

from typing import Mapping

from repro.core.graph_grid import GridVertexElement
from repro.simgpu.kernel import KernelContext

_INF = float("inf")


def get_sdist_kernel(backend: str):
    """Resolve the configured SDist backend.

    ``"lockstep"`` is the faithful per-element kernel below;
    ``"vectorized"`` is the numpy formulation in
    :mod:`repro.core.sdist_vectorized` (same results, faster host
    simulation).

    Raises:
        ConfigError: unknown backend name.
    """
    from repro.errors import ConfigError

    if backend == "lockstep":
        return sdist_kernel
    if backend == "vectorized":
        from repro.core.sdist_vectorized import sdist_kernel_vectorized

        return sdist_kernel_vectorized
    raise ConfigError(f"unknown sdist backend {backend!r}")


def sdist_kernel(
    ctx: KernelContext,
    elements: list[GridVertexElement],
    vertices: list[int],
    seeds: Mapping[int, float],
    delta_v: int,
    early_exit: bool = True,
) -> dict[int, float]:
    """Compute restricted shortest distances from the query seeds.

    Args:
        ctx: kernel context (one thread per vertex element).
        elements: vertex elements (incl. virtual) of the candidate cells;
            each carries its incoming-edge records.
        vertices: the distinct real vertex ids (``V``); the round count.
        seeds: ``{vertex: initial distance}`` from the query location
            (see :func:`repro.roadnet.location.entry_costs`).
        delta_v: vertex capacity — the per-thread inner loop length.
        early_exit: stop when a round makes no improvement.

    Returns:
        ``{vertex: distance}`` for every vertex of ``V`` reachable from
        the seeds *within* the candidate subgraph.
    """
    in_set = set(vertices)
    dist: dict[int, float] = {
        v: seeds.get(v, _INF) for v in vertices
    }
    rounds_run = 0
    for _ in range(max(1, len(vertices))):
        changed = False
        rounds_run += 1
        for element in elements:
            v = element.real_id
            dv = dist[v]
            for rec in element.edges:
                src = rec.source
                if src not in in_set:
                    continue  # source outside the shipped subgraph
                ds = dist[src]
                if ds + rec.weight < dv:
                    dv = ds + rec.weight
                    changed = True
            dist[v] = dv
        ctx.sync_threads()
        if early_exit and not changed:
            break
    # every thread scans its delta_v edge slots each round (Algorithm 5)
    ctx.charge(rounds_run * delta_v)
    return {v: d for v, d in dist.items() if d < _INF}


def first_k_kernel(
    ctx: KernelContext,
    object_distances: dict[int, float],
    k: int,
) -> list[tuple[int, float]]:
    """``GPU_First_k``: the k candidate objects nearest to the query.

    One thread per object computes its distance (done by the caller and
    passed in); a parallel bitonic-style sort picks the k smallest.  The
    simulated cost is the parallel sort depth ``O(log^2 |M|)``.

    Returns ``(obj, distance)`` pairs sorted ascending, ties by id.
    """
    n = max(1, len(object_distances))
    depth = max(1, n.bit_length())
    ctx.charge(1 + depth * depth)  # distance eval + bitonic sort stages
    ranked = sorted(object_distances.items(), key=lambda kv: (kv[1], kv[0]))
    return ranked[:k]


def unresolved_kernel(
    ctx: KernelContext,
    boundary_vertices: list[int],
    dist: Mapping[int, float],
    l_bound: float,
) -> list[tuple[int, float]]:
    """``GPU_Unresolved``: boundary vertices closer to the query than the
    k-th candidate (Definition 3).

    One thread per vertex performs the O(1) boolean check.

    Returns ``(vertex, restricted distance)`` pairs.
    """
    ctx.charge(1, n_threads=max(1, len(boundary_vertices)))
    result = []
    for v in boundary_vertices:
        d = dist.get(v, _INF)
        if d < l_bound:
            result.append((v, d))
    return result
