"""The object table: latest known location of every object.

Section III-B: a CPU-side hash table mapping ``o.id -> <c.id, e.id, d>``.
Algorithm 1 updates it eagerly on every message (line 6) — the hash put is
cheap; what the lazy strategy avoids is the expensive per-cell spatial
materialisation, which lives in the message lists until queried.

Alongside the paper's mapping we maintain the inverse ``cell -> objects``
view; the CPU refinement step (Algorithm 6) uses it to enumerate objects
inside an unresolved range, and tests use it as the oracle that lazy
cleaning must agree with.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import UnknownObjectError
from repro.simgpu.memory import TABLE_ENTRY_BYTES


@dataclass(frozen=True, slots=True)
class ObjectEntry:
    """Value of one object-table entry: ``<cell, edge, offset>`` at ``t``."""

    cell: int
    edge: int
    offset: float
    t: float


class ObjectTable:
    """Hash table of latest object locations with a per-cell inverse."""

    def __init__(self) -> None:
        self._entries: dict[int, ObjectEntry] = {}
        self._cell_objects: dict[int, set[int]] = {}

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, obj: int) -> bool:
        return obj in self._entries

    def get(self, obj: int) -> ObjectEntry:
        """Entry for ``obj``.

        Raises:
            UnknownObjectError: when the object was never ingested.
        """
        try:
            return self._entries[obj]
        except KeyError:
            raise UnknownObjectError(f"object {obj} not in the object table") from None

    def try_get(self, obj: int) -> ObjectEntry | None:
        return self._entries.get(obj)

    def cell_of(self, obj: int) -> int:
        """The ``getCellFromOT`` lookup of Algorithm 1."""
        return self.get(obj).cell

    def put(self, obj: int, entry: ObjectEntry) -> None:
        """The ``setOT`` update of Algorithm 1 (eager, O(1))."""
        old = self._entries.get(obj)
        if old is not None and old.cell != entry.cell:
            self._cell_objects[old.cell].discard(obj)
        self._entries[obj] = entry
        self._cell_objects.setdefault(entry.cell, set()).add(obj)

    def remove(self, obj: int) -> None:
        """Drop an object entirely (e.g. a car going offline)."""
        entry = self._entries.pop(obj, None)
        if entry is None:
            raise UnknownObjectError(f"object {obj} not in the object table")
        self._cell_objects[entry.cell].discard(obj)

    def objects_in_cell(self, cell: int) -> frozenset[int]:
        """Objects whose latest location lies in ``cell``."""
        return frozenset(self._cell_objects.get(cell, ()))

    def occupied_cells(self) -> list[int]:
        """Cells currently holding at least one object.

        O(occupied cells), independent of the grid size — diagnostics
        iterate this instead of scanning every cell id.  (The inverse
        map may retain empty sets for cells all of whose objects moved
        away; those are filtered here.)
        """
        return [cell for cell, objs in self._cell_objects.items() if objs]

    def objects(self) -> dict[int, ObjectEntry]:
        """A snapshot copy of all entries (test/diagnostic use)."""
        return dict(self._entries)

    def size_bytes(self) -> int:
        """Modelled memory footprint (Section VI-A: ``O(|O|)``)."""
        return len(self._entries) * (TABLE_ENTRY_BYTES + 16)
