"""The object table: latest known location of every object.

Section III-B: a CPU-side hash table mapping ``o.id -> <c.id, e.id, d>``.
Algorithm 1 updates it eagerly on every message (line 6) — the hash put is
cheap; what the lazy strategy avoids is the expensive per-cell spatial
materialisation, which lives in the message lists until queried.

Alongside the paper's mapping we maintain the inverse ``cell -> objects``
view; the CPU refinement step (Algorithm 6) uses it to enumerate objects
inside an unresolved range, and tests use it as the oracle that lazy
cleaning must agree with.  For the array-native hot paths (DESIGN.md §16)
the inverse view is also available as cached per-cell *columns* —
``(objs, edges, offsets, ts)`` numpy arrays in ascending object order —
so refinement and cleaning score whole cells with vectorised numpy
instead of per-object dict lookups.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import UnknownObjectError
from repro.simgpu.memory import TABLE_ENTRY_BYTES

_EMPTY: frozenset[int] = frozenset()


@dataclass(frozen=True, slots=True)
class ObjectEntry:
    """Value of one object-table entry: ``<cell, edge, offset>`` at ``t``."""

    cell: int
    edge: int
    offset: float
    t: float


@dataclass(frozen=True, slots=True)
class CellColumns:
    """Array-backed view of one cell's objects (ascending object id)."""

    objs: np.ndarray  # int64 object ids
    edges: np.ndarray  # int64 entry edge ids
    offsets: np.ndarray  # float64 on-edge offsets
    ts: np.ndarray  # float64 report timestamps


class ObjectTable:
    """Hash table of latest object locations with a per-cell inverse."""

    def __init__(self) -> None:
        self._entries: dict[int, ObjectEntry] = {}
        self._cell_objects: dict[int, set[int]] = {}
        self._columns: dict[int, CellColumns] = {}

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, obj: int) -> bool:
        return obj in self._entries

    def get(self, obj: int) -> ObjectEntry:
        """Entry for ``obj``.

        Raises:
            UnknownObjectError: when the object was never ingested.
        """
        try:
            return self._entries[obj]
        except KeyError:
            raise UnknownObjectError(f"object {obj} not in the object table") from None

    def try_get(self, obj: int) -> ObjectEntry | None:
        return self._entries.get(obj)

    def cell_of(self, obj: int) -> int:
        """The ``getCellFromOT`` lookup of Algorithm 1."""
        return self.get(obj).cell

    def put(self, obj: int, entry: ObjectEntry) -> None:
        """The ``setOT`` update of Algorithm 1 (eager, O(1))."""
        old = self._entries.get(obj)
        if old is not None and old.cell != entry.cell:
            self._discard_from_cell(old.cell, obj)
        self._entries[obj] = entry
        self._cell_objects.setdefault(entry.cell, set()).add(obj)
        self._columns.pop(entry.cell, None)

    def remove(self, obj: int) -> None:
        """Drop an object entirely (e.g. a car going offline)."""
        entry = self._entries.pop(obj, None)
        if entry is None:
            raise UnknownObjectError(f"object {obj} not in the object table")
        self._discard_from_cell(entry.cell, obj)

    def _discard_from_cell(self, cell: int, obj: int) -> None:
        """Drop ``obj`` from a cell's set, pruning the set when drained —
        a fleet sweeping across the map must not grow the inverse map
        toward ``O(cells ever visited)``."""
        objs = self._cell_objects.get(cell)
        if objs is not None:
            objs.discard(obj)
            if not objs:
                del self._cell_objects[cell]
        self._columns.pop(cell, None)

    def objects_in_cell(self, cell: int) -> frozenset[int]:
        """Objects whose latest location lies in ``cell``.

        Returns a live read-only view (callers must not mutate it and
        must not call :meth:`put` / :meth:`remove` while iterating) —
        the refine hot loop calls this per touched cell, and a defensive
        copy per call is exactly the per-item cost the array layouts
        eliminate.
        """
        return self._cell_objects.get(cell, _EMPTY)  # type: ignore[return-value]

    def cell_columns(self, cell: int) -> CellColumns | None:
        """The cell's objects as numpy columns, or ``None`` when empty.

        Built on first use per cell and cached until any object enters or
        leaves the cell (or re-reports inside it).  Object order is
        ascending id, so equal-distance ties downstream resolve the same
        way no matter how the underlying set hashed.
        """
        cols = self._columns.get(cell)
        if cols is None:
            objs = self._cell_objects.get(cell)
            if not objs:
                return None
            ids = sorted(objs)
            entries = [self._entries[o] for o in ids]
            n = len(ids)
            cols = CellColumns(
                np.asarray(ids, dtype=np.int64),
                np.fromiter((e.edge for e in entries), np.int64, n),
                np.fromiter((e.offset for e in entries), np.float64, n),
                np.fromiter((e.t for e in entries), np.float64, n),
            )
            self._columns[cell] = cols
        return cols

    def occupied_cells(self) -> list[int]:
        """Cells currently holding at least one object.

        O(occupied cells), independent of the grid size — diagnostics
        iterate this instead of scanning every cell id.  (Sets pruned on
        drain, so no emptiness filter is needed.)
        """
        return list(self._cell_objects)

    def num_tracked_cells(self) -> int:
        """Size of the internal inverse map (churn regression tests)."""
        return len(self._cell_objects)

    def objects(self) -> dict[int, ObjectEntry]:
        """A snapshot copy of all entries (test/diagnostic use)."""
        return dict(self._entries)

    def size_bytes(self) -> int:
        """Modelled memory footprint (Section VI-A: ``O(|O|)``)."""
        return len(self._entries) * (TABLE_ENTRY_BYTES + 16)
