"""kNN query processing (Algorithm 4): the CPU–GPU collaboration.

A query runs in three phases:

1. **Candidate cells** — starting from the query's cell and its grid
   neighbours, rings of cells are cleaned (lazily, on the GPU) until at
   least ``rho * k`` live objects have been found;
2. **Candidate results on the GPU** — ``GPU_SDist`` computes restricted
   shortest distances over the candidate cells, ``GPU_First_k`` ranks the
   objects, and ``GPU_Unresolved`` flags boundary vertices whose
   unresolved range could still hide better answers;
3. **Refinement on the CPU** — bounded Dijkstra from each unresolved
   vertex (Algorithm 6) fixes up both missed objects and shortcut paths,
   yielding the exact k nearest neighbours.

If the whole network is cleaned and fewer than ``k`` finite candidates
exist (or all cells hold fewer than ``k`` objects), the processor falls
back to one exact Dijkstra sweep from the query — the paper never hits
this case because ``|O| >> k`` in every experiment, but a library must
answer correctly regardless.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.config import GGridConfig
from repro.core.cleaning import CleanedLocation, MessageCleaner
from repro.core.graph_grid import GraphGrid
from repro.core.message_list import MessageList
from repro.core.object_table import ObjectTable
from repro.core.refine import RefineScratch, refine_knn
from repro.core.sdist import (
    first_k_batch_kernel,
    first_k_kernel,
    get_sdist_kernel,
    sdist_batch_kernel,
    unresolved_batch_kernel,
    unresolved_kernel,
)
from repro.errors import QueryError
from repro.obs.tracing import span
from repro.roadnet.dijkstra import multi_source_dijkstra
from repro.roadnet.graph import RoadNetwork
from repro.roadnet.location import NetworkLocation, entry_costs, location_distance
from repro.simgpu.device import SimGpu
from repro.simgpu.kernel import HostContext
from repro.simgpu.memory import MESSAGE_BYTES

_INF = float("inf")


@dataclass(frozen=True, slots=True)
class KnnResultEntry:
    """One result object with its exact network distance from the query."""

    obj: int
    distance: float


@dataclass
class KnnAnswer:
    """A kNN answer plus per-phase diagnostics.

    Attributes:
        entries: the k nearest objects, ascending by distance.
        cells_cleaned: candidate cells cleaned for this query.
        candidates: size of the GPU candidate object set.
        unresolved: number of unresolved boundary vertices refined.
        refine_settled: vertices settled by the refinement Dijkstras
            (drives the modelled parallel-CPU time).
        used_fallback: True when the exact-Dijkstra fallback answered.
        cpu_seconds: measured wall time of the CPU-side phases, keyed by
            phase name (``select``, ``refine``).
        gpu_phase_s: simulated GPU seconds attributed to each device
            phase (``clean_cells``, ``sdist``, ``first_k``,
            ``unresolved``) — the per-phase breakdown the observability
            layer reports.
        degraded_rung: resilience rung that produced the answer
            (``"gpu_retry"``, ``"cpu_sdist"`` or ``"dijkstra"``);
            ``None`` for the healthy GPU path.  Every rung is exact.
        retries: GPU attempts retried before this answer.
        backoff_s: modelled backoff seconds charged for those retries.
    """

    entries: list[KnnResultEntry] = field(default_factory=list)
    cells_cleaned: int = 0
    candidates: int = 0
    unresolved: int = 0
    refine_settled: int = 0
    used_fallback: bool = False
    cpu_seconds: dict[str, float] = field(default_factory=dict)
    gpu_phase_s: dict[str, float] = field(default_factory=dict)
    degraded_rung: str | None = None
    retries: int = 0
    backoff_s: float = 0.0

    def objects(self) -> list[int]:
        return [e.obj for e in self.entries]

    def distances(self) -> list[float]:
        return [e.distance for e in self.entries]


@dataclass
class BatchExecStats:
    """Work-sharing accounting for one epoch batch.

    Filled in by :meth:`KnnProcessor.query_batch` when the caller passes
    an instance; the server's batch engine and the cost-accounting
    conformance tests read it to prove the dedup actually happened.

    Attributes:
        queries: queries executed in the batch.
        rounds: shared ring-expansion rounds (each is one cleaning pass
            over the union frontier).
        cells_cleaned: distinct cells cleaned once for the whole epoch.
        cell_requests: sum over queries of the candidate cells each
            needed — what sequential execution would have cleaned.
        fallbacks: queries answered by the exact-Dijkstra fallback.
    """

    queries: int = 0
    rounds: int = 0
    cells_cleaned: int = 0
    cell_requests: int = 0
    fallbacks: int = 0

    @property
    def cells_deduped(self) -> int:
        """Cell cleanings avoided versus issuing each query alone."""
        return max(0, self.cell_requests - self.cells_cleaned)

    def reset(self) -> None:
        """Zero all counters (resilience retries re-run the batch)."""
        self.queries = 0
        self.rounds = 0
        self.cells_cleaned = 0
        self.cell_requests = 0
        self.fallbacks = 0


class KnnProcessor:
    """Executes Algorithm 4 against a G-Grid's components."""

    def __init__(
        self,
        graph: RoadNetwork,
        grid: GraphGrid,
        lists: dict[int, MessageList],
        object_table: ObjectTable,
        cleaner: MessageCleaner,
        gpu: SimGpu,
        config: GGridConfig,
        list_factory: Callable[[int], MessageList] | None = None,
    ) -> None:
        self.graph = graph
        self.grid = grid
        self.lists = lists
        self.object_table = object_table
        self.cleaner = cleaner
        self.gpu = gpu
        self.config = config
        # the owning index shares its list factory so capacity caps
        # (chaos backpressure) apply no matter which side creates a list
        self.list_factory = list_factory
        # shared refinement arrays (built lazily on the first refined query)
        self._refine_scratch: RefineScratch | None = None

    # ------------------------------------------------------------------
    # public entry point
    # ------------------------------------------------------------------
    def query(
        self,
        location: NetworkLocation,
        k: int,
        t_now: float,
        use_gpu: bool = True,
    ) -> KnnAnswer:
        """Answer a kNN query issued at ``location`` at time ``t_now``.

        ``use_gpu=False`` is the degraded rung: cleaning deduplicates on
        the host and phase 2 executes the vectorised SDist/First-k/
        Unresolved kernels as plain CPU code, never touching the device.
        Answers are identical either way.

        Raises:
            QueryError: for ``k <= 0`` or a location off the network.
        """
        if k <= 0:
            raise QueryError(f"k must be positive, got {k}")
        location.validate(self.graph)
        answer = KnnAnswer()

        # -- phase 1: select candidate cells, cleaning lazily (lines 1-4)
        with span("select_candidates") as sp:
            t0 = time.perf_counter()
            gpu_before = self.gpu.stats.gpu_time_s
            cells, occupants = self._select_candidates(
                location, k, t_now, answer, use_gpu
            )
            answer.gpu_phase_s["clean_cells"] = self.gpu.stats.gpu_time_s - gpu_before
            answer.cpu_seconds["select"] = time.perf_counter() - t0
            answer.cells_cleaned = len(cells)
            answer.candidates = len(occupants)
            sp.set_attr("cells", len(cells))
            sp.set_attr("candidates", len(occupants))

        return self._finish_query(location, k, cells, occupants, answer, use_gpu)

    def exact_query(self, location: NetworkLocation, k: int) -> KnnAnswer:
        """The last resilience rung: one exact Dijkstra sweep from the
        query against the (eagerly maintained) object table, bypassing
        every index structure and the device entirely.

        Raises:
            QueryError: for ``k <= 0`` or a location off the network.
        """
        if k <= 0:
            raise QueryError(f"k must be positive, got {k}")
        location.validate(self.graph)
        return self._fallback(location, k, KnnAnswer())

    def _finish_query(
        self,
        location: NetworkLocation,
        k: int,
        cells: set[int],
        occupants: dict[int, tuple[int, CleanedLocation]],
        answer: KnnAnswer,
        use_gpu: bool = True,
    ) -> KnnAnswer:
        """Phases 2-3 (shared by single and batched queries): GPU
        candidate set (lines 5-9), then CPU refinement (Algorithm 6)."""
        if len(occupants) < k:
            return self._fallback(location, k, answer)

        if use_gpu:
            candidates, unresolved, l_bound = self._gpu_candidates(
                location, k, cells, occupants, answer
            )
        else:
            candidates, unresolved, l_bound = self._host_candidates(
                location, k, cells, occupants, answer
            )
        return self._refine_answer(location, k, candidates, unresolved, l_bound, answer)

    def _refine_answer(
        self,
        location: NetworkLocation,
        k: int,
        candidates: dict[int, float],
        unresolved: list[tuple[int, float]],
        l_bound: float,
        answer: KnnAnswer,
    ) -> KnnAnswer:
        """Phase 3 (Algorithm 6) on one query's candidate set."""
        if l_bound == _INF:
            return self._fallback(location, k, answer)
        answer.unresolved = len(unresolved)

        if unresolved and self._refine_scratch is None:
            self._refine_scratch = RefineScratch(self.graph, self.grid.cell_of_vertex)
        with span("refine") as sp:
            t0 = time.perf_counter()
            results, settled = refine_knn(
                self.graph,
                self.object_table,
                self.grid.cell_of_vertex,
                candidates,
                unresolved,
                k,
                l_bound,
                scratch=self._refine_scratch,
            )
            answer.cpu_seconds["refine"] = time.perf_counter() - t0
            answer.refine_settled = settled
            sp.set_attr("unresolved", len(unresolved))
            sp.set_attr("settled", settled)
        answer.entries = [KnnResultEntry(o, d) for o, d in results]
        if len(answer.entries) < k:
            return self._fallback(location, k, answer)
        return answer

    # ------------------------------------------------------------------
    # batched queries
    # ------------------------------------------------------------------
    def query_batch(
        self,
        queries: list[tuple[NetworkLocation, int]],
        t_now: float,
        use_gpu: bool = True,
        exec_stats: BatchExecStats | None = None,
    ) -> list[KnnAnswer]:
        """Answer an epoch batch of concurrent queries, sharing the GPU.

        This is the mechanism behind the paper's *G-Grid* vs *G-Grid (L)*
        gap (Fig. 5), extended across the whole pipeline:

        - **phase 1** — in every expansion round the candidate-cell
          frontiers of all in-flight queries are unioned and cleaned in
          one GPU pipeline, so overlapping regions are shipped and
          deduplicated once instead of once per query;
        - **phase 2** — the surviving queries' SDist / First-k /
          Unresolved work is fused into one batched launch per kernel
          (each job still charged at its own thread count, so modelled
          work is identical) and the candidate sets travel back in one
          shared device-to-host transfer;
        - **phase 3** — CPU refinement fans back out per query.

        Returns one :class:`KnnAnswer` per query, identical to what
        :meth:`query` would return for each individually.  When
        ``exec_stats`` is given it is reset and filled with the batch's
        work-sharing accounting.
        """
        for location, k in queries:
            if k <= 0:
                raise QueryError(f"k must be positive, got {k}")
            location.validate(self.graph)
        if exec_stats is not None:
            exec_stats.reset()
            exec_stats.queries = len(queries)
        if not queries:
            return []

        cleaned: dict[int, dict[int, CleanedLocation]] = {}
        rounds = 0

        def clean_shared(frontier: set[int]) -> None:
            todo = frontier - cleaned.keys()
            if not todo:
                return
            result = self.cleaner.clean(
                {c: self._list_of(c) for c in todo},
                t_now,
                self.object_table,
                use_gpu=use_gpu,
            )
            for cell in todo:
                cleaned[cell] = result.occupants.get(cell, {})

        # phase 1, batched: expand every query's ring against the shared
        # cleaned-cell cache, one GPU pipeline per round
        t0 = time.perf_counter()
        clean_before = self.gpu.stats.gpu_time_s
        states = []
        for location, k in queries:
            c_q = self.grid.cell_of_edge(location.edge_id)
            states.append(
                {
                    "frontier": {c_q} | set(self.grid.neighbors(c_q)),
                    "cells": set(),
                    "done": False,
                }
            )
        while not all(s["done"] for s in states):
            union_frontier: set[int] = set()
            for state in states:
                if not state["done"]:
                    union_frontier |= state["frontier"]
            clean_shared(union_frontier)
            rounds += 1
            for (location, k), state in zip(queries, states):
                if state["done"]:
                    continue
                state["cells"] |= state["frontier"]
                found = sum(len(cleaned[c]) for c in state["cells"])
                if found >= self.config.rho * k:
                    state["done"] = True
                    continue
                state["frontier"] = self.grid.neighbors_of_set(state["cells"])
                if not state["frontier"]:
                    state["done"] = True
        clean_share = (self.gpu.stats.gpu_time_s - clean_before) / len(queries)
        select_share = (time.perf_counter() - t0) / len(queries)

        if exec_stats is not None:
            exec_stats.rounds = rounds
            exec_stats.cells_cleaned = len(cleaned)
            exec_stats.cell_requests = sum(len(s["cells"]) for s in states)

        # phase 2, fused: degenerate queries drop to the fallback, the
        # rest become jobs of the per-batch kernel launches
        answers: list[KnnAnswer] = [KnnAnswer() for _ in queries]
        jobs: list[
            tuple[int, NetworkLocation, int, set[int], dict[int, tuple[int, CleanedLocation]]]
        ] = []
        for i, ((location, k), state) in enumerate(zip(queries, states)):
            answer = answers[i]
            cells = state["cells"]
            occupants = {
                obj: (cell, loc)
                for cell in cells
                for obj, loc in cleaned[cell].items()
            }
            answer.cells_cleaned = len(cells)
            answer.candidates = len(occupants)
            answer.gpu_phase_s["clean_cells"] = clean_share
            answer.cpu_seconds["select"] = select_share
            if len(occupants) < k:
                answers[i] = self._fallback(location, k, answer)
            else:
                jobs.append((i, location, k, cells, occupants))

        if jobs:
            if use_gpu and len(jobs) == 1:
                # nothing to fuse: run the sequential kernels so a batch
                # of one is counter-for-counter identical to query()
                i, location, k, cells, occupants = jobs[0]
                phase2 = [self._gpu_candidates(location, k, cells, occupants, answers[i])]
            elif use_gpu:
                phase2 = self._gpu_candidates_batch(jobs, answers)
            else:
                phase2 = [
                    self._host_candidates(location, k, cells, occupants, answers[i])
                    for i, location, k, cells, occupants in jobs
                ]
            # phase 3: CPU refinement fans back out per query
            for (i, location, k, _, _), (candidates, unresolved, l_bound) in zip(
                jobs, phase2
            ):
                answers[i] = self._refine_answer(
                    location, k, candidates, unresolved, l_bound, answers[i]
                )

        if exec_stats is not None:
            exec_stats.fallbacks = sum(1 for a in answers if a.used_fallback)
        return answers

    # ------------------------------------------------------------------
    # phase 1
    # ------------------------------------------------------------------
    def _select_candidates(
        self,
        location: NetworkLocation,
        k: int,
        t_now: float,
        answer: KnnAnswer,
        use_gpu: bool = True,
    ) -> tuple[set[int], dict[int, tuple[int, CleanedLocation]]]:
        """Expand cell rings until ``rho * k`` candidate objects are found."""
        target = self.config.rho * k
        c_q = self.grid.cell_of_edge(location.edge_id)
        frontier = {c_q} | set(self.grid.neighbors(c_q))
        cells: set[int] = set()
        occupants: dict[int, tuple[int, CleanedLocation]] = {}
        while True:
            result = self.cleaner.clean(
                {c: self._list_of(c) for c in frontier},
                t_now,
                self.object_table,
                use_gpu=use_gpu,
            )
            occupants.update(result.all_objects())
            cells |= frontier
            if len(occupants) >= target:
                break
            frontier = self.grid.neighbors_of_set(cells)
            if not frontier:
                break  # the whole network is cleaned
        return cells, occupants

    def _list_of(self, cell: int) -> MessageList:
        if self.list_factory is not None:
            return self.list_factory(cell)
        mlist = self.lists.get(cell)
        if mlist is None:
            mlist = MessageList(self.config.delta_b, cell=cell)
            self.lists[cell] = mlist
        return mlist

    # ------------------------------------------------------------------
    # phase 2
    # ------------------------------------------------------------------
    def _score_occupants(
        self,
        location: NetworkLocation,
        dist: dict[int, float],
        occupants: dict[int, tuple[int, CleanedLocation]],
    ) -> dict[int, float]:
        """Candidate distances for ``GPU_First_k``, scored with numpy.

        Column-wise formulation of
        :func:`~repro.roadnet.location.location_distance`: gather each
        candidate's entry-edge source from the packed inverted index, add
        the restricted vertex distance and the on-edge offset, and apply
        the same-edge shortcut as a masked minimum.  The float64
        operations are identical to the scalar helper, so the scores (and
        therefore the ranked results) are bit-identical.
        """
        if not occupants:
            return {}
        n = len(occupants)
        objs: list[int] = []
        edges = np.empty(n, dtype=np.int64)
        offsets = np.empty(n, dtype=np.float64)
        for i, (obj, (_, loc)) in enumerate(occupants.items()):
            objs.append(obj)
            edges[i] = loc.edge
            offsets[i] = loc.offset
        sources = self.grid.edge_source_arr[edges]
        d_src = np.fromiter(
            (dist.get(s, _INF) for s in sources.tolist()), np.float64, n
        )
        scores = d_src + offsets
        ahead = (edges == location.edge_id) & (offsets >= location.offset)
        if ahead.any():
            np.minimum(scores, offsets - location.offset, out=scores, where=ahead)
        return dict(zip(objs, scores.tolist()))

    def _gpu_candidates(
        self,
        location: NetworkLocation,
        k: int,
        cells: set[int],
        occupants: dict[int, tuple[int, CleanedLocation]],
        answer: KnnAnswer,
    ) -> tuple[dict[int, float], list[tuple[int, float]], float]:
        """Run GPU_SDist / GPU_First_k / GPU_Unresolved (lines 5-9)."""
        stats = self.gpu.stats
        with span("sdist") as sp:
            before = stats.kernel_time_s
            slab = self.grid.pack_of_cells(cells)
            seeds = entry_costs(self.graph, location)
            dist = self.gpu.launch(
                "GPU_SDist",
                max(1, len(slab)),
                get_sdist_kernel(self.config.sdist_backend),
                slab,
                slab.vertex_list,
                seeds,
                self.config.delta_v,
                self.config.sdist_early_exit,
            )
            answer.gpu_phase_s["sdist"] = stats.kernel_time_s - before
            sp.set_attr("elements", len(slab))
            sp.set_attr("sim_s", answer.gpu_phase_s["sdist"])

        with span("first_k") as sp:
            before = stats.kernel_time_s
            object_distances = self._score_occupants(location, dist, occupants)
            ranked = self.gpu.launch(
                "GPU_First_k",
                max(1, len(object_distances)),
                first_k_kernel,
                object_distances,
                k,
            )
            l_bound = ranked[k - 1][1] if len(ranked) >= k else _INF
            answer.gpu_phase_s["first_k"] = stats.kernel_time_s - before
            sp.set_attr("candidates", len(object_distances))

        with span("unresolved") as sp:
            before = stats.kernel_time_s
            boundary = self.grid.boundary_vertices(cells)
            unresolved = self.gpu.launch(
                "GPU_Unresolved",
                max(1, len(boundary)),
                unresolved_kernel,
                boundary,
                dist,
                l_bound,
            )
            answer.gpu_phase_s["unresolved"] = stats.kernel_time_s - before
            sp.set_attr("boundary", len(boundary))

        # candidate + unresolved sets travel back to the CPU
        with span("candidates_d2h"):
            payload = len(ranked) * MESSAGE_BYTES + len(unresolved) * 8
            try:
                self.gpu.memory.store("knn.candidates", ranked, nbytes=payload)
                self.gpu.from_device("knn.candidates")
            finally:
                # a faulting transfer must not leak the staging allocation
                self.gpu.free("knn.candidates")

        candidates = {obj: d for obj, d in ranked}
        return candidates, unresolved, l_bound

    def _gpu_candidates_batch(
        self,
        jobs: list[
            tuple[int, NetworkLocation, int, set[int], dict[int, tuple[int, CleanedLocation]]]
        ],
        answers: list[KnnAnswer],
    ) -> list[tuple[dict[int, float], list[tuple[int, float]], float]]:
        """Phase 2 for an epoch batch: one fused launch per kernel.

        Each job charges its work at its own thread count (via
        :class:`~repro.simgpu.kernel.JobContext`), so the modelled kernel
        time equals the sum of the per-query launches it replaces — the
        batch saves launch overheads and transfer latencies, never
        modelled work.  Kernel time is attributed to each participating
        answer as an equal share; the candidate and unresolved sets of
        all jobs return to the host in one staging transfer.
        """
        stats = self.gpu.stats
        n_jobs = len(jobs)
        indices = [i for i, *_ in jobs]

        with span("sdist_batch") as sp:
            before = stats.kernel_time_s
            sdist_jobs = []
            for _, location, _, cells, _ in jobs:
                slab = self.grid.pack_of_cells(cells)
                sdist_jobs.append(
                    (slab, slab.vertex_list, entry_costs(self.graph, location))
                )
            dists = self.gpu.launch_batched(
                "GPU_SDist_Batch",
                max(1, sum(len(elements) for elements, _, _ in sdist_jobs)),
                n_jobs,
                sdist_batch_kernel,
                sdist_jobs,
                get_sdist_kernel(self.config.sdist_backend),
                self.config.delta_v,
                self.config.sdist_early_exit,
            )
            share = (stats.kernel_time_s - before) / n_jobs
            for i in indices:
                answers[i].gpu_phase_s["sdist"] = share
            sp.set_attr("jobs", n_jobs)
            sp.set_attr("elements", sum(len(e) for e, _, _ in sdist_jobs))

        with span("first_k_batch") as sp:
            before = stats.kernel_time_s
            fk_jobs = []
            for (_, location, k, _, occupants), dist in zip(jobs, dists):
                fk_jobs.append((self._score_occupants(location, dist, occupants), k))
            ranked_lists = self.gpu.launch_batched(
                "GPU_First_k_Batch",
                max(1, sum(len(od) for od, _ in fk_jobs)),
                n_jobs,
                first_k_batch_kernel,
                fk_jobs,
            )
            share = (stats.kernel_time_s - before) / n_jobs
            for i in indices:
                answers[i].gpu_phase_s["first_k"] = share
            sp.set_attr("jobs", n_jobs)
            sp.set_attr("candidates", sum(len(od) for od, _ in fk_jobs))

        with span("unresolved_batch") as sp:
            before = stats.kernel_time_s
            bounds = []
            un_jobs = []
            for (_, _, k, cells, _), dist, ranked in zip(jobs, dists, ranked_lists):
                l_bound = ranked[k - 1][1] if len(ranked) >= k else _INF
                bounds.append(l_bound)
                un_jobs.append((self.grid.boundary_vertices(cells), dist, l_bound))
            unresolved_lists = self.gpu.launch_batched(
                "GPU_Unresolved_Batch",
                max(1, sum(len(b) for b, _, _ in un_jobs)),
                n_jobs,
                unresolved_batch_kernel,
                un_jobs,
            )
            share = (stats.kernel_time_s - before) / n_jobs
            for i in indices:
                answers[i].gpu_phase_s["unresolved"] = share
            sp.set_attr("jobs", n_jobs)
            sp.set_attr("boundary", sum(len(b) for b, _, _ in un_jobs))

        # the whole batch's candidate + unresolved sets travel back to
        # the CPU in one shared staging transfer
        with span("candidates_d2h"):
            payload = sum(
                len(ranked) * MESSAGE_BYTES + len(unresolved) * 8
                for ranked, unresolved in zip(ranked_lists, unresolved_lists)
            )
            try:
                self.gpu.memory.store("knn.candidates", ranked_lists, nbytes=payload)
                self.gpu.from_device("knn.candidates")
            finally:
                # a faulting transfer must not leak the staging allocation
                self.gpu.free("knn.candidates")

        return [
            ({obj: d for obj, d in ranked}, unresolved, l_bound)
            for ranked, unresolved, l_bound in zip(
                ranked_lists, unresolved_lists, bounds
            )
        ]

    def _host_candidates(
        self,
        location: NetworkLocation,
        k: int,
        cells: set[int],
        occupants: dict[int, tuple[int, CleanedLocation]],
        answer: KnnAnswer,
    ) -> tuple[dict[int, float], list[tuple[int, float]], float]:
        """Phase 2 without the device: the degraded ``cpu_sdist`` rung.

        Runs the *same* kernel functions — the vectorised SDist backend
        plus First-k and Unresolved — as plain host code through a
        :class:`~repro.simgpu.kernel.HostContext`.  Results are
        bit-identical to :meth:`_gpu_candidates` (property-tested for
        the SDist backends); no launches, transfers or allocations touch
        the simulated device, so a faulting GPU cannot interfere.
        """
        from repro.core.sdist_vectorized import sdist_kernel_vectorized

        ctx = HostContext("cpu_sdist")
        with span("sdist_cpu") as sp:
            t0 = time.perf_counter()
            slab = self.grid.pack_of_cells(cells)
            seeds = entry_costs(self.graph, location)
            dist = sdist_kernel_vectorized(
                ctx,
                slab,
                slab.vertex_list,
                seeds,
                self.config.delta_v,
                self.config.sdist_early_exit,
            )

            object_distances = self._score_occupants(location, dist, occupants)
            ranked = first_k_kernel(ctx, object_distances, k)
            l_bound = ranked[k - 1][1] if len(ranked) >= k else _INF

            boundary = self.grid.boundary_vertices(cells)
            unresolved = unresolved_kernel(ctx, boundary, dist, l_bound)
            answer.cpu_seconds["sdist_cpu"] = time.perf_counter() - t0
            sp.set_attr("elements", len(slab))
            sp.set_attr("candidates", len(object_distances))

        candidates = {obj: d for obj, d in ranked}
        return candidates, unresolved, l_bound

    # ------------------------------------------------------------------
    # fallback
    # ------------------------------------------------------------------
    def _fallback(
        self, location: NetworkLocation, k: int, answer: KnnAnswer
    ) -> KnnAnswer:
        """Exact one-shot Dijkstra answer for degenerate cases."""
        with span("fallback"):
            t0 = time.perf_counter()
            dist = multi_source_dijkstra(
                self.graph, entry_costs(self.graph, location)
            )
            scored: list[tuple[int, float]] = []
            for obj, entry in self.object_table.objects().items():
                target = NetworkLocation(entry.edge, entry.offset)
                d = location_distance(self.graph, dist, location, target)
                if d < _INF:
                    scored.append((obj, d))
            scored.sort(key=lambda kv: (kv[1], kv[0]))
            answer.entries = [KnnResultEntry(o, d) for o, d in scored[:k]]
            answer.used_fallback = True
            answer.cpu_seconds["fallback"] = time.perf_counter() - t0
        return answer
