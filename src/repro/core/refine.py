"""Refine_kNN: CPU refinement of the GPU candidate set (Algorithm 6).

The GPU phase only saw the candidate cells, so two things can be missing:
objects *outside* those cells that are actually nearer than the k-th
candidate, and *shorter paths* that leave the candidate subgraph and come
back.  Both are recovered from the unresolved vertices: for each boundary
vertex ``v`` with restricted distance ``dist(q, v) < l``, a bounded
Dijkstra with radius ``l - dist(q, v)`` explores v's unresolved range on
the full graph and scores every object found there.  Each unresolved
vertex is independent, so the paper runs them on parallel CPU threads;
this implementation runs them sequentially and lets the metrics layer
model the division across ``cpu_workers`` (see DESIGN.md §2).

At paper scale the per-search ``dict`` allocations and per-object scoring
dominate, so the searches share one full-size distance array
(:class:`~repro.roadnet.dijkstra.BoundedSearch`, reset by version stamp)
and objects are scored cell-at-a-time off the object table's cached
columns — same values, same results (DESIGN.md §16).

Correctness sketch (tested against a brute-force oracle): any true
shortest path to an object not fully inside the candidate cells first
exits the cell set at some boundary vertex ``u``; its in-set prefix is at
least the restricted ``dist[u]``, so the remaining suffix fits inside
``u``'s unresolved range whenever the object beats the bound ``l``.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.core.object_table import ObjectTable
from repro.core.ordering import rank_results
from repro.obs.tracing import span
from repro.roadnet.dijkstra import BoundedSearch
from repro.roadnet.graph import RoadNetwork

_INF = float("inf")


class RefineScratch:
    """Reusable per-graph arrays for repeated refinement passes.

    Holds the shared-distance-array bounded search plus the two gather
    tables refinement scores with: vertex → cell and edge → source
    vertex.  One instance per :class:`~repro.core.knn.KnnProcessor`;
    building it is ``O(|V| + |E|)`` once, after which a refinement pass
    allocates nothing proportional to the graph.
    """

    def __init__(self, graph: RoadNetwork, cell_of_vertex: Sequence[int]) -> None:
        self.search = BoundedSearch(graph)
        self.cell_of_vertex = np.asarray(cell_of_vertex, dtype=np.int64)
        n = graph.num_edges
        self.edge_source = np.fromiter(
            (graph.edge(e).source for e in range(n)), np.int64, n
        )


def refine_knn(
    graph: RoadNetwork,
    object_table: ObjectTable,
    cell_of_vertex: Sequence[int],
    candidates: dict[int, float],
    unresolved: list[tuple[int, float]],
    k: int,
    l_bound: float,
    scratch: RefineScratch | None = None,
) -> tuple[list[tuple[int, float]], int]:
    """Produce the final kNN from candidates plus unresolved ranges.

    Args:
        graph: the full road network.
        object_table: eager latest locations (used to enumerate objects
            inside an unresolved range by cell).
        cell_of_vertex: vertex id -> grid cell, to map settled vertices to
            the cells whose objects must be scored.
        candidates: ``{obj: restricted distance}`` from ``GPU_First_k``
            (may contain more than k entries; infinite distances allowed).
        unresolved: ``(vertex, dist(q, vertex))`` pairs from
            ``GPU_Unresolved``.
        k: result size.
        l_bound: the k-th smallest candidate distance ``l``.
        scratch: reusable per-graph arrays; built ad hoc when omitted
            (the query processor passes a long-lived one).

    Returns:
        ``(results, vertices_settled)`` where results is at most ``k``
        ``(obj, distance)`` pairs sorted ascending and vertices_settled
        counts the total Dijkstra work done (for the metrics layer).
    """
    best: dict[int, float] = dict(candidates)
    settled_total = 0
    if unresolved:
        if scratch is None:
            scratch = RefineScratch(graph, cell_of_vertex)
        search = scratch.search
    for u, d_qu in unresolved:
        radius = l_bound - d_qu
        if radius <= 0:
            continue
        with span("refine_dijkstra") as sp:
            settled = search.run(u, radius)
            sp.set_attr("vertex", u)
            sp.set_attr("settled", len(settled))
        settled_total += len(settled)
        if not len(settled):
            continue
        touched_cells = np.unique(scratch.cell_of_vertex[settled])
        for cell in touched_cells.tolist():
            cols = object_table.cell_columns(cell)
            if cols is None:
                continue
            sources = scratch.edge_source[cols.edges]
            reached = search.is_settled(sources)
            if not reached.any():
                continue
            # same float64 chain as the scalar path: (d_qu + d_src) + offset
            d_obj = d_qu + search.distances(sources) + cols.offsets
            for obj, d in zip(
                cols.objs[reached].tolist(), d_obj[reached].tolist()
            ):
                if d < best.get(obj, _INF):
                    best[obj] = d
    # canonical result order (distance, then object id) — see
    # repro.core.ordering for why every ranking path must agree on ties
    return rank_results(best.items(), k), settled_total
