"""Refine_kNN: CPU refinement of the GPU candidate set (Algorithm 6).

The GPU phase only saw the candidate cells, so two things can be missing:
objects *outside* those cells that are actually nearer than the k-th
candidate, and *shorter paths* that leave the candidate subgraph and come
back.  Both are recovered from the unresolved vertices: for each boundary
vertex ``v`` with restricted distance ``dist(q, v) < l``, a bounded
Dijkstra with radius ``l - dist(q, v)`` explores v's unresolved range on
the full graph and scores every object found there.  Each unresolved
vertex is independent, so the paper runs them on parallel CPU threads;
this implementation runs them sequentially and lets the metrics layer
model the division across ``cpu_workers`` (see DESIGN.md §2).

Correctness sketch (tested against a brute-force oracle): any true
shortest path to an object not fully inside the candidate cells first
exits the cell set at some boundary vertex ``u``; its in-set prefix is at
least the restricted ``dist[u]``, so the remaining suffix fits inside
``u``'s unresolved range whenever the object beats the bound ``l``.
"""

from __future__ import annotations

from typing import Sequence

from repro.core.object_table import ObjectTable
from repro.core.ordering import rank_results
from repro.obs.tracing import span
from repro.roadnet.dijkstra import multi_source_dijkstra
from repro.roadnet.graph import RoadNetwork

_INF = float("inf")


def refine_knn(
    graph: RoadNetwork,
    object_table: ObjectTable,
    cell_of_vertex: Sequence[int],
    candidates: dict[int, float],
    unresolved: list[tuple[int, float]],
    k: int,
    l_bound: float,
) -> tuple[list[tuple[int, float]], int]:
    """Produce the final kNN from candidates plus unresolved ranges.

    Args:
        graph: the full road network.
        object_table: eager latest locations (used to enumerate objects
            inside an unresolved range by cell).
        cell_of_vertex: vertex id -> grid cell, to map settled vertices to
            the cells whose objects must be scored.
        candidates: ``{obj: restricted distance}`` from ``GPU_First_k``
            (may contain more than k entries; infinite distances allowed).
        unresolved: ``(vertex, dist(q, vertex))`` pairs from
            ``GPU_Unresolved``.
        k: result size.
        l_bound: the k-th smallest candidate distance ``l``.

    Returns:
        ``(results, vertices_settled)`` where results is at most ``k``
        ``(obj, distance)`` pairs sorted ascending and vertices_settled
        counts the total Dijkstra work done (for the metrics layer).
    """
    best: dict[int, float] = dict(candidates)
    settled_total = 0
    for u, d_qu in unresolved:
        radius = l_bound - d_qu
        if radius <= 0:
            continue
        with span("refine_dijkstra") as sp:
            dist_u = multi_source_dijkstra(graph, {u: 0.0}, radius=radius)
            sp.set_attr("vertex", u)
            sp.set_attr("settled", len(dist_u))
        settled_total += len(dist_u)
        touched_cells = {cell_of_vertex[w] for w in dist_u}
        for cell in touched_cells:
            for obj in object_table.objects_in_cell(cell):
                entry = object_table.get(obj)
                src = graph.edge(entry.edge).source
                d_src = dist_u.get(src)
                if d_src is None:
                    continue
                d_obj = d_qu + d_src + entry.offset
                if d_obj < best.get(obj, _INF):
                    best[obj] = d_obj
    # canonical result order (distance, then object id) — see
    # repro.core.ordering for why every ranking path must agree on ties
    return rank_results(best.items(), k), settled_total
