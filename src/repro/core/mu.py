"""Combinatorics of the X-shuffle bound (Section IV-D).

After the ``eta`` butterfly shuffles of ``GPU_X_Shuffle``, the number of
*distinct* surviving messages of any single object within a ``2^eta``
bundle is bounded by ``mu(eta)`` (Theorem 1).  That bound is what lets
each thread update the intermediate table only ``mu(eta)`` times instead
of once per thread.

This module implements the paper's definitions exactly so both the
algorithm and the tests can use them:

* :func:`x_distance` — Definition 2 (number of 1-runs in ``a XOR b``);
* :func:`covers` — Lemma 1 (``a`` covers ``b`` iff x-distance is 1);
* :func:`cover_set` — ``C(a)``, with ``|C(a)| = binom(eta+1, 2)``
  (Lemma 2);
* :func:`lam` — the coverage lower bound ``lambda(eta, i)`` of Lemma 5;
* :func:`mu` — Theorem 1, with a brute-force fallback for ``eta <= 3``
  where the theorem does not apply;
* :func:`shuffle_position` — Theorem 2: where a never-replaced message
  sits after the k-th shuffle;
* :func:`max_exclusive_set_size` — exhaustive maximum-independent-set
  computation on the cover graph (small ``eta`` only; used in tests).
"""

from __future__ import annotations

import math
from functools import lru_cache

from repro.errors import ConfigError


def x_distance(a: int, b: int) -> int:
    """Definition 2: the number of maximal runs of 1s in ``a XOR b``.

    ``x_distance(10, 1) == 2`` since ``01010 ^ 00001 == 01011`` which
    splits on 0s into two 1-runs.
    """
    if a < 0 or b < 0:
        raise ConfigError("thread indices must be non-negative")
    x = a ^ b
    runs = 0
    in_run = False
    while x:
        if x & 1:
            if not in_run:
                runs += 1
                in_run = True
        else:
            in_run = False
        x >>= 1
    return runs


def covers(a: int, b: int) -> bool:
    """Lemma 1: thread ``a`` covers thread ``b`` iff their x-distance is 1.

    (The relation is symmetric — covering means the two messages meet at a
    thread during the shuffle cascade, so the newer of the two wins.)
    """
    return x_distance(a, b) == 1


def cover_set(a: int, eta: int) -> frozenset[int]:
    """``C(a)``: the threads of a ``2^eta`` bundle covered by ``a``."""
    _check_eta(eta)
    return frozenset(b for b in range(1 << eta) if b != a and covers(a, b))


def shuffle_position(alpha: int, k: int, eta: int) -> int:
    """Theorem 2: thread index of ``m_alpha`` after the ``k``-th shuffle.

    Assuming the message was never replaced: it sits at
    ``alpha XOR sum_{i=1..k} 2^(eta-i)``.
    """
    _check_eta(eta)
    if not 0 <= k <= eta:
        raise ConfigError(f"shuffle round {k} out of [0, {eta}]")
    acc = 0
    for i in range(1, k + 1):
        acc ^= 1 << (eta - i)
    return alpha ^ acc


def lam(eta: int, i: int) -> float:
    """``lambda(eta, i)`` from Theorem 1: a size-``i`` exclusive set covers
    at least this many threads (Lemma 5)."""
    if i < 0:
        raise ConfigError(f"exclusive-set size must be non-negative, got {i}")
    base = i * math.comb(eta + 1, 2)
    overlap = sum((14 - j) * (j - 1) / 2 for j in range(1, i + 1))
    return base - overlap + i


@lru_cache(maxsize=None)
def mu(eta: int) -> int:
    """Theorem 1: max distinct same-object messages after the shuffles.

    For bundles of 16, 32, 64, 128 threads this yields 2, 4, 8, 16.  The
    theorem requires ``eta > 3``; for smaller bundles we fall back to the
    exact maximum exclusive-set size (brute force over at most 8 threads).
    """
    _check_eta(eta)
    if eta <= 3:
        return max_exclusive_set_size(eta)
    total = 1 << eta
    # Case 1 of Theorem 1: some exclusive set of size i <= 8 already covers
    # the whole bundle, so no larger exclusive set exists.  (The paper
    # phrases the condition via lambda(eta, 8), but lambda as defined is
    # not monotone in i; testing every i <= 8 matches the stated values
    # mu = 2, 4, 8 for eta = 4, 5, 6.)
    feasible = [i for i in range(1, 9) if lam(eta, i) >= total]
    if feasible:
        return min(feasible)
    # Case 2: even eight mutually exclusive threads cover only
    # lambda(eta, 8) others; the rest could each hold a distinct message.
    return int(total - lam(eta, 8) + 8)


@lru_cache(maxsize=None)
def max_exclusive_set_size(eta: int) -> int:
    """Exact size of the largest *exclusive set* of a ``2^eta`` bundle.

    An exclusive set is a set of threads none of which covers another —
    i.e. an independent set of the cover graph.  Exponential search;
    intended for ``eta <= 4`` (16 threads) in tests and small-bundle
    fallbacks.
    """
    _check_eta(eta)
    n = 1 << eta
    if n > 1 << 16:  # pragma: no cover - guarded by callers
        raise ConfigError(f"brute force infeasible for eta={eta}")
    adjacency = [0] * n
    for a in range(n):
        for b in range(a + 1, n):
            if covers(a, b):
                adjacency[a] |= 1 << b
                adjacency[b] |= 1 << a

    best = 0

    def extend(candidates: int, size: int) -> None:
        nonlocal best
        if size + candidates.bit_count() <= best:
            return
        if candidates == 0:
            best = max(best, size)
            return
        v = (candidates & -candidates).bit_length() - 1
        # branch 1: include v
        extend(candidates & ~((1 << v) | adjacency[v]), size + 1)
        # branch 2: exclude v
        extend(candidates & ~(1 << v), size)

    extend((1 << n) - 1, 0)
    return best


def _check_eta(eta: int) -> None:
    if eta < 1:
        raise ConfigError(f"eta must be >= 1, got {eta}")
