"""The kNN query server: replaying workloads over any index.

:class:`QueryServer` is the component the paper's Figure 1 sketches: it
ingests object location updates and answers kNN queries against whichever
index backs it.  :meth:`QueryServer.replay` feeds a time-ordered workload
through the index, timing updates and queries separately, and produces
the :class:`~repro.server.metrics.ReplayReport` the benchmarks print.
"""

from __future__ import annotations

import time
from typing import Protocol, runtime_checkable

from repro.core.knn import KnnAnswer
from repro.core.messages import Message
from repro.mobility.workload import Query, Workload
from repro.roadnet.location import NetworkLocation
from repro.server.metrics import QueryRecord, ReplayReport, TimingModel
from repro.simgpu.device import SimGpu


@runtime_checkable
class KnnIndex(Protocol):
    """What the server requires of an index implementation."""

    name: str

    def ingest(self, message: Message) -> None: ...

    def bulk_load(self, placements: dict[int, NetworkLocation], t: float) -> None: ...

    def knn(
        self, location: NetworkLocation, k: int, t_now: float | None = None
    ) -> KnnAnswer: ...

    def size_bytes(self) -> dict[str, int]: ...

    def reset_objects(self) -> None: ...


class QueryServer:
    """Drives one index through updates and queries with full accounting."""

    def __init__(
        self,
        index: KnnIndex,
        timing: TimingModel | None = None,
        maintenance: "object | None" = None,
    ) -> None:
        """Args:
            index: any :class:`KnnIndex` implementation.
            timing: the modelled-time parameters.
            maintenance: optional background-cleaning policy (see
                :mod:`repro.server.maintenance`); invoked after every
                update, only meaningful for indexes exposing
                ``clean_cells`` (G-Grid).
        """
        self.index = index
        self.timing = timing or TimingModel()
        self.maintenance = maintenance

    @property
    def _gpu(self) -> SimGpu | None:
        return getattr(self.index, "gpu", None)

    # ------------------------------------------------------------------
    # single operations
    # ------------------------------------------------------------------
    def update(self, message: Message, report: ReplayReport) -> None:
        """Ingest one update, charging its cost to the report."""
        gpu = self._gpu
        before = gpu.stats.snapshot() if gpu else None
        touches_before = getattr(self.index, "update_touches", 0)
        t0 = time.perf_counter()
        self.index.ingest(message)
        if self.maintenance is not None:
            self.maintenance.on_update(self.index, message.t)
        report.update_wall_s += time.perf_counter() - t0
        report.update_touches += (
            getattr(self.index, "update_touches", 0) - touches_before
        )
        if gpu and before is not None:
            report.update_gpu_s += gpu.stats.diff(before).gpu_time_s
        report.n_updates += 1

    def query(self, q: Query, report: ReplayReport) -> KnnAnswer:
        """Answer one query, charging its cost to the report."""
        gpu = self._gpu
        before = gpu.stats.snapshot() if gpu else None
        t0 = time.perf_counter()
        answer = self.index.knn(q.location, q.k, t_now=q.t)
        wall = time.perf_counter() - t0
        gpu_s = 0.0
        transfer = 0
        if gpu and before is not None:
            delta = gpu.stats.diff(before)
            gpu_s = delta.gpu_time_s
            transfer = delta.total_bytes
        modeled = gpu_s
        for phase, seconds in answer.cpu_seconds.items():
            if phase == "refine":
                items = max(1, answer.unresolved)
            elif phase == "score":
                items = max(1, answer.candidates)
            else:
                items = 1
            modeled += self.timing.cpu_seconds(seconds, parallel_items=items)
        report.query_records.append(
            QueryRecord(
                modeled_s=modeled,
                wall_s=wall,
                gpu_s=gpu_s,
                transfer_bytes=transfer,
                used_fallback=answer.used_fallback,
            )
        )
        report.n_queries += 1
        return answer

    # ------------------------------------------------------------------
    # workload replay
    # ------------------------------------------------------------------
    def replay(
        self, workload: Workload, collect_answers: bool = False
    ) -> tuple[ReplayReport, list[KnnAnswer]]:
        """Replay a full workload (initial load + merged event stream).

        The initial bulk load counts as updates — the paper's amortised
        metric charges *all* index maintenance to the queries it serves.

        Returns:
            The report and, when ``collect_answers``, the per-query
            answers (for correctness cross-checks).
        """
        report = ReplayReport(index_name=self.index.name, timing=self.timing)
        answers: list[KnnAnswer] = []
        for obj, loc in workload.initial.items():
            self.update(Message(obj, loc.edge_id, loc.offset, 0.0), report)
        for kind, event in workload.events():
            if kind == "update":
                assert isinstance(event, Message)
                self.update(event, report)
            else:
                assert isinstance(event, Query)
                answer = self.query(event, report)
                if collect_answers:
                    answers.append(answer)
        return report, answers
