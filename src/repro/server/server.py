"""The kNN query server: replaying workloads over any index.

:class:`QueryServer` is the component the paper's Figure 1 sketches: it
ingests object location updates and answers kNN queries against whichever
index backs it.  :meth:`QueryServer.replay` feeds a time-ordered workload
through the index, timing updates and queries separately, and produces
the :class:`~repro.server.metrics.ReplayReport` the benchmarks print.

When given an :class:`~repro.obs.Observability` bundle (explicitly or
via :func:`repro.obs.configure`), the server additionally publishes the
full query lifecycle to it: ingest/query counters and per-phase latency
histograms into the metrics registry, each query's span tree into the
tracer, and the slowest queries (with their phase splits and cell
attributes) into the slow-query log.  With no bundle attached the
instrumentation costs nothing — no extra kernel launches and no
per-message allocations.
"""

from __future__ import annotations

import time
from typing import Protocol, runtime_checkable

from pathlib import Path

from repro.core.knn import BatchExecStats, KnnAnswer
from repro.core.messages import Message
from repro.errors import QueryError
from repro.mobility.workload import Query, Workload
from repro.obs.hub import Observability, default_observability
from repro.obs.metrics import RateLimitedWarner, linear_buckets, log_scale_buckets
from repro.obs.slo import SloTracker, classify_fanout
from repro.roadnet.location import NetworkLocation
from repro.server.batching import BatchPolicy, default_batch_policy
from repro.server.metrics import QueryRecord, ReplayReport, TimingModel
from repro.simgpu.device import SimGpu


@runtime_checkable
class KnnIndex(Protocol):
    """What the server requires of an index implementation."""

    name: str

    def ingest(self, message: Message) -> None: ...

    def bulk_load(self, placements: dict[int, NetworkLocation], t: float) -> None: ...

    def knn(
        self, location: NetworkLocation, k: int, t_now: float | None = None
    ) -> KnnAnswer: ...

    def size_bytes(self) -> dict[str, int]: ...

    def reset_objects(self) -> None: ...


class ServerInstruments:
    """Metric handles the server hot paths publish to, resolved once.

    The metric names here (``repro_*``) are the public contract
    documented in README.md §Observability; dashboards and tests key on
    them.
    """

    def __init__(self, obs: Observability) -> None:
        self.obs = obs
        registry = obs.registry
        self.ingest_messages = registry.counter(
            "repro_ingest_messages_total",
            help="Location updates ingested by the server.",
        ).default()
        self.queries = registry.counter(
            "repro_queries_total", help="kNN queries answered."
        ).default()
        self.fallbacks = registry.counter(
            "repro_query_fallback_total",
            help="Queries answered by the exact-Dijkstra fallback path.",
        ).default()
        self.query_seconds = registry.histogram(
            "repro_query_modeled_seconds",
            help="Modelled end-to-end latency per query.",
        ).default()
        self.phase_seconds = registry.histogram(
            "repro_phase_seconds",
            help="Modelled/simulated seconds per lifecycle phase "
            "(ingest, clean_cells, sdist, refine, gpu_kernel, ...).",
            labelnames=("phase",),
        )
        self.cells_cleaned = registry.counter(
            "repro_query_cells_cleaned_total",
            help="Candidate cells cleaned on behalf of queries.",
        ).default()
        self.candidates = registry.histogram(
            "repro_query_candidates",
            help="GPU candidate-set size per query.",
            buckets=log_scale_buckets(1.0, 1e6, 1),
        ).default()
        self.gpu_kernel_seconds = registry.counter(
            "repro_gpu_kernel_seconds_total",
            help="Simulated GPU kernel seconds.",
        ).default()
        self.gpu_transfer_bytes = registry.counter(
            "repro_gpu_transfer_bytes_total",
            help="Host<->device bytes moved (both directions).",
        ).default()
        self.objects = registry.gauge(
            "repro_objects", help="Live objects in the index."
        ).default()
        self.backlog = registry.gauge(
            "repro_backlog_messages",
            help="Cached (uncleaned) messages across all cells.",
        ).default()
        # -- resilience (the chaos/degradation contract, README §Resilience) --
        self.retries = registry.counter(
            "repro_retries_total",
            help="Device retries spent by the resilience ladder.",
        ).default()
        self.degraded = registry.counter(
            "repro_degraded_queries_total",
            help="Queries answered below the healthy GPU rung, by rung.",
            labelnames=("rung",),
        )
        self.breaker_state = registry.gauge(
            "repro_breaker_state",
            help="Circuit-breaker state: 0=closed, 1=half-open, 2=open.",
        ).default()
        #: the state gauge only samples at publication time; the
        #: transition counter makes half-open probe outcomes observable
        #: even when they resolve between two queries
        self.breaker_transitions = registry.counter(
            "repro_breaker_transitions_total",
            help="Circuit-breaker state transitions, by (from, to) state.",
            labelnames=("from", "to"),
        )
        self.backpressure = registry.counter(
            "repro_backpressure_cleanings_total",
            help="Updates that forced an in-line cleaning at capacity.",
        ).default()
        # -- batched execution (DESIGN.md §10) --
        self.batches = registry.counter(
            "repro_batches_total",
            help="Query epochs executed by the batch engine.",
        ).default()
        self.batch_size = registry.histogram(
            "repro_batch_size",
            help="Queries per executed epoch.",
            buckets=linear_buckets(1.0, 1.0, 65),
        ).default()
        self.batch_cells_cleaned = registry.counter(
            "repro_batch_cells_cleaned_total",
            help="Distinct cells cleaned once per epoch by the batch engine.",
        ).default()
        self.batch_cells_deduped = registry.counter(
            "repro_batch_cells_deduped_total",
            help="Cell cleanings avoided by epoch dedup vs sequential execution.",
        ).default()
        # -- SLO scoring (DESIGN.md §13) --
        self.slo = SloTracker(obs.slo_policy, registry)


class QueryServer:
    """Drives one index through updates and queries with full accounting."""

    def __init__(
        self,
        index: KnnIndex,
        timing: TimingModel | None = None,
        maintenance: "object | None" = None,
        obs: Observability | None = None,
        batch: BatchPolicy | None = None,
        durability: "object | None" = None,
        publish_slo: bool = True,
        planner: "object | None" = None,
    ) -> None:
        """Args:
            index: any :class:`KnnIndex` implementation.
            timing: the modelled-time parameters.
            maintenance: optional background-cleaning policy (see
                :mod:`repro.server.maintenance`); invoked after every
                update, only meaningful for indexes exposing
                ``clean_cells`` (G-Grid).
            obs: observability bundle to publish to; defaults to the
                process-wide bundle installed with
                :func:`repro.obs.configure` (None = observability off).
            batch: epoch batching policy (DESIGN.md §10); defaults to
                the process-wide policy installed with
                :func:`repro.server.batching.configure_batching`, else
                sequential execution.
            durability: optional
                :class:`~repro.persist.manager.DurabilityManager`
                (DESIGN.md §11): every update is WAL-logged before it is
                applied and the manager's snapshot policy runs after,
                so a process death recovers via :meth:`recover`.
            publish_slo: score queries against the bundle's SLO policy.
                The cluster router turns this off for its shard-internal
                servers — a shard probe is a fragment of a logical
                query, and only the front door may score it (otherwise
                every scatter would be double-counted).
            planner: optional adaptive
                :class:`~repro.plan.planner.QueryPlanner` (DESIGN.md
                §17): every applied update is tapped into it (feeding
                its TEN foil and invalidating its result cache) and
                every query is routed through its cache + cost-model
                decision instead of straight to ``index``.  Answers
                stay exact regardless of the chosen backend.
        """
        self.index = index
        self.timing = timing or TimingModel()
        self.maintenance = maintenance
        self.obs = obs if obs is not None else default_observability()
        self._inst = ServerInstruments(self.obs) if self.obs is not None else None
        self.publish_slo = publish_slo
        self._last_breaker = 0
        self.batch = batch if batch is not None else (
            default_batch_policy() or BatchPolicy()
        )
        self.durability = durability
        #: attached standing-query layer (repro.subscribe); every applied
        #: update/removal is tapped into it as the delta stream
        self.subscriptions = None
        #: attached adaptive planner (repro.plan); taps the same delta
        #: stream and owns the query routing when present
        self.planner = planner
        if planner is not None:
            planner.attach(index)
        breaker = getattr(index, "breaker", None)
        if self._inst is not None and breaker is not None:
            transitions = self._inst.breaker_transitions
            breaker.on_transition = lambda old, new: transitions.labels(
                **{"from": old, "to": new}
            ).inc()
        #: rate-limited fallback warning (1st occurrence, then every
        #: 100th, cumulative count in the message)
        self._fallback_warner = (
            RateLimitedWarner(self.obs.registry, "query_server")
            if self.obs is not None
            else None
        )

    @classmethod
    def recover(
        cls,
        directory: str | Path,
        *,
        graph: "object | None" = None,
        config: "object | None" = None,
        timing: TimingModel | None = None,
        maintenance: "object | None" = None,
        obs: Observability | None = None,
        batch: BatchPolicy | None = None,
        **durability_kwargs: object,
    ) -> "QueryServer":
        """Rebuild a server from a durability directory after a crash.

        Runs :func:`repro.persist.recovery.recover` (newest valid
        snapshot + WAL replay past its watermark), then attaches a fresh
        :class:`~repro.persist.manager.DurabilityManager` that resumes
        the same log — its writer trims any torn tail and continues the
        LSN sequence — so the recovered server is durable again from
        the first post-recovery update.  The recovery report is exposed
        as ``server.recovery_report``.
        """
        from repro.persist.manager import DurabilityManager
        from repro.persist.recovery import recover as _recover

        resolved_obs = obs if obs is not None else default_observability()
        index, report = _recover(
            directory, graph=graph, config=config, obs=resolved_obs
        )
        manager = DurabilityManager(directory, obs=resolved_obs, **durability_kwargs)
        server = cls(
            index,
            timing=timing,
            maintenance=maintenance,
            obs=obs,
            batch=batch,
            durability=manager,
        )
        server.recovery_report = report
        return server

    @property
    def _gpu(self) -> SimGpu | None:
        return getattr(self.index, "gpu", None)

    # ------------------------------------------------------------------
    # single operations
    # ------------------------------------------------------------------
    def update(self, message: Message, report: ReplayReport) -> None:
        """Ingest one update, charging its cost to the report."""
        gpu = self._gpu
        before = gpu.stats.snapshot() if gpu else None
        touches_before = getattr(self.index, "update_touches", 0)
        bp_before = getattr(self.index, "backpressure_cleanings", 0)
        backoff_before = getattr(self.index, "resilience_backoff_s", 0.0)
        t0 = time.perf_counter()
        if self.durability is not None:
            # write-ahead: the update is durable the moment it is logged,
            # so recovery replays it even if we die before applying it
            self.durability.log_ingest(message)
        self.index.ingest(message)
        if self.maintenance is not None:
            self.maintenance.on_update(self.index, message.t)
        if self.durability is not None:
            self.durability.maybe_snapshot(self.index)
        wall = time.perf_counter() - t0
        if self.subscriptions is not None:
            self.subscriptions.observe(message)
        planner_touches = 0
        if self.planner is not None:
            # the planner taps the same delta stream; its TEN foil's
            # maintenance work is real and charged to the update budget
            planner_touches = self.planner.observe(message)
        report.update_wall_s += wall
        report.update_touches += (
            getattr(self.index, "update_touches", 0) - touches_before
        ) + planner_touches
        backpressured = (
            getattr(self.index, "backpressure_cleanings", 0) - bp_before
        )
        backoff_s = (
            getattr(self.index, "resilience_backoff_s", 0.0) - backoff_before
        )
        report.updates_backpressured += backpressured
        report.update_backoff_s += backoff_s
        gpu_s = 0.0
        if gpu and before is not None:
            gpu_s = gpu.stats.diff(before).gpu_time_s
            report.update_gpu_s += gpu_s
        report.n_updates += 1
        inst = self._inst
        if inst is not None:
            inst.ingest_messages.inc()
            inst.phase_seconds.labels(phase="ingest").observe(wall)
            if gpu_s:
                inst.gpu_kernel_seconds.inc(gpu_s)
            if backpressured:
                inst.backpressure.inc(backpressured)
            breaker = getattr(self.index, "breaker", None)
            if breaker is not None:
                code = breaker.state_code
                inst.breaker_state.set(code)
                if (
                    code == 2
                    and self._last_breaker != 2
                    and self.obs.flight is not None
                ):
                    self.obs.flight.trigger(
                        "breaker_open", detail=f"index={self.index.name}"
                    )
                self._last_breaker = code

    def remove_object(self, obj: int, t: float) -> None:
        """Deregister an object durably (WAL-logged when durability is on).

        Raises:
            QueryError: the backing index does not support removal.
            UnknownObjectError: the object was never ingested.
        """
        remove = getattr(self.index, "remove_object", None)
        if remove is None:
            raise QueryError(
                f"index {self.index.name!r} does not support object removal"
            )
        if self.durability is not None:
            self.durability.log_remove(obj, t)
        remove(obj, t)
        if self.subscriptions is not None:
            self.subscriptions.observe_remove(obj, t)
        if self.planner is not None:
            self.planner.observe_remove(obj, t)
        if self.durability is not None:
            self.durability.maybe_snapshot(self.index)

    def attach_subscriptions(self, manager: object) -> None:
        """Wire a :class:`~repro.subscribe.manager.SubscriptionManager`
        into the update path (called by the manager's constructor)."""
        self.subscriptions = manager

    def tick(self, t_now: float | None = None, force_all: bool = False):
        """Refresh the attached subscriptions at ``t_now`` (defaults to
        the index's latest ingested timestamp)."""
        if self.subscriptions is None:
            raise QueryError(
                "no subscription manager attached; construct a "
                "SubscriptionManager over this server first"
            )
        if t_now is None:
            t_now = getattr(self.index, "latest_time", 0.0)
        return self.subscriptions.tick(t_now, force_all=force_all)

    def query(
        self, q: Query, report: ReplayReport, trace_parent: str | None = None
    ) -> KnnAnswer:
        """Answer one query, charging its cost to the report.

        ``trace_parent`` is an encoded
        :class:`~repro.obs.tracing.TraceContext` header from an upstream
        component (the cluster router's per-shard probe span): the
        query span joins that trace instead of starting its own, so a
        scatter-gathered query renders as one tree.

        With an attached planner the query first consults the result
        cache, then executes on whichever backend the planner chooses;
        without one it goes straight to the primary index.
        """
        if self.planner is not None:
            return self._planned_query(q, report, trace_parent)
        return self._knn_direct(self.index, q, report, trace_parent)

    def _knn_direct(
        self,
        index: KnnIndex,
        q: Query,
        report: ReplayReport,
        trace_parent: str | None = None,
    ) -> KnnAnswer:
        """Execute one query on a specific backend with full accounting."""
        gpu = getattr(index, "gpu", None)
        before = gpu.stats.snapshot() if gpu else None
        tracer = self.obs.tracer if self.obs is not None else None
        trace_id: str | None = None
        t0 = time.perf_counter()
        if tracer is not None:
            with tracer.activate(), tracer.span(
                "query", {"k": q.k, "t": q.t}, parent=trace_parent
            ) as sp:
                answer = index.knn(q.location, q.k, t_now=q.t)
                sp.set_attr("cells_cleaned", answer.cells_cleaned)
                sp.set_attr("candidates", answer.candidates)
            trace_id = sp.trace_id_hex
        else:
            answer = index.knn(q.location, q.k, t_now=q.t)
        wall = time.perf_counter() - t0
        gpu_s = 0.0
        transfer = 0
        if gpu and before is not None:
            delta = gpu.stats.diff(before)
            gpu_s = delta.gpu_time_s
            transfer = delta.total_bytes
        self._record_answer(
            answer, wall, gpu_s, transfer, report, t=q.t, trace_id=trace_id
        )
        return answer

    def _planned_query(
        self, q: Query, report: ReplayReport, trace_parent: str | None = None
    ) -> KnnAnswer:
        """Cache lookup → plan → execute → verify (DESIGN.md §17)."""
        hit = self.planner.cached_answer(q)
        if hit is not None:
            # byte-identical entries, zero modelled cost: no kernels, no
            # cleaning, no refinement ran on anyone's behalf
            self._record_answer(hit, 0.0, 0.0, 0, report, t=q.t)
            return hit
        plan = self.planner.plan_query(q)
        return self._execute_plan(q, plan, report, trace_parent)

    def _execute_plan(
        self,
        q: Query,
        plan: "object",
        report: ReplayReport,
        trace_parent: str | None = None,
    ) -> KnnAnswer:
        backend = self.planner.resolve(plan)
        probe = self.planner.probe(plan)
        tracer = self.obs.tracer if self.obs is not None else None
        if tracer is not None:
            with tracer.activate(), tracer.span(
                "plan",
                {
                    "backend": plan.backend,
                    "rung": plan.rung,
                    "predicted_s": plan.predicted_cost,
                },
                parent=trace_parent,
            ) as sp:
                sp.set_attr("reason", plan.reason)
                answer = self._knn_direct(
                    backend, q, report, trace_parent=sp.context.encode()
                )
        else:
            answer = self._knn_direct(backend, q, report, trace_parent=None)
        self.planner.observe_result(plan, answer, probe)
        self.planner.cache_store(q, answer)
        return answer

    def query_batch(
        self,
        queries: list[Query],
        report: ReplayReport,
        trace_parent: str | None = None,
    ) -> list[KnnAnswer]:
        """Execute one epoch of queries, charging its cost to the report.

        All queries run at ``t_epoch = max(q.t)`` through the index's
        batched engine (one deduplicated cleaning pass, fused candidate
        kernels, one shared transfer); per-query answers are identical
        to sequential execution.  The epoch's GPU time and wall time are
        attributed to the queries as equal shares (transfer bytes get
        their division remainder on the first query, so totals are
        exact).  Single-query epochs — and indexes without ``knn_batch``
        — go through :meth:`query` unchanged.  ``trace_parent`` joins
        the epoch span to an upstream trace, as in :meth:`query`.
        """
        if not queries:
            return []
        n = len(queries)
        report.n_batches += 1
        inst = self._inst
        if inst is not None:
            inst.batches.inc()
            inst.batch_size.observe(n)
        if self.planner is not None:
            return self._planned_batch(queries, report, trace_parent)
        index_batch = getattr(self.index, "knn_batch", None)
        if n == 1 or index_batch is None:
            return [self.query(q, report, trace_parent) for q in queries]

        gpu = self._gpu
        before = gpu.stats.snapshot() if gpu else None
        t_epoch = max(q.t for q in queries)
        exec_stats = BatchExecStats()
        batch_queries = [(q.location, q.k) for q in queries]
        tracer = self.obs.tracer if self.obs is not None else None
        trace_id: str | None = None
        t0 = time.perf_counter()
        if tracer is not None:
            with tracer.activate(), tracer.span(
                "batch", {"queries": n, "t": t_epoch}, parent=trace_parent
            ) as sp:
                answers = index_batch(
                    batch_queries, t_now=t_epoch, exec_stats=exec_stats
                )
                sp.set_attr("cells_cleaned", exec_stats.cells_cleaned)
                sp.set_attr("cells_deduped", exec_stats.cells_deduped)
            trace_id = sp.trace_id_hex
        else:
            answers = index_batch(batch_queries, t_now=t_epoch, exec_stats=exec_stats)
        wall = time.perf_counter() - t0

        gpu_share = 0.0
        transfer_share = transfer_rem = 0
        if gpu and before is not None:
            delta = gpu.stats.diff(before)
            gpu_share = delta.gpu_time_s / n
            transfer_share, transfer_rem = divmod(delta.total_bytes, n)
        report.batch_cells_deduped += exec_stats.cells_deduped
        if inst is not None:
            inst.batch_cells_cleaned.inc(exec_stats.cells_cleaned)
            inst.batch_cells_deduped.inc(exec_stats.cells_deduped)
        for i, answer in enumerate(answers):
            transfer = transfer_share + (transfer_rem if i == 0 else 0)
            self._record_answer(
                answer,
                wall / n,
                gpu_share,
                transfer,
                report,
                t=t_epoch,
                trace_id=trace_id,
            )
        return answers

    def _planned_batch(
        self,
        queries: list[Query],
        report: ReplayReport,
        trace_parent: str | None = None,
    ) -> list[KnnAnswer]:
        """One plan decision per epoch: cache hits are served first,
        then the planner routes the remaining misses as a group (epoch
        fusion on the primary's batch engine is forfeited — the chosen
        backend executes the misses sequentially, which the batch
        docstring already guarantees is answer-identical)."""
        slots: list[KnnAnswer | None] = [None] * len(queries)
        misses: list[int] = []
        for i, q in enumerate(queries):
            hit = self.planner.cached_answer(q)
            if hit is not None:
                self._record_answer(hit, 0.0, 0.0, 0, report, t=q.t)
                slots[i] = hit
            else:
                misses.append(i)
        if misses:
            plan = self.planner.plan_epoch([queries[i] for i in misses])
            for i in misses:
                slots[i] = self._execute_plan(queries[i], plan, report, trace_parent)
        return slots

    def _record_answer(
        self,
        answer: KnnAnswer,
        wall: float,
        gpu_s: float,
        transfer: int,
        report: ReplayReport,
        t: float = 0.0,
        trace_id: str | None = None,
    ) -> None:
        """Convert one answer's costs to modelled time and record it."""
        phases: dict[str, float] = dict(answer.gpu_phase_s)
        modeled = gpu_s
        for phase, seconds in answer.cpu_seconds.items():
            if phase == "refine":
                items = max(1, answer.unresolved)
            elif phase == "score":
                items = max(1, answer.candidates)
            else:
                items = 1
            phase_modeled = self.timing.cpu_seconds(seconds, parallel_items=items)
            phases[phase] = phases.get(phase, 0.0) + phase_modeled
            modeled += phase_modeled
        # retry backoff is already in modelled seconds — charged as-is,
        # not divided by python_speedup (nothing was measured, it is a
        # policy-chosen delay)
        if answer.backoff_s:
            phases["backoff"] = phases.get("backoff", 0.0) + answer.backoff_s
            modeled += answer.backoff_s
        report.query_records.append(
            QueryRecord(
                modeled_s=modeled,
                wall_s=wall,
                gpu_s=gpu_s,
                transfer_bytes=transfer,
                used_fallback=answer.used_fallback,
                phase_s=phases,
                degraded_rung=answer.degraded_rung,
                retries=answer.retries,
                backoff_s=answer.backoff_s,
                t=t,
                trace_id=trace_id,
            )
        )
        report.n_queries += 1
        inst = self._inst
        if inst is not None:
            self._publish_query(
                inst, answer, modeled, wall, gpu_s, transfer, phases, t, trace_id
            )

    def _publish_query(
        self,
        inst: ServerInstruments,
        answer: KnnAnswer,
        modeled: float,
        wall: float,
        gpu_s: float,
        transfer: int,
        phases: dict[str, float],
        t: float = 0.0,
        trace_id: str | None = None,
    ) -> None:
        inst.queries.inc()
        inst.query_seconds.observe(modeled, exemplar=trace_id)
        for phase, seconds in phases.items():
            inst.phase_seconds.labels(phase=phase).observe(seconds)
        if gpu_s:
            inst.phase_seconds.labels(phase="gpu_kernel").observe(gpu_s)
            inst.gpu_kernel_seconds.inc(gpu_s)
        if transfer:
            inst.gpu_transfer_bytes.inc(transfer)
        inst.cells_cleaned.inc(answer.cells_cleaned)
        inst.candidates.observe(max(1, answer.candidates))
        if answer.retries:
            inst.retries.inc(answer.retries)
        flight = self.obs.flight
        if answer.degraded_rung:
            inst.degraded.labels(rung=answer.degraded_rung).inc()
            if flight is not None:
                flight.trigger(
                    "fault",
                    detail=f"rung={answer.degraded_rung} trace={trace_id}",
                )
        breaker = getattr(self.index, "breaker", None)
        if breaker is not None:
            code = breaker.state_code
            inst.breaker_state.set(code)
            if code == 2 and self._last_breaker != 2 and flight is not None:
                flight.trigger("breaker_open", detail=f"index={self.index.name}")
            self._last_breaker = code
        if self.publish_slo:
            inst.slo.record(classify_fanout(1), modeled, t, trace_id=trace_id)
        if answer.used_fallback:
            inst.fallbacks.inc()
            self._fallback_warner.record(
                f"queries fell back to the exact-Dijkstra path on "
                f"{self.index.name!r}",
                detail=f"latest: candidates={answer.candidates}",
            )
        inst.obs.slow_queries.record(
            modeled,
            wall_s=wall,
            phases=phases,
            cells_cleaned=answer.cells_cleaned,
            candidates=answer.candidates,
            unresolved=answer.unresolved,
            used_fallback=answer.used_fallback,
            trace_id=trace_id,
            fanout=1,
        )
        objects = getattr(self.index, "num_objects", None)
        if objects is not None:
            inst.objects.set(objects)
        pending = getattr(self.index, "pending_messages", None)
        if callable(pending):
            inst.backlog.set(pending())

    # ------------------------------------------------------------------
    # workload replay
    # ------------------------------------------------------------------
    def replay(
        self, workload: Workload, collect_answers: bool = False
    ) -> tuple[ReplayReport, list[KnnAnswer]]:
        """Replay a full workload (initial load + merged event stream).

        The initial bulk load counts as updates — the paper's amortised
        metric charges *all* index maintenance to the queries it serves.

        With an enabled :class:`~repro.server.batching.BatchPolicy`
        (``batch_size > 1``) consecutive queries accumulate into epochs
        of up to ``batch_size``; any update event flushes the pending
        epoch first, so the index state every query observes — and hence
        every answer — is identical to sequential replay.

        Returns:
            The report and, when ``collect_answers``, the per-query
            answers (for correctness cross-checks).
        """
        report = ReplayReport(index_name=self.index.name, timing=self.timing)
        answers: list[KnnAnswer] = []
        batching = self.batch.enabled and hasattr(self.index, "knn_batch")
        pending: list[Query] = []

        def flush() -> None:
            if pending:
                got = self.query_batch(pending, report)
                if collect_answers:
                    answers.extend(got)
                pending.clear()

        for obj, loc in workload.initial.items():
            self.update(Message(obj, loc.edge_id, loc.offset, 0.0), report)
        for kind, event in workload.events():
            if kind == "update":
                if not isinstance(event, Message):
                    raise QueryError(
                        f"workload produced an update event that is not a "
                        f"Message: {type(event).__name__}"
                    )
                flush()  # updates close the current epoch
                self.update(event, report)
            else:
                if not isinstance(event, Query):
                    raise QueryError(
                        f"workload produced a query event that is not a "
                        f"Query: {type(event).__name__}"
                    )
                if batching:
                    pending.append(event)
                    if len(pending) >= self.batch.batch_size:
                        flush()
                else:
                    answer = self.query(event, report)
                    if collect_answers:
                        answers.append(answer)
        flush()
        return report, answers
