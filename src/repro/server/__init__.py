"""The query server the experiments drive.

:class:`~repro.server.server.QueryServer` wraps any index implementing
the :class:`~repro.server.server.KnnIndex` protocol (G-Grid, V-Tree,
V-Tree (G), ROAD, Naive), replays a
:class:`~repro.mobility.workload.Workload` and reports the paper's
metrics — most importantly the amortised per-query time
``(T_u + T_q) / n_q`` (Section VII-A).

:mod:`repro.server.metrics` converts measured pure-Python wall time and
simulated GPU time into the modelled times the benchmarks report (see
DESIGN.md §2 for the calibration rationale).
"""

from repro.resilience import CircuitBreaker, ResiliencePolicy, RetryPolicy
from repro.server.batching import (
    BatchPolicy,
    batch_context,
    configure_batching,
    default_batch_policy,
)
from repro.server.maintenance import (
    BacklogCleaning,
    MaintenancePolicy,
    NoMaintenance,
    PeriodicCleaning,
)
from repro.server.metrics import ReplayReport, TimingModel
from repro.server.server import KnnIndex, QueryServer

__all__ = [
    "BatchPolicy",
    "batch_context",
    "configure_batching",
    "default_batch_policy",
    "KnnIndex",
    "QueryServer",
    "TimingModel",
    "ReplayReport",
    "MaintenancePolicy",
    "NoMaintenance",
    "PeriodicCleaning",
    "BacklogCleaning",
    "RetryPolicy",
    "CircuitBreaker",
    "ResiliencePolicy",
]
