"""Capacity planning from the Section VI cost model.

Section II: "The value of t_delta is constrained by the processing power
of the server."  This module turns that sentence into a tool: given a
deployment's workload parameters (object count, update frequency, query
rate, k) and the calibrated per-operation costs, it predicts server
utilisation and answers the planning questions —

* can this server keep up with the update stream and query rate?
* what is the highest update frequency (smallest t_delta) it supports?
* how many queries per second fit next to a given update stream?

The per-operation constants default to the same
:class:`~repro.server.metrics.TimingModel` /
:class:`~repro.simgpu.device.CostModel` values the benchmarks use, so
planner predictions are consistent with replayed measurements (tested in
``tests/server/test_planner.py``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.core import costmodel
from repro.errors import ConfigError
from repro.server.metrics import TimingModel
from repro.simgpu.device import CostModel

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.server.metrics import ReplayReport


@dataclass(frozen=True)
class WorkloadSpec:
    """A deployment's workload parameters."""

    num_objects: int
    update_frequency_hz: float
    queries_per_second: float
    k: int = 16
    rho: float = 1.8
    delta_b: int = 128
    eta: int = 5
    delta_v: int = 2

    def __post_init__(self) -> None:
        if self.num_objects < 1:
            raise ConfigError("num_objects must be >= 1")
        if self.update_frequency_hz <= 0 or self.queries_per_second <= 0:
            raise ConfigError("rates must be positive")
        if self.k < 1:
            raise ConfigError("k must be >= 1")

    @property
    def updates_per_second(self) -> float:
        return self.num_objects * self.update_frequency_hz


@dataclass(frozen=True)
class CapacityReport:
    """Planner output: per-second time budgets and the verdict."""

    update_cpu_s_per_s: float
    query_gpu_s_per_s: float
    query_cpu_s_per_s: float
    transfer_bytes_per_s: float
    utilization: float
    sustainable: bool
    max_update_frequency_hz: float
    max_queries_per_second: float


@dataclass(frozen=True)
class CalibratedCosts:
    """Per-operation costs measured from one replayed workload.

    :func:`calibrate` derives these from a
    :class:`~repro.server.metrics.ReplayReport` so downstream planners
    (the capacity planner here, the adaptive
    :class:`~repro.plan.planner.QueryPlanner`) consume *observed*
    constants instead of hand-copied ``TimingModel`` / ``CostModel``
    defaults.  ``touches_per_update`` and ``query_gpu_seconds`` are
    deterministic (op counts and simulated device time); the CPU term is
    modelled from measured wall time and marked as such.
    """

    touches_per_update: float
    query_gpu_seconds: float
    #: modelled CPU seconds per query (wall-derived — informational,
    #: replay-deterministic planners must not branch on it)
    query_cpu_seconds: float
    touch_cost_s: float = TimingModel.touch_cost_s

    def update_seconds(self) -> float:
        """Deterministic modelled CPU seconds per update."""
        return self.touches_per_update * self.touch_cost_s

    def query_seconds(self) -> float:
        """Modelled seconds per query (GPU + CPU terms)."""
        return self.query_gpu_seconds + self.query_cpu_seconds

    def utilization(
        self, updates_per_second: float, queries_per_second: float
    ) -> float:
        """Predicted seconds-of-work per second at the given rates."""
        return (
            updates_per_second * self.update_seconds()
            + queries_per_second * self.query_seconds()
        )


def calibrate(
    report: "ReplayReport", timing: TimingModel | None = None
) -> CalibratedCosts:
    """Measure per-operation costs from a replayed report.

    The single helper both planners consume (tested against replayed
    utilisation in ``tests/server/test_planner.py``): updates cost what
    the index actually touched, queries cost what the simulated device
    actually spent — no hand-copied constants.
    """
    timing = timing or report.timing
    n_updates = max(1, report.n_updates)
    n_queries = max(1, report.n_queries)
    query_gpu_s = sum(r.gpu_s for r in report.query_records)
    query_cpu_s = report.query_modeled_s - query_gpu_s
    return CalibratedCosts(
        touches_per_update=report.update_touches / n_updates,
        query_gpu_seconds=query_gpu_s / n_queries,
        query_cpu_seconds=max(0.0, query_cpu_s) / n_queries,
        touch_cost_s=timing.touch_cost_s,
    )


class CapacityPlanner:
    """Predicts utilisation from the closed-form cost model."""

    #: cached updates per ingested message (G-Grid touches 2-3 entries);
    #: the analytic default — :meth:`calibrated` replaces it with the
    #: replay-measured ratio
    TOUCHES_PER_UPDATE = 3

    def __init__(
        self,
        timing: TimingModel | None = None,
        gpu: CostModel | None = None,
        touches_per_update: float | None = None,
    ) -> None:
        self.timing = timing or TimingModel()
        self.gpu = gpu or CostModel()
        self.touches_per_update = (
            self.TOUCHES_PER_UPDATE
            if touches_per_update is None
            else touches_per_update
        )

    @classmethod
    def calibrated(
        cls,
        report: "ReplayReport",
        timing: TimingModel | None = None,
        gpu: CostModel | None = None,
    ) -> "CapacityPlanner":
        """A planner whose update cost comes from a replayed report."""
        costs = calibrate(report, timing=timing)
        return cls(
            timing=timing, gpu=gpu, touches_per_update=costs.touches_per_update
        )

    # ------------------------------------------------------------------
    # component estimates (per event)
    # ------------------------------------------------------------------
    def update_seconds(self, spec: WorkloadSpec) -> float:
        """CPU time to cache one update (lazy: a few touches)."""
        return self.touches_per_update * self.timing.touch_cost_s

    def query_gpu_seconds(self, spec: WorkloadSpec) -> float:
        """Simulated GPU time for one query: transfers + cleaning +
        candidate kernels, from the Section VI bounds."""
        f_delta = spec.update_frequency_hz
        transfer = self.gpu.transfer_time(
            int(costmodel.transfer_bytes_bound(f_delta, spec.rho, spec.k))
        )
        cleaning_ops = costmodel.cleaning_ops_bound(
            spec.delta_b, spec.eta, f_delta, spec.rho, spec.k
        )
        candidate_ops = costmodel.candidate_ops_bound(spec.rho, spec.k, spec.delta_v)
        threads = max(1.0, f_delta * spec.rho * spec.k / spec.delta_b)
        kernel = self.gpu.op_time(int(threads), cleaning_ops) + self.gpu.op_time(
            int(spec.rho * spec.k), candidate_ops
        )
        return transfer + kernel + 3 * self.gpu.kernel_launch_time_s

    def query_cpu_seconds(self, spec: WorkloadSpec) -> float:
        """Modelled CPU refinement time for one query (Section VI-B2)."""
        ops = costmodel.refine_ops_bound(4.0, spec.rho, spec.k)
        # ops are Dijkstra settles; cost one touch each, spread over workers
        return (
            ops
            * self.timing.touch_cost_s
            / max(1, self.timing.cpu_workers)
        )

    # ------------------------------------------------------------------
    # planning
    # ------------------------------------------------------------------
    def plan(self, spec: WorkloadSpec) -> CapacityReport:
        """Utilisation and headroom for a workload spec."""
        upd = spec.updates_per_second * self.update_seconds(spec)
        q_gpu = spec.queries_per_second * self.query_gpu_seconds(spec)
        q_cpu = spec.queries_per_second * self.query_cpu_seconds(spec)
        transfer_rate = spec.queries_per_second * costmodel.transfer_bytes_bound(
            spec.update_frequency_hz, spec.rho, spec.k
        )
        utilization = upd + q_cpu + q_gpu  # seconds of work per second
        return CapacityReport(
            update_cpu_s_per_s=upd,
            query_gpu_s_per_s=q_gpu,
            query_cpu_s_per_s=q_cpu,
            transfer_bytes_per_s=transfer_rate,
            utilization=utilization,
            sustainable=utilization < 1.0,
            max_update_frequency_hz=self._max_frequency(spec),
            max_queries_per_second=self._max_query_rate(spec),
        )

    def _max_frequency(self, spec: WorkloadSpec) -> float:
        """Bisect the highest sustainable update frequency."""
        lo, hi = 0.0, 1.0
        while self._utilization_at(spec, frequency=hi) < 1.0 and hi < 1e9:
            hi *= 2
        for _ in range(60):
            mid = (lo + hi) / 2
            if self._utilization_at(spec, frequency=mid) < 1.0:
                lo = mid
            else:
                hi = mid
        return lo

    def _max_query_rate(self, spec: WorkloadSpec) -> float:
        base = spec.updates_per_second * self.update_seconds(spec)
        per_query = self.query_gpu_seconds(spec) + self.query_cpu_seconds(spec)
        headroom = max(0.0, 1.0 - base)
        return headroom / per_query if per_query > 0 else float("inf")

    def _utilization_at(self, spec: WorkloadSpec, frequency: float) -> float:
        if frequency <= 0:
            return 0.0
        probe = WorkloadSpec(
            num_objects=spec.num_objects,
            update_frequency_hz=frequency,
            queries_per_second=spec.queries_per_second,
            k=spec.k,
            rho=spec.rho,
            delta_b=spec.delta_b,
            eta=spec.eta,
            delta_v=spec.delta_v,
        )
        return self.plan_utilization(probe)

    def plan_utilization(self, spec: WorkloadSpec) -> float:
        upd = spec.updates_per_second * self.update_seconds(spec)
        q = spec.queries_per_second * (
            self.query_gpu_seconds(spec) + self.query_cpu_seconds(spec)
        )
        return upd + q
