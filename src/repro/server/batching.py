"""Epoch batching policy for the query server, and its process-wide hub.

The batched execution engine (DESIGN.md §10) groups *consecutive*
concurrent queries into an **epoch**: the server accumulates up to
``batch_size`` queries, then executes them as one
:meth:`~repro.core.ggrid.GGridIndex.knn_batch` call — one deduplicated
cleaning pass over the union of touched cells, fused per-batch candidate
kernels, one shared device-to-host transfer — and fans the answers back
out per query.  Any update event flushes the pending epoch first, so the
index's message state at execution time is exactly what sequential
replay would have seen.

All queries of an epoch execute at ``t_epoch = max(q.t for q in epoch)``
— the arrival time of the epoch's last member, the moment a real server
would close the batch.  With updates always flushing ahead of the batch,
a batched replay returns byte-identical per-query answers to sequential
replay (proved by the conformance suite in ``tests/conformance/``).

The hub mirrors :mod:`repro.chaos.hub`: a process-wide default policy
that ``python -m repro.bench --batch-size N`` can install so it reaches
the :class:`~repro.server.server.QueryServer` instances the experiment
drivers construct deep inside the harness.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass
from typing import Iterator

from repro.errors import ConfigError


@dataclass(frozen=True)
class BatchPolicy:
    """How the server groups queries into execution epochs.

    Attributes:
        batch_size: maximum queries per epoch.  ``1`` (the default) is
            sequential execution — every query is its own epoch and the
            engine is bypassed entirely.
    """

    batch_size: int = 1

    def __post_init__(self) -> None:
        if self.batch_size < 1:
            raise ConfigError(
                f"batch_size must be >= 1, got {self.batch_size}"
            )

    @property
    def enabled(self) -> bool:
        return self.batch_size > 1


#: Process-wide default policy.  ``None`` = sequential execution.
_DEFAULT: BatchPolicy | None = None


def configure_batching(policy: BatchPolicy | None) -> BatchPolicy | None:
    """Install (or clear, with ``None``) the process-wide batch policy.

    Returns the previous policy so callers can restore it.
    """
    global _DEFAULT
    previous = _DEFAULT
    _DEFAULT = policy
    return previous


def default_batch_policy() -> BatchPolicy | None:
    return _DEFAULT


@contextmanager
def batch_context(policy: BatchPolicy) -> Iterator[BatchPolicy]:
    """Scoped :func:`configure_batching` that restores the previous policy."""
    previous = configure_batching(policy)
    try:
        yield policy
    finally:
        configure_batching(previous)
