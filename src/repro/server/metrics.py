"""Timing model and replay reports.

The paper's numbers come from a C++/CUDA implementation on a 12-core Xeon
machine; ours come from pure Python plus a simulated GPU.  To report
times whose *shape* matches the paper we combine:

* **simulated GPU time** — from the device cost model (exact, not
  measured);
* **modelled CPU time** — measured Python wall time divided by
  ``python_speedup`` (Python-to-compiled factor, applied identically to
  every algorithm so comparisons stay fair), with embarrassingly parallel
  phases (the per-unresolved-vertex refinement Dijkstras, Section V-C)
  further divided by the worker count they would occupy.

Raw wall-clock times are reported alongside so nothing is hidden.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigError
from repro.obs.metrics import Histogram


@dataclass(frozen=True)
class TimingModel:
    """Converts measured/simulated component times into reported times.

    Attributes:
        python_speedup: divisor for pure-Python wall time (DESIGN.md §2).
        cpu_workers: CPU threads of the modelled machine (paper: 12).
        query_parallelism: independent queries the server overlaps; this
            is what separates *G-Grid* (amortised, overlapped) from
            *G-Grid (L)* (per-query latency) in Fig. 5.
        touch_cost_s: modelled cost of one index-entry touch during an
            update.  Update time is modelled from the *operation count*
            each index reports (``update_touches``) rather than Python
            wall time: interpreter overhead flattens the real gap between
            a lazy append (2-3 touches) and an eager V-Tree/ROAD update
            (tens of touches), and the op count is what the paper's
            analysis argues about.
    """

    python_speedup: float = 50.0
    cpu_workers: int = 12
    query_parallelism: int = 4
    touch_cost_s: float = 5.0e-8

    def __post_init__(self) -> None:
        if self.python_speedup <= 0:
            raise ConfigError("python_speedup must be positive")
        if self.cpu_workers < 1 or self.query_parallelism < 1:
            raise ConfigError("worker counts must be >= 1")
        if self.touch_cost_s <= 0:
            raise ConfigError("touch_cost_s must be positive")

    def cpu_seconds(self, wall: float, parallel_items: int = 1) -> float:
        """Modelled compiled-CPU time for a measured Python phase."""
        workers = max(1, min(self.cpu_workers, parallel_items))
        return wall / self.python_speedup / workers

    def update_seconds(self, touches: int) -> float:
        """Modelled CPU time for update handling from its op count."""
        return touches * self.touch_cost_s


@dataclass
class QueryRecord:
    """Timing of one replayed query.

    ``phase_s`` holds the per-phase modelled-seconds split (CPU phases
    after the :class:`TimingModel` conversion plus simulated GPU phases)
    the report's per-phase percentiles are computed from.
    """

    modeled_s: float
    wall_s: float
    gpu_s: float
    transfer_bytes: int
    used_fallback: bool = False
    phase_s: dict[str, float] = field(default_factory=dict)
    #: resilience outcome: which ladder rung answered (None = healthy
    #: GPU path), device retries spent, and modelled backoff charged
    degraded_rung: str | None = None
    retries: int = 0
    backoff_s: float = 0.0
    #: cluster routing outcome: how many shards this query actually
    #: touched and which ones (home shard first).  An unsharded
    #: :class:`~repro.server.server.QueryServer` always records
    #: ``fanout == 1`` with no shard ids, so sharded and single-server
    #: reports stay directly comparable.
    fanout: int = 1
    shards: tuple[int, ...] = ()
    #: the query's modelled event time (the replay clock SLO windows and
    #: burn rates are computed over) and, when tracing was on, the hex
    #: trace id of its span tree — the key into the flight recorder
    t: float = 0.0
    trace_id: str | None = None


@dataclass
class ReplayReport:
    """Aggregated outcome of one workload replay.

    All ``*_modeled`` times are in modelled seconds (see
    :class:`TimingModel`); ``*_wall`` are raw Python seconds.
    """

    index_name: str
    n_updates: int = 0
    n_queries: int = 0
    update_wall_s: float = 0.0
    update_gpu_s: float = 0.0
    update_touches: int = 0
    #: updates that hit message-list capacity and forced an in-line
    #: cleaning (backpressure) instead of failing
    updates_backpressured: int = 0
    #: modelled retry backoff charged to the update path
    update_backoff_s: float = 0.0
    query_records: list[QueryRecord] = field(default_factory=list)
    #: epochs executed by the batch engine (0 on sequential replays)
    n_batches: int = 0
    #: cell cleanings avoided by epoch dedup versus sequential execution
    batch_cells_deduped: int = 0
    #: cluster routing: updates applied per shard id (empty when the
    #: replay ran on a single unsharded server) and cross-shard object
    #: migrations (a remove on the old owner + an ingest on the new)
    shard_updates: dict[int, int] = field(default_factory=dict)
    shard_migrations: int = 0
    timing: TimingModel = field(default_factory=TimingModel)

    # ------------------------------------------------------------------
    # derived metrics
    # ------------------------------------------------------------------
    @property
    def update_modeled_s(self) -> float:
        return (
            self.timing.update_seconds(self.update_touches)
            + self.update_gpu_s
            + self.update_backoff_s
        )

    @property
    def query_modeled_s(self) -> float:
        return sum(r.modeled_s for r in self.query_records)

    @property
    def query_wall_s(self) -> float:
        return sum(r.wall_s for r in self.query_records)

    @property
    def gpu_seconds(self) -> float:
        return self.update_gpu_s + sum(r.gpu_s for r in self.query_records)

    @property
    def transfer_bytes(self) -> int:
        return sum(r.transfer_bytes for r in self.query_records)

    @property
    def fallback_queries(self) -> int:
        """Queries answered by the exact-Dijkstra fallback path."""
        return sum(1 for r in self.query_records if r.used_fallback)

    # -- resilience outcomes -------------------------------------------
    @property
    def retried_queries(self) -> int:
        """Queries that needed at least one device retry."""
        return sum(1 for r in self.query_records if r.retries)

    @property
    def total_retries(self) -> int:
        """Device retries spent across the whole replay's queries."""
        return sum(r.retries for r in self.query_records)

    @property
    def degraded_queries(self) -> int:
        """Queries answered below the healthy GPU rung."""
        return sum(1 for r in self.query_records if r.degraded_rung)

    @property
    def query_backoff_s(self) -> float:
        """Modelled retry backoff charged to the query path."""
        return sum(r.backoff_s for r in self.query_records)

    # -- cluster routing outcomes --------------------------------------
    @property
    def total_fanout(self) -> int:
        """Shard probes across all queries (== ``n_queries`` unsharded)."""
        return sum(r.fanout for r in self.query_records)

    @property
    def mean_fanout(self) -> float:
        """Mean shards touched per query — the scatter-gather pruning
        headline (1.0 on an unsharded replay)."""
        if not self.query_records:
            return 0.0
        return self.total_fanout / len(self.query_records)

    def queries_by_shard(self) -> dict[int, int]:
        """Query-probe counts per shard id (empty when unsharded)."""
        counts: dict[int, int] = {}
        for r in self.query_records:
            for sid in r.shards:
                counts[sid] = counts.get(sid, 0) + 1
        return counts

    def degraded_by_rung(self) -> dict[str, int]:
        """Query counts per degradation rung (empty when all healthy)."""
        counts: dict[str, int] = {}
        for r in self.query_records:
            if r.degraded_rung:
                counts[r.degraded_rung] = counts.get(r.degraded_rung, 0) + 1
        return counts

    def latency_histogram(self) -> Histogram:
        """Modelled per-query latencies in the shared log-scale buckets."""
        hist = Histogram()
        for r in self.query_records:
            hist.observe(r.modeled_s)
        return hist

    def latency_percentiles(self) -> dict[str, float]:
        """p50/p95/p99 of modelled query latency (0.0s when no queries)."""
        return self.latency_histogram().percentiles()

    def phase_percentiles(self) -> dict[str, dict[str, float]]:
        """Per-phase p50/p95/p99 over the queries that ran each phase."""
        histograms: dict[str, Histogram] = {}
        for r in self.query_records:
            for phase, seconds in r.phase_s.items():
                hist = histograms.get(phase)
                if hist is None:
                    hist = histograms[phase] = Histogram()
                hist.observe(seconds)
        return {
            phase: histograms[phase].percentiles() for phase in sorted(histograms)
        }

    def slo(self, policy: "object | None" = None) -> dict[str, dict[str, object]]:
        """Per-class SLO attainment and error-budget burn for this replay.

        Queries are classified by routing shape (``point`` vs
        ``scatter``, see :func:`repro.obs.slo.classify_fanout`) and
        scored against ``policy`` (default
        :data:`~repro.obs.slo.DEFAULT_SLO_POLICY`) over the modelled
        clock — each record's event time ``t`` — so burn rates are
        deterministic replay outcomes, not wall-clock artifacts.
        """
        from repro.obs.slo import SloPolicy, SloTracker, classify_fanout

        if policy is not None and not isinstance(policy, SloPolicy):
            raise ConfigError(f"expected an SloPolicy, got {type(policy).__name__}")
        tracker = SloTracker(policy)
        for r in self.query_records:
            tracker.record(
                classify_fanout(r.fanout), r.modeled_s, r.t, trace_id=r.trace_id
            )
        return tracker.report()

    def amortized_latency_s(self) -> float:
        """G-Grid (L) style: ``(T_u + T_q) / n_q`` with queries serial."""
        if not self.n_queries:
            raise ConfigError("no queries replayed")
        return (self.update_modeled_s + self.query_modeled_s) / self.n_queries

    def amortized_s(self) -> float:
        """G-Grid style: query processing overlapped across
        ``query_parallelism`` in-flight queries."""
        if not self.n_queries:
            raise ConfigError("no queries replayed")
        overlapped = self.query_modeled_s / self.timing.query_parallelism
        return (self.update_modeled_s + overlapped) / self.n_queries

    def throughput_qps(self) -> float:
        """Modelled queries per second at full overlap."""
        return self.n_queries / max(self.amortized_s() * self.n_queries, 1e-12)

    def as_dict(self) -> dict[str, object]:
        percentiles = self.latency_percentiles()
        out: dict[str, object] = {
            "index": self.index_name,
            "n_updates": self.n_updates,
            "n_queries": self.n_queries,
            "amortized_s": self.amortized_s(),
            "amortized_latency_s": self.amortized_latency_s(),
            "update_modeled_s": self.update_modeled_s,
            "query_modeled_s": self.query_modeled_s,
            "query_p50_s": percentiles["p50"],
            "query_p95_s": percentiles["p95"],
            "query_p99_s": percentiles["p99"],
            "gpu_s": self.gpu_seconds,
            "transfer_bytes": self.transfer_bytes,
            "throughput_qps": self.throughput_qps(),
            "update_wall_s": self.update_wall_s,
            "query_wall_s": self.query_wall_s,
            "fallback_queries": self.fallback_queries,
            "retried_queries": self.retried_queries,
            "total_retries": self.total_retries,
            "degraded_queries": self.degraded_queries,
            "degraded_by_rung": self.degraded_by_rung(),
            "query_backoff_s": self.query_backoff_s,
            "updates_backpressured": self.updates_backpressured,
            "update_backoff_s": self.update_backoff_s,
            "n_batches": self.n_batches,
            "batch_cells_deduped": self.batch_cells_deduped,
            "mean_fanout": self.mean_fanout,
            "phases": self.phase_percentiles(),
            "slo": self.slo(),
        }
        if self.shard_updates or self.shard_migrations:
            out["shard_updates"] = dict(sorted(self.shard_updates.items()))
            out["queries_by_shard"] = dict(sorted(self.queries_by_shard().items()))
            out["shard_migrations"] = self.shard_migrations
        return out
