"""Background maintenance policies for the G-Grid message lists.

Pure lazy cleaning (the paper's default) gives the best amortised time
but lets backlog build up in rarely-queried regions, so the first query
to touch a cold region pays a latency spike.  Production deployments
bound that spike with background cleaning; this module provides three
policies a :class:`~repro.server.server.QueryServer` can run between
events:

* :class:`NoMaintenance` — the paper's pure lazy strategy;
* :class:`PeriodicCleaning` — sweep every cell every ``interval``
  seconds (round-robin in bounded slices, so no single tick stalls);
* :class:`BacklogCleaning` — clean any cell whose cached-message count
  exceeds a threshold (targets hot writers, ignores quiet cells).

Queries stay exact under every policy (cleaning is semantics-preserving);
only the latency distribution changes.  The policy/latency trade-off is
measured in ``benchmarks/bench_maintenance.py``.
"""

from __future__ import annotations

from typing import Protocol, runtime_checkable

from repro.core.ggrid import GGridIndex
from repro.errors import ConfigError
from repro.obs.metrics import MetricsRegistry


def _maintenance_counter(registry: MetricsRegistry | None, policy: str):
    """Resolve the shared cells-cleaned counter for one policy label."""
    if registry is None:
        return None
    return registry.counter(
        "repro_maintenance_cells_cleaned_total",
        help="Cells cleaned by background maintenance policies.",
        labelnames=("policy",),
    ).labels(policy=policy)


@runtime_checkable
class MaintenancePolicy(Protocol):
    """Hook invoked by the server after every ingested update."""

    def on_update(self, index: GGridIndex, t_now: float) -> None:
        """Perform any due background cleaning."""
        ...


class NoMaintenance:
    """The paper's pure lazy strategy: never clean in the background."""

    def on_update(self, index: GGridIndex, t_now: float) -> None:
        return None


class PeriodicCleaning:
    """Sweep the whole grid once every ``interval`` seconds.

    Each due tick cleans the next ``slice_cells`` cells round-robin, so
    the sweep amortises across updates instead of stalling one of them.
    """

    def __init__(
        self,
        interval: float,
        slice_cells: int = 16,
        registry: MetricsRegistry | None = None,
    ) -> None:
        if interval <= 0:
            raise ConfigError(f"interval must be positive, got {interval}")
        if slice_cells < 1:
            raise ConfigError(f"slice_cells must be >= 1, got {slice_cells}")
        self.interval = interval
        self.slice_cells = slice_cells
        self._next_due = interval
        self._cursor = 0
        self.cells_cleaned = 0
        self.sweeps = 0
        self._counter = _maintenance_counter(registry, "periodic")

    def on_update(self, index: GGridIndex, t_now: float) -> None:
        if t_now < self._next_due:
            return
        num_cells = index.grid.num_cells
        cells = {
            (self._cursor + i) % num_cells for i in range(self.slice_cells)
        }
        index.clean_cells(cells, t_now=t_now)
        self.cells_cleaned += len(cells)
        if self._counter is not None:
            self._counter.inc(len(cells))
        self._cursor = (self._cursor + self.slice_cells) % num_cells
        if self._cursor < self.slice_cells:  # wrapped: one sweep done
            self.sweeps += 1
        # next slice is due after a proportional share of the interval
        self._next_due = t_now + self.interval * self.slice_cells / max(
            num_cells, 1
        )


class BacklogCleaning:
    """Clean any cell whose cached-message backlog exceeds a threshold.

    This bounds the worst-case per-query cleaning volume to roughly
    ``max_backlog`` messages per touched cell.
    """

    def __init__(
        self, max_backlog: int, registry: MetricsRegistry | None = None
    ) -> None:
        if max_backlog < 1:
            raise ConfigError(f"max_backlog must be >= 1, got {max_backlog}")
        self.max_backlog = max_backlog
        self.cells_cleaned = 0
        self._counter = _maintenance_counter(registry, "backlog")

    def on_update(self, index: GGridIndex, t_now: float) -> None:
        over = {
            cell
            for cell, mlist in index.lists.items()
            if mlist.num_messages > self.max_backlog and not mlist.locked
        }
        if over:
            index.clean_cells(over, t_now=t_now)
            self.cells_cleaned += len(over)
            if self._counter is not None:
                self._counter.inc(len(over))


def max_backlog_cells(index: GGridIndex) -> int:
    """The largest per-cell cached-message count (diagnostics)."""
    return max((m.num_messages for m in index.lists.values()), default=0)
