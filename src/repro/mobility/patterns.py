"""Non-uniform workload patterns: hotspots and rush hours.

The paper's MOTO workloads are spatially and temporally uniform; real
fleets are neither.  These generators stress the index in the ways
uniform traffic cannot:

* :func:`hotspot_placements` — objects clustered around a few network
  hotspots (a Zipf-ish city), concentrating message-list backlog into
  few cells (worst case for per-cell bucket chains);
* :class:`RushHourGenerator` — a MOTO variant whose update frequency
  follows a daily profile, producing bursts (worst case for anything
  eager, and for cleaning backlog after quiet periods).
"""

from __future__ import annotations

import random
from typing import Iterator

from repro.core.messages import Message
from repro.errors import ConfigError
from repro.mobility.moto import MotoGenerator
from repro.roadnet.dijkstra import bounded_dijkstra
from repro.roadnet.graph import RoadNetwork
from repro.roadnet.location import NetworkLocation


def hotspot_placements(
    graph: RoadNetwork,
    num_objects: int,
    num_hotspots: int = 3,
    spread: float = 2.0,
    seed: int = 0,
) -> dict[int, NetworkLocation]:
    """Cluster ``num_objects`` around ``num_hotspots`` random centres.

    Each object picks a hotspot (uniformly), then a location on an edge
    whose source lies within network distance ``spread`` of the centre —
    so clusters are network-shaped, not circles on the plane.

    Raises:
        ConfigError: non-positive counts or spread.
    """
    if num_objects < 1 or num_hotspots < 1:
        raise ConfigError("need at least one object and one hotspot")
    if spread <= 0:
        raise ConfigError(f"spread must be positive, got {spread}")
    rng = random.Random(seed)
    centres = [rng.randrange(graph.num_vertices) for _ in range(num_hotspots)]
    neighbourhoods = []
    for centre in centres:
        near = list(bounded_dijkstra(graph, centre, spread))
        edges = [e.id for v in near for e in graph.out_edges(v)]
        neighbourhoods.append(edges or [e.id for e in graph.out_edges(centre)])
    placements = {}
    for obj in range(num_objects):
        edges = neighbourhoods[rng.randrange(num_hotspots)]
        edge = rng.choice(edges)
        placements[obj] = NetworkLocation(
            edge, rng.uniform(0.0, graph.edge(edge).weight)
        )
    return placements


class RushHourGenerator:
    """MOTO traces with a time-varying update frequency.

    The frequency profile is piecewise constant:
    ``profile = [(until_t, frequency), ...]`` — e.g. a quiet night, a
    morning burst, a steady day.  Within each phase objects behave like
    the uniform generator at that phase's frequency.

    Example:
        >>> from repro.roadnet import grid_road_network
        >>> g = grid_road_network(5, 5, seed=1)
        >>> gen = RushHourGenerator(g, 10, [(10.0, 0.5), (20.0, 4.0)], seed=1)
        >>> msgs = list(gen.messages())
        >>> early = sum(1 for m in msgs if m.t <= 10.0)
        >>> late = sum(1 for m in msgs if m.t > 10.0)
        >>> late > early
        True
    """

    def __init__(
        self,
        graph: RoadNetwork,
        num_objects: int,
        profile: list[tuple[float, float]],
        seed: int = 0,
    ) -> None:
        if not profile:
            raise ConfigError("profile must have at least one phase")
        last = 0.0
        for until, freq in profile:
            if until <= last:
                raise ConfigError("profile phase ends must strictly increase")
            if freq <= 0:
                raise ConfigError("phase frequencies must be positive")
            last = until
        self.graph = graph
        self.num_objects = num_objects
        self.profile = list(profile)
        self.seed = seed
        self._moto = MotoGenerator(graph, num_objects, update_frequency=1.0, seed=seed)

    def initial_placements(self) -> dict[int, NetworkLocation]:
        return self._moto.initial_placements()

    def messages(self) -> Iterator[Message]:
        """All phases' messages in global time order."""
        phase_start = 0.0
        for until, frequency in self.profile:
            self._moto.update_frequency = frequency
            yield from self._moto.messages(
                duration=until - phase_start, start=phase_start
            )
            phase_start = until
