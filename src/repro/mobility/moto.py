"""MOTO-style trace generation.

:class:`MotoGenerator` simulates ``n`` objects moving on a road network
with network-constrained random-waypoint motion and produces the
timestamped update messages the query server ingests.  Update spacing is
``1 / f`` seconds per object (with per-object phase so updates spread
evenly over time), which also satisfies the system contract that no
object stays silent longer than ``t_delta`` as long as ``1 / f`` does not
exceed it.
"""

from __future__ import annotations

import heapq
import random
from typing import Iterator

from repro.core.messages import Message
from repro.errors import ConfigError
from repro.mobility.objects import MovingObject
from repro.roadnet.graph import RoadNetwork
from repro.roadnet.location import NetworkLocation


class MotoGenerator:
    """Deterministic moving-object trace generator.

    Args:
        graph: the road network to move on.
        num_objects: number of simulated objects (ids ``0..n-1``).
        update_frequency: updates per second per object (the paper's
            ``f``; default 1 Hz as in Section VII-A).
        speed_range: ``(min, max)`` object speed in weight-units/second.
        seed: RNG seed; traces are fully reproducible.

    Example:
        >>> from repro.roadnet import grid_road_network
        >>> gen = MotoGenerator(grid_road_network(5, 5), 10, seed=1)
        >>> msgs = list(gen.messages(duration=3.0))
        >>> len(msgs) >= 10 * 3 and msgs == sorted(msgs, key=lambda m: m.t)
        True
    """

    def __init__(
        self,
        graph: RoadNetwork,
        num_objects: int,
        update_frequency: float = 1.0,
        speed_range: tuple[float, float] = (0.5, 2.0),
        seed: int = 0,
    ) -> None:
        if num_objects < 1:
            raise ConfigError(f"need at least one object, got {num_objects}")
        if update_frequency <= 0:
            raise ConfigError(f"update frequency must be positive, got {update_frequency}")
        if speed_range[0] <= 0 or speed_range[0] > speed_range[1]:
            raise ConfigError(f"bad speed range {speed_range}")
        self.graph = graph
        self.num_objects = num_objects
        self.update_frequency = update_frequency
        self.seed = seed
        self._rng = random.Random(seed)
        self.objects: list[MovingObject] = []
        for obj_id in range(num_objects):
            edge = self._rng.randrange(graph.num_edges)
            offset = self._rng.uniform(0.0, graph.edge(edge).weight)
            speed = self._rng.uniform(*speed_range)
            self.objects.append(MovingObject(obj_id, edge, offset, speed))

    def initial_placements(self) -> dict[int, NetworkLocation]:
        """Starting locations, suitable for :meth:`GGridIndex.bulk_load`."""
        return {o.obj_id: o.location() for o in self.objects}

    def messages(self, duration: float, start: float = 0.0) -> Iterator[Message]:
        """Yield update messages in global time order over ``duration``.

        Each object reports every ``1 / f`` seconds starting at a random
        phase inside its first interval; the object advances along the
        network between reports.
        """
        interval = 1.0 / self.update_frequency
        heap: list[tuple[float, int]] = []
        last_report = {}
        for o in self.objects:
            phase = self._rng.uniform(0.0, interval)
            heapq.heappush(heap, (start + phase, o.obj_id))
            last_report[o.obj_id] = start
        end = start + duration
        while heap and heap[0][0] <= end:
            t, obj_id = heapq.heappop(heap)
            obj = self.objects[obj_id]
            obj.advance(self.graph, t - last_report[obj_id], self._rng)
            last_report[obj_id] = t
            yield Message(obj_id, obj.edge, obj.offset, t)
            heapq.heappush(heap, (t + interval, obj_id))

    def current_locations(self) -> dict[int, NetworkLocation]:
        """Ground-truth locations as of the last emitted message of each
        object (test oracle)."""
        return {o.obj_id: o.location() for o in self.objects}
