"""Moving-object substrate.

The paper generates object traces with MOTO (Dittrich et al., SSTD 2009),
an open-source moving-object trace generator that is not redistributable
here.  :mod:`repro.mobility.moto` implements the equivalent
network-constrained random-waypoint generator: objects travel along edges
at individual speeds, pick a random outgoing edge at each vertex, and
report ``<o, e, d, t>`` messages at a configurable frequency ``f`` — and
always at least once per ``t_delta``, which is the system contract the
index relies on (Section II).

:mod:`repro.mobility.workload` assembles full experiment workloads:
initial placements, interleaved update streams and query sets.
"""

from repro.mobility.moto import MotoGenerator
from repro.mobility.objects import MovingObject
from repro.mobility.patterns import RushHourGenerator, hotspot_placements
from repro.mobility.serialize import load_workload, save_workload
from repro.mobility.workload import Workload, make_workload, random_locations

__all__ = [
    "MotoGenerator",
    "MovingObject",
    "Workload",
    "make_workload",
    "random_locations",
    "RushHourGenerator",
    "hotspot_placements",
    "save_workload",
    "load_workload",
]
