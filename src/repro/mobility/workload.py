"""Experiment workloads: interleaved update streams and query sets.

Section VII-A: "we randomly generate the query locations and assume a
fixed time interval between the queries" — a workload is the merged,
time-ordered sequence of object update messages (from the MOTO generator)
and kNN queries, which the server replays to measure the amortised time
``(T_u + T_q) / n_q``.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Iterator, Literal

from repro.core.messages import Message
from repro.errors import ConfigError
from repro.mobility.moto import MotoGenerator
from repro.roadnet.graph import RoadNetwork
from repro.roadnet.location import NetworkLocation


def random_locations(
    graph: RoadNetwork, count: int, seed: int = 0
) -> list[NetworkLocation]:
    """``count`` uniformly random on-edge locations (deterministic)."""
    rng = random.Random(seed)
    result = []
    for _ in range(count):
        edge = rng.randrange(graph.num_edges)
        result.append(NetworkLocation(edge, rng.uniform(0.0, graph.edge(edge).weight)))
    return result


@dataclass(frozen=True, slots=True)
class Query:
    """One kNN query issued at time ``t``."""

    t: float
    location: NetworkLocation
    k: int


@dataclass
class Workload:
    """A replayable experiment workload.

    Attributes:
        initial: object placements loaded before the clock starts.
        updates: location-update messages, time-ordered.
        queries: kNN queries, time-ordered.
    """

    initial: dict[int, NetworkLocation]
    updates: list[Message] = field(default_factory=list)
    queries: list[Query] = field(default_factory=list)

    @property
    def num_updates(self) -> int:
        return len(self.updates)

    @property
    def num_queries(self) -> int:
        return len(self.queries)

    def events(self) -> Iterator[tuple[Literal["update", "query"], Message | Query]]:
        """Merge updates and queries into one time-ordered stream.

        Ties resolve update-first, so a query at time ``t`` sees every
        message with timestamp ``<= t`` (the snapshot semantics of
        Definition 1).
        """
        ui = qi = 0
        while ui < len(self.updates) or qi < len(self.queries):
            take_update = qi >= len(self.queries) or (
                ui < len(self.updates) and self.updates[ui].t <= self.queries[qi].t
            )
            if take_update:
                yield "update", self.updates[ui]
                ui += 1
            else:
                yield "query", self.queries[qi]
                qi += 1


def make_workload(
    graph: RoadNetwork,
    num_objects: int,
    duration: float,
    num_queries: int,
    k: int = 16,
    update_frequency: float = 1.0,
    seed: int = 0,
) -> Workload:
    """Build the standard experiment workload.

    Objects move and report for ``duration`` seconds at ``f`` updates per
    second; ``num_queries`` queries are spread at a fixed interval across
    the duration at random locations (Section VII-A defaults: ``k = 16``,
    ``|O| = 10^4``, ``f = 1``).
    """
    if num_queries < 1:
        raise ConfigError(f"need at least one query, got {num_queries}")
    if duration <= 0:
        raise ConfigError(f"duration must be positive, got {duration}")
    gen = MotoGenerator(
        graph, num_objects, update_frequency=update_frequency, seed=seed
    )
    initial = gen.initial_placements()
    updates = list(gen.messages(duration))
    spacing = duration / num_queries
    locations = random_locations(graph, num_queries, seed=seed + 1)
    queries = [
        Query(t=(i + 1) * spacing, location=loc, k=k)
        for i, loc in enumerate(locations)
    ]
    return Workload(initial=initial, updates=updates, queries=queries)
