"""Moving-object state.

A :class:`MovingObject` is a point constrained to the road network: it
sits ``offset`` metres along a directed edge and advances toward the
edge's destination at its own speed.  At the destination vertex it picks
the next outgoing edge (avoiding an immediate U-turn when possible).
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.roadnet.graph import RoadNetwork
from repro.roadnet.location import NetworkLocation


@dataclass
class MovingObject:
    """One simulated vehicle.

    Attributes:
        obj_id: unique object id.
        edge: current edge id.
        offset: metres travelled along the current edge.
        speed: metres per second (constant per object).
    """

    obj_id: int
    edge: int
    offset: float
    speed: float

    def location(self) -> NetworkLocation:
        return NetworkLocation(self.edge, self.offset)

    def advance(self, graph: RoadNetwork, dt: float, rng: random.Random) -> None:
        """Move forward ``dt`` seconds along the network.

        Crosses as many vertices as the distance covers; at each vertex a
        random outgoing edge is chosen, preferring one that does not turn
        straight back onto the edge just travelled.
        """
        remaining = self.speed * dt
        while remaining > 0:
            edge = graph.edge(self.edge)
            to_go = edge.weight - self.offset
            if remaining < to_go:
                self.offset += remaining
                return
            remaining -= to_go
            self.edge = self._next_edge(graph, edge.dest, came_from=edge.source, rng=rng)
            self.offset = 0.0

    @staticmethod
    def _next_edge(
        graph: RoadNetwork, vertex: int, came_from: int, rng: random.Random
    ) -> int:
        out = graph.out_edges(vertex)
        if not out:  # dead end on a directed network: stay put forever
            raise ValueError(f"vertex {vertex} has no outgoing edges")
        forward = [e for e in out if e.dest != came_from]
        choices = forward if forward else out
        return rng.choice(choices).id
