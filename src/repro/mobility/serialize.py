"""Workload serialisation: record and replay experiment inputs.

Reproducibility beyond seeds: a workload (initial placements, update
stream, query set) can be written to a JSON-lines file and replayed
byte-identically on another machine or against another index version.

Format — one JSON object per line, tagged by ``kind``:

    {"kind": "meta", "version": 1, "objects": 100, ...}
    {"kind": "place", "obj": 0, "edge": 5, "offset": 0.3}
    {"kind": "update", "obj": 0, "edge": 7, "offset": 0.1, "t": 1.5}
    {"kind": "query", "t": 5.0, "edge": 3, "offset": 0.0, "k": 16}
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.core.messages import Message
from repro.errors import ReproError
from repro.mobility.workload import Query, Workload
from repro.roadnet.location import NetworkLocation

FORMAT_VERSION = 1


def save_workload(workload: Workload, path: str | Path) -> Path:
    """Write ``workload`` as JSON lines; returns the path."""
    path = Path(path)
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(
            json.dumps(
                {
                    "kind": "meta",
                    "version": FORMAT_VERSION,
                    "objects": len(workload.initial),
                    "updates": workload.num_updates,
                    "queries": workload.num_queries,
                }
            )
            + "\n"
        )
        for obj, loc in sorted(workload.initial.items()):
            fh.write(
                json.dumps(
                    {
                        "kind": "place",
                        "obj": obj,
                        "edge": loc.edge_id,
                        "offset": loc.offset,
                    }
                )
                + "\n"
            )
        for m in workload.updates:
            fh.write(
                json.dumps(
                    {
                        "kind": "update",
                        "obj": m.obj,
                        "edge": m.edge,
                        "offset": m.offset,
                        "t": m.t,
                    }
                )
                + "\n"
            )
        for q in workload.queries:
            fh.write(
                json.dumps(
                    {
                        "kind": "query",
                        "t": q.t,
                        "edge": q.location.edge_id,
                        "offset": q.location.offset,
                        "k": q.k,
                    }
                )
                + "\n"
            )
    return path


def load_workload(path: str | Path) -> Workload:
    """Read a workload written by :func:`save_workload`.

    Raises:
        ReproError: on version mismatch, unknown records or count
            mismatches against the meta line.
    """
    initial: dict[int, NetworkLocation] = {}
    updates: list[Message] = []
    queries: list[Query] = []
    meta: dict | None = None
    with open(path, encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ReproError(f"{path}:{lineno}: invalid JSON: {exc}") from exc
            kind = record.get("kind")
            if kind == "meta":
                if record.get("version") != FORMAT_VERSION:
                    raise ReproError(
                        f"{path}: workload version {record.get('version')!r} "
                        f"!= {FORMAT_VERSION}"
                    )
                meta = record
            elif kind == "place":
                initial[record["obj"]] = NetworkLocation(
                    record["edge"], record["offset"]
                )
            elif kind == "update":
                updates.append(
                    Message(record["obj"], record["edge"], record["offset"], record["t"])
                )
            elif kind == "query":
                queries.append(
                    Query(
                        record["t"],
                        NetworkLocation(record["edge"], record["offset"]),
                        record["k"],
                    )
                )
            else:
                raise ReproError(f"{path}:{lineno}: unknown record kind {kind!r}")
    if meta is None:
        raise ReproError(f"{path}: missing meta line")
    workload = Workload(initial=initial, updates=updates, queries=queries)
    if (
        len(initial) != meta["objects"]
        or workload.num_updates != meta["updates"]
        or workload.num_queries != meta["queries"]
    ):
        raise ReproError(f"{path}: record counts disagree with the meta line")
    return workload
