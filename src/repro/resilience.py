"""Retry, backoff and circuit-breaking policies for the serving path.

The paper's CPU–GPU pipeline assumes the device always answers; a
production server cannot.  This module provides the three policy pieces
the degradation ladder in :class:`~repro.core.ggrid.GGridIndex` is built
from:

* :class:`RetryPolicy` — bounded retries with exponential backoff whose
  cost is charged to *modelled* time (the replay never sleeps);
* :class:`CircuitBreaker` — the classic closed → open → half-open state
  machine over the index's modelled clock (event timestamps), so a
  repeatedly failing device is routed around instead of probed by every
  query;
* :class:`ResiliencePolicy` — the bundle of both plus the ladder knobs.

The ladder itself (GPU with retries → vectorised-CPU SDist → exact
Dijkstra) lives in the index; every rung returns *exact* answers — what
degrades is latency and device utilisation, never correctness.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigError

#: Degradation rungs, from healthiest to most degraded.  ``RUNG_GPU`` is
#: the normal path and is never reported as a degradation.
RUNG_GPU = "gpu"
RUNG_GPU_RETRY = "gpu_retry"
RUNG_CPU_SDIST = "cpu_sdist"
RUNG_DIJKSTRA = "dijkstra"

RUNGS: tuple[str, ...] = (RUNG_GPU, RUNG_GPU_RETRY, RUNG_CPU_SDIST, RUNG_DIJKSTRA)


def tag_ladder_outcome(result, rung: str | None, retries: int, backoff_s: float):
    """Stamp a ladder outcome onto an answer or a batch of answers.

    ``result`` is one answer or a list of them (any object carrying the
    ``degraded_rung`` / ``retries`` / ``backoff_s`` diagnostic fields —
    :class:`~repro.core.knn.KnnAnswer` in practice).  The rung lands on
    every answer; retry backoff is charged once — to the first answer —
    so a replay summing per-query backoff never double-counts it.
    Returns ``result`` unchanged in shape.
    """
    answers = result if isinstance(result, list) else [result]
    if rung is not None:
        for a in answers:
            a.degraded_rung = rung
    if answers:
        answers[0].retries = retries
        answers[0].backoff_s = backoff_s
    return result


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retry with exponential backoff, in modelled seconds.

    Attributes:
        max_retries: GPU re-attempts after the first failure (0 disables
            retrying; the ladder then degrades immediately).
        backoff_base_s: modelled delay before the first retry.
        backoff_factor: multiplier applied per subsequent retry.
    """

    max_retries: int = 2
    backoff_base_s: float = 1e-3
    backoff_factor: float = 4.0

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ConfigError(f"max_retries must be >= 0, got {self.max_retries}")
        if self.backoff_base_s < 0:
            raise ConfigError(
                f"backoff_base_s must be >= 0, got {self.backoff_base_s}"
            )
        if self.backoff_factor < 1.0:
            raise ConfigError(
                f"backoff_factor must be >= 1, got {self.backoff_factor}"
            )

    def backoff_s(self, attempt: int) -> float:
        """Modelled delay before retry number ``attempt`` (0-based)."""
        return self.backoff_base_s * self.backoff_factor**attempt


# Breaker states, exposed both as strings (logs, labels) and as the
# numeric encoding the ``repro_breaker_state`` gauge publishes.
BREAKER_CLOSED = "closed"
BREAKER_HALF_OPEN = "half_open"
BREAKER_OPEN = "open"

_STATE_CODES = {BREAKER_CLOSED: 0, BREAKER_HALF_OPEN: 1, BREAKER_OPEN: 2}


class CircuitBreaker:
    """Closed → open → half-open breaker over the modelled clock.

    ``now`` is the replay's event time (query/update timestamps), not
    wall-clock: replays are deterministic, so the breaker must be too.

    * **closed** — GPU attempts allowed; ``failure_threshold``
      consecutive failures trip the breaker open.
    * **open** — GPU attempts denied until ``reset_timeout_s`` modelled
      seconds have passed, then the breaker half-opens.
    * **half-open** — exactly one probe launch is allowed; success
      closes the breaker, failure reopens it (and restarts the timeout).
    """

    def __init__(
        self, failure_threshold: int = 4, reset_timeout_s: float = 10.0
    ) -> None:
        if failure_threshold < 1:
            raise ConfigError(
                f"failure_threshold must be >= 1, got {failure_threshold}"
            )
        if reset_timeout_s <= 0:
            raise ConfigError(
                f"reset_timeout_s must be positive, got {reset_timeout_s}"
            )
        self.failure_threshold = failure_threshold
        self.reset_timeout_s = reset_timeout_s
        self.state = BREAKER_CLOSED
        self.consecutive_failures = 0
        self.opened_at = 0.0
        self.trips = 0  # times the breaker went closed/half-open -> open
        #: every state change as ``(from, to) -> count`` — the gauge
        #: (``repro_breaker_state``) only samples the state at
        #: publication time, so a half-open probe that fails and reopens
        #: between two queries would be invisible without this
        self.transitions: dict[tuple[str, str], int] = {}
        #: optional ``(from, to)`` observer the server wires to the
        #: ``repro_breaker_transitions_total`` counter
        self.on_transition: "object | None" = None

    def _set_state(self, new: str) -> None:
        old = self.state
        if new == old:
            return
        self.state = new
        key = (old, new)
        self.transitions[key] = self.transitions.get(key, 0) + 1
        if self.on_transition is not None:
            self.on_transition(old, new)

    @property
    def state_code(self) -> int:
        """0 = closed, 1 = half-open, 2 = open (the gauge encoding)."""
        return _STATE_CODES[self.state]

    def allow_gpu(self, now: float) -> bool:
        """Whether the next operation may try the device at time ``now``."""
        if self.state == BREAKER_CLOSED:
            return True
        if self.state == BREAKER_OPEN:
            if now - self.opened_at >= self.reset_timeout_s:
                self._set_state(BREAKER_HALF_OPEN)
                return True  # this caller becomes the probe
            return False
        # half-open: the probe is in flight (serial replay resolves it
        # immediately); a second caller in this state probes again
        return True

    def record_success(self, now: float) -> None:
        self.consecutive_failures = 0
        self._set_state(BREAKER_CLOSED)

    def record_failure(self, now: float) -> None:
        self.consecutive_failures += 1
        if self.state == BREAKER_HALF_OPEN:
            # failed probe: straight back to open, timeout restarts
            self._set_state(BREAKER_OPEN)
            self.opened_at = now
            self.trips += 1
        elif (
            self.state == BREAKER_CLOSED
            and self.consecutive_failures >= self.failure_threshold
        ):
            self._set_state(BREAKER_OPEN)
            self.opened_at = now
            self.trips += 1

    def reset(self) -> None:
        """Back to pristine closed state (fresh replay)."""
        self.state = BREAKER_CLOSED
        self.consecutive_failures = 0
        self.opened_at = 0.0
        self.trips = 0
        self.transitions = {}


@dataclass(frozen=True)
class ResiliencePolicy:
    """All knobs of the serving-path degradation ladder.

    Attributes:
        enabled: master switch; off means device faults propagate to the
            caller (the pre-resilience behaviour).
        retry: bounded-retry/backoff policy for the GPU rung.
        breaker_failure_threshold: consecutive device failures that trip
            the circuit breaker open.
        breaker_reset_s: modelled seconds the breaker stays open before
            half-opening for a probe launch.
    """

    enabled: bool = True
    retry: RetryPolicy = field(default_factory=RetryPolicy)
    breaker_failure_threshold: int = 4
    breaker_reset_s: float = 10.0

    def make_breaker(self) -> CircuitBreaker:
        return CircuitBreaker(self.breaker_failure_threshold, self.breaker_reset_s)
