"""Result deltas for standing kNN queries.

A subscription's refresh does not re-send its whole top-k: it emits the
*difference* against the previous answer as :class:`DeltaEvent` records —
``enter`` (a new object joined the top-k), ``leave`` (an object fell
out), and ``rerank`` (a surviving object's distance or rank changed).
The stream is lossless: :func:`replay_deltas` folds a subscriber's
events over its previous entries and reproduces the new top-k *exactly*,
in the canonical ``(distance, object id)`` order every other layer of
this codebase uses (``repro.core.ordering``).  That round-trip is pinned
by the `subscribe` conformance suite.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import SubscriptionError

EVENT_ENTER = "enter"
EVENT_LEAVE = "leave"
EVENT_RERANK = "rerank"

#: All delta kinds, in emission-order precedence (leaves first).
EVENT_KINDS: tuple[str, ...] = (EVENT_ENTER, EVENT_LEAVE, EVENT_RERANK)


@dataclass(frozen=True, slots=True)
class DeltaEvent:
    """One change to one subscriber's top-k.

    Attributes:
        sub_id: the subscription the event belongs to.
        kind: ``enter`` | ``leave`` | ``rerank``.
        obj: the moving object involved.
        t: the tick timestamp the event was produced at.
        distance: the object's network distance after the tick
            (``None`` for ``leave`` — the object has no distance in the
            new answer).
        rank: the object's 0-based position in the new top-k
            (``None`` for ``leave``).
    """

    sub_id: int
    kind: str
    obj: int
    t: float
    distance: float | None = None
    rank: int | None = None


def diff_topk(
    sub_id: int,
    old: list[tuple[int, float]],
    new: list[tuple[int, float]],
    t: float,
) -> list[DeltaEvent]:
    """The delta stream from one answer to the next.

    Both lists are canonical ``(obj, distance)`` pairs sorted by
    ``(distance, obj)``.  Leaves are emitted first (ascending object
    id), then one pass over ``new`` in rank order emits ``enter`` for
    objects absent from ``old`` and ``rerank`` for survivors whose
    distance *or* rank moved.  An unchanged survivor emits nothing, so a
    quiet tick produces an empty list.
    """
    old_by_obj = {obj: (i, d) for i, (obj, d) in enumerate(old)}
    new_objs = {obj for obj, _ in new}
    events = [
        DeltaEvent(sub_id, EVENT_LEAVE, obj, t)
        for obj in sorted(old_by_obj)
        if obj not in new_objs
    ]
    for rank, (obj, d) in enumerate(new):
        prev = old_by_obj.get(obj)
        if prev is None:
            events.append(DeltaEvent(sub_id, EVENT_ENTER, obj, t, d, rank))
        elif prev != (rank, d):
            events.append(DeltaEvent(sub_id, EVENT_RERANK, obj, t, d, rank))
    return events


def replay_deltas(
    entries: list[tuple[int, float]], events: list[DeltaEvent]
) -> list[tuple[int, float]]:
    """Fold one subscriber's delta events over its previous top-k.

    Returns the reconstructed new top-k in canonical order.  The stream
    is assumed to come from :func:`diff_topk` against ``entries``; a
    ``leave`` for an object not present means the stream is corrupt and
    raises :class:`~repro.errors.SubscriptionError` rather than guessing.
    """
    state = dict(entries)
    for event in events:
        if event.kind == EVENT_LEAVE:
            if event.obj not in state:
                raise SubscriptionError(
                    f"corrupt delta stream: leave for object {event.obj} "
                    f"which is not in the current top-k"
                )
            del state[event.obj]
        elif event.kind in (EVENT_ENTER, EVENT_RERANK):
            if event.distance is None:
                raise SubscriptionError(
                    f"corrupt delta stream: {event.kind} for object "
                    f"{event.obj} carries no distance"
                )
            state[event.obj] = event.distance
        else:
            raise SubscriptionError(f"unknown delta kind {event.kind!r}")
    return sorted(state.items(), key=lambda kv: (kv[1], kv[0]))
