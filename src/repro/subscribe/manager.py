"""Continuous kNN subscriptions with incremental delta maintenance.

The paper keeps updates cheap so the *same* index can serve repeated
queries over a moving fleet; the production shape of that workload
(Lettich et al., PAPERS.md) is thousands of clients each holding a
standing ``(location, k)`` query refreshed every tick.  Re-running every
subscription from scratch each tick wastes exactly the work G-Grid's
lazy cleaning avoids, so :class:`SubscriptionManager` maintains results
*incrementally*:

* The per-cell message lists are reused as the **delta stream** — the
  backend taps :meth:`SubscriptionManager.observe` from its update path,
  so every location update and removal the index sees is also seen here.
* Each subscriber caches its current top-k with its **safe radius**
  ``d_k`` (the k-th distance; infinite while the answer holds fewer than
  k objects).  A buffered message can only change a subscriber's answer
  if it involves a current member, or its cell's network-distance lower
  bound (:class:`~repro.cluster.shardmap.CellDistanceBound`) is within
  the radius — the same μ/λ-style pruning bound the cluster router
  fans out with, and ties (``bound == d_k``) still mark dirty because an
  equidistant smaller id would enter the canonical order.
* Expiry is the subtle hazard: lazy cleaning drops objects whose last
  report is older than ``t_delta`` even when *no* message arrives, so a
  subscriber whose member is about to expire is marked dirty by the
  clock alone.
* A tick refreshes **only the dirty subscribers**, batched through
  ``query_batch`` grouped per home shard — riding the epoch batching,
  dedup cleaning and resilience ladder unchanged — and emits
  :class:`~repro.subscribe.events.DeltaEvent` streams instead of full
  answers.

The invariant the `subscribe` suites pin: after every tick, every
subscriber's cached entries are byte-identical to a from-scratch query
at that tick.  Dirty-marking is *conservative* (it may refresh a
subscriber whose answer did not change) but never unsound (a changed
answer is always refreshed).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.cluster.shardmap import CellDistanceBound
from repro.core.knn import KnnAnswer
from repro.core.messages import Message
from repro.errors import SubscriptionError
from repro.mobility.workload import Query
from repro.obs.hub import Observability, default_observability
from repro.roadnet.location import NetworkLocation
from repro.server.metrics import ReplayReport, TimingModel
from repro.subscribe.events import DeltaEvent, diff_topk

_INF = float("inf")


@dataclass
class Subscription:
    """One standing query and its cached answer.

    Attributes:
        sub_id: client-chosen id, unique within the manager.
        location: the fixed query location.
        k: result size.
        entries: the current top-k as canonical ``(obj, distance)``
            pairs — exactly what a fresh query at the last tick returned.
        fresh: True until the first refresh (a just-registered
            subscription has no answer yet, so it is dirty by
            definition).
    """

    sub_id: int
    location: NetworkLocation
    k: int
    entries: list[tuple[int, float]] = field(default_factory=list)
    fresh: bool = True

    @property
    def safe_radius(self) -> float:
        """The pruning radius ``d_k``: only messages whose cell's lower
        bound is within it can change this answer.  Infinite while the
        answer holds fewer than k objects — then *any* new object could
        enter."""
        if len(self.entries) < self.k:
            return _INF
        return self.entries[-1][1]

    def objects(self) -> set[int]:
        """The member set of the cached answer."""
        return {obj for obj, _ in self.entries}


@dataclass
class TickResult:
    """What one tick did: who was dirty, what changed, what it cost.

    Attributes:
        t: the tick timestamp.
        active: subscriptions registered at tick time.
        dirty: sub ids marked dirty (sorted).
        refreshed: sub ids actually re-queried this tick (== ``dirty``).
        deltas: all delta events, grouped by subscriber in refresh order.
        answers: the per-refresh :class:`KnnAnswer`s, aligned with
            ``refreshed`` (the front door prices its tick from these).
        cells_cleaned: candidate cells cleaned by the refresh queries.
        dirty_fraction: ``len(dirty) / active`` (0.0 with no subs).
    """

    t: float
    active: int
    dirty: list[int]
    refreshed: list[int]
    deltas: list[DeltaEvent]
    answers: list[KnnAnswer]
    cells_cleaned: int
    dirty_fraction: float

    def deltas_for(self, sub_id: int) -> list[DeltaEvent]:
        """This subscriber's events, in emission order."""
        return [e for e in self.deltas if e.sub_id == sub_id]


class SubsInstruments:
    """The ``repro_subs_*`` metric families, resolved once."""

    def __init__(self, obs: Observability) -> None:
        registry = obs.registry
        self.active = registry.gauge(
            "repro_subs_active", help="Registered standing kNN subscriptions."
        ).default()
        self.dirty_fraction = registry.gauge(
            "repro_subs_dirty_fraction",
            help="Fraction of subscriptions refreshed by the last tick.",
        ).default()
        self.dirty = registry.counter(
            "repro_subs_dirty_total",
            help="Subscription refreshes executed (dirty marks).",
        ).default()
        self.ticks = registry.counter(
            "repro_subs_ticks_total", help="Subscription refresh ticks."
        ).default()
        self.messages = registry.counter(
            "repro_subs_messages_observed_total",
            help="Update-stream messages tapped as the subscription "
            "delta stream.",
        ).default()
        self.delta_events = registry.counter(
            "repro_subs_delta_events_total",
            help="Result delta events emitted, by kind.",
            labelnames=("kind",),
        )
        self.refresh_seconds = registry.histogram(
            "repro_subs_refresh_seconds",
            help="Wall seconds per subscription refresh tick.",
        ).default()


class SubscriptionManager:
    """Standing queries over one backend (server, router, or front door's
    backend), refreshed incrementally from the tapped update stream.

    Args:
        backend: anything exposing ``query_batch(queries, report,
            trace_parent=...)`` plus a G-Grid ``grid``/``config`` (a
            :class:`~repro.server.server.QueryServer` or a
            :class:`~repro.cluster.router.ShardRouter`).  If the backend
            has ``attach_subscriptions`` the manager attaches itself, so
            constructing one is all the wiring a caller needs.
        obs: observability bundle; defaults to the process-wide one.
        bound: the cell-distance lower bound used for radius pruning;
            the backend's own (router) is reused when present.

    The update tap must be attached **before** traffic flows: a member
    whose last report the manager never saw has no recorded report time,
    so the expiry rule conservatively marks its subscriber dirty every
    tick (sound, but it erases the incremental savings).
    """

    def __init__(
        self,
        backend: object,
        obs: Observability | None = None,
        bound: CellDistanceBound | None = None,
    ) -> None:
        if not callable(getattr(backend, "query_batch", None)):
            raise SubscriptionError(
                f"subscription backend {type(backend).__name__!r} does not "
                f"expose query_batch"
            )
        self.backend = backend
        index = getattr(backend, "index", None)
        grid = getattr(backend, "grid", None) or getattr(index, "grid", None)
        config = getattr(backend, "config", None) or getattr(index, "config", None)
        if grid is None or config is None:
            raise SubscriptionError(
                f"subscription backend {type(backend).__name__!r} exposes "
                f"no grid/config (need a G-Grid server or router)"
            )
        self.grid = grid
        self.config = config
        self.t_delta = config.t_delta
        self.bound = bound or getattr(backend, "bound", None) or CellDistanceBound(grid)
        self._home = getattr(backend, "home_shard", None)
        self.obs = obs if obs is not None else default_observability()
        self._inst = SubsInstruments(self.obs) if self.obs is not None else None
        self.report = ReplayReport(
            index_name=getattr(backend, "name", None)
            or getattr(index, "name", "subscriptions"),
            timing=getattr(backend, "timing", None) or TimingModel(),
        )
        self.subscriptions: dict[int, Subscription] = {}
        #: buffered deltas since the last tick: moves as (obj, cell, t),
        #: removals as (obj, None, t)
        self._buffer: list[tuple[int, int | None, float]] = []
        #: last report time per live object (the expiry-rule clock)
        self._last_seen: dict[int, float] = {}
        self._last_tick_t = -_INF
        # lifetime counters (deterministic; the bench/trajectory rows
        # read these rather than the metrics registry)
        self.ticks = 0
        self.dirty_refreshes = 0
        self.messages_observed = 0
        self.cells_cleaned_total = 0
        self.delta_counts: dict[str, int] = {}
        attach = getattr(backend, "attach_subscriptions", None)
        if callable(attach):
            attach(self)

    # ------------------------------------------------------------------
    # registration
    # ------------------------------------------------------------------
    def register(
        self, sub_id: int, location: NetworkLocation, k: int
    ) -> Subscription:
        """Add a standing ``(location, k)`` query; answered at next tick."""
        if k < 1:
            raise SubscriptionError(f"subscription k must be >= 1, got {k}")
        if sub_id in self.subscriptions:
            raise SubscriptionError(f"duplicate subscription id {sub_id}")
        sub = Subscription(sub_id, location, k)
        self.subscriptions[sub_id] = sub
        if self._inst is not None:
            self._inst.active.set(len(self.subscriptions))
        return sub

    def cancel(self, sub_id: int) -> None:
        """Drop a subscription; unknown ids raise."""
        if sub_id not in self.subscriptions:
            raise SubscriptionError(f"unknown subscription id {sub_id}")
        del self.subscriptions[sub_id]
        if self._inst is not None:
            self._inst.active.set(len(self.subscriptions))

    def entries_of(self, sub_id: int) -> list[tuple[int, float]]:
        """A subscriber's cached top-k (copy), canonical order."""
        try:
            return list(self.subscriptions[sub_id].entries)
        except KeyError:
            raise SubscriptionError(
                f"unknown subscription id {sub_id}"
            ) from None

    # ------------------------------------------------------------------
    # the update-stream tap
    # ------------------------------------------------------------------
    def observe(self, message: Message) -> None:
        """Tap one update from the backend's ingest path.

        Called by the attached backend after it applies the update, so
        the buffer mirrors exactly the deltas the index has absorbed
        since the last tick.
        """
        self.messages_observed += 1
        if self._inst is not None:
            self._inst.messages.inc()
        if message.is_removal:
            self._buffer.append((message.obj, None, message.t))
            self._last_seen.pop(message.obj, None)
            return
        cell = self.grid.cell_of_edge(message.edge)
        self._buffer.append((message.obj, cell, message.t))
        self._last_seen[message.obj] = message.t

    def observe_remove(self, obj: int, t: float) -> None:
        """Tap an explicit object deregistration (``remove_object``)."""
        self.messages_observed += 1
        if self._inst is not None:
            self._inst.messages.inc()
        self._buffer.append((obj, None, t))
        self._last_seen.pop(obj, None)

    # ------------------------------------------------------------------
    # dirty marking
    # ------------------------------------------------------------------
    def dirty_subscribers(self, t_now: float) -> set[int]:
        """Who must refresh at ``t_now`` (the pruning invariant).

        A subscriber is dirty iff any rule fires:

        1. **fresh** — never answered;
        2. **member** — a buffered move or removal involves a current
           top-k member (its distance may grow, or it vanishes);
        3. **radius** — a buffered *move* of a non-member lands in a
           cell whose network-distance lower bound is ``<=`` the safe
           radius ``d_k`` (``<=``, not ``<``: an equidistant smaller id
           enters the canonical order — the router's ties-still-probe
           rule).  While the answer holds fewer than k objects the
           radius is infinite and any move marks dirty.  A non-member
           *removal* is provably safe: it cannot shrink any of the k
           nearest distances.
        4. **expiry** — a member's last report is older than
           ``t_now - t_delta``, so lazy cleaning will drop it even
           though no message arrived.  Members the tap never saw have
           no report time and count as expired (conservative).
        """
        moved_objs: set[int] = set()
        removed_objs: set[int] = set()
        move_cells: set[int] = set()
        for obj, cell, _ in self._buffer:
            if cell is None:
                removed_objs.add(obj)
            else:
                moved_objs.add(obj)
                move_cells.add(cell)
        cutoff = t_now - self.t_delta
        dirty: set[int] = set()
        for sub_id, sub in self.subscriptions.items():
            if sub.fresh:
                dirty.add(sub_id)
                continue
            members = sub.objects()
            if members & (moved_objs | removed_objs):
                dirty.add(sub_id)
                continue
            if any(
                self._last_seen.get(obj, -_INF) < cutoff for obj in members
            ):
                dirty.add(sub_id)
                continue
            radius = sub.safe_radius
            if move_cells and radius == _INF:
                dirty.add(sub_id)
                continue
            # the bound caches its per-source-cell Dijkstra, so probing
            # each touched cell individually stays cheap across ticks
            for cell in move_cells:
                lb = self.bound.lower_bound_to_cells(
                    sub.location, range(cell, cell + 1)
                )
                if lb <= radius:
                    dirty.add(sub_id)
                    break
        return dirty

    # ------------------------------------------------------------------
    # the tick
    # ------------------------------------------------------------------
    def tick(self, t_now: float, force_all: bool = False) -> TickResult:
        """Refresh every dirty subscriber at ``t_now`` and emit deltas.

        Ticks must be monotone (the index's lazy cleaning is).  With
        ``force_all`` every subscription refreshes — the differential
        harness uses that as the from-scratch twin.
        """
        if t_now < self._last_tick_t:
            raise SubscriptionError(
                f"non-monotone tick: t={t_now} after t={self._last_tick_t}"
            )
        self._last_tick_t = t_now
        wall0 = time.perf_counter()
        tracer = self.obs.tracer if self.obs is not None else None
        if tracer is None:
            result = self._refresh(t_now, force_all, trace_parent=None)
            trace_id = None
        else:
            with tracer.activate(), tracer.span(
                "sub.refresh", {"t": t_now, "active": len(self.subscriptions)}
            ) as sp:
                result = self._refresh(
                    t_now, force_all, trace_parent=sp.context.encode()
                )
                sp.set_attr("dirty", len(result.refreshed))
                sp.set_attr("delta_events", len(result.deltas))
            trace_id = sp.trace_id_hex
        wall = time.perf_counter() - wall0
        self.ticks += 1
        self.dirty_refreshes += len(result.refreshed)
        self.cells_cleaned_total += result.cells_cleaned
        for event in result.deltas:
            self.delta_counts[event.kind] = (
                self.delta_counts.get(event.kind, 0) + 1
            )
        inst = self._inst
        if inst is not None:
            inst.ticks.inc()
            inst.dirty.inc(len(result.refreshed))
            inst.active.set(len(self.subscriptions))
            inst.dirty_fraction.set(result.dirty_fraction)
            inst.refresh_seconds.observe(wall, exemplar=trace_id)
            for event in result.deltas:
                inst.delta_events.labels(kind=event.kind).inc()
        return result

    def _refresh(
        self, t_now: float, force_all: bool, trace_parent: str | None
    ) -> TickResult:
        active = len(self.subscriptions)
        if force_all:
            dirty = sorted(self.subscriptions)
        else:
            dirty = sorted(self.dirty_subscribers(t_now))
        # group per home shard so each group rides one batched epoch on
        # its owning shard (single-server backends form one group)
        groups: dict[int, list[int]] = {}
        for sub_id in dirty:
            sub = self.subscriptions[sub_id]
            home = self._home(sub.location) if self._home is not None else 0
            groups.setdefault(home, []).append(sub_id)
        refreshed: list[int] = []
        deltas: list[DeltaEvent] = []
        answers: list[KnnAnswer] = []
        cells_cleaned = 0
        for home in sorted(groups):
            member_ids = groups[home]
            queries = [
                Query(t_now, self.subscriptions[s].location, self.subscriptions[s].k)
                for s in member_ids
            ]
            got = self.backend.query_batch(
                queries, self.report, trace_parent=trace_parent
            )
            for sub_id, answer in zip(member_ids, got):
                sub = self.subscriptions[sub_id]
                new = [(e.obj, e.distance) for e in answer.entries]
                deltas.extend(diff_topk(sub_id, sub.entries, new, t_now))
                sub.entries = new
                sub.fresh = False
                refreshed.append(sub_id)
                answers.append(answer)
                cells_cleaned += answer.cells_cleaned
        self._buffer.clear()
        return TickResult(
            t=t_now,
            active=active,
            dirty=dirty,
            refreshed=refreshed,
            deltas=deltas,
            answers=answers,
            cells_cleaned=cells_cleaned,
            dirty_fraction=(len(dirty) / active) if active else 0.0,
        )
