"""Continuous kNN subscriptions: standing queries refreshed by deltas.

Public surface:

* :class:`~repro.subscribe.manager.SubscriptionManager` — registers
  ``(location, k)`` standing queries over a server, router, or front
  door backend; taps the update stream, marks dirty subscribers by the
  safe-radius bound, and refreshes them per tick through batched
  epochs.
* :class:`~repro.subscribe.events.DeltaEvent` /
  :func:`~repro.subscribe.events.diff_topk` /
  :func:`~repro.subscribe.events.replay_deltas` — the lossless
  ``enter``/``leave``/``rerank`` result-delta stream.
* :func:`~repro.subscribe.harness.run_subscription_replay` — the
  differential twin replay proving incremental == from-scratch.
"""

from repro.subscribe.events import (
    EVENT_ENTER,
    EVENT_KINDS,
    EVENT_LEAVE,
    EVENT_RERANK,
    DeltaEvent,
    diff_topk,
    replay_deltas,
)
from repro.subscribe.harness import (
    SubscriptionReplayOutcome,
    run_subscription_replay,
)
from repro.subscribe.manager import (
    Subscription,
    SubscriptionManager,
    SubsInstruments,
    TickResult,
)

__all__ = [
    "DeltaEvent",
    "EVENT_ENTER",
    "EVENT_KINDS",
    "EVENT_LEAVE",
    "EVENT_RERANK",
    "Subscription",
    "SubscriptionManager",
    "SubscriptionReplayOutcome",
    "SubsInstruments",
    "TickResult",
    "diff_topk",
    "replay_deltas",
    "run_subscription_replay",
]
