"""The differential twin-replay harness for standing queries.

"Simpler is More" (PAPERS.md) warns that incremental machinery must be
*proven* no worse — and no different — than from-scratch re-query.  This
harness runs that proof as a replay: two identical backends consume the
same seeded update stream in lockstep, one refreshed incrementally
(dirty subscribers only) and one with ``force_all=True`` (every
subscriber re-queried every tick, i.e. from-scratch semantics on an
identical index).  After every tick each subscriber's cached entries are
compared; the bench ``subscriptions`` experiment and the trajectory
scenario both report through :class:`SubscriptionReplayOutcome`, so the
identity *and* the dirty-fraction savings are gated in CI.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.config import GGridConfig
from repro.core.ggrid import GGridIndex
from repro.core.messages import Message
from repro.mobility.workload import make_workload, random_locations
from repro.roadnet.datasets import load_dataset
from repro.roadnet.graph import RoadNetwork
from repro.server.metrics import ReplayReport, TimingModel
from repro.server.server import QueryServer
from repro.subscribe.manager import SubscriptionManager


@dataclass
class SubscriptionReplayOutcome:
    """What the twin replay measured.

    ``answers_match`` is the headline: every subscriber's incremental
    entries equalled the full-refresh twin's after every tick.
    ``mismatches`` lists ``(tick_index, sub_id)`` for any that did not
    (rounded to 9 decimals for sharded backends, exact otherwise).
    """

    ticks: int
    active: int
    dirty_refreshes: int
    full_refreshes: int
    mean_dirty_fraction: float
    delta_counts: dict[str, int]
    cells_cleaned: int
    full_cells_cleaned: int
    answers_match: bool
    mismatches: list[tuple[int, int]] = field(default_factory=list)


def _entries_key(
    entries: list[tuple[int, float]], exact: bool
) -> list[tuple[int, float]]:
    if exact:
        return entries
    return [(obj, round(d, 9)) for obj, d in entries]


def run_subscription_replay(
    dataset: str = "NY",
    *,
    num_objects: int | None = None,
    num_subs: int = 24,
    k: int = 8,
    duration: float = 12.0,
    num_ticks: int = 12,
    update_frequency: float = 1.0,
    seed: int = 7,
    num_shards: int | None = None,
    config: GGridConfig | None = None,
    graph: RoadNetwork | None = None,
) -> SubscriptionReplayOutcome:
    """Drive incremental and full-refresh twins over one update stream.

    Both twins see the initial placements at t=0, then the workload's
    updates applied in per-tick windows, then a tick at each window
    boundary.  Single-server twins are compared exactly (same code path,
    byte-identity expected); sharded twins compare at 9 decimals (the
    restricted per-shard subgraphs admit ulp-level drift, the same
    tolerance the cluster conformance suite uses).
    """
    g = graph if graph is not None else load_dataset(dataset)
    cfg = config or GGridConfig()
    n_objects = (
        num_objects if num_objects is not None else max(120, g.num_vertices // 4)
    )
    workload = make_workload(
        g,
        num_objects=n_objects,
        duration=duration,
        num_queries=1,
        k=k,
        update_frequency=update_frequency,
        seed=seed,
    )
    sub_locations = random_locations(g, num_subs, seed=seed + 101)

    def build_backend() -> object:
        if num_shards:
            from repro.cluster.router import ShardRouter

            return ShardRouter(g, cfg, num_shards=num_shards)
        return QueryServer(GGridIndex(g, cfg))

    backends = [build_backend(), build_backend()]
    managers = [SubscriptionManager(b) for b in backends]
    exact = not num_shards
    try:
        reports = [
            ReplayReport(index_name="subs-replay", timing=TimingModel())
            for _ in backends
        ]
        for manager in managers:
            for i, loc in enumerate(sub_locations):
                manager.register(i, loc, k)
        for backend, report in zip(backends, reports):
            for obj, loc in workload.initial.items():
                backend.update(Message(obj, loc.edge_id, loc.offset, 0.0), report)

        updates = list(workload.updates)
        cursor = 0
        inc, full = managers
        mismatches: list[tuple[int, int]] = []
        dirty_fractions: list[float] = []
        full_refreshes = 0
        full_cells = 0
        for tick in range(1, num_ticks + 1):
            t = duration * tick / num_ticks
            while cursor < len(updates) and updates[cursor].t <= t:
                for backend, report in zip(backends, reports):
                    backend.update(updates[cursor], report)
                cursor += 1
            res_inc = inc.tick(t)
            res_full = full.tick(t, force_all=True)
            full_refreshes += len(res_full.refreshed)
            full_cells += res_full.cells_cleaned
            if tick > 1:
                # the first tick refreshes everything (all subs fresh);
                # the savings claim is about steady state
                dirty_fractions.append(res_inc.dirty_fraction)
            for sub_id in range(num_subs):
                a = _entries_key(inc.entries_of(sub_id), exact)
                b = _entries_key(full.entries_of(sub_id), exact)
                if a != b:
                    mismatches.append((tick, sub_id))
    finally:
        for backend in backends:
            close = getattr(backend, "close", None)
            if callable(close):
                close()

    return SubscriptionReplayOutcome(
        ticks=num_ticks,
        active=num_subs,
        dirty_refreshes=inc.dirty_refreshes,
        full_refreshes=full_refreshes,
        mean_dirty_fraction=(
            sum(dirty_fractions) / len(dirty_fractions)
            if dirty_fractions
            else 1.0
        ),
        delta_counts=dict(inc.delta_counts),
        cells_cleaned=inc.cells_cleaned_total,
        full_cells_cleaned=full_cells,
        answers_match=not mismatches,
        mismatches=mismatches,
    )
