"""Unit tests for workload replay through the query server."""

import pytest

from repro.baselines.naive import NaiveKnnIndex
from repro.core.ggrid import GGridIndex
from repro.config import GGridConfig
from repro.mobility.workload import make_workload
from repro.server.server import KnnIndex, QueryServer


@pytest.fixture(scope="module")
def workload(small_graph):
    return make_workload(
        small_graph, num_objects=15, duration=6.0, num_queries=4, k=3, seed=2
    )


def test_replay_counts(small_graph, workload):
    server = QueryServer(NaiveKnnIndex(small_graph))
    report, answers = server.replay(workload, collect_answers=True)
    # initial placements count as updates too
    assert report.n_updates == workload.num_updates + len(workload.initial)
    assert report.n_queries == workload.num_queries
    assert len(answers) == workload.num_queries


def test_replay_records_touches(small_graph, workload):
    server = QueryServer(NaiveKnnIndex(small_graph))
    report, _ = server.replay(workload)
    assert report.update_touches == report.n_updates  # naive: 1 touch each


def test_replay_ggrid_accounts_gpu(small_graph, workload):
    index = GGridIndex(small_graph, GGridConfig(eta=3, delta_b=8))
    report, _ = server_replay(index, workload)
    assert report.gpu_seconds > 0
    assert report.transfer_bytes > 0
    assert all(r.modeled_s > 0 for r in report.query_records)


def server_replay(index: KnnIndex, workload):
    return QueryServer(index).replay(workload)


def test_answers_match_between_indexes(small_graph, workload):
    ggrid = GGridIndex(small_graph, GGridConfig(eta=3, delta_b=8))
    naive = NaiveKnnIndex(small_graph)
    _, a = QueryServer(ggrid).replay(workload, collect_answers=True)
    _, b = QueryServer(naive).replay(workload, collect_answers=True)
    for x, y in zip(a, b):
        assert [round(d, 9) for d in x.distances()] == [
            round(d, 9) for d in y.distances()
        ]


def test_protocol_conformance(small_graph):
    assert isinstance(NaiveKnnIndex(small_graph), KnnIndex)
    assert isinstance(GGridIndex(small_graph), KnnIndex)
