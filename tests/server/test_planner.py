"""Tests for the capacity planner."""

import pytest

from repro.errors import ConfigError
from repro.server.planner import CapacityPlanner, WorkloadSpec


def _spec(**kw) -> WorkloadSpec:
    defaults = dict(
        num_objects=10_000, update_frequency_hz=1.0, queries_per_second=100.0, k=16
    )
    defaults.update(kw)
    return WorkloadSpec(**defaults)


def test_paper_default_workload_is_sustainable():
    """|O| = 10^4, f = 1 Hz, 100 q/s — comfortably within one server."""
    report = CapacityPlanner().plan(_spec())
    assert report.sustainable
    assert 0 < report.utilization < 1


def test_utilization_components_positive():
    report = CapacityPlanner().plan(_spec())
    assert report.update_cpu_s_per_s > 0
    assert report.query_gpu_s_per_s > 0
    assert report.query_cpu_s_per_s > 0
    assert report.transfer_bytes_per_s > 0


def test_utilization_scales_with_updates():
    planner = CapacityPlanner()
    low = planner.plan(_spec(update_frequency_hz=0.5))
    high = planner.plan(_spec(update_frequency_hz=5.0))
    assert high.utilization > low.utilization
    assert high.update_cpu_s_per_s == pytest.approx(
        10 * low.update_cpu_s_per_s
    )


def test_utilization_scales_with_queries():
    planner = CapacityPlanner()
    low = planner.plan(_spec(queries_per_second=10.0))
    high = planner.plan(_spec(queries_per_second=1000.0))
    assert high.utilization > low.utilization


def test_extreme_workload_not_sustainable():
    report = CapacityPlanner().plan(
        _spec(num_objects=10**9, update_frequency_hz=100.0)
    )
    assert not report.sustainable
    assert report.utilization > 1


def test_max_frequency_is_the_boundary():
    planner = CapacityPlanner()
    spec = _spec()
    report = planner.plan(spec)
    at_max = planner.plan_utilization(
        _spec(update_frequency_hz=report.max_update_frequency_hz)
    )
    assert at_max == pytest.approx(1.0, rel=1e-3)
    # above the boundary the server falls behind
    assert (
        planner.plan_utilization(
            _spec(update_frequency_hz=report.max_update_frequency_hz * 1.2)
        )
        > 1.0
    )


def test_max_query_rate_headroom():
    planner = CapacityPlanner()
    report = planner.plan(_spec())
    assert report.max_queries_per_second > 100.0  # current rate has headroom
    at_max = planner.plan_utilization(
        _spec(queries_per_second=report.max_queries_per_second)
    )
    assert at_max == pytest.approx(1.0, rel=1e-2)


def test_spec_validation():
    with pytest.raises(ConfigError):
        _spec(num_objects=0)
    with pytest.raises(ConfigError):
        _spec(update_frequency_hz=0)
    with pytest.raises(ConfigError):
        _spec(k=0)


def test_bigger_k_costs_more():
    planner = CapacityPlanner()
    small = planner.plan(_spec(k=8))
    big = planner.plan(_spec(k=128))
    assert big.query_gpu_s_per_s > small.query_gpu_s_per_s
    assert big.transfer_bytes_per_s > small.transfer_bytes_per_s
