"""Tests for the capacity planner and the shared calibrate() helper."""

import pytest

from repro.config import GGridConfig
from repro.core.ggrid import GGridIndex
from repro.errors import ConfigError
from repro.mobility.workload import make_workload
from repro.roadnet.generators import grid_road_network
from repro.server.planner import CapacityPlanner, WorkloadSpec, calibrate
from repro.server.server import QueryServer


def _spec(**kw) -> WorkloadSpec:
    defaults = dict(
        num_objects=10_000, update_frequency_hz=1.0, queries_per_second=100.0, k=16
    )
    defaults.update(kw)
    return WorkloadSpec(**defaults)


def test_paper_default_workload_is_sustainable():
    """|O| = 10^4, f = 1 Hz, 100 q/s — comfortably within one server."""
    report = CapacityPlanner().plan(_spec())
    assert report.sustainable
    assert 0 < report.utilization < 1


def test_utilization_components_positive():
    report = CapacityPlanner().plan(_spec())
    assert report.update_cpu_s_per_s > 0
    assert report.query_gpu_s_per_s > 0
    assert report.query_cpu_s_per_s > 0
    assert report.transfer_bytes_per_s > 0


def test_utilization_scales_with_updates():
    planner = CapacityPlanner()
    low = planner.plan(_spec(update_frequency_hz=0.5))
    high = planner.plan(_spec(update_frequency_hz=5.0))
    assert high.utilization > low.utilization
    assert high.update_cpu_s_per_s == pytest.approx(
        10 * low.update_cpu_s_per_s
    )


def test_utilization_scales_with_queries():
    planner = CapacityPlanner()
    low = planner.plan(_spec(queries_per_second=10.0))
    high = planner.plan(_spec(queries_per_second=1000.0))
    assert high.utilization > low.utilization


def test_extreme_workload_not_sustainable():
    report = CapacityPlanner().plan(
        _spec(num_objects=10**9, update_frequency_hz=100.0)
    )
    assert not report.sustainable
    assert report.utilization > 1


def test_max_frequency_is_the_boundary():
    planner = CapacityPlanner()
    spec = _spec()
    report = planner.plan(spec)
    at_max = planner.plan_utilization(
        _spec(update_frequency_hz=report.max_update_frequency_hz)
    )
    assert at_max == pytest.approx(1.0, rel=1e-3)
    # above the boundary the server falls behind
    assert (
        planner.plan_utilization(
            _spec(update_frequency_hz=report.max_update_frequency_hz * 1.2)
        )
        > 1.0
    )


def test_max_query_rate_headroom():
    planner = CapacityPlanner()
    report = planner.plan(_spec())
    assert report.max_queries_per_second > 100.0  # current rate has headroom
    at_max = planner.plan_utilization(
        _spec(queries_per_second=report.max_queries_per_second)
    )
    assert at_max == pytest.approx(1.0, rel=1e-2)


def test_spec_validation():
    with pytest.raises(ConfigError):
        _spec(num_objects=0)
    with pytest.raises(ConfigError):
        _spec(update_frequency_hz=0)
    with pytest.raises(ConfigError):
        _spec(k=0)


def test_bigger_k_costs_more():
    planner = CapacityPlanner()
    small = planner.plan(_spec(k=8))
    big = planner.plan(_spec(k=128))
    assert big.query_gpu_s_per_s > small.query_gpu_s_per_s
    assert big.transfer_bytes_per_s > small.transfer_bytes_per_s


# ----------------------------------------------------------------------
# calibrate(): the one measured-cost helper both planners consume
# ----------------------------------------------------------------------
def _replayed_report(duration=20.0):
    graph = grid_road_network(8, 8, seed=17)
    workload = make_workload(
        graph,
        num_objects=40,
        duration=duration,
        num_queries=30,
        k=4,
        update_frequency=0.2,
        seed=33,
    )
    server = QueryServer(GGridIndex(graph, GGridConfig(eta=3, delta_b=8)))
    report, _ = server.replay(workload)
    return report, duration


def test_calibrated_costs_reproduce_replayed_utilization():
    """The regression pin: predicted work-per-second from the calibrated
    per-op costs must reproduce the replayed modelled totals.  On a
    fault-free replay the identity is exact up to float dust — per-op
    costs are the totals divided by the event counts — so any drift
    means ``calibrate`` and the replay accounting disagree about what an
    update or a query costs."""
    report, duration = _replayed_report()
    costs = calibrate(report)

    predicted = costs.utilization(
        report.n_updates / duration, report.n_queries / duration
    )
    replayed = (report.update_modeled_s + report.query_modeled_s) / duration
    assert predicted == pytest.approx(replayed, rel=1e-9)
    assert costs.touches_per_update > 0
    assert costs.query_seconds() > 0


def test_calibrated_capacity_planner_uses_measured_touches():
    report, _ = _replayed_report()
    planner = CapacityPlanner.calibrated(report)
    measured = report.update_touches / report.n_updates
    assert planner.touches_per_update == pytest.approx(measured)
    assert planner.touches_per_update != CapacityPlanner.TOUCHES_PER_UPDATE
