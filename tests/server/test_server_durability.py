"""Server-level durability: WAL hooks on the update path, background
snapshots, and crash recovery through ``QueryServer.recover``."""

import random

import pytest

from repro.config import GGridConfig
from repro.core.ggrid import GGridIndex
from repro.core.messages import Message
from repro.errors import QueryError
from repro.mobility.workload import Query, make_workload
from repro.persist import DurabilityManager, SnapshotPolicy, read_wal
from repro.roadnet.location import NetworkLocation
from repro.server.metrics import ReplayReport
from repro.server.server import QueryServer

pytestmark = pytest.mark.persist

_CONFIG = GGridConfig(eta=3, delta_b=8)


def _messages(graph, n, seed=21):
    rng = random.Random(seed)
    out = []
    for i in range(n):
        e = rng.randrange(graph.num_edges)
        out.append(
            Message(rng.randrange(12), e, rng.uniform(0, graph.edge(e).weight), 1.0 + i)
        )
    return out


def test_update_path_logs_every_record(small_graph, tmp_path):
    manager = DurabilityManager(tmp_path)
    server = QueryServer(GGridIndex(small_graph, _CONFIG), durability=manager)
    report = ReplayReport(index_name="g-grid")
    for m in _messages(small_graph, 25):
        server.update(m, report)
    server.remove_object(m.obj, t=100.0)
    manager.close()
    result = read_wal(tmp_path / "wal")
    assert not result.torn
    assert len(result.records) == 26
    assert result.records[-1].op == "remove"
    assert report.n_updates == 25


def test_snapshot_policy_fires_during_serving(small_graph, tmp_path):
    manager = DurabilityManager(
        tmp_path, snapshot_policy=SnapshotPolicy(every_records=10)
    )
    server = QueryServer(GGridIndex(small_graph, _CONFIG), durability=manager)
    report = ReplayReport(index_name="g-grid")
    for m in _messages(small_graph, 25):
        server.update(m, report)
    manager.close()
    assert manager.snapshots.snapshots_written == 2
    newest, _ = manager.snapshots.newest_valid()
    assert newest.watermark == 20


def test_remove_object_requires_index_support(small_graph, tmp_path):
    from repro.baselines.naive import NaiveKnnIndex

    index = NaiveKnnIndex(small_graph)
    if hasattr(index, "remove_object"):
        pytest.skip("baseline grew removal support; pick another stub")
    server = QueryServer(index)
    with pytest.raises(QueryError, match="does not support"):
        server.remove_object(0, t=1.0)


def test_recover_round_trip(small_graph, tmp_path):
    """Serve updates durably, "crash" (drop the server), recover: the
    recovered server answers identically and is durable again — its
    next update extends the same LSN run."""
    workload = make_workload(
        small_graph, num_objects=20, duration=8.0, num_queries=3, k=4, seed=6
    )
    manager = DurabilityManager(
        tmp_path, snapshot_policy=SnapshotPolicy(every_records=15)
    )
    live = QueryServer(GGridIndex(small_graph, _CONFIG), durability=manager)
    report = ReplayReport(index_name="g-grid")
    for obj, loc in workload.initial.items():
        live.update(Message(obj, loc.edge_id, loc.offset, 0.0), report)
    for message in workload.updates:
        live.update(message, report)
    manager.close()  # process death: only the durable files remain
    lsn_before = manager.wal.last_lsn

    recovered = QueryServer.recover(tmp_path, graph=small_graph, config=_CONFIG)
    assert recovered.recovery_report.records_failed == 0
    assert recovered.recovery_report.last_lsn == lsn_before
    q = Query(100.0, NetworkLocation(0, 0.0), 5)
    fresh_report = ReplayReport(index_name="g-grid")
    want = live.query(q, report)
    got = recovered.query(q, fresh_report)
    assert got.objects() == want.objects()
    assert [repr(d) for d in got.distances()] == [repr(d) for d in want.distances()]

    # durable again: the next update continues the LSN sequence
    recovered.update(Message(0, 0, 0.1, 200.0), fresh_report)
    recovered.durability.close()
    assert read_wal(tmp_path / "wal").last_lsn == lsn_before + 1
