"""Server-side resilience: event validation, rate-limited warnings,
degradation accounting and the resilience metric families."""

import random

import pytest

from repro.chaos import FaultPlan, chaos_context
from repro.config import GGridConfig
from repro.core.ggrid import GGridIndex
from repro.core.knn import KnnAnswer
from repro.core.messages import Message
from repro.errors import QueryError
from repro.mobility.workload import Query, Workload
from repro.obs import Observability, configured
from repro.roadnet.location import NetworkLocation
from repro.server import QueryServer
from repro.server.metrics import ReplayReport

pytestmark = pytest.mark.chaos

_CONFIG = GGridConfig(eta=3, delta_b=8)


def _workload(graph, objects=25, queries=4, seed=13):
    rng = random.Random(seed)
    initial = {}
    updates = []
    for obj in range(objects):
        e = rng.randrange(graph.num_edges)
        initial[obj] = NetworkLocation(e, rng.uniform(0, graph.edge(e).weight))
        e2 = rng.randrange(graph.num_edges)
        updates.append(
            Message(obj, e2, rng.uniform(0, graph.edge(e2).weight), 1.0 + obj * 0.01)
        )
    qs = [
        Query(2.0 + i, NetworkLocation(i, 0.0), 5) for i in range(queries)
    ]
    return Workload(initial=initial, updates=updates, queries=qs)


# ----------------------------------------------------------------------
# satellite: replay rejects malformed workloads with QueryError
# ----------------------------------------------------------------------
class _BadEventWorkload:
    initial: dict = {}

    def __init__(self, kind):
        self._kind = kind

    def events(self):
        yield self._kind, object()


@pytest.mark.parametrize("kind", ["update", "query"])
def test_replay_raises_query_error_on_foreign_events(small_graph, kind):
    server = QueryServer(GGridIndex(small_graph, _CONFIG))
    with pytest.raises(QueryError, match=kind):
        server.replay(_BadEventWorkload(kind))


# ----------------------------------------------------------------------
# satellite: fallback warning is rate-limited
# ----------------------------------------------------------------------
class _FallbackIndex:
    """Minimal index whose every answer is a fallback."""

    name = "fallback-stub"

    def ingest(self, message):
        pass

    def bulk_load(self, placements, t):
        pass

    def knn(self, location, k, t_now=None):
        return KnnAnswer(used_fallback=True)

    def size_bytes(self):
        return {}

    def reset_objects(self):
        pass


def test_fallback_warning_rate_limited_with_cumulative_count():
    obs = Observability()
    server = QueryServer(_FallbackIndex(), obs=obs)
    report = ReplayReport(index_name="fallback-stub")
    for i in range(250):
        server.query(Query(float(i), NetworkLocation(0, 0.0), 1), report)
    warnings = [w for w in obs.registry.warnings if "fell back" in w]
    # 250 fallbacks -> warnings at #1, #100 and #200 only
    assert len(warnings) == 3
    assert any("100 queries fell back" in w for w in warnings)
    # but the counter sees every single one
    fam = obs.registry.families()["repro_query_fallback_total"]
    assert fam.default().value == 250


# ----------------------------------------------------------------------
# degradation accounting end to end
# ----------------------------------------------------------------------
def test_degraded_replay_records_and_metrics(small_graph):
    # configured(): the injector publishes its fault counter through the
    # process-wide bundle, like the bench CLI sets up
    with configured(Observability()) as obs:
        with chaos_context(FaultPlan.from_profile("blackout", seed=1)):
            index = GGridIndex(small_graph, _CONFIG)
            server = QueryServer(index, obs=obs)
            report, _ = server.replay(_workload(small_graph))

    assert report.degraded_queries == report.n_queries
    assert report.degraded_by_rung() == {"cpu_sdist": report.n_queries}
    assert report.total_retries > 0
    assert report.query_backoff_s > 0.0
    summary = report.as_dict()
    assert summary["degraded_queries"] == report.n_queries
    assert summary["total_retries"] == report.total_retries

    # backoff is charged into the modelled time of the retried queries
    retried = [r for r in report.query_records if r.retries]
    assert retried
    for record in retried:
        assert record.phase_s["backoff"] == pytest.approx(record.backoff_s)
        assert record.modeled_s >= record.backoff_s

    fams = obs.registry.families()
    assert fams["repro_retries_total"].default().value == report.total_retries
    degraded = fams["repro_degraded_queries_total"]
    assert degraded.labels(rung="cpu_sdist").value == report.n_queries
    assert fams["repro_breaker_state"].default().value == index.breaker.state_code
    injected = fams["repro_faults_injected_total"]
    # blackout fails the very first device op per attempt (the h2d
    # bucket transfer), so the transfer label is the one guaranteed hot
    assert injected.labels(kind="transfer").value > 0


def test_backpressure_charged_to_update_path(small_graph):
    obs = Observability()
    plan = FaultPlan(seed=0, max_buckets_per_cell=1)
    with chaos_context(plan):
        index = GGridIndex(small_graph, GGridConfig(eta=3, delta_b=4))
        server = QueryServer(index, obs=obs)
        report = ReplayReport(index_name=index.name)
        for i in range(40):
            server.update(Message(0, 0, 0.1, float(i + 1)), report)

    assert report.updates_backpressured > 0
    assert report.updates_backpressured == index.backpressure_cleanings
    fam = obs.registry.families()["repro_backpressure_cleanings_total"]
    assert fam.default().value == report.updates_backpressured


def test_healthy_replay_reports_zero_resilience_activity(small_graph):
    index = GGridIndex(small_graph, _CONFIG)
    server = QueryServer(index)
    report, _ = server.replay(_workload(small_graph))
    assert report.degraded_queries == 0
    assert report.total_retries == 0
    assert report.query_backoff_s == 0.0
    assert report.updates_backpressured == 0
    assert report.update_backoff_s == 0.0
