"""Tests for background maintenance policies."""

import pytest

from repro.baselines.naive import NaiveKnnIndex
from repro.config import GGridConfig
from repro.core.ggrid import GGridIndex
from repro.errors import ConfigError
from repro.mobility.workload import make_workload
from repro.server.maintenance import (
    BacklogCleaning,
    MaintenancePolicy,
    NoMaintenance,
    PeriodicCleaning,
    max_backlog_cells,
)
from repro.server.server import QueryServer


@pytest.fixture(scope="module")
def workload(medium_graph):
    return make_workload(
        medium_graph, num_objects=40, duration=20.0, num_queries=4, k=6, seed=8
    )


def _replay(medium_graph, workload, policy):
    index = GGridIndex(medium_graph, GGridConfig(eta=3, delta_b=4))
    server = QueryServer(index, maintenance=policy)
    report, answers = server.replay(workload, collect_answers=True)
    return index, report, answers


def test_policies_preserve_answers(medium_graph, workload):
    reference = None
    for policy in (NoMaintenance(), PeriodicCleaning(5.0), BacklogCleaning(10)):
        _, _, answers = _replay(medium_graph, workload, policy)
        dists = [[round(d, 9) for d in a.distances()] for a in answers]
        if reference is None:
            reference = dists
        else:
            assert dists == reference
    # and the shared answers match the exact oracle
    _, oracle_answers = QueryServer(NaiveKnnIndex(medium_graph)).replay(
        workload, collect_answers=True
    )
    oracle = [[round(d, 9) for d in a.distances()] for a in oracle_answers]
    assert reference == oracle


def test_backlog_policy_bounds_backlog(medium_graph, workload):
    lazy_index, _, _ = _replay(medium_graph, workload, NoMaintenance())
    bounded_index, _, _ = _replay(medium_graph, workload, BacklogCleaning(8))
    assert max_backlog_cells(bounded_index) <= max_backlog_cells(lazy_index)
    # every unlocked cell respects the bound right after replay
    for mlist in bounded_index.lists.values():
        assert mlist.num_messages <= 8 + 1  # +1: the post-clean arrival


def test_periodic_policy_sweeps(medium_graph, workload):
    policy = PeriodicCleaning(interval=4.0, slice_cells=8)
    _replay(medium_graph, workload, policy)
    assert policy.cells_cleaned > 0


def test_periodic_smooths_query_cleaning(medium_graph, workload):
    """Background sweeps mean queries find less backlog to clean."""
    idx_lazy, rep_lazy, _ = _replay(medium_graph, workload, NoMaintenance())
    idx_bg, rep_bg, _ = _replay(medium_graph, workload, BacklogCleaning(5))
    # the background-cleaned index carries less pending backlog overall
    assert idx_bg.pending_messages() <= idx_lazy.pending_messages()


def test_policy_protocol():
    assert isinstance(NoMaintenance(), MaintenancePolicy)
    assert isinstance(PeriodicCleaning(1.0), MaintenancePolicy)
    assert isinstance(BacklogCleaning(5), MaintenancePolicy)


def test_policy_validation():
    with pytest.raises(ConfigError):
        PeriodicCleaning(0.0)
    with pytest.raises(ConfigError):
        PeriodicCleaning(1.0, slice_cells=0)
    with pytest.raises(ConfigError):
        BacklogCleaning(0)


def test_policies_publish_cells_cleaned_metric(medium_graph, workload):
    from repro.obs.metrics import MetricsRegistry

    registry = MetricsRegistry()
    periodic = PeriodicCleaning(interval=4.0, slice_cells=8, registry=registry)
    _replay(medium_graph, workload, periodic)
    backlog = BacklogCleaning(2, registry=registry)  # shares one family
    _replay(medium_graph, workload, backlog)

    fam = registry.families()["repro_maintenance_cells_cleaned_total"]
    assert fam.labels(policy="periodic").value == periodic.cells_cleaned > 0
    assert fam.labels(policy="backlog").value == backlog.cells_cleaned > 0


def test_no_maintenance_is_noop(medium_graph, workload):
    index, _, _ = _replay(medium_graph, workload, None)
    index2, _, _ = _replay(medium_graph, workload, NoMaintenance())
    assert index.pending_messages() == index2.pending_messages()
