"""Unit tests for the timing model and replay reports."""

import pytest

from repro.errors import ConfigError
from repro.server.metrics import QueryRecord, ReplayReport, TimingModel


def test_cpu_seconds_scaling():
    tm = TimingModel(python_speedup=50.0, cpu_workers=12)
    assert tm.cpu_seconds(1.0) == pytest.approx(1 / 50)
    assert tm.cpu_seconds(1.0, parallel_items=6) == pytest.approx(1 / 300)
    # parallelism is capped by the worker count
    assert tm.cpu_seconds(1.0, parallel_items=100) == pytest.approx(1 / 600)


def test_update_seconds_from_touches():
    tm = TimingModel(touch_cost_s=1e-7)
    assert tm.update_seconds(1000) == pytest.approx(1e-4)


def test_timing_model_validation():
    with pytest.raises(ConfigError):
        TimingModel(python_speedup=0)
    with pytest.raises(ConfigError):
        TimingModel(cpu_workers=0)
    with pytest.raises(ConfigError):
        TimingModel(touch_cost_s=0)


def _report() -> ReplayReport:
    report = ReplayReport(index_name="X", timing=TimingModel(query_parallelism=4))
    report.n_updates = 100
    report.update_touches = 1000
    report.n_queries = 10
    for _ in range(10):
        report.query_records.append(
            QueryRecord(modeled_s=0.01, wall_s=0.1, gpu_s=0.002, transfer_bytes=500)
        )
    return report


def test_report_aggregates():
    report = _report()
    assert report.query_modeled_s == pytest.approx(0.1)
    assert report.query_wall_s == pytest.approx(1.0)
    assert report.transfer_bytes == 5000
    assert report.gpu_seconds == pytest.approx(0.02)


def test_amortized_latency_vs_overlapped():
    report = _report()
    latency = report.amortized_latency_s()
    overlapped = report.amortized_s()
    assert overlapped < latency  # parallel queries amortise better
    # overlapping divides only the query component
    expected = (report.update_modeled_s + 0.1 / 4) / 10
    assert overlapped == pytest.approx(expected)


def test_throughput_inverse_of_amortized():
    report = _report()
    assert report.throughput_qps() == pytest.approx(1.0 / report.amortized_s())


def test_no_queries_raises():
    report = ReplayReport(index_name="X")
    with pytest.raises(ConfigError):
        report.amortized_s()
    with pytest.raises(ConfigError):
        report.amortized_latency_s()
    with pytest.raises(ConfigError):
        report.throughput_qps()  # derived from amortized_s, same guard
    with pytest.raises(ConfigError):
        report.as_dict()


def test_throughput_consistent_with_amortized():
    report = _report()
    # throughput is 1 / amortised seconds-per-query, by construction
    assert report.throughput_qps() * report.amortized_s() == pytest.approx(1.0)


def test_as_dict_keys():
    d = _report().as_dict()
    for key in ("index", "amortized_s", "throughput_qps", "transfer_bytes"):
        assert key in d


def test_percentiles_empty_report_are_zero():
    report = ReplayReport(index_name="X")
    assert report.latency_percentiles() == {"p50": 0.0, "p95": 0.0, "p99": 0.0}
    assert report.phase_percentiles() == {}


def test_percentiles_singleton_bracket_the_value():
    report = ReplayReport(index_name="X")
    report.n_queries = 1
    report.query_records.append(
        QueryRecord(modeled_s=0.01, wall_s=0.1, gpu_s=0.0, transfer_bytes=0)
    )
    p = report.latency_percentiles()
    # all quantiles interpolate inside the single occupied log bucket
    assert 0.005 < p["p50"] <= p["p95"] <= p["p99"] < 0.02


def test_as_dict_percentiles_ordered():
    report = _report()
    # spread the latencies so the percentiles separate
    for i, record in enumerate(report.query_records):
        record.modeled_s = 0.001 * (i + 1)
    d = report.as_dict()
    assert 0 < d["query_p50_s"] <= d["query_p95_s"] <= d["query_p99_s"]


def test_phase_percentiles_group_by_phase():
    report = ReplayReport(index_name="X")
    report.n_queries = 2
    report.query_records.append(
        QueryRecord(
            modeled_s=0.01,
            wall_s=0.0,
            gpu_s=0.0,
            transfer_bytes=0,
            phase_s={"sdist": 0.004, "refine": 0.006},
        )
    )
    report.query_records.append(
        QueryRecord(
            modeled_s=0.02,
            wall_s=0.0,
            gpu_s=0.0,
            transfer_bytes=0,
            phase_s={"sdist": 0.02},
        )
    )
    phases = report.phase_percentiles()
    assert set(phases) == {"refine", "sdist"}
    assert phases["sdist"]["p95"] >= phases["sdist"]["p50"] > 0


def test_fallback_queries_counted():
    report = _report()
    assert report.fallback_queries == 0
    report.query_records[0].used_fallback = True
    report.query_records[3].used_fallback = True
    assert report.fallback_queries == 2
    assert report.as_dict()["fallback_queries"] == 2
