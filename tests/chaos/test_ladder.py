"""The degradation ladder on a live index: exact at every rung."""

import random

import pytest

from repro.chaos import FaultPlan, chaos_context
from repro.config import GGridConfig
from repro.core.ggrid import GGridIndex
from repro.core.messages import Message
from repro.errors import CapacityError, GpuError
from repro.resilience import BREAKER_OPEN, ResiliencePolicy, RetryPolicy
from repro.roadnet.location import NetworkLocation

pytestmark = pytest.mark.chaos

_CONFIG = GGridConfig(eta=3, delta_b=8)


def _populate(graph, index, seed=11, objects=30, t=1.0):
    rng = random.Random(seed)
    for obj in range(objects):
        e = rng.randrange(graph.num_edges)
        index.ingest(Message(obj, e, rng.uniform(0, graph.edge(e).weight), t))


def _oracle_distances(graph, queries, seed=11, objects=30):
    index = GGridIndex(graph, _CONFIG)
    _populate(graph, index, seed, objects)
    return [
        [round(d, 9) for d in index.knn(q, k, t_now=2.0).distances()]
        for q, k in queries
    ]


_QUERIES = [(NetworkLocation(0, 0.0), 5), (NetworkLocation(9, 0.2), 8)]


def test_blackout_degrades_to_cpu_and_stays_exact(small_graph):
    want = _oracle_distances(small_graph, _QUERIES)
    with chaos_context(FaultPlan.from_profile("blackout", seed=1)):
        index = GGridIndex(small_graph, _CONFIG)
        _populate(small_graph, index)
        for (query, k), expected in zip(_QUERIES, want):
            answer = index.knn(query, k, t_now=2.0)
            assert answer.degraded_rung == "cpu_sdist"
            assert [round(d, 9) for d in answer.distances()] == expected
    assert index.fault_injector.total_faults > 0


def test_transient_fault_is_retried_on_the_gpu_rung(small_graph):
    want = _oracle_distances(small_graph, _QUERIES[:1])
    plan = FaultPlan(seed=1, kernel_fault_rate=1.0, max_faults=1)
    with chaos_context(plan):
        index = GGridIndex(small_graph, _CONFIG)
        _populate(small_graph, index)
        query, k = _QUERIES[0]
        answer = index.knn(query, k, t_now=2.0)
    assert answer.retries == 1
    assert answer.degraded_rung is None  # the retry landed on the GPU
    assert answer.backoff_s > 0.0
    assert [round(d, 9) for d in answer.distances()] == want[0]


def test_breaker_opens_under_sustained_faults_and_sheds_gpu_load(small_graph):
    policy = ResiliencePolicy(
        retry=RetryPolicy(max_retries=1),
        breaker_failure_threshold=2,
        breaker_reset_s=1e9,  # never half-opens within this test
    )
    with chaos_context(FaultPlan.from_profile("blackout", seed=1)):
        index = GGridIndex(small_graph, _CONFIG, resilience=policy)
        _populate(small_graph, index)
        first = index.knn(*_QUERIES[0], t_now=2.0)
        assert first.degraded_rung == "cpu_sdist"
        assert index.breaker.state == BREAKER_OPEN
        rolls_when_open = index.fault_injector.rolls
        # breaker open: later queries go straight to the CPU rung
        # without touching the device at all
        second = index.knn(*_QUERIES[1], t_now=3.0)
        assert second.degraded_rung == "cpu_sdist"
        assert second.retries == 0
        assert index.fault_injector.rolls == rolls_when_open


def test_disabled_resilience_propagates_device_faults(small_graph):
    with chaos_context(FaultPlan.from_profile("blackout", seed=1)):
        index = GGridIndex(
            small_graph, _CONFIG, resilience=ResiliencePolicy(enabled=False)
        )
        _populate(small_graph, index)
        with pytest.raises(GpuError, match="injected"):
            index.knn(*_QUERIES[0], t_now=2.0)


def test_backpressure_compacts_instead_of_failing(small_graph):
    config = GGridConfig(eta=3, delta_b=4)
    with chaos_context(FaultPlan(seed=0, max_buckets_per_cell=1)):
        index = GGridIndex(small_graph, config)
        # hammer one edge: every message lands in the same cell, so the
        # one-bucket cap forces in-line cleanings
        for i in range(40):
            index.ingest(Message(0, 0, 0.1, float(i + 1)))
        assert index.backpressure_cleanings > 0
        assert index.lists[index.grid.cell_of_edge(0)].num_buckets <= 2
        answer = index.knn(NetworkLocation(0, 0.0), 1, t_now=41.0)
        assert answer.objects() == [0]


def test_backpressure_disabled_resilience_surfaces_capacity_error(small_graph):
    config = GGridConfig(eta=3, delta_b=4)
    with chaos_context(FaultPlan(seed=0, max_buckets_per_cell=1)):
        index = GGridIndex(
            small_graph, config, resilience=ResiliencePolicy(enabled=False)
        )
        with pytest.raises(CapacityError, match="cell"):
            for i in range(40):
                index.ingest(Message(0, 0, 0.1, float(i + 1)))


def test_chaos_sync_installs_and_removes_injector(small_graph):
    plan = FaultPlan.from_profile("kernels", seed=2)
    with chaos_context(plan):
        index = GGridIndex(small_graph, _CONFIG)
        assert index.fault_injector is not None
        assert index.gpu.fault_hook is index.fault_injector
    # plan gone: the next reset (what the bench harness does between
    # runs on a cached index) must shed the injector
    index.reset_objects()
    assert index.fault_injector is None
    assert index.gpu.fault_hook is None


def test_no_chaos_means_no_hook_and_identical_device_work(small_graph):
    index = GGridIndex(small_graph, _CONFIG)
    assert index.fault_injector is None
    assert index.gpu.fault_hook is None
    _populate(small_graph, index)
    bare = GGridIndex(
        small_graph, _CONFIG, resilience=ResiliencePolicy(enabled=False)
    )
    _populate(small_graph, bare)
    a = index.knn(*_QUERIES[0], t_now=2.0)
    b = bare.knn(*_QUERIES[0], t_now=2.0)
    # the ladder adds zero kernel launches and zero simulated seconds
    # on the healthy path
    assert index.gpu.stats.kernel_launches == bare.gpu.stats.kernel_launches
    assert index.gpu.stats.kernel_time_s == bare.gpu.stats.kernel_time_s
    assert a.retries == 0 and a.backoff_s == 0.0 and a.degraded_rung is None
    assert a.distances() == b.distances()
