"""FaultPlan validation and profile resolution."""

import pytest

from repro.chaos import FAULT_KINDS, PROFILES, FaultPlan
from repro.errors import ConfigError

pytestmark = pytest.mark.chaos


def test_default_plan_injects_nothing():
    plan = FaultPlan()
    assert not plan.injects_device_faults
    assert plan.max_buckets_per_cell is None


@pytest.mark.parametrize("name", sorted(PROFILES))
def test_every_profile_resolves(name):
    plan = FaultPlan.from_profile(name, seed=42)
    assert plan.seed == 42
    assert plan.injects_device_faults or plan.max_buckets_per_cell is not None


def test_unknown_profile_lists_known_names():
    with pytest.raises(ConfigError, match="mixed"):
        FaultPlan.from_profile("nope")


@pytest.mark.parametrize(
    "field,value",
    [
        ("kernel_fault_rate", -0.1),
        ("kernel_fault_rate", 1.5),
        ("transfer_fault_rate", 2.0),
        ("oom_rate", -1.0),
        ("max_faults", -1),
        ("max_buckets_per_cell", 0),
    ],
)
def test_validation_rejects_out_of_range(field, value):
    with pytest.raises(ConfigError):
        FaultPlan(**{field: value})


def test_with_override_keeps_frozen_semantics():
    plan = FaultPlan.from_profile("kernels", seed=1)
    bumped = plan.with_(max_faults=3)
    assert bumped.max_faults == 3
    assert plan.max_faults is None  # original untouched
    assert bumped.kernel_fault_rate == plan.kernel_fault_rate


def test_fault_kinds_cover_profiles():
    assert set(FAULT_KINDS) == {"kernel", "transfer", "oom"}
