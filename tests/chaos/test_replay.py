"""Whole-replay chaos acceptance: complete, exact, deterministic.

These are the tentpole's contract tests: a seeded chaos replay finishes
with zero uncaught exceptions, every kNN answer equals the fault-free
answer, the fault/degradation counters are actually exercised, and the
same chaos seed reproduces the identical report.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.chaos import FaultPlan, chaos_context
from repro.chaos.harness import run_chaos_replay
from repro.config import GGridConfig
from repro.core.ggrid import GGridIndex
from repro.core.messages import Message
from repro.roadnet.generators import grid_road_network
from repro.roadnet.location import NetworkLocation

pytestmark = pytest.mark.chaos

#: Small replay shape shared by the acceptance tests (seconds matter:
#: every test here replays the workload at least twice).
_REPLAY = dict(num_objects=40, duration=15.0, num_queries=6, workload_seed=7)


def test_mixed_profile_completes_exact_and_exercised():
    outcome = run_chaos_replay(FaultPlan.from_profile("mixed", seed=3), **_REPLAY)
    assert outcome.answers_match, f"mismatched queries: {outcome.mismatches}"
    assert outcome.total_faults > 0
    assert outcome.chaos.total_retries > 0
    assert outcome.chaos.degraded_queries > 0
    assert outcome.chaos.n_queries == outcome.baseline.n_queries
    # degradation shows up in the modelled amortised time, not answers
    assert outcome.chaos.query_backoff_s > 0.0


def test_capacity_profile_backpressures_instead_of_failing():
    plan = FaultPlan.from_profile("capacity", seed=1)
    outcome = run_chaos_replay(
        plan, config=GGridConfig(delta_b=4), **_REPLAY
    )
    assert outcome.answers_match
    assert outcome.chaos.updates_backpressured > 0


def test_blackout_profile_survives_on_cpu_rungs():
    outcome = run_chaos_replay(FaultPlan.from_profile("blackout", seed=2), **_REPLAY)
    assert outcome.answers_match
    assert outcome.chaos.degraded_queries == outcome.chaos.n_queries
    assert outcome.breaker_trips > 0


def test_same_chaos_seed_identical_report():
    plan = FaultPlan.from_profile("mixed", seed=5)
    first = run_chaos_replay(plan, **_REPLAY)
    second = run_chaos_replay(plan, **_REPLAY)
    assert first.as_dict() == second.as_dict()
    assert first.total_faults > 0  # the determinism claim is non-vacuous


def test_different_chaos_seed_different_schedule():
    a = run_chaos_replay(FaultPlan.from_profile("mixed", seed=5), **_REPLAY)
    b = run_chaos_replay(FaultPlan.from_profile("mixed", seed=6), **_REPLAY)
    assert a.as_dict() != b.as_dict()


# ----------------------------------------------------------------------
# property: ANY fault schedule yields fault-free answers
# ----------------------------------------------------------------------
_GRAPH = grid_road_network(6, 6, seed=4)
_CONFIG = GGridConfig(eta=3, delta_b=8)


def _answers(index, k, t_now):
    queries = [NetworkLocation(0, 0.0), NetworkLocation(11, 0.3)]
    return [
        [round(d, 9) for d in index.knn(q, k, t_now=t_now).distances()]
        for q in queries
    ]


@settings(max_examples=20, deadline=None)
@given(
    chaos_seed=st.integers(0, 10_000),
    kernel_rate=st.floats(0.0, 1.0),
    transfer_rate=st.floats(0.0, 1.0),
    oom_rate=st.floats(0.0, 0.5),
    objects_seed=st.integers(0, 100),
)
def test_knn_under_any_fault_schedule_is_exact(
    chaos_seed, kernel_rate, transfer_rate, oom_rate, objects_seed
):
    rng = random.Random(objects_seed)
    messages = [
        Message(
            obj,
            (e := rng.randrange(_GRAPH.num_edges)),
            rng.uniform(0, _GRAPH.edge(e).weight),
            1.0,
        )
        for obj in range(15)
    ]

    oracle = GGridIndex(_GRAPH, _CONFIG)
    for m in messages:
        oracle.ingest(m)
    want = _answers(oracle, k=5, t_now=2.0)

    plan = FaultPlan(
        seed=chaos_seed,
        kernel_fault_rate=kernel_rate,
        transfer_fault_rate=transfer_rate,
        oom_rate=oom_rate,
    )
    with chaos_context(plan):
        chaotic = GGridIndex(_GRAPH, _CONFIG)
        for m in messages:
            chaotic.ingest(m)
        got = _answers(chaotic, k=5, t_now=2.0)

    assert got == want
