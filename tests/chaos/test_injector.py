"""FaultInjector: deterministic, counted, cleanly installable."""

import pytest

from repro.chaos import FaultInjector, FaultPlan
from repro.errors import (
    ConfigError,
    DeviceMemoryError,
    GpuError,
    KernelError,
    TransferError,
)
from repro.obs import Observability, configured
from repro.simgpu.device import SimGpu

pytestmark = pytest.mark.chaos


def _noop_kernel(ctx):
    return 0


def _drive(gpu, ops=200):
    """A fixed device workload: launches, transfers and allocations."""
    failures = []
    stored: set[str] = set()
    for i in range(ops):
        try:
            if i % 3 == 0:
                gpu.launch(f"k{i}", 4, _noop_kernel)
            elif i % 3 == 1:
                gpu.to_device(f"buf{i}", [i], nbytes=64)
                stored.add(f"buf{i}")
            else:
                name = f"buf{i - 1}"
                if name in stored:
                    gpu.from_device(name)
                    gpu.free(name)
        except GpuError as exc:
            failures.append((i, type(exc).__name__, str(exc)))
    return failures


def test_injected_faults_are_typed_marked_and_counted():
    plan = FaultPlan(
        seed=5, kernel_fault_rate=0.3, transfer_fault_rate=0.3, oom_rate=0.2
    )
    gpu = SimGpu()
    with FaultInjector(plan, gpu) as inj:
        failures = _drive(gpu)
    assert failures, "a 30% fault rate over 200 ops must fire"
    assert all("injected" in msg for (_, _, msg) in failures)
    assert inj.total_faults == len(failures)
    kinds = {name for (_, name, _) in failures}
    assert kinds <= {"KernelError", "TransferError", "DeviceMemoryError"}


def test_same_seed_same_fault_schedule():
    plan = FaultPlan(seed=9, kernel_fault_rate=0.25, transfer_fault_rate=0.25)

    def run():
        gpu = SimGpu()
        with FaultInjector(plan, gpu) as inj:
            return _drive(gpu), dict(inj.counts)

    first, counts_a = run()
    second, counts_b = run()
    assert first == second
    assert counts_a == counts_b


def test_different_seed_different_schedule():
    gpu_a, gpu_b = SimGpu(), SimGpu()
    with FaultInjector(FaultPlan(seed=1, kernel_fault_rate=0.3), gpu_a):
        a = _drive(gpu_a)
    with FaultInjector(FaultPlan(seed=2, kernel_fault_rate=0.3), gpu_b):
        b = _drive(gpu_b)
    assert a != b


def test_kernel_filter_restricts_targets():
    plan = FaultPlan(seed=0, kernel_fault_rate=1.0, kernel_filter=("victim",))
    gpu = SimGpu()
    with FaultInjector(plan, gpu):
        gpu.launch("innocent", 4, _noop_kernel)  # never faults
        with pytest.raises(KernelError, match="injected"):
            gpu.launch("victim", 4, _noop_kernel)


def test_max_faults_heals_the_outage():
    plan = FaultPlan(seed=0, transfer_fault_rate=1.0, max_faults=2)
    gpu = SimGpu()
    with FaultInjector(plan, gpu) as inj:
        for _ in range(2):
            with pytest.raises(TransferError):
                gpu.to_device("x", None, nbytes=8)
        gpu.to_device("x", None, nbytes=8)  # outage over
    assert inj.total_faults == 2


def test_oom_faults_fire_on_allocation():
    plan = FaultPlan(seed=0, oom_rate=1.0)
    gpu = SimGpu()
    with FaultInjector(plan, gpu):
        with pytest.raises(DeviceMemoryError, match="injected"):
            gpu.memory.store("x", None, nbytes=8)


def test_uninstall_restores_clean_device():
    gpu = SimGpu()
    inj = FaultInjector(FaultPlan(seed=0, kernel_fault_rate=1.0), gpu)
    inj.install()
    with pytest.raises(KernelError):
        gpu.launch("k", 1, _noop_kernel)
    inj.uninstall()
    inj.uninstall()  # idempotent
    assert gpu.fault_hook is None
    assert gpu.memory.alloc_hook is None
    gpu.launch("k", 1, _noop_kernel)  # healthy again


def test_double_install_rejected():
    gpu = SimGpu()
    plan = FaultPlan(seed=0, kernel_fault_rate=0.5)
    with FaultInjector(plan, gpu):
        with pytest.raises(ConfigError):
            FaultInjector(plan, gpu).install()


def test_faults_publish_to_configured_observability():
    plan = FaultPlan(seed=3, kernel_fault_rate=1.0)
    gpu = SimGpu()
    with configured(Observability()) as obs:
        with FaultInjector(plan, gpu) as inj:
            for _ in range(3):
                with pytest.raises(KernelError):
                    gpu.launch("k", 1, _noop_kernel)
        fam = obs.registry.families()["repro_faults_injected_total"]
        assert fam.labels(kind="kernel").value == 3
    assert inj.counts["kernel"] == 3
