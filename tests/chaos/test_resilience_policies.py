"""RetryPolicy and CircuitBreaker unit behaviour."""

import pytest

from repro.errors import ConfigError
from repro.resilience import (
    BREAKER_CLOSED,
    BREAKER_HALF_OPEN,
    BREAKER_OPEN,
    CircuitBreaker,
    ResiliencePolicy,
    RetryPolicy,
)

pytestmark = pytest.mark.chaos


def test_backoff_is_exponential():
    policy = RetryPolicy(max_retries=3, backoff_base_s=1e-3, backoff_factor=4.0)
    assert policy.backoff_s(0) == pytest.approx(1e-3)
    assert policy.backoff_s(1) == pytest.approx(4e-3)
    assert policy.backoff_s(2) == pytest.approx(16e-3)


@pytest.mark.parametrize(
    "kwargs",
    [
        {"max_retries": -1},
        {"backoff_base_s": -0.1},
        {"backoff_factor": 0.5},
    ],
)
def test_retry_policy_validation(kwargs):
    with pytest.raises(ConfigError):
        RetryPolicy(**kwargs)


def test_breaker_trips_after_threshold():
    b = CircuitBreaker(failure_threshold=3, reset_timeout_s=10.0)
    assert b.state == BREAKER_CLOSED and b.state_code == 0
    for t in (1.0, 2.0):
        b.record_failure(t)
        assert b.allow_gpu(t)
    b.record_failure(3.0)  # third consecutive failure: trip
    assert b.state == BREAKER_OPEN and b.state_code == 2
    assert b.trips == 1
    assert not b.allow_gpu(4.0)  # still inside the timeout


def test_breaker_half_opens_then_closes_on_probe_success():
    b = CircuitBreaker(failure_threshold=1, reset_timeout_s=10.0)
    b.record_failure(0.0)
    assert b.state == BREAKER_OPEN
    assert b.allow_gpu(10.0)  # timeout elapsed: this call is the probe
    assert b.state == BREAKER_HALF_OPEN and b.state_code == 1
    b.record_success(10.0)
    assert b.state == BREAKER_CLOSED
    assert b.consecutive_failures == 0


def test_breaker_failed_probe_reopens_and_restarts_timeout():
    b = CircuitBreaker(failure_threshold=1, reset_timeout_s=10.0)
    b.record_failure(0.0)
    assert b.allow_gpu(10.0)  # probe
    b.record_failure(10.0)  # probe failed
    assert b.state == BREAKER_OPEN
    assert b.trips == 2
    assert not b.allow_gpu(15.0)  # timeout restarted at t=10
    assert b.allow_gpu(20.0)


def test_breaker_success_resets_failure_streak():
    b = CircuitBreaker(failure_threshold=2, reset_timeout_s=10.0)
    b.record_failure(0.0)
    b.record_success(1.0)
    b.record_failure(2.0)  # streak restarted: not a trip
    assert b.state == BREAKER_CLOSED


def test_breaker_reset_restores_pristine_state():
    b = CircuitBreaker(failure_threshold=1, reset_timeout_s=10.0)
    b.record_failure(5.0)
    b.reset()
    assert b.state == BREAKER_CLOSED
    assert b.trips == 0
    assert b.allow_gpu(0.0)


def test_breaker_validation():
    with pytest.raises(ConfigError):
        CircuitBreaker(failure_threshold=0)
    with pytest.raises(ConfigError):
        CircuitBreaker(reset_timeout_s=0.0)


def test_policy_builds_breaker_from_knobs():
    policy = ResiliencePolicy(breaker_failure_threshold=7, breaker_reset_s=3.0)
    breaker = policy.make_breaker()
    assert breaker.failure_threshold == 7
    assert breaker.reset_timeout_s == 3.0


def test_breaker_records_full_transition_cycle():
    """closed -> open -> half-open -> closed, each edge counted once."""
    b = CircuitBreaker(failure_threshold=1, reset_timeout_s=10.0)
    b.record_failure(0.0)  # closed -> open
    assert b.allow_gpu(10.0)  # open -> half-open (probe)
    b.record_success(10.0)  # half-open -> closed
    assert b.transitions == {
        (BREAKER_CLOSED, BREAKER_OPEN): 1,
        (BREAKER_OPEN, BREAKER_HALF_OPEN): 1,
        (BREAKER_HALF_OPEN, BREAKER_CLOSED): 1,
    }


def test_breaker_transition_callback_fires_per_edge():
    seen = []
    b = CircuitBreaker(failure_threshold=1, reset_timeout_s=10.0)
    b.on_transition = lambda old, new: seen.append((old, new))
    b.record_failure(0.0)
    b.allow_gpu(10.0)
    b.record_failure(10.0)  # half-open -> open (failed probe)
    assert seen == [
        (BREAKER_CLOSED, BREAKER_OPEN),
        (BREAKER_OPEN, BREAKER_HALF_OPEN),
        (BREAKER_HALF_OPEN, BREAKER_OPEN),
    ]


def test_breaker_same_state_is_not_a_transition():
    b = CircuitBreaker(failure_threshold=2, reset_timeout_s=10.0)
    b.record_success(0.0)  # closed -> closed: no edge
    b.record_failure(1.0)  # still closed (threshold 2)
    assert b.transitions == {}


def test_breaker_reset_clears_transitions():
    b = CircuitBreaker(failure_threshold=1, reset_timeout_s=10.0)
    b.record_failure(0.0)
    b.reset()
    assert b.transitions == {}


def test_server_publishes_breaker_transition_metric(small_graph):
    """The ``repro_breaker_transitions_total{from,to}`` family tracks the
    index breaker's full closed -> open -> half-open -> closed cycle."""
    from repro.config import GGridConfig
    from repro.core.ggrid import GGridIndex
    from repro.obs import Observability
    from repro.server.server import QueryServer

    obs = Observability()
    index = GGridIndex(small_graph, GGridConfig())
    QueryServer(index, obs=obs)
    breaker = index.breaker
    for _ in range(breaker.failure_threshold):
        breaker.record_failure(0.0)
    assert breaker.allow_gpu(breaker.reset_timeout_s)  # probe: half-open
    breaker.record_success(breaker.reset_timeout_s)

    text = obs.registry.write_prometheus()
    assert 'repro_breaker_transitions_total{from="closed",to="open"} 1' in text
    assert (
        'repro_breaker_transitions_total{from="open",to="half_open"} 1' in text
    )
    assert (
        'repro_breaker_transitions_total{from="half_open",to="closed"} 1'
        in text
    )
